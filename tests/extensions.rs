//! Integration tests of the extension features: prior-work baselines,
//! online training, privacy accounting, CSV interchange, the structural
//! FPGA model and the Verilog generator.

use prive_hd::core::prelude::*;
use prive_hd::core::Hypervector;
use prive_hd::data::{io, surrogates};
use prive_hd::hw::design::FpgaDesign;
use prive_hd::hw::perf::Workload;
use prive_hd::hw::verilog;
use prive_hd::privacy::{PrivacyAccountant, PrivacyBudget};

type EncodedSplit = Vec<(Hypervector, usize)>;

fn encoded_task(dim: usize) -> (EncodedSplit, EncodedSplit, usize) {
    let ds = surrogates::face(40, 20, 9);
    let enc = ScalarEncoder::new(
        EncoderConfig::new(ds.features(), dim)
            .with_levels(100)
            .with_seed(2),
    )
    .expect("valid config");
    let encode = |samples: &[prive_hd::data::Sample]| {
        samples
            .iter()
            .map(|s| (enc.encode(&s.features).expect("encode"), s.label))
            .collect::<Vec<_>>()
    };
    (encode(ds.train()), encode(ds.test()), ds.num_classes())
}

#[test]
fn full_precision_classes_beat_the_prior_work_baseline() {
    // The Fig. 5(a) comparison: Prive-HD keeps classes full precision.
    let (train, test, classes) = encoded_task(6_000);
    let train_q: Vec<_> = train
        .iter()
        .map(|(h, y)| (QuantScheme::Bipolar.quantize_adaptive(h), *y))
        .collect();
    let test_q: Vec<_> = test
        .iter()
        .map(|(h, y)| (QuantScheme::Bipolar.quantize_adaptive(h), *y))
        .collect();
    let prive = HdModel::train(classes, 6_000, &train_q).expect("train");
    let prior = QuantizedClassModel::from_model(&prive, QuantScheme::Bipolar);
    let binary = BinaryHdModel::from_model(&prive).expect("binarize");
    let acc_prive = prive.accuracy(&test_q).expect("accuracy");
    let acc_prior = prior.accuracy(&test_q).expect("accuracy");
    let acc_binary = binary.accuracy(&test_q).expect("accuracy");
    assert!(
        acc_prive >= acc_prior,
        "full-precision classes {acc_prive} vs quantized classes {acc_prior}"
    );
    assert!(acc_binary <= acc_prive + 1e-9);
}

#[test]
fn online_training_is_compatible_with_obfuscated_queries() {
    let (train, test, classes) = encoded_task(4_000);
    let (model, report) =
        train_online(classes, 4_000, &train, &OnlineConfig::default()).expect("online");
    assert!(report.final_accuracy() > 0.8);
    let ob = Obfuscator::new(
        4_000,
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(1_000)
            .with_seed(3),
    )
    .expect("valid obfuscator");
    let obf: Vec<_> = test
        .iter()
        .map(|(h, y)| (ob.obfuscate(h).expect("obfuscate"), *y))
        .collect();
    let acc = model.accuracy(&obf).expect("accuracy");
    assert!(acc > 0.7, "online + obfuscation accuracy {acc}");
}

#[test]
fn accountant_tracks_a_fig8_style_sweep() {
    // Fig. 8 releases one model per (ε, dims) grid point; the ledger
    // reports what the whole sweep actually spent.
    let mut ledger = PrivacyAccountant::new();
    for _ in 0..10 {
        ledger.spend(PrivacyBudget::with_paper_delta(1.0).expect("budget"));
    }
    let (eps, delta) = ledger.basic_composition();
    assert_eq!(eps, 10.0);
    assert!((delta - 1e-4).abs() < 1e-12);
    // Advanced composition with slack 1e-6 is tighter for ε = 1? No —
    // ε = 1 is large; basic wins and best_bound says so.
    let (best_eps, _) = ledger.best_bound(1e-6);
    assert!(best_eps <= 10.0 + 1e-9);
}

#[test]
fn csv_round_trip_feeds_the_training_pipeline() {
    // Export a surrogate, re-import it as if it were a real corpus, and
    // train on the result.
    let ds = surrogates::face(10, 5, 4);
    let mut train_buf = Vec::new();
    let mut test_buf = Vec::new();
    io::split_to_csv(ds.train(), &mut train_buf).expect("export train");
    io::split_to_csv(ds.test(), &mut test_buf).expect("export test");
    let reloaded = io::dataset_from_csv("face-from-csv", train_buf.as_slice(), test_buf.as_slice())
        .expect("import");
    assert_eq!(reloaded.features(), ds.features());
    assert_eq!(reloaded.num_classes(), ds.num_classes());

    let enc = ScalarEncoder::new(EncoderConfig::new(reloaded.features(), 1_024).with_seed(5))
        .expect("valid config");
    let train: Vec<_> = reloaded
        .train_pairs()
        .map(|(x, y)| (enc.encode(x).expect("encode"), y))
        .collect();
    let model = HdModel::train(reloaded.num_classes(), 1_024, &train).expect("train");
    assert!(model.accuracy(&train).expect("accuracy") > 0.8);
}

#[test]
fn structural_fpga_model_is_consistent_with_resource_savings() {
    let design = FpgaDesign::kintex7_325t();
    for w in Workload::paper_benchmarks() {
        let exact = design.throughput(&w, QuantScheme::Bipolar, false);
        let approx = design.throughput(&w, QuantScheme::Bipolar, true);
        // The 24/7 pipeline multiplier shows up as ≥2x throughput after
        // ceil() quantization of cycles.
        assert!(approx >= 2.0 * exact, "{}: {approx} vs {exact}", w.name);
    }
}

#[test]
fn generated_verilog_covers_all_input_bits() {
    let rtl = verilog::majority_pipeline("dim", 617, true);
    // Every input bit index must appear exactly once across LUT pins and
    // the tail popcount.
    for j in 0..617 {
        let needle = format!("bits[{j}]");
        assert!(rtl.contains(&needle), "bit {j} unused in generated RTL");
    }
    // Top-level instantiation slices the flat bus correctly.
    let top = verilog::encoder_top("enc", 617, 2, true);
    assert!(top.contains("bits[i*617 +: 617]"));
}
