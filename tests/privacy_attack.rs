//! Integration tests of the two attacks the paper defends against:
//! query reconstruction (§III-A, Eq. 9–10) and model-subtraction
//! membership inference.

use prive_hd::core::prelude::*;
use prive_hd::core::Hypervector;
use prive_hd::data::surrogates;
use prive_hd::privacy::{
    GaussianMechanism, Mechanism, MembershipAttack, PrivacyBudget, Sensitivity,
};

#[test]
fn reconstruction_attack_succeeds_on_raw_encodings() {
    let ds = surrogates::mnist(5, 3, 0);
    let enc = ScalarEncoder::new(
        EncoderConfig::new(ds.features(), 10_000)
            .with_levels(100)
            .with_seed(1),
    )
    .expect("valid config");
    let decoder = Decoder::new(enc.item_memory().clone());
    for s in ds.test().iter().take(5) {
        let h = enc.encode(&s.features).expect("encode");
        let rec = decoder.decode(&h).expect("decode");
        let p = psnr(&s.features, &rec.features_clamped()).expect("psnr");
        assert!(p > 15.0, "attack should succeed: PSNR {p} dB");
    }
}

#[test]
fn obfuscation_collapses_reconstruction_psnr() {
    let ds = surrogates::mnist(5, 3, 1);
    let dim = 10_000;
    let enc = ScalarEncoder::new(
        EncoderConfig::new(ds.features(), dim)
            .with_levels(100)
            .with_seed(2),
    )
    .expect("valid config");
    let decoder = Decoder::new(enc.item_memory().clone());
    let ob = Obfuscator::new(
        dim,
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(9_000)
            .with_seed(3),
    )
    .expect("valid obfuscator");
    let mut drops = Vec::new();
    for s in ds.test().iter().take(5) {
        let h = enc.encode(&s.features).expect("encode");
        let clean = decoder.decode(&h).expect("decode");
        let attacked = decoder
            .decode_rescaled(&ob.obfuscate(&h).expect("obfuscate"), h.l2_norm())
            .expect("decode");
        let p_clean = psnr(&s.features, &clean.features_clamped()).expect("psnr");
        let p_attacked = psnr(&s.features, &attacked.features_clamped()).expect("psnr");
        drops.push(p_clean - p_attacked);
    }
    let mean_drop = drops.iter().sum::<f64>() / drops.len() as f64;
    // Paper: 23.6 dB -> 13.1 dB, a ~10 dB drop at 9k masked.
    assert!(mean_drop > 5.0, "mean PSNR drop {mean_drop} dB too small");
}

#[test]
fn membership_attack_blocked_by_calibrated_noise() {
    let ds = surrogates::face(50, 10, 2);
    let dim = 6_000;
    let enc = ScalarEncoder::new(
        EncoderConfig::new(ds.features(), dim)
            .with_levels(100)
            .with_seed(4),
    )
    .expect("valid config");

    let victim = ds.train()[0].clone();
    let rest: Vec<(Hypervector, usize)> = ds.train()[1..]
        .iter()
        .map(|s| (enc.encode(&s.features).expect("encode"), s.label))
        .collect();
    let without = HdModel::train(2, dim, &rest).expect("train");
    let mut with_samples = rest.clone();
    with_samples.push((enc.encode(&victim.features).expect("encode"), victim.label));
    let with = HdModel::train(2, dim, &with_samples).expect("train");

    let attack = MembershipAttack::new(&enc);
    let clean = attack
        .run(&with, &without, victim.label, &victim.features)
        .expect("attack");
    assert!(clean > 0.6, "clean attack should correlate: {clean}");

    let budget = PrivacyBudget::with_paper_delta(1.0).expect("valid budget");
    let delta_f = Sensitivity::new(ds.features(), dim).l2_full();
    let mut mech = GaussianMechanism::new(budget, 5);
    let mut with_noisy = with.clone();
    let mut without_noisy = without.clone();
    with_noisy
        .add_class_noise(&mech.noise_for_classes(2, dim, delta_f).expect("noise"))
        .expect("add noise");
    without_noisy
        .add_class_noise(&mech.noise_for_classes(2, dim, delta_f).expect("noise"))
        .expect("add noise");
    let noisy = attack
        .run(&with_noisy, &without_noisy, victim.label, &victim.features)
        .expect("attack");
    assert!(
        noisy.abs() < 0.2,
        "noise should break the attack: correlation {noisy}"
    );
}

#[test]
fn query_norm_is_shared_so_prediction_ranks_survive_scaling() {
    // The Eq. (4) simplification: dropping the query norm never changes
    // the argmax, so an obfuscated (rescaled) query ranks identically.
    let ds = surrogates::isolet(10, 5, 3);
    let dim = 2_000;
    let enc = ScalarEncoder::new(
        EncoderConfig::new(ds.features(), dim)
            .with_levels(100)
            .with_seed(5),
    )
    .expect("valid config");
    let train: Vec<(Hypervector, usize)> = ds
        .train_pairs()
        .map(|(x, y)| (enc.encode(x).expect("encode"), y))
        .collect();
    let model = HdModel::train(ds.num_classes(), dim, &train).expect("train");
    for (x, _) in ds.test_pairs().take(10) {
        let h = enc.encode(x).expect("encode");
        let scaled = h.clone() * 0.125;
        assert_eq!(
            model.predict(&h).expect("predict").class,
            model.predict(&scaled).expect("predict").class
        );
    }
}
