//! Integration tests of the hardware functional model against the
//! software pipeline: the paper's <1%-accuracy-loss claim for the
//! approximate majority encoder, and the Table I platform ordering.

use prive_hd::core::{EncoderConfig, HdModel, Hypervector, LevelEncoder};
use prive_hd::data::{ClusterSpec, SyntheticGenerator};
use prive_hd::hw::perf::{Platform, PlatformKind, Workload};
use prive_hd::hw::{HardwareEncoder, MajorityCircuit};

fn level_friendly_task() -> prive_hd::data::Dataset {
    SyntheticGenerator::new(
        ClusterSpec::new("hw-it", 128, 8)
            .with_samples(12, 6)
            .with_difficulty(0.35, 0.25)
            .with_nuisance(0.2)
            .with_seed(11),
    )
    .generate()
}

fn accuracy_with(circuit: MajorityCircuit) -> f64 {
    let ds = level_friendly_task();
    let dim = 1_024;
    let enc = LevelEncoder::new(
        EncoderConfig::new(ds.features(), dim)
            .with_levels(16)
            .with_seed(3),
    )
    .expect("valid config");
    let hw = HardwareEncoder::with_circuit(enc, circuit);
    let encode = |samples: &[prive_hd::data::Sample]| -> Vec<(Hypervector, usize)> {
        samples
            .iter()
            .map(|s| (hw.encode_dense(&s.features).expect("encode"), s.label))
            .collect()
    };
    let model = HdModel::train(ds.num_classes(), dim, &encode(ds.train())).expect("train");
    model.accuracy(&encode(ds.test())).expect("accuracy")
}

#[test]
fn one_stage_majority_costs_under_three_percent_accuracy() {
    let exact = accuracy_with(MajorityCircuit::exact());
    let approx = accuracy_with(MajorityCircuit::new());
    assert!(exact > 0.85, "reference pipeline should work: {exact}");
    assert!(
        exact - approx <= 0.03,
        "one-stage loss too big: {exact} -> {approx}"
    );
}

#[test]
fn deep_cascades_lose_more_than_one_stage() {
    let one = accuracy_with(MajorityCircuit::with_stages(1));
    let four = accuracy_with(MajorityCircuit::with_stages(4));
    assert!(
        four <= one + 0.02,
        "4-stage cascade should not beat 1-stage: {four} vs {one}"
    );
}

#[test]
fn hardware_and_software_encoders_agree_bit_exactly_when_exact() {
    let ds = level_friendly_task();
    let enc = LevelEncoder::new(
        EncoderConfig::new(ds.features(), 512)
            .with_levels(16)
            .with_seed(5),
    )
    .expect("valid config");
    let hw = HardwareEncoder::with_circuit(enc, MajorityCircuit::exact());
    for s in ds.test().iter().take(10) {
        assert_eq!(hw.agreement(&s.features).expect("agreement"), 1.0);
    }
}

#[test]
fn table1_ordering_holds_for_all_paper_workloads() {
    for w in Workload::paper_benchmarks() {
        let pi = Platform::paper(PlatformKind::RaspberryPi);
        let gpu = Platform::paper(PlatformKind::Gpu);
        let fpga = Platform::paper(PlatformKind::PriveHdFpga);
        assert!(fpga.throughput(&w) > gpu.throughput(&w));
        assert!(gpu.throughput(&w) > pi.throughput(&w));
        assert!(fpga.energy_per_input(&w) < gpu.energy_per_input(&w));
        assert!(gpu.energy_per_input(&w) < pi.energy_per_input(&w));
        // Order-of-magnitude check against the paper's averages.
        let speedup_pi = fpga.throughput(&w) / pi.throughput(&w);
        assert!(
            (1e4..1e6).contains(&speedup_pi),
            "{}: speedup vs Pi {speedup_pi}",
            w.name
        );
    }
}
