//! End-to-end integration tests: the full Prive-HD story on each dataset
//! surrogate, spanning `privehd-core`, `privehd-data` and
//! `privehd-privacy` through the `prive-hd` facade.

use prive_hd::core::prelude::*;
use prive_hd::core::Hypervector;
use prive_hd::data::{surrogates, Dataset};
use prive_hd::privacy::{PrivacyBudget, PrivateTrainer, PrivateTrainingConfig, SensitivityMode};

type EncodedSplit = Vec<(Hypervector, usize)>;

/// Encodes both splits and returns (train, test) encoded pairs.
fn encode_dataset(
    ds: &Dataset,
    dim: usize,
    seed: u64,
) -> (ScalarEncoder, EncodedSplit, EncodedSplit) {
    let enc = ScalarEncoder::new(
        EncoderConfig::new(ds.features(), dim)
            .with_levels(100)
            .with_seed(seed),
    )
    .expect("valid encoder config");
    let encode = |samples: &[prive_hd::data::Sample]| {
        samples
            .iter()
            .map(|s| (enc.encode(&s.features).expect("encode"), s.label))
            .collect::<Vec<_>>()
    };
    let train = encode(ds.train());
    let test = encode(ds.test());
    (enc, train, test)
}

#[test]
fn baseline_accuracy_bands_hold_on_all_surrogates() {
    // Bands are looser than the calibration targets because integration
    // tests run at 4k dims with smaller splits for speed.
    let cases = [
        (surrogates::isolet(25, 10, 1), 0.80),
        (surrogates::face(40, 20, 1), 0.85),
        (surrogates::mnist(25, 10, 1), 0.88),
    ];
    for (ds, band) in cases {
        let (_, train, test) = encode_dataset(&ds, 4_000, 7);
        let model = HdModel::train(ds.num_classes(), 4_000, &train).expect("train");
        let acc = model.accuracy(&test).expect("accuracy");
        assert!(
            acc >= band,
            "{}: accuracy {acc} below band {band}",
            ds.name()
        );
    }
}

#[test]
fn inference_quantization_costs_little_accuracy() {
    // §III-C / Fig. 9(a): 1-bit queries against full-precision classes.
    // The <1% claim holds at 10k dimensions; at the 8k these tests run
    // for speed, the drop is still a few percent at most.
    for ds in [surrogates::isolet(25, 10, 2), surrogates::face(40, 20, 2)] {
        let (_, train, test) = encode_dataset(&ds, 8_000, 8);
        let model = HdModel::train(ds.num_classes(), 8_000, &train).expect("train");
        let base = model.accuracy(&test).expect("accuracy");
        let quantized: Vec<_> = test
            .iter()
            .map(|(h, y)| (QuantScheme::Bipolar.quantize_adaptive(h), *y))
            .collect();
        let acc_q = model.accuracy(&quantized).expect("accuracy");
        assert!(
            base - acc_q < 0.06,
            "{}: quantization drop too large: {base} -> {acc_q}",
            ds.name()
        );
    }
}

#[test]
fn masking_degrades_reconstruction_much_faster_than_accuracy() {
    // The Fig. 6 trade: half the dimensions masked, accuracy nearly
    // intact, reconstruction MSE way up.
    let ds = surrogates::mnist(20, 8, 3);
    let dim = 6_000;
    let (enc, train, test) = encode_dataset(&ds, dim, 9);
    let model = HdModel::train(ds.num_classes(), dim, &train).expect("train");
    let base = model.accuracy(&test).expect("accuracy");

    let ob = Obfuscator::new(
        dim,
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(dim / 2)
            .with_seed(4),
    )
    .expect("valid obfuscator");
    let obf: Vec<_> = test
        .iter()
        .map(|(h, y)| (ob.obfuscate(h).expect("obfuscate"), *y))
        .collect();
    let acc_obf = model.accuracy(&obf).expect("accuracy");
    assert!(base - acc_obf < 0.08, "accuracy drop {base} -> {acc_obf}");

    let decoder = Decoder::new(enc.item_memory().clone());
    let victim = &ds.test()[0];
    let (h, _) = &test[0];
    let clean = decoder.decode(h).expect("decode");
    let attacked = decoder
        .decode_rescaled(&ob.obfuscate(h).expect("obfuscate"), h.l2_norm())
        .expect("decode");
    let mse_clean = mse(&victim.features, &clean.features_clamped()).expect("mse");
    let mse_attacked = mse(&victim.features, &attacked.features_clamped()).expect("mse");
    assert!(
        mse_attacked > 2.0 * mse_clean,
        "masking should at least double the reconstruction error: \
         {mse_clean} -> {mse_attacked}"
    );
}

#[test]
fn private_pipeline_trains_on_every_surrogate() {
    for (ds, floor) in [
        (surrogates::face(60, 25, 4), 0.75),
        (surrogates::mnist(25, 10, 4), 0.70),
    ] {
        let budget = PrivacyBudget::with_paper_delta(1.0).expect("valid budget");
        let cfg = PrivateTrainingConfig::new(budget)
            .with_dim(3_000)
            .with_keep_dims(2_000)
            .with_sensitivity_mode(SensitivityMode::PerDimension)
            .with_seed(5);
        let (model, report) = PrivateTrainer::new(cfg).run(&ds).expect("pipeline");
        assert!(
            report.private_accuracy >= floor,
            "{}: private accuracy {} below {floor}",
            ds.name(),
            report.private_accuracy
        );
        assert_eq!(model.model().num_classes(), ds.num_classes());
        assert!(report.noise_std > 0.0);
        assert!(report.delta_f_analytic <= report.delta_f_empirical * 10.0);
    }
}

#[test]
fn strict_l2_mode_injects_far_more_noise() {
    let ds = surrogates::face(40, 20, 5);
    let budget = PrivacyBudget::with_paper_delta(1.0).expect("valid budget");
    let base = PrivateTrainingConfig::new(budget)
        .with_dim(2_000)
        .with_seed(6);
    let (_, strict) = PrivateTrainer::new(base.with_sensitivity_mode(SensitivityMode::VectorL2))
        .run(&ds)
        .expect("pipeline");
    let (_, relaxed) =
        PrivateTrainer::new(base.with_sensitivity_mode(SensitivityMode::PerDimension))
            .run(&ds)
            .expect("pipeline");
    assert!(
        strict.noise_std > 10.0 * relaxed.noise_std,
        "vector-l2 noise {} should dwarf per-dimension noise {}",
        strict.noise_std,
        relaxed.noise_std
    );
    assert!(relaxed.private_accuracy >= strict.private_accuracy);
}

#[test]
fn data_volume_buries_the_noise() {
    // Fig. 8(d): same noise, more data, better private accuracy.
    let big = surrogates::face(200, 40, 6);
    let small = big.subsample_train(0.1, 1);
    let budget = PrivacyBudget::with_paper_delta(0.5).expect("valid budget");
    let cfg = PrivateTrainingConfig::new(budget)
        .with_dim(3_000)
        .with_sensitivity_mode(SensitivityMode::PerDimension)
        .with_seed(7);
    let (_, rep_small) = PrivateTrainer::new(cfg).run(&small).expect("pipeline");
    let (_, rep_big) = PrivateTrainer::new(cfg).run(&big).expect("pipeline");
    assert!(
        rep_big.private_accuracy >= rep_small.private_accuracy - 0.02,
        "more data should not hurt: {} vs {}",
        rep_big.private_accuracy,
        rep_small.private_accuracy
    );
}
