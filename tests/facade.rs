//! Smoke tests of the `prive-hd` facade: every re-exported crate is
//! reachable and the README quickstart compiles against the public API.

use prive_hd::core::prelude::*;
use prive_hd::core::DEFAULT_DIMENSION;

#[test]
fn facade_reexports_all_crates() {
    // core
    let _ = prive_hd::core::QuantScheme::Bipolar;
    // data
    let ds = prive_hd::data::surrogates::face(2, 1, 0);
    assert_eq!(ds.num_classes(), 2);
    // privacy
    let b = prive_hd::privacy::PrivacyBudget::with_paper_delta(1.0).expect("budget");
    assert!(b.gaussian_sigma() > 0.0);
    // hw
    let m = prive_hd::hw::ResourceModel::new(617);
    assert!(m.bipolar_saving() > 0.7);
}

#[test]
fn default_dimension_is_papers_ten_thousand() {
    assert_eq!(DEFAULT_DIMENSION, 10_000);
}

#[test]
fn readme_quickstart_flow() {
    let ds = prive_hd::data::surrogates::isolet(5, 2, 0);
    let encoder = ScalarEncoder::new(EncoderConfig::new(ds.features(), 1_024).with_seed(1))
        .expect("valid config");
    let mut model = HdModel::new(ds.num_classes(), 1_024).expect("valid model");
    for (x, y) in ds.train_pairs() {
        model
            .bundle(y, &encoder.encode(x).expect("encode"))
            .expect("bundle");
    }
    let (x0, _) = ds.test_pairs().next().expect("test sample");
    let pred = model
        .predict(&encoder.encode(x0).expect("encode"))
        .expect("predict");
    assert!(pred.class < ds.num_classes());
}

#[test]
fn error_type_is_usable_with_question_mark() {
    fn inner() -> Result<usize, HdError> {
        let h = Hypervector::zeros(8)?;
        Ok(h.dim())
    }
    assert_eq!(inner().expect("ok"), 8);
}
