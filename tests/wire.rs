//! End-to-end wire-protocol serving over real loopback TCP sockets:
//! the whole PrivHD story — encode ∘ obfuscate on the client, frame,
//! socket, per-model batch routing, predict, response frame.
//!
//! The flagship test publishes two tenant models behind one sharded
//! engine and drives them with concurrent `WireClient`s sending mixed
//! packed (client-obfuscated) and raw-features (server-side edge)
//! frames, while a malformed-frame injector hammers the same server —
//! asserting per-model routing correctness (bit-exact against local
//! ground truth), typed error hygiene, and a clean drain on shutdown.
//! A second test maps engine queue backpressure to `Busy` frames.
//!
//! These tests run in the dedicated release-mode `wire` CI job
//! (sockets and timing behave differently than debug).

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use prive_hd::core::prelude::*;
use prive_hd::core::BipolarHv;
use prive_hd::data::surrogates;
use prive_hd::serve::wire::{Frame, WireClient, WireConfig, WireServer, WireStatus};
use prive_hd::serve::{ClientEdge, ModelId, ServeConfig, ServeEngine, ShardedRegistry};

const DIM: usize = 1_024;

/// One tenant's world: its edge pipeline (own basis seed), its trained
/// model inside the registry, and the raw test split.
struct Tenant {
    id: ModelId,
    edge: ClientEdge,
    model: HdModel,
    inputs: Vec<Vec<f64>>,
}

fn build_tenant(name: &str, seed: u64) -> Tenant {
    let ds = surrogates::isolet(10, 5, seed);
    // Bipolar obfuscation without dimension masking, so prepared
    // queries are strictly ±1 and bit-pack losslessly for the packed
    // wire payload.
    let edge = ClientEdge::new(
        EncoderConfig::new(ds.features(), DIM).with_seed(seed),
        ObfuscateConfig::new(QuantScheme::Bipolar).with_seed(seed + 100),
    )
    .unwrap();
    let mut model = HdModel::new(ds.num_classes(), DIM).unwrap();
    for (x, y) in ds.train_pairs() {
        model.bundle(y, &edge.encoder().encode(x).unwrap()).unwrap();
    }
    model.refresh_norms();
    let inputs: Vec<Vec<f64>> = ds.test_pairs().map(|(x, _)| x.to_vec()).collect();
    Tenant {
        id: ModelId::new(name),
        edge,
        model,
        inputs,
    }
}

#[test]
fn two_tenants_mixed_frames_and_a_malformed_injector() {
    let tenants = [build_tenant("tenant-a", 11), build_tenant("tenant-b", 22)];
    let registry = Arc::new(ShardedRegistry::new());
    for t in &tenants {
        registry.publish(&t.id, t.model.clone(), "v1").unwrap();
    }
    let engine = ServeEngine::start(
        Arc::clone(&registry),
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_micros(500),
            workers: 2,
            queue_depth: 1_024,
            packed_fastpath: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    // Both tenants register a server-side edge, so raw-features frames
    // run encode ∘ obfuscate on the host for them.
    let mut wire_config = WireConfig::default();
    for t in &tenants {
        wire_config = wire_config.with_edge(t.id.clone(), t.edge.clone());
    }
    let server = WireServer::start("127.0.0.1:0", engine.handle(), wire_config).unwrap();
    let addr = server.local_addr();

    // Two concurrent clients per tenant, each mixing packed
    // (client-obfuscated) and raw-features frames; results are checked
    // bit-exactly against a local predict on the same tenant's weights,
    // which proves both routing and end-to-end fidelity.
    let queries_per_client = 30usize;
    let mut client_threads = Vec::new();
    for t in &tenants {
        for c in 0..2 {
            let id = t.id.clone();
            let edge = t.edge.clone();
            let model = t.model.clone();
            let inputs = t.inputs.clone();
            client_threads.push(std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).unwrap();
                for (i, x) in inputs.iter().cycle().take(queries_per_client).enumerate() {
                    // The obfuscated hypervector the device would send.
                    let prepared = edge.prepare(x).unwrap();
                    let expected = model.predict(&prepared).unwrap();
                    let served = if (i + c) % 2 == 0 {
                        let packed = BipolarHv::from_signs(prepared.as_slice());
                        client.call_packed(&id, &packed).unwrap()
                    } else {
                        // Raw features: the server's edge must produce
                        // the identical obfuscated query (same seeds).
                        client.call_raw(&id, x).unwrap()
                    };
                    assert_eq!(served.model, id, "request served by the wrong tenant");
                    assert_eq!(
                        served.class as usize, expected.class,
                        "class mismatch for {id} query {i}"
                    );
                    assert_eq!(
                        served.score, expected.score,
                        "score not bit-exact for {id} query {i}"
                    );
                    assert_eq!(served.model_version, 1);
                }
            }));
        }
    }

    // The malformed-frame injector shares the server with the real
    // clients: every burst must get a typed BadFrame fault and a
    // close, with zero collateral damage to the tenants' traffic.
    let injector = std::thread::spawn(move || {
        for round in 0..5 {
            let mut sock = TcpStream::connect(addr).unwrap();
            sock.set_read_timeout(Some(Duration::from_secs(10)))
                .unwrap();
            let garbage = vec![0x5A ^ round as u8; 64];
            sock.write_all(&garbage).unwrap();
            let mut buf = Vec::new();
            let mut chunk = [0u8; 4096];
            loop {
                match sock.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) => panic!("injector read failed: {e}"),
                }
            }
            let (frame, _) = Frame::decode(&buf, 1 << 20)
                .unwrap()
                .expect("a fault frame");
            let Frame::Response(resp) = frame else {
                panic!("expected a response frame");
            };
            assert_eq!(resp.outcome.unwrap_err().status, WireStatus::BadFrame);
        }
    });

    for t in client_threads {
        t.join().expect("client thread panicked");
    }
    injector.join().expect("injector thread panicked");

    // Clean drain: transport first, then the engine; every accepted
    // frame was answered.
    let wire_report = server.shutdown();
    let total = 4 * queries_per_client as u64;
    assert_eq!(wire_report.frames_in, total);
    assert_eq!(
        wire_report.responses_out,
        total + 5,
        "4 clients + 5 injector faults"
    );
    assert_eq!(wire_report.decode_errors, 5);
    assert_eq!(wire_report.open, 0);

    let report = engine.shutdown();
    assert_eq!(report.completed, total);
    assert_eq!(report.failed, 0);
    // Per-model rows prove the split: each tenant saw exactly its own
    // clients' traffic.
    for t in &tenants {
        let row = report
            .per_model
            .iter()
            .find(|m| m.model == t.id)
            .expect("tenant row");
        assert_eq!(row.completed, 2 * queries_per_client as u64);
    }
}

#[test]
fn queue_pressure_surfaces_as_busy_frames() {
    // Tiny queue, one worker, small batches: the engine sheds load with
    // QueueFull, which must reach the client as typed Busy frames
    // rather than a stalled socket.
    let tenant = build_tenant("pressured", 33);
    let registry = Arc::new(ShardedRegistry::new());
    registry
        .publish(&tenant.id, tenant.model.clone(), "v1")
        .unwrap();
    let engine = ServeEngine::start(
        registry,
        ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(50),
            workers: 1,
            queue_depth: 2,
            packed_fastpath: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            // Big enough that the engine queue, not the connection cap,
            // is what sheds.
            max_in_flight: 2_048,
            ..WireConfig::default()
        },
    )
    .unwrap();

    let mut client = WireClient::connect(server.local_addr()).unwrap();
    let prepared = tenant.edge.prepare(&tenant.inputs[0]).unwrap();
    let packed = BipolarHv::from_signs(prepared.as_slice());
    let expected = tenant.model.predict(&prepared).unwrap();

    let flood = 300usize;
    for _ in 0..flood {
        client.send_packed(&tenant.id, &packed).unwrap();
    }
    let mut ok = 0usize;
    let mut busy = 0usize;
    for _ in 0..flood {
        let resp = client.recv().unwrap();
        match resp.outcome {
            Ok(p) => {
                assert_eq!(p.class as usize, expected.class);
                ok += 1;
            }
            Err(fault) => {
                assert_eq!(fault.status, WireStatus::Busy, "{fault}");
                busy += 1;
            }
        }
    }
    assert_eq!(ok + busy, flood, "every frame answered exactly once");
    assert!(busy > 0, "flood never tripped queue backpressure");
    assert!(ok > 0, "backpressure starved the queue entirely");

    let wire_report = server.shutdown();
    assert_eq!(wire_report.responses_out, flood as u64);
    assert_eq!(wire_report.busy_rejections, busy as u64);
    let report = engine.shutdown();
    assert_eq!(report.completed, ok as u64);
}

#[test]
fn shutdown_drains_in_flight_wire_requests() {
    // Requests in flight when shutdown starts are answered before the
    // transport closes — the drain is graceful, not a guillotine.
    let tenant = build_tenant("draining", 44);
    let registry = Arc::new(ShardedRegistry::new());
    registry
        .publish(&tenant.id, tenant.model.clone(), "v1")
        .unwrap();
    let engine = ServeEngine::start(
        registry,
        ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(100),
            workers: 1,
            queue_depth: 64,
            packed_fastpath: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server = WireServer::start("127.0.0.1:0", engine.handle(), WireConfig::default()).unwrap();

    let mut client = WireClient::connect(server.local_addr()).unwrap();
    let prepared = tenant.edge.prepare(&tenant.inputs[0]).unwrap();
    let packed = BipolarHv::from_signs(prepared.as_slice());
    let n = 8usize;
    for _ in 0..n {
        client.send_packed(&tenant.id, &packed).unwrap();
    }
    // Give the poll loop a moment to accept the frames, then shut down
    // while the 100 ms batching window still holds them in flight.
    std::thread::sleep(Duration::from_millis(20));
    let server_thread = std::thread::spawn(move || server.shutdown());
    let mut answered = 0usize;
    for _ in 0..n {
        let resp = client.recv().unwrap();
        assert!(resp.outcome.is_ok(), "drained request failed");
        answered += 1;
    }
    assert_eq!(answered, n);
    let wire_report = server_thread.join().unwrap();
    assert_eq!(wire_report.frames_in, n as u64);
    assert_eq!(wire_report.responses_out, n as u64);
    engine.shutdown();
}
