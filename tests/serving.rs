//! Integration tests for the serving subsystem, exercised through the
//! facade: (a) batched results are bit-identical to sequential
//! `predict`, (b) a mid-stream hot swap never drops or corrupts
//! in-flight requests, (c) obfuscated-query serving matches the direct
//! `Obfuscator` path.

use std::sync::Arc;
use std::time::Duration;

use prive_hd::core::prelude::*;
use prive_hd::core::Hypervector;
use prive_hd::data::surrogates;
use prive_hd::serve::{ClientEdge, ModelRegistry, ServeConfig, ServeEngine, ServeError};

const DIM: usize = 2_048;
const SEED: u64 = 17;

/// Trains a model on an ISOLET-like surrogate and returns it with the
/// encoder (shared basis) and the raw test split.
fn trained_setup() -> (HdModel, ScalarEncoder, Vec<(Vec<f64>, usize)>) {
    let ds = surrogates::isolet(12, 6, 4);
    let encoder =
        ScalarEncoder::new(EncoderConfig::new(ds.features(), DIM).with_seed(SEED)).unwrap();
    let mut model = HdModel::new(ds.num_classes(), DIM).unwrap();
    for (x, y) in ds.train_pairs() {
        model.bundle(y, &encoder.encode(x).unwrap()).unwrap();
    }
    let test: Vec<(Vec<f64>, usize)> = ds.test_pairs().map(|(x, y)| (x.to_vec(), y)).collect();
    (model, encoder, test)
}

#[test]
fn batched_predictions_are_bit_identical_to_sequential() {
    let (model, encoder, test) = trained_setup();
    let queries: Vec<Hypervector> = test
        .iter()
        .map(|(x, _)| encoder.encode(x).unwrap())
        .collect();

    // Ground truth: plain sequential predict on the same weights.
    let sequential: Vec<Prediction> = queries.iter().map(|q| model.predict(q).unwrap()).collect();

    // The core batch API is bit-identical by construction.
    let batched = model.predict_batch(&queries).unwrap();
    assert_eq!(batched, sequential);

    // And so is the full engine path (default config: dense arithmetic),
    // even with many queries in flight at once.
    let registry = Arc::new(ModelRegistry::with_model(model, "bitident").unwrap());
    let config = ServeConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(5),
        workers: 4,
        queue_depth: 1_024,
        packed_fastpath: false,
    };
    let engine = ServeEngine::start(registry, config).unwrap();
    let pending: Vec<_> = queries
        .iter()
        .map(|q| engine.submit(q.clone()).unwrap())
        .collect();
    for (p, want) in pending.into_iter().zip(&sequential) {
        let served = p.wait().unwrap();
        assert_eq!(
            &served.prediction, want,
            "served result drifted from predict"
        );
        assert_eq!(served.model_version, 1);
    }
    let report = engine.shutdown();
    assert_eq!(report.completed as usize, queries.len());
    assert_eq!(report.failed, 0);
}

#[test]
fn hot_swap_mid_stream_drops_and_corrupts_nothing() {
    let (model_a, encoder, test) = trained_setup();
    // A second, deliberately different model: classes swapped by
    // retraining on permuted labels would be slow; negating the classes
    // is enough to make versions distinguishable.
    let model_b = {
        let classes: Vec<Hypervector> = model_a.classes().map(|c| -c.clone()).collect();
        HdModel::from_classes(classes).unwrap()
    };

    let queries: Vec<Hypervector> = test
        .iter()
        .cycle()
        .take(300)
        .map(|(x, _)| encoder.encode(x).unwrap())
        .collect();

    let registry = Arc::new(ModelRegistry::with_model(model_a.clone(), "v1").unwrap());
    let config = ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(2),
        workers: 4,
        queue_depth: 2_048,
        packed_fastpath: false,
    };
    let engine = ServeEngine::start(Arc::clone(&registry), config).unwrap();

    // Client threads submit while the main thread keeps republishing.
    let mut clients = Vec::new();
    for t in 0..3 {
        let handle = engine.handle();
        let queries = queries.clone();
        clients.push(std::thread::spawn(move || {
            let mut results = Vec::new();
            for q in queries.iter().skip(t).step_by(3) {
                loop {
                    match handle.submit(q.clone()) {
                        Ok(p) => {
                            results.push((q.clone(), p.wait().expect("request dropped")));
                            break;
                        }
                        Err(ServeError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            }
            results
        }));
    }

    let mut published = vec![1u64];
    for i in 0..20 {
        std::thread::sleep(Duration::from_millis(1));
        let (m, label) = if i % 2 == 0 {
            (model_b.clone(), "swap-to-b")
        } else {
            (model_a.clone(), "swap-to-a")
        };
        published.push(registry.publish(m, label).unwrap());
    }

    let mut total = 0usize;
    for c in clients {
        for (query, served) in c.join().unwrap() {
            total += 1;
            // The reported version must be one that was actually
            // published…
            assert!(
                published.contains(&served.model_version),
                "unknown version {}",
                served.model_version
            );
            // …and the prediction must be exactly what that version's
            // weights produce: versions alternate A (odd) / B (even),
            // and B is A negated.
            let reference = if served.model_version % 2 == 1 {
                model_a.predict(&query).unwrap()
            } else {
                model_b.predict(&query).unwrap()
            };
            assert_eq!(
                served.prediction, reference,
                "version {} served a corrupted result",
                served.model_version
            );
        }
    }
    assert_eq!(total, 300, "requests were dropped");
    let report = engine.shutdown();
    assert_eq!(report.completed, 300);
    assert_eq!(report.failed, 0);
}

#[test]
fn obfuscated_serving_matches_direct_obfuscator_path() {
    let (model, _encoder, test) = trained_setup();
    // Edge pipeline on the same basis seed: quantize to bipolar and
    // mask 25% of dimensions, as in the paper's Fig. 6 configuration.
    let features = test[0].0.len();
    let edge = ClientEdge::new(
        EncoderConfig::new(features, DIM).with_seed(SEED),
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(DIM / 4)
            .with_seed(11),
    )
    .unwrap();

    // Direct path: obfuscate locally, classify with plain predict.
    let direct: Vec<usize> = test
        .iter()
        .map(|(x, _)| model.predict(&edge.prepare(x).unwrap()).unwrap().class)
        .collect();
    let labels: Vec<usize> = test.iter().map(|(_, y)| *y).collect();
    let direct_accuracy =
        direct.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
    assert!(
        direct_accuracy > 0.5,
        "obfuscated baseline unusable: {direct_accuracy}"
    );

    // Served path, packed fast path enabled. Masked queries contain
    // zeros (not strictly bipolar) and take the dense route; unmasked
    // bipolar queries would take the popcount route — either way the
    // served classes must match the direct path.
    let registry = Arc::new(ModelRegistry::with_model(model, "obf").unwrap());
    let config = ServeConfig {
        packed_fastpath: true,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(registry, config).unwrap();
    let pending: Vec<_> = test
        .iter()
        .map(|(x, _)| engine.submit(edge.prepare(x).unwrap()).unwrap())
        .collect();
    let served: Vec<usize> = pending
        .into_iter()
        .map(|p| p.wait().unwrap().prediction.class)
        .collect();
    engine.shutdown();

    assert_eq!(
        served, direct,
        "served obfuscated classes diverged from the direct Obfuscator path"
    );

    // Also pin the packed fast path itself against unmasked bipolar
    // queries: mathematically the same classifier.
    let edge_unmasked = ClientEdge::new(
        EncoderConfig::new(features, DIM).with_seed(SEED),
        ObfuscateConfig::new(QuantScheme::Bipolar),
    )
    .unwrap();
    let (model2, _, _) = trained_setup();
    let registry2 = Arc::new(ModelRegistry::with_model(model2.clone(), "obf2").unwrap());
    let engine2 = ServeEngine::start(
        registry2,
        ServeConfig {
            packed_fastpath: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for (x, _) in test.iter().take(20) {
        let q = edge_unmasked.prepare(x).unwrap();
        let served = engine2.predict(q.clone()).unwrap();
        let direct = model2.predict(&q).unwrap();
        assert_eq!(served.prediction.class, direct.class);
    }
    engine2.shutdown();
}
