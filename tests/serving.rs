//! Integration tests for the serving subsystem, exercised through the
//! facade: (a) batched results are bit-identical to sequential
//! `predict`, (b) a mid-stream hot swap never drops or corrupts
//! in-flight requests, (c) obfuscated-query serving matches the direct
//! `Obfuscator` path, (d) one engine serves many tenants from a
//! `ShardedRegistry` — concurrent per-tenant hot swaps, cross-tenant
//! isolation, and per-tenant withdraw.

use std::sync::Arc;
use std::time::Duration;

use prive_hd::core::prelude::*;
use prive_hd::core::Hypervector;
use prive_hd::data::surrogates;
use prive_hd::serve::{ClientEdge, ModelId, ServeConfig, ServeEngine, ServeError, ShardedRegistry};

const DIM: usize = 2_048;
const SEED: u64 = 17;

/// Trains a model on an ISOLET-like surrogate and returns it with the
/// encoder (shared basis) and the raw test split.
fn trained_setup() -> (HdModel, ScalarEncoder, Vec<(Vec<f64>, usize)>) {
    let ds = surrogates::isolet(12, 6, 4);
    let encoder =
        ScalarEncoder::new(EncoderConfig::new(ds.features(), DIM).with_seed(SEED)).unwrap();
    let mut model = HdModel::new(ds.num_classes(), DIM).unwrap();
    for (x, y) in ds.train_pairs() {
        model.bundle(y, &encoder.encode(x).unwrap()).unwrap();
    }
    let test: Vec<(Vec<f64>, usize)> = ds.test_pairs().map(|(x, y)| (x.to_vec(), y)).collect();
    (model, encoder, test)
}

#[test]
fn batched_predictions_are_bit_identical_to_sequential() {
    let (model, encoder, test) = trained_setup();
    let queries: Vec<Hypervector> = test
        .iter()
        .map(|(x, _)| encoder.encode(x).unwrap())
        .collect();

    // Ground truth: plain sequential predict on the same weights.
    let sequential: Vec<Prediction> = queries.iter().map(|q| model.predict(q).unwrap()).collect();

    // The core batch API is bit-identical by construction.
    let batched = model.predict_batch(&queries).unwrap();
    assert_eq!(batched, sequential);

    // And so is the full engine path (default config: dense arithmetic),
    // even with many queries in flight at once.
    let registry = Arc::new(ShardedRegistry::with_model(model, "bitident").unwrap());
    let config = ServeConfig {
        max_batch: 16,
        max_delay: Duration::from_millis(5),
        workers: 4,
        queue_depth: 1_024,
        packed_fastpath: false,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(registry, config).unwrap();
    let pending: Vec<_> = queries
        .iter()
        .map(|q| engine.submit_default(q.clone()).unwrap())
        .collect();
    for (p, want) in pending.into_iter().zip(&sequential) {
        let served = p.wait().unwrap();
        assert_eq!(
            &served.prediction, want,
            "served result drifted from predict"
        );
        assert_eq!(served.model_version, 1);
    }
    let report = engine.shutdown();
    assert_eq!(report.completed as usize, queries.len());
    assert_eq!(report.failed, 0);
}

#[test]
fn hot_swap_mid_stream_drops_and_corrupts_nothing() {
    let (model_a, encoder, test) = trained_setup();
    // A second, deliberately different model: classes swapped by
    // retraining on permuted labels would be slow; negating the classes
    // is enough to make versions distinguishable.
    let model_b = {
        let classes: Vec<Hypervector> = model_a.classes().map(|c| -c.clone()).collect();
        HdModel::from_classes(classes).unwrap()
    };

    let queries: Vec<Hypervector> = test
        .iter()
        .cycle()
        .take(300)
        .map(|(x, _)| encoder.encode(x).unwrap())
        .collect();

    let registry = Arc::new(ShardedRegistry::with_model(model_a.clone(), "v1").unwrap());
    let config = ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(2),
        workers: 4,
        queue_depth: 2_048,
        packed_fastpath: false,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(Arc::clone(&registry), config).unwrap();

    // Client threads submit while the main thread keeps republishing.
    let mut clients = Vec::new();
    for t in 0..3 {
        let handle = engine.handle();
        let queries = queries.clone();
        clients.push(std::thread::spawn(move || {
            let mut results = Vec::new();
            for q in queries.iter().skip(t).step_by(3) {
                loop {
                    match handle.submit_default(q.clone()) {
                        Ok(p) => {
                            results.push((q.clone(), p.wait().expect("request dropped")));
                            break;
                        }
                        Err(ServeError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            }
            results
        }));
    }

    let mut published = vec![1u64];
    for i in 0..20 {
        std::thread::sleep(Duration::from_millis(1));
        let (m, label) = if i % 2 == 0 {
            (model_b.clone(), "swap-to-b")
        } else {
            (model_a.clone(), "swap-to-a")
        };
        published.push(registry.publish(&ModelId::default(), m, label).unwrap());
    }

    let mut total = 0usize;
    for c in clients {
        for (query, served) in c.join().unwrap() {
            total += 1;
            // The reported version must be one that was actually
            // published…
            assert!(
                published.contains(&served.model_version),
                "unknown version {}",
                served.model_version
            );
            // …and the prediction must be exactly what that version's
            // weights produce: versions alternate A (odd) / B (even),
            // and B is A negated.
            let reference = if served.model_version % 2 == 1 {
                model_a.predict(&query).unwrap()
            } else {
                model_b.predict(&query).unwrap()
            };
            assert_eq!(
                served.prediction, reference,
                "version {} served a corrupted result",
                served.model_version
            );
        }
    }
    assert_eq!(total, 300, "requests were dropped");
    let report = engine.shutdown();
    assert_eq!(report.completed, 300);
    assert_eq!(report.failed, 0);
}

#[test]
fn obfuscated_serving_matches_direct_obfuscator_path() {
    let (model, _encoder, test) = trained_setup();
    // Edge pipeline on the same basis seed: quantize to bipolar and
    // mask 25% of dimensions, as in the paper's Fig. 6 configuration.
    let features = test[0].0.len();
    let edge = ClientEdge::new(
        EncoderConfig::new(features, DIM).with_seed(SEED),
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(DIM / 4)
            .with_seed(11),
    )
    .unwrap();

    // Direct path: obfuscate locally, classify with plain predict.
    let direct: Vec<usize> = test
        .iter()
        .map(|(x, _)| model.predict(&edge.prepare(x).unwrap()).unwrap().class)
        .collect();
    let labels: Vec<usize> = test.iter().map(|(_, y)| *y).collect();
    let direct_accuracy =
        direct.iter().zip(&labels).filter(|(a, b)| a == b).count() as f64 / labels.len() as f64;
    assert!(
        direct_accuracy > 0.5,
        "obfuscated baseline unusable: {direct_accuracy}"
    );

    // Served path, packed fast path enabled. Masked queries contain
    // zeros (not strictly bipolar) and take the dense route; unmasked
    // bipolar queries would take the popcount route — either way the
    // served classes must match the direct path.
    let registry = Arc::new(ShardedRegistry::with_model(model, "obf").unwrap());
    let config = ServeConfig {
        packed_fastpath: true,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(registry, config).unwrap();
    let pending: Vec<_> = test
        .iter()
        .map(|(x, _)| engine.submit_default(edge.prepare(x).unwrap()).unwrap())
        .collect();
    let served: Vec<usize> = pending
        .into_iter()
        .map(|p| p.wait().unwrap().prediction.class)
        .collect();
    engine.shutdown();

    assert_eq!(
        served, direct,
        "served obfuscated classes diverged from the direct Obfuscator path"
    );

    // Also pin the packed fast path itself against unmasked bipolar
    // queries: mathematically the same classifier.
    let edge_unmasked = ClientEdge::new(
        EncoderConfig::new(features, DIM).with_seed(SEED),
        ObfuscateConfig::new(QuantScheme::Bipolar),
    )
    .unwrap();
    let (model2, _, _) = trained_setup();
    let registry2 = Arc::new(ShardedRegistry::with_model(model2.clone(), "obf2").unwrap());
    let engine2 = ServeEngine::start(
        registry2,
        ServeConfig {
            packed_fastpath: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    for (x, _) in test.iter().take(20) {
        let q = edge_unmasked.prepare(x).unwrap();
        let served = engine2.predict(q.clone()).unwrap();
        let direct = model2.predict(&q).unwrap();
        assert_eq!(served.prediction.class, direct.class);
    }
    engine2.shutdown();
}

// ---------------------------------------------------------------------
// Multi-tenant serving: one engine, many models, per-model batching.
// ---------------------------------------------------------------------

/// A 2-class model of dimension `dim` whose all-positive query resolves
/// to `positive_class` — opposite layouts make tenants distinguishable
/// by their answers alone.
fn oriented(dim: usize, positive_class: usize) -> HdModel {
    let mut model = HdModel::new(2, dim).unwrap();
    model
        .bundle(positive_class, &Hypervector::from_vec(vec![1.0; dim]))
        .unwrap();
    model
        .bundle(1 - positive_class, &Hypervector::from_vec(vec![-1.0; dim]))
        .unwrap();
    model
}

fn ones(dim: usize) -> Hypervector {
    Hypervector::from_vec(vec![1.0; dim])
}

#[test]
fn three_tenants_share_one_engine_with_per_model_metrics() {
    // Three tenants with different dimensionalities AND different class
    // layouts behind a single engine: every answer must come from the
    // submitting tenant's own weights, and the report must break the
    // counters down per model.
    let registry = Arc::new(ShardedRegistry::new());
    let tenants = [
        (ModelId::new("tenant-a"), 128usize, 0usize),
        (ModelId::new("tenant-b"), 256, 1),
        (ModelId::new("tenant-c"), 512, 0),
    ];
    for (id, dim, positive_class) in &tenants {
        registry
            .publish(id, oriented(*dim, *positive_class), id.as_str())
            .unwrap();
    }
    let config = ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(2),
        workers: 2,
        queue_depth: 1_024,
        packed_fastpath: false,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(registry, config).unwrap();

    const PER_TENANT: usize = 30;
    let pending: Vec<_> = (0..PER_TENANT * tenants.len())
        .map(|i| {
            let (id, dim, _) = &tenants[i % tenants.len()];
            (i, engine.submit(id, ones(*dim)).unwrap())
        })
        .collect();
    for (i, p) in pending {
        let (id, _, positive_class) = &tenants[i % tenants.len()];
        let served = p.wait().unwrap();
        assert_eq!(&served.model, id, "request {i} answered by wrong tenant");
        assert_eq!(
            served.prediction.class, *positive_class,
            "request {i} served by wrong tenant weights"
        );
        assert_eq!(served.model_version, 1);
    }

    let report = engine.shutdown();
    assert_eq!(report.completed as usize, PER_TENANT * tenants.len());
    assert_eq!(report.failed, 0);
    assert_eq!(report.per_model.len(), tenants.len());
    for per in &report.per_model {
        assert_eq!(per.submitted as usize, PER_TENANT, "{}", per.model);
        assert_eq!(per.completed as usize, PER_TENANT, "{}", per.model);
        assert_eq!(per.failed, 0);
        assert!(per.p50_latency <= per.p99_latency);
    }
}

#[test]
fn concurrent_per_tenant_hot_swaps_complete_on_dispatch_version() {
    // Each tenant is republished mid-traffic (alternating between its
    // class layout and the negated layout). Every in-flight request must
    // complete on a version that was actually published for ITS tenant,
    // with exactly that version's weights.
    const DIM: usize = 256;
    let registry = Arc::new(ShardedRegistry::new());
    let ids: Vec<ModelId> = (0..3)
        .map(|t| ModelId::new(format!("tenant-{t}")))
        .collect();
    for id in &ids {
        // v1 = layout 0: all-positive query → class 0 (odd versions).
        registry.publish(id, oriented(DIM, 0), "v1").unwrap();
    }
    let config = ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(2),
        workers: 4,
        queue_depth: 2_048,
        packed_fastpath: false,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(Arc::clone(&registry), config).unwrap();

    const PER_TENANT: usize = 100;
    let mut clients = Vec::new();
    for id in &ids {
        let handle = engine.handle();
        let id = id.clone();
        clients.push(std::thread::spawn(move || {
            let mut results = Vec::new();
            for _ in 0..PER_TENANT {
                loop {
                    match handle.submit(&id, ones(DIM)) {
                        Ok(p) => {
                            results.push(p.wait().expect("request dropped"));
                            break;
                        }
                        Err(ServeError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("submit failed: {e}"),
                    }
                }
            }
            results
        }));
    }

    // Concurrent publishers: each tenant swaps its own model 10 times
    // while the traffic runs. Odd versions → layout 0, even → layout 1.
    let mut publishers = Vec::new();
    for id in &ids {
        let registry = Arc::clone(&registry);
        let id = id.clone();
        publishers.push(std::thread::spawn(move || {
            let mut published = vec![1u64];
            for i in 0..10u64 {
                std::thread::sleep(Duration::from_millis(1));
                let layout = usize::from(i % 2 == 0); // v2 even → layout 1
                let v = registry
                    .publish(&id, oriented(DIM, layout), "swap")
                    .unwrap();
                published.push(v);
            }
            (id, published)
        }));
    }
    let published: Vec<(ModelId, Vec<u64>)> =
        publishers.into_iter().map(|p| p.join().unwrap()).collect();

    for (client, id) in clients.into_iter().zip(&ids) {
        let versions = &published.iter().find(|(pid, _)| pid == id).unwrap().1;
        for served in client.join().unwrap() {
            assert_eq!(&served.model, id);
            assert!(
                versions.contains(&served.model_version),
                "tenant {id} served unknown version {}",
                served.model_version
            );
            // Odd versions carry layout 0, even versions layout 1; the
            // answer must match the version the batch dispatched on.
            let want = usize::from(served.model_version % 2 == 0);
            assert_eq!(
                served.prediction.class, want,
                "tenant {id} version {} served the other version's weights",
                served.model_version
            );
        }
    }
    let report = engine.shutdown();
    assert_eq!(report.completed as usize, PER_TENANT * ids.len());
    assert_eq!(report.failed, 0);
    // Every tenant ends on version 11 after 10 swaps.
    for id in &ids {
        assert_eq!(registry.version(id), 11);
    }
}

#[test]
fn cross_tenant_isolation_bad_queries_fail_only_their_tenant() {
    const DIM: usize = 128;
    let registry = Arc::new(ShardedRegistry::new());
    let good = ModelId::new("good");
    let victim = ModelId::new("victim");
    registry
        .publish(&good, oriented(DIM, 0), "good-v1")
        .unwrap();
    registry
        .publish(&victim, oriented(DIM, 0), "victim-v1")
        .unwrap();
    let config = ServeConfig {
        max_batch: 8,
        max_delay: Duration::from_millis(2),
        workers: 2,
        queue_depth: 1_024,
        packed_fastpath: false,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(registry, config).unwrap();

    // Interleave: the victim tenant's clients send wrong-dimension
    // queries; the good tenant's clients stay well-formed.
    const N: usize = 40;
    let pending: Vec<_> = (0..2 * N)
        .map(|i| {
            if i % 2 == 0 {
                (true, engine.submit(&good, ones(DIM)).unwrap())
            } else {
                (false, engine.submit(&victim, ones(DIM / 2)).unwrap())
            }
        })
        .collect();
    for (is_good, p) in pending {
        if is_good {
            let served = p.wait().unwrap();
            assert_eq!(served.model, good);
            assert_eq!(served.prediction.class, 0);
        } else {
            assert!(matches!(p.wait().unwrap_err(), ServeError::Model(_)));
        }
    }

    let report = engine.shutdown();
    assert_eq!(report.completed as usize, N);
    assert_eq!(report.failed as usize, N);
    let good_row = report
        .per_model
        .iter()
        .find(|m| m.model == good)
        .expect("good tenant in report");
    let victim_row = report
        .per_model
        .iter()
        .find(|m| m.model == victim)
        .expect("victim tenant in report");
    assert_eq!((good_row.completed as usize, good_row.failed), (N, 0));
    assert_eq!((victim_row.completed, victim_row.failed as usize), (0, N));
}

#[test]
fn withdraw_of_one_tenant_leaves_others_serving() {
    const DIM: usize = 128;
    let registry = Arc::new(ShardedRegistry::new());
    let keep_a = ModelId::new("keep-a");
    let keep_b = ModelId::new("keep-b");
    let gone = ModelId::new("gone");
    for id in [&keep_a, &keep_b, &gone] {
        registry.publish(id, oriented(DIM, 0), id.as_str()).unwrap();
    }
    let engine = ServeEngine::start(Arc::clone(&registry), ServeConfig::default()).unwrap();

    // All three serve initially.
    for id in [&keep_a, &keep_b, &gone] {
        assert_eq!(
            engine.predict_for(id, ones(DIM)).unwrap().prediction.class,
            0
        );
    }

    let taken = registry.withdraw(&gone).expect("was live");
    assert_eq!(taken.version, 1);
    assert_eq!(registry.len(), 2);

    // The withdrawn tenant now reports NoModel; the others still serve.
    assert_eq!(
        engine.predict_for(&gone, ones(DIM)).unwrap_err(),
        ServeError::NoModel
    );
    for id in [&keep_a, &keep_b] {
        assert_eq!(
            engine.predict_for(id, ones(DIM)).unwrap().prediction.class,
            0
        );
    }

    // Republishing resumes service on the next version.
    assert_eq!(registry.publish(&gone, oriented(DIM, 1), "v2").unwrap(), 2);
    let served = engine.predict_for(&gone, ones(DIM)).unwrap();
    assert_eq!(served.model_version, 2);
    assert_eq!(served.prediction.class, 1);
    engine.shutdown();
}
