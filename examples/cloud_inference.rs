//! Cloud-hosted inference with Prive-HD's inference privacy (§III-C).
//!
//! The edge device encodes locally, 1-bit-quantizes and masks the query
//! hypervector, and offloads only that obfuscated vector. The cloud
//! model is full precision and needs no retraining or even access — yet
//! the adversary's reconstruction of the input collapses while accuracy
//! barely moves. Also shows the bandwidth saving.
//!
//! Run with: `cargo run --release --example cloud_inference`

use prive_hd::core::prelude::*;
use prive_hd::data::surrogates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 8_000;
    let dataset = surrogates::mnist(25, 10, 0);
    let encoder = ScalarEncoder::new(
        EncoderConfig::new(dataset.features(), dim)
            .with_levels(100)
            .with_seed(1),
    )?;

    // The cloud trains (or already owns) a full-precision model.
    let mut cloud_model = HdModel::new(dataset.num_classes(), dim)?;
    for (x, y) in dataset.train_pairs() {
        cloud_model.bundle(y, &encoder.encode(x)?)?;
    }

    // The edge device: encode + quantize + mask before offloading.
    let obfuscator = Obfuscator::new(
        dim,
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(dim / 2)
            .with_seed(7),
    )?;
    println!(
        "payload per query: {} bits obfuscated vs {} bits raw encoding \
         ({}x smaller)",
        obfuscator.payload_bits(),
        dim * 64,
        dim * 64 / obfuscator.payload_bits()
    );

    // Accuracy: plain vs obfuscated queries against the same model.
    let mut plain = Vec::new();
    let mut obfuscated = Vec::new();
    for (x, y) in dataset.test_pairs() {
        let h = encoder.encode(x)?;
        obfuscated.push((obfuscator.obfuscate(&h)?, y));
        plain.push((h, y));
    }
    let acc_plain = cloud_model.accuracy(&plain)?;
    let acc_obf = cloud_model.accuracy(&obfuscated)?;
    println!(
        "accuracy: {:.1}% plain vs {:.1}% obfuscated (drop {:.2}%)",
        acc_plain * 100.0,
        acc_obf * 100.0,
        (acc_plain - acc_obf) * 100.0
    );

    // The honest-but-curious host tries to reconstruct the input.
    let decoder = Decoder::new(encoder.item_memory().clone());
    let victim = &dataset.test()[0];
    let (raw_enc, _) = &plain[0];
    let (sent, _) = &obfuscated[0];
    let from_raw = decoder.decode(raw_enc)?;
    let from_sent = decoder.decode_rescaled(sent, raw_enc.l2_norm())?;
    println!(
        "adversary PSNR: {:.1} dB from the raw encoding, {:.1} dB from the \
         obfuscated query (paper: 23.6 -> 13.1 dB)",
        psnr(&victim.features, &from_raw.features_clamped())?,
        psnr(&victim.features, &from_sent.features_clamped())?
    );
    Ok(())
}
