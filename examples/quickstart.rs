//! Quickstart: train an HD classifier on a synthetic ISOLET-like task,
//! classify a test sample, then demonstrate the privacy breach Prive-HD
//! exists to fix.
//!
//! Run with: `cargo run --release --example quickstart`

use prive_hd::core::prelude::*;
use prive_hd::data::surrogates;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A dataset surrogate shaped like UCI ISOLET: 617 features,
    //    26 classes.
    let dataset = surrogates::isolet(30, 10, 0);
    println!(
        "dataset: {} ({} features, {} classes, {} train / {} test)",
        dataset.name(),
        dataset.features(),
        dataset.num_classes(),
        dataset.train().len(),
        dataset.test().len()
    );

    // 2. An encoder: 4,000-dimension hypervectors via the scalar-weight
    //    encoding of Eq. (2a).
    let dim = 4_000;
    let encoder = ScalarEncoder::new(
        EncoderConfig::new(dataset.features(), dim)
            .with_levels(100)
            .with_seed(1),
    )?;

    // 3. Training (Eq. 3): bundle each encoded input into its class.
    let mut model = HdModel::new(dataset.num_classes(), dim)?;
    for (x, y) in dataset.train_pairs() {
        model.bundle(y, &encoder.encode(x)?)?;
    }

    // 4. Inference (Eq. 4): cosine similarity against every class.
    let test: Vec<(Hypervector, usize)> = dataset
        .test_pairs()
        .map(|(x, y)| Ok((encoder.encode(x)?, y)))
        .collect::<Result<_, HdError>>()?;
    let accuracy = model.accuracy(&test)?;
    println!("test accuracy: {:.1}%", accuracy * 100.0);

    let (query, label) = &test[0];
    let prediction = model.predict(query)?;
    println!(
        "first test sample: true class {label}, predicted {} (margin {:.3})",
        prediction.class,
        prediction.margin()
    );

    // 5. The privacy breach (§III-A): anyone holding the public base
    //    hypervectors can invert the encoding and read the input back.
    let decoder = Decoder::new(encoder.item_memory().clone());
    let sample = &dataset.test()[0];
    let stolen = decoder.decode(query)?;
    let err = mse(&sample.features, &stolen.features_clamped())?;
    println!(
        "reconstruction attack on the raw query: MSE {err:.4} \
         (PSNR {:.1} dB) — HD computing leaks its inputs",
        psnr(&sample.features, &stolen.features_clamped())?
    );
    println!("run the other examples to see Prive-HD's countermeasures.");
    Ok(())
}
