//! Differentially private HD training with the full Prive-HD pipeline
//! (§III-B): encoding quantization + dimension pruning to shrink the
//! sensitivity, then calibrated Gaussian noise on the class
//! hypervectors. Also demonstrates the model-subtraction membership
//! attack the noise defeats.
//!
//! Run with: `cargo run --release --example private_training`

use prive_hd::core::prelude::*;
use prive_hd::data::surrogates;
use prive_hd::privacy::{
    MembershipAttack, PrivacyBudget, PrivateTrainer, PrivateTrainingConfig, SensitivityMode,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dataset = surrogates::face(120, 40, 0);

    println!("epsilon  sigma  delta_f  noise_std  clean%  private%");
    println!("------------------------------------------------------");
    for eps in [0.5, 1.0, 2.0, 8.0] {
        let budget = PrivacyBudget::with_paper_delta(eps)?;
        let config = PrivateTrainingConfig::new(budget)
            .with_dim(4_000)
            .with_keep_dims(2_000)
            .with_scheme(QuantScheme::Ternary)
            .with_sensitivity_mode(SensitivityMode::PerDimension)
            .with_seed(3);
        let (_model, report) = PrivateTrainer::new(config).run(&dataset)?;
        println!(
            "{eps:>7}  {:>5.2}  {:>7.1}  {:>9.2}  {:>5.1}  {:>7.1}",
            report.sigma,
            report.delta_f_analytic,
            report.noise_std,
            report.clean_accuracy * 100.0,
            report.private_accuracy * 100.0
        );
    }

    // The attack the noise is calibrated against: subtract two models
    // trained on adjacent datasets and decode the difference (§III-A).
    println!("\nmembership attack (model subtraction, Eq. 10 decode):");
    let dim = 4_000;
    let encoder = ScalarEncoder::new(
        EncoderConfig::new(dataset.features(), dim)
            .with_levels(100)
            .with_seed(3),
    )?;
    let victim = dataset.train()[0].clone();
    let rest: Vec<(Hypervector, usize)> = dataset.train()[1..]
        .iter()
        .map(|s| Ok((encoder.encode(&s.features)?, s.label)))
        .collect::<Result<_, HdError>>()?;
    let without = HdModel::train(2, dim, &rest)?;
    let mut with_samples = rest.clone();
    with_samples.push((encoder.encode(&victim.features)?, victim.label));
    let with = HdModel::train(2, dim, &with_samples)?;

    let attack = MembershipAttack::new(&encoder);
    let corr = attack.run(&with, &without, victim.label, &victim.features)?;
    println!("  without noise: feature correlation {corr:.3} (the victim leaks)");

    // Noise both models with the paper's budget and retry.
    use prive_hd::privacy::{GaussianMechanism, Mechanism, Sensitivity};
    let budget = PrivacyBudget::with_paper_delta(1.0)?;
    let delta_f = Sensitivity::new(dataset.features(), dim).l2_full();
    let mut mech = GaussianMechanism::new(budget, 5);
    let mut with_noisy = with.clone();
    let mut without_noisy = without.clone();
    with_noisy.add_class_noise(&mech.noise_for_classes(2, dim, delta_f)?)?;
    without_noisy.add_class_noise(&mech.noise_for_classes(2, dim, delta_f)?)?;
    let corr_noisy = attack.run(&with_noisy, &without_noisy, victim.label, &victim.features)?;
    println!("  with (eps=1) noise: correlation {corr_noisy:.3} (attack defeated)");
    Ok(())
}
