//! The simulated FPGA encoder (§III-D): LUT-6 majority first stage,
//! resource accounting (Eq. 15) and the platform performance model
//! behind Table I.
//!
//! Run with: `cargo run --release --example hardware_pipeline`

use prive_hd::core::{EncoderConfig, LevelEncoder};
use prive_hd::hw::perf::{Platform, PlatformKind, Workload};
use prive_hd::hw::{HardwareEncoder, MajorityCircuit, ResourceModel, SaturatedAdderTree};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Bit-exact functional simulation of the bipolar encoder.
    let features = 64;
    let encoder = LevelEncoder::new(
        EncoderConfig::new(features, 2_048)
            .with_levels(16)
            .with_seed(9),
    )?;
    let hw = HardwareEncoder::new(encoder);
    let input: Vec<f64> = (0..features).map(|i| (i % 16) as f64 / 15.0).collect();
    let agreement = hw.agreement(&input)?;
    println!(
        "one-stage majority circuit agrees with the software encoder on \
         {:.1}% of dimensions (flips concentrate on near-tie dimensions, \
         so end-to-end accuracy loss stays <2%)",
        agreement * 100.0
    );
    let exact = HardwareEncoder::with_circuit(hw.encoder().clone(), MajorityCircuit::exact());
    println!(
        "exact adder-tree circuit agreement: {:.1}%",
        exact.agreement(&input)? * 100.0
    );

    // 2. Resource accounting (Eq. 15).
    let m = ResourceModel::new(617);
    println!(
        "\nLUT-6 per dimension at d_iv = 617: exact {:.0} vs approximate \
         {:.0} ({:.1}% saving; paper: 70.8%)",
        m.bipolar_exact(),
        m.bipolar_approx(),
        m.bipolar_saving() * 100.0
    );
    println!(
        "ternary: exact {:.0} vs saturated {:.0} ({:.1}% saving)",
        m.ternary_exact(),
        m.ternary_saturated(),
        m.ternary_saving() * 100.0
    );

    // 3. The saturated ternary adder tree of Fig. 7(b).
    let tree = SaturatedAdderTree::new();
    let values: Vec<i32> = (0..96).map(|i| [1, 0, 1, -1][i % 4]).collect();
    let (approx, exact_sum) = tree.sum_with_reference(&values);
    println!(
        "\nsaturated 3-bit tree: approx sum {approx} vs exact {exact_sum} \
         over {} biased-ternary values",
        values.len()
    );

    // 4. Platform models behind Table I.
    println!("\nISOLET inference (617 features x 10k dims):");
    let w = Workload::new("ISOLET", 617, 10_000);
    for kind in PlatformKind::ALL {
        let p = Platform::paper(kind);
        println!(
            "  {:<16} {:>12.0} inputs/s  {:>10.2e} J/input",
            p.kind.label(),
            p.throughput(&w),
            p.energy_per_input(&w)
        );
    }
    Ok(())
}
