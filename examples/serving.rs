//! End-to-end inference serving: edge clients obfuscate queries and a
//! cloud-side engine micro-batches them through a worker pool, with a
//! model hot swap happening mid-traffic.
//!
//! Demonstrates the full `privehd-serve` subsystem: the client edge
//! (encode + obfuscate), the versioned model registry, the adaptive
//! micro-batcher, and the serving report (throughput, latency
//! quantiles, batch-size distribution, per-stage latency
//! decomposition), then a multi-tenant engine
//! serving three models from one `ShardedRegistry` with per-model
//! routing and metrics. Finishes with a single-query vs micro-batched
//! throughput comparison.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::Arc;
use std::time::{Duration, Instant};

use prive_hd::core::prelude::*;
use prive_hd::core::BipolarHv;
use prive_hd::data::surrogates;
use prive_hd::serve::wire::{WireClient, WireConfig, WireServer};
use prive_hd::serve::{ClientEdge, ModelId, ServeConfig, ServeEngine, ServeError, ShardedRegistry};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 4_000;
    let dataset = surrogates::isolet(15, 20, 2);

    // Edge side: clients share the public basis (seed) and obfuscate
    // every query — the host below never sees a raw encoding.
    let edge = ClientEdge::new(
        EncoderConfig::new(dataset.features(), dim).with_seed(3),
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(dim / 4)
            .with_seed(9),
    )?;
    println!(
        "edge payload: {} bits/query (raw encoding would be {} bits)",
        edge.payload_bits(),
        dim * 64
    );

    // Host side: train v1 on the same basis and publish it.
    let mut model = HdModel::new(dataset.num_classes(), dim)?;
    for (x, y) in dataset.train_pairs() {
        model.bundle(y, &edge.encoder().encode(x)?)?;
    }
    let registry = Arc::new(ShardedRegistry::with_model(model.clone(), "isolet-v1")?);

    let engine = ServeEngine::start(
        Arc::clone(&registry),
        ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_micros(500),
            packed_fastpath: true,
            ..ServeConfig::default()
        },
    )?;

    // Traffic: four client threads, each streaming the test split.
    let inputs: Vec<Vec<f64>> = dataset.test_pairs().map(|(x, _)| x.to_vec()).collect();
    let labels: Vec<usize> = dataset.test_pairs().map(|(_, y)| y).collect();
    let mut clients = Vec::new();
    for t in 0..4 {
        let handle = engine.handle();
        let edge = edge.clone();
        let inputs = inputs.clone();
        clients.push(std::thread::spawn(move || {
            let mut classes = Vec::new();
            for x in &inputs {
                let query = edge.prepare(x).expect("edge preparation");
                let served = loop {
                    match handle.submit_default(query.clone()) {
                        Ok(pending) => break pending.wait().expect("response"),
                        Err(ServeError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("submit failed: {e}"),
                    }
                };
                classes.push(served.prediction.class);
            }
            (t, classes)
        }));
    }

    // Mid-traffic hot swap: retrain and publish v2 without pausing.
    std::thread::sleep(Duration::from_millis(5));
    let mut retrained = model;
    let train_enc: Vec<(Hypervector, usize)> = dataset
        .train_pairs()
        .map(|(x, y)| Ok((edge.encoder().encode(x)?, y)))
        .collect::<Result<_, HdError>>()?;
    retrained.retrain(&train_enc, &RetrainConfig::default())?;
    let v2 = registry.publish(&ModelId::default(), retrained, "isolet-v2-retrained")?;
    println!("hot-swapped to version {v2} while traffic was in flight");

    let mut correct = 0usize;
    let mut total = 0usize;
    for c in clients {
        let (_, classes) = c.join().expect("client thread");
        for (got, want) in classes.iter().zip(&labels) {
            total += 1;
            if got == want {
                correct += 1;
            }
        }
    }
    println!(
        "served accuracy: {:.1}% over {} obfuscated queries",
        100.0 * correct as f64 / total as f64,
        total
    );

    let report = engine.shutdown();
    println!("\n== serving report ==\n{report}");
    print!("batch sizes: ");
    for (size, count) in &report.batch_size_histogram {
        print!("{size}x{count} ");
    }
    println!();

    // Where the time went: the engine stamps every request's pipeline
    // stages into per-stage histograms (see docs/OBSERVABILITY.md).
    println!("\n== stage decomposition ==");
    println!(
        "{:>18}  {:>8}  {:>10}  {:>10}  {:>10}",
        "stage", "count", "p50", "p95", "p99"
    );
    for row in &report.stages {
        println!(
            "{:>18}  {:>8}  {:>10}  {:>10}  {:>10}",
            row.stage.to_string(),
            row.count,
            format!("{:.1?}", row.p50),
            format!("{:.1?}", row.p95),
            format!("{:.1?}", row.p99),
        );
    }

    // Multi-tenant serving: three models (three tenants) behind ONE
    // engine, each hot-swappable and withdrawable on its own. Requests
    // carry a ModelId; the batcher accumulates per model, so a batch
    // never mixes tenants and each resolves its own registry snapshot.
    println!("\n== multi-tenant serving ==");
    let sharded = Arc::new(ShardedRegistry::new());
    let tenants: Vec<ModelId> = (0..3)
        .map(|t| ModelId::new(format!("tenant-{t}")))
        .collect();
    // One edge pipeline per tenant, each on its own basis seed —
    // separate customers would never share an encoder basis in the
    // paper's threat model. The same edge trains and serves its tenant.
    let tenant_edges: Vec<ClientEdge> = (0..tenants.len())
        .map(|t| {
            ClientEdge::new(
                EncoderConfig::new(dataset.features(), dim).with_seed(100 + t as u64),
                ObfuscateConfig::new(QuantScheme::Bipolar).with_seed(9),
            )
        })
        .collect::<Result<_, _>>()?;
    for ((t, id), tenant_edge) in tenants.iter().enumerate().zip(&tenant_edges) {
        let mut m = HdModel::new(dataset.num_classes(), dim)?;
        for (x, y) in dataset.train_pairs() {
            m.bundle(y, &tenant_edge.encoder().encode(x)?)?;
        }
        let version = sharded.publish(id, m, &format!("{id}-v1"))?;
        println!("published {id} v{version} (seed {})", 100 + t);
    }

    let mt_engine = ServeEngine::start(
        Arc::clone(&sharded),
        ServeConfig {
            max_batch: 32,
            max_delay: Duration::from_micros(500),
            ..ServeConfig::default()
        },
    )?;
    // Round-robin traffic across tenants, each on its own basis.
    let mut mt_pending = Vec::new();
    for (i, x) in inputs.iter().enumerate() {
        let t = i % tenants.len();
        let query = tenant_edges[t].prepare(x)?;
        mt_pending.push(mt_engine.submit(&tenants[t], query)?);
    }
    for p in mt_pending {
        p.wait()?;
    }
    // The wire front-end: the same multi-tenant engine behind a real
    // TCP socket. Clients frame (ModelId, obfuscated query) requests —
    // packed bipolar payloads cost 1 bit per dimension on the wire —
    // and tenant-1 also registers a server-side edge so raw-features
    // frames run encode ∘ obfuscate on the host.
    println!("\n== wire front-end (loopback TCP) ==");
    let server = WireServer::start(
        "127.0.0.1:0",
        mt_engine.handle(),
        WireConfig::default().with_edge(tenants[1].clone(), tenant_edges[1].clone()),
    )?;
    println!("listening on {}", server.local_addr());
    let mut wire_client = WireClient::connect(server.local_addr())?;
    // Packed frame: the device obfuscates, bit-packs, ships ±1 signs.
    let prepared = tenant_edges[0].prepare(&inputs[0])?;
    let packed = BipolarHv::from_signs(prepared.as_slice());
    let served = wire_client.call_packed(&tenants[0], &packed)?;
    println!(
        "packed frame → {}: class {} (batch {}, {:?} server-side)",
        served.model, served.class, served.batch_size, served.latency
    );
    // Raw-features frame: the server-side edge prepares the query.
    let served = wire_client.call_raw(&tenants[1], &inputs[1])?;
    println!(
        "raw frame    → {}: class {} (v{})",
        served.model, served.class, served.model_version
    );
    drop(wire_client);
    println!("{}", server.shutdown());

    // One tenant is withdrawn mid-flight in real operations; here after
    // the burst, to show the others keep serving.
    sharded.withdraw(&tenants[2]);
    match mt_engine.predict_for(&tenants[2], tenant_edges[2].prepare(&inputs[0])?) {
        Err(ServeError::NoModel) => println!("{} withdrawn: NoModel as expected", tenants[2]),
        other => println!("unexpected post-withdraw outcome: {other:?}"),
    }
    let served = mt_engine.predict_for(&tenants[0], tenant_edges[0].prepare(&inputs[0])?)?;
    println!(
        "{} still serving (class {} from v{})",
        tenants[0], served.prediction.class, served.model_version
    );
    let mt_report = mt_engine.shutdown();
    println!("{mt_report}");

    // Throughput comparison: one-at-a-time submission vs micro-batching.
    let queries: Vec<Hypervector> = inputs
        .iter()
        .map(|x| edge.prepare(x))
        .collect::<Result<_, _>>()?;
    let serve_model = registry.get(&ModelId::default()).expect("model published");

    let start = Instant::now();
    for q in &queries {
        serve_model.model().predict(q)?;
    }
    let sequential = start.elapsed();

    let start = Instant::now();
    serve_model.model().predict_batch(&queries)?;
    let batched = start.elapsed();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nsingle-query: {:.0} q/s  |  micro-batched: {:.0} q/s  ({:.1}x on {cores} core(s); \
         the batched path scales with cores)",
        queries.len() as f64 / sequential.as_secs_f64(),
        queries.len() as f64 / batched.as_secs_f64(),
        sequential.as_secs_f64() / batched.as_secs_f64()
    );
    Ok(())
}
