//! End-to-end inference serving: edge clients obfuscate queries and a
//! cloud-side engine micro-batches them through a worker pool, with a
//! model hot swap happening mid-traffic.
//!
//! Demonstrates the full `privehd-serve` subsystem: the client edge
//! (encode + obfuscate), the versioned model registry, the adaptive
//! micro-batcher, and the serving report (throughput, latency
//! quantiles, batch-size distribution). Finishes with a single-query vs
//! micro-batched throughput comparison.
//!
//! Run with: `cargo run --release --example serving`

use std::sync::Arc;
use std::time::{Duration, Instant};

use prive_hd::core::prelude::*;
use prive_hd::data::surrogates;
use prive_hd::serve::{ClientEdge, ModelRegistry, ServeConfig, ServeEngine, ServeError};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dim = 4_000;
    let dataset = surrogates::isolet(15, 20, 2);

    // Edge side: clients share the public basis (seed) and obfuscate
    // every query — the host below never sees a raw encoding.
    let edge = ClientEdge::new(
        EncoderConfig::new(dataset.features(), dim).with_seed(3),
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(dim / 4)
            .with_seed(9),
    )?;
    println!(
        "edge payload: {} bits/query (raw encoding would be {} bits)",
        edge.payload_bits(),
        dim * 64
    );

    // Host side: train v1 on the same basis and publish it.
    let mut model = HdModel::new(dataset.num_classes(), dim)?;
    for (x, y) in dataset.train_pairs() {
        model.bundle(y, &edge.encoder().encode(x)?)?;
    }
    let registry = Arc::new(ModelRegistry::with_model(model.clone(), "isolet-v1")?);

    let engine = ServeEngine::start(
        Arc::clone(&registry),
        ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_micros(500),
            packed_fastpath: true,
            ..ServeConfig::default()
        },
    )?;

    // Traffic: four client threads, each streaming the test split.
    let inputs: Vec<Vec<f64>> = dataset.test_pairs().map(|(x, _)| x.to_vec()).collect();
    let labels: Vec<usize> = dataset.test_pairs().map(|(_, y)| y).collect();
    let mut clients = Vec::new();
    for t in 0..4 {
        let handle = engine.handle();
        let edge = edge.clone();
        let inputs = inputs.clone();
        clients.push(std::thread::spawn(move || {
            let mut classes = Vec::new();
            for x in &inputs {
                let query = edge.prepare(x).expect("edge preparation");
                let served = loop {
                    match handle.submit(query.clone()) {
                        Ok(pending) => break pending.wait().expect("response"),
                        Err(ServeError::QueueFull) => std::thread::yield_now(),
                        Err(e) => panic!("submit failed: {e}"),
                    }
                };
                classes.push(served.prediction.class);
            }
            (t, classes)
        }));
    }

    // Mid-traffic hot swap: retrain and publish v2 without pausing.
    std::thread::sleep(Duration::from_millis(5));
    let mut retrained = model;
    let train_enc: Vec<(Hypervector, usize)> = dataset
        .train_pairs()
        .map(|(x, y)| Ok((edge.encoder().encode(x)?, y)))
        .collect::<Result<_, HdError>>()?;
    retrained.retrain(&train_enc, &RetrainConfig::default())?;
    let v2 = registry.publish(retrained, "isolet-v2-retrained")?;
    println!("hot-swapped to version {v2} while traffic was in flight");

    let mut correct = 0usize;
    let mut total = 0usize;
    for c in clients {
        let (_, classes) = c.join().expect("client thread");
        for (got, want) in classes.iter().zip(&labels) {
            total += 1;
            if got == want {
                correct += 1;
            }
        }
    }
    println!(
        "served accuracy: {:.1}% over {} obfuscated queries",
        100.0 * correct as f64 / total as f64,
        total
    );

    let report = engine.shutdown();
    println!("\n== serving report ==\n{report}");
    print!("batch sizes: ");
    for (size, count) in &report.batch_size_histogram {
        print!("{size}x{count} ");
    }
    println!();

    // Throughput comparison: one-at-a-time submission vs micro-batching.
    let queries: Vec<Hypervector> = inputs
        .iter()
        .map(|x| edge.prepare(x))
        .collect::<Result<_, _>>()?;
    let serve_model = registry.current().expect("model published");

    let start = Instant::now();
    for q in &queries {
        serve_model.model().predict(q)?;
    }
    let sequential = start.elapsed();

    let start = Instant::now();
    serve_model.model().predict_batch(&queries)?;
    let batched = start.elapsed();

    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "\nsingle-query: {:.0} q/s  |  micro-batched: {:.0} q/s  ({:.1}x on {cores} core(s); \
         the batched path scales with cores)",
        queries.len() as f64 / sequential.as_secs_f64(),
        queries.len() as f64 / batched.as_secs_f64(),
        sequential.as_secs_f64() / batched.as_secs_f64()
    );
    Ok(())
}
