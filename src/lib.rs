//! # prive-hd
//!
//! Facade crate for the Prive-HD reproduction (*"Prive-HD:
//! Privacy-Preserved Hyperdimensional Computing"*, Khaleghi, Imani,
//! Rosing — DAC 2020): privacy-preserving training and inference for
//! hyperdimensional (HD) computing.
//!
//! This crate re-exports the five workspace crates:
//!
//! * [`privehd_core`] — HD substrate (hypervectors, encoders,
//!   models) and the Prive-HD algorithms (quantization, pruning, the
//!   reconstruction attack, query obfuscation).
//! * [`privehd_privacy`] — differential-privacy mechanisms,
//!   sensitivity analysis and the private training pipeline.
//! * [`privehd_data`] — synthetic surrogates for the paper's
//!   ISOLET / FACE / MNIST benchmarks.
//! * [`privehd_hw`] — bit-exact simulation of the FPGA encoder
//!   (LUT-6 majority, saturated adder trees) and platform performance
//!   models.
//! * [`privehd_serve`] — concurrent batched inference serving: a
//!   versioned hot-swappable model registry (single-model, or sharded
//!   multi-tenant with per-model batch routing), an adaptive
//!   micro-batching queue with a worker pool, the edge-side
//!   encode-and-obfuscate client pipeline, and serving metrics
//!   (throughput, latency quantiles, batch-size distribution, global
//!   and per model).
//!
//! ## Quickstart
//!
//! ```
//! use prive_hd::core::prelude::*;
//! use prive_hd::data::surrogates;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // A small ISOLET-like task and a 2,048-dimension HD model.
//! let ds = surrogates::isolet(10, 4, 0);
//! let encoder = ScalarEncoder::new(
//!     EncoderConfig::new(ds.features(), 2_048).with_seed(1),
//! )?;
//! let mut model = HdModel::new(ds.num_classes(), 2_048)?;
//! for (x, y) in ds.train_pairs() {
//!     model.bundle(y, &encoder.encode(x)?)?;
//! }
//! let test: Vec<_> = ds
//!     .test_pairs()
//!     .map(|(x, y)| Ok((encoder.encode(x)?, y)))
//!     .collect::<Result<_, HdError>>()?;
//! let acc = model.accuracy(&test)?;
//! assert!(acc > 0.5);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use privehd_core as core;
pub use privehd_data as data;
pub use privehd_hw as hw;
pub use privehd_privacy as privacy;
pub use privehd_serve as serve;
