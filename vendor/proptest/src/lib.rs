//! Offline vendor stub of the `proptest` subset this workspace's
//! property tests use: the [`proptest!`] macro, range / `any` /
//! `collection::vec` strategies, `prop_map`, and the
//! `prop_assert!`/`prop_assert_eq!`/`prop_assume!` assertion macros.
//!
//! Semantics: each test body runs for [`ProptestConfig::cases`]
//! randomly-generated cases from a deterministic per-test seed.
//! Rejected cases (failed `prop_assume!`) are retried without counting
//! toward the case budget. **No shrinking** is performed — a failing
//! case reports the assertion message only — which is the main
//! difference from the real `proptest`.

use rand::rngs::StdRng;
use rand::{Rng, SampleRange, SeedableRng, Standard};

/// Runner configuration (stub of `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Why a generated case did not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// A `prop_assume!` precondition failed; the case is retried.
    Reject,
    /// A `prop_assert!` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failure variant.
    pub fn fail(message: String) -> Self {
        TestCaseError::Fail(message)
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut StdRng) -> f64 {
        rng.gen_range(self.clone())
    }
}

impl Strategy for core::ops::Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut StdRng) -> f32 {
        rng.gen_range(self.clone())
    }
}

/// Strategy for the full domain of a type (stub of `proptest::arbitrary`).
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Uniform strategy over every value of `T`.
pub fn any<T: Standard>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

impl<T: Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen()
    }
}

/// Constant strategy (stub of `proptest::strategy::Just`).
#[derive(Debug, Clone, Copy)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (stub of `proptest::collection`).
pub mod collection {
    use super::{SampleRange, Strategy};
    use rand::rngs::StdRng;

    /// Length specification for [`vec()`]: a fixed size or a half-open
    /// range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of `elem` with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = (self.size.lo..self.size.hi).sample_single(rng);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Drives one property: runs `f` until `config.cases` cases succeed,
/// retrying rejected cases and panicking on the first failure.
///
/// # Panics
///
/// Panics when a case fails or when the rejection rate is so high that
/// the case budget cannot be met.
pub fn run_property<F>(config: &ProptestConfig, name: &str, mut f: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    // Deterministic per-test seed so failures reproduce across runs.
    let seed = name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3)
    });
    let mut rng = StdRng::seed_from_u64(seed);
    let mut passed = 0u32;
    let mut rejected = 0u32;
    while passed < config.cases {
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= config.cases.saturating_mul(32).max(1_024),
                    "property '{name}': too many rejected cases ({rejected}) \
                     for {} required",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property '{name}' failed after {passed} passing cases: {msg}")
            }
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    /// Alias letting `prop::collection::vec` resolve, as in real proptest.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property(&config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), __proptest_rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// `assert!` that fails the current generated case instead of panicking
/// directly (so the runner can report the case context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `assert_eq!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
}

/// `assert_ne!` counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
}

/// Skips the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u64..100, y in -1i32..=1, f in 0.25f64..0.75) {
            prop_assert!(x < 100);
            prop_assert!((-1..=1).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vec_sizes_follow_spec(v in prop::collection::vec(any::<bool>(), 3..7), w in prop::collection::vec(0u8..10, 4)) {
            prop_assert!((3..7).contains(&v.len()));
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_rejects_without_failing(a in 0u32..10) {
            prop_assume!(a % 2 == 0);
            prop_assert_eq!(a % 2, 0);
        }

        #[test]
        fn prop_map_applies(s in (1usize..5).prop_map(|n| "x".repeat(n))) {
            prop_assert!((1..5).contains(&s.len()));
            prop_assert_ne!(s.len(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed after")]
    fn failing_property_panics() {
        crate::run_property(&ProptestConfig::with_cases(4), "always_fails", |_rng| {
            Err(TestCaseError::fail("boom".to_string()))
        });
    }
}
