//! Offline vendor stub of `serde_derive`.
//!
//! This workspace builds in an environment with no access to crates.io,
//! so the real `serde` stack cannot be fetched. The codebase only uses
//! `#[derive(Serialize, Deserialize)]` as an API affordance (no
//! serialization happens in-tree), so these derives accept the same
//! syntax — including `#[serde(...)]` helper attributes — and expand to
//! nothing. Swap in the real `serde`/`serde_derive` by replacing the
//! `vendor/` path dependencies when the registry is reachable.

use proc_macro::TokenStream;

/// No-op stand-in for `serde_derive::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `serde_derive::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
