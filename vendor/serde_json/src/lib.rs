//! Offline vendor stub of the `serde_json` subset this workspace uses:
//! the [`json!`] macro building a [`Value`] whose `Display` renders
//! compact JSON. The bench binaries use it to emit one machine-readable
//! record per data point; no parsing or trait-driven serialization is
//! needed in-tree.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer number.
    Int(i64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

/// Conversion into a [`Value`] by reference (the stub's stand-in for
/// `Serialize`; `json!` applies it to every interpolated expression).
pub trait ToJson {
    /// Converts `self` to a JSON value.
    fn to_json(&self) -> Value;
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

impl ToJson for f64 {
    fn to_json(&self) -> Value {
        Value::Float(*self)
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}

impl_to_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

fn escape_into(out: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    write!(out, "\"")?;
    for c in s.chars() {
        match c {
            '"' => write!(out, "\\\"")?,
            '\\' => write!(out, "\\\\")?,
            '\n' => write!(out, "\\n")?,
            '\r' => write!(out, "\\r")?,
            '\t' => write!(out, "\\t")?,
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => write!(out, "{c}")?,
        }
    }
    write!(out, "\"")
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) if x.is_finite() => write!(f, "{x}"),
            Value::Float(_) => write!(f, "null"),
            Value::String(s) => escape_into(f, s),
            Value::Array(items) => {
                write!(f, "[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "]")
            }
            Value::Object(fields) => {
                write!(f, "{{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    escape_into(f, k)?;
                    write!(f, ":{v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

/// Builds a [`Value`] from JSON-looking syntax. Supports the object,
/// array, `null` and bare-expression forms used in this workspace.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (($key).to_string(), $crate::ToJson::to_json(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

#[cfg(test)]
mod tests {

    #[test]
    fn object_renders_in_insertion_order() {
        let series = String::from("bipolar");
        let v = json!({
            "figure": "fig5a",
            "series": series,
            "x": 1_000usize,
            "y": 93.5,
        });
        assert_eq!(
            v.to_string(),
            r#"{"figure":"fig5a","series":"bipolar","x":1000,"y":93.5}"#
        );
        // `json!` borrows: `series` is still usable.
        assert_eq!(series, "bipolar");
    }

    #[test]
    fn strings_are_escaped() {
        let v = json!({ "k": "a\"b\\c\nd" });
        assert_eq!(v.to_string(), r#"{"k":"a\"b\\c\nd"}"#);
    }

    #[test]
    fn arrays_and_null() {
        let v = json!([1, 2.5, null]);
        assert_eq!(v.to_string(), "[1,2.5,null]");
    }
}
