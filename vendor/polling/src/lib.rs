//! Offline vendor stub: a minimal subset of the `polling` 2.x API.
//!
//! This is a level-triggered epoll facade for Linux with an eventfd
//! waker, just enough surface for a multi-reactor poll loop:
//!
//! - [`Poller::new`] creates an epoll instance plus an internal
//!   eventfd registered under a reserved key.
//! - [`Poller::add`] / [`Poller::modify`] / [`Poller::delete`] manage
//!   interest for any [`AsRawFd`] source, keyed by a caller-chosen
//!   `usize`.
//! - [`Poller::wait`] blocks until readiness events, a timeout, or a
//!   [`Poller::notify`] from another thread.
//!
//! Everything is **level-triggered**: an event keeps firing while the
//! condition holds, so callers must drain sockets (or drop interest)
//! to avoid spinning. There are no timers, no edge-triggered mode and
//! no non-Linux backends — the real `polling` crate has all three, but
//! this repo only needs the epoll path and must build offline.
//!
//! FFI is declared directly against the libc symbols that `std`
//! already links; no external crate is required.

#![deny(missing_docs)]

#[cfg(not(target_os = "linux"))]
compile_error!("the vendored `polling` stub only supports Linux (epoll)");

use std::io;
use std::os::raw::{c_int, c_uint, c_void};
use std::os::unix::io::{AsRawFd, RawFd};
use std::time::Duration;

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLPRI: u32 = 0x002;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// Key value reserved for the internal notify eventfd. [`Poller::add`]
/// rejects it so user events can never alias the waker.
const NOTIFY_KEY: u64 = u64::MAX;

/// Most events decoded per `epoll_wait` call. Level-triggered epoll
/// re-reports anything still ready on the next call, so a small fixed
/// buffer loses nothing.
const MAX_EVENTS: usize = 256;

/// The kernel ABI struct for epoll. On x86-64 the kernel declares it
/// packed; other architectures use natural alignment.
#[cfg(target_arch = "x86_64")]
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// The kernel ABI struct for epoll (naturally aligned variant).
#[cfg(not(target_arch = "x86_64"))]
#[repr(C)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    fn close(fd: c_int) -> c_int;
}

/// Converts a `-1` libc return into the current `errno` as an error.
fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

/// Interest in (or readiness of) a single source, identified by `key`.
///
/// As interest (passed to [`Poller::add`] / [`Poller::modify`]):
/// `readable` / `writable` select which conditions wake the poller.
/// As readiness (returned by [`Poller::wait`]): which conditions hold
/// now. Error and hang-up conditions are reported as both readable and
/// writable so callers discover them through their next I/O attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Caller-chosen identifier for the source (`usize::MAX` is
    /// reserved for the internal waker).
    pub key: usize,
    /// Interest in / readiness for reading (includes peer hang-up).
    pub readable: bool,
    /// Interest in / readiness for writing.
    pub writable: bool,
}

impl Event {
    /// Interest in read readiness only.
    pub fn readable(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: false,
        }
    }

    /// Interest in write readiness only.
    pub fn writable(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: true,
        }
    }

    /// Interest in both read and write readiness.
    pub fn all(key: usize) -> Self {
        Event {
            key,
            readable: true,
            writable: true,
        }
    }

    /// No interest — the source stays registered but reports nothing
    /// (error/hang-up conditions are still delivered by the kernel).
    pub fn none(key: usize) -> Self {
        Event {
            key,
            readable: false,
            writable: false,
        }
    }

    /// The epoll event mask for this interest.
    fn mask(self) -> u32 {
        let mut m = 0;
        if self.readable {
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if self.writable {
            m |= EPOLLOUT;
        }
        m
    }
}

/// A level-triggered epoll instance with an eventfd waker.
///
/// All methods take `&self`; the kernel serialises concurrent epoll
/// operations, so a `Poller` can be shared across threads (one thread
/// in [`Poller::wait`], others calling [`Poller::notify`] or interest
/// methods).
#[derive(Debug)]
pub struct Poller {
    epfd: RawFd,
    notify_fd: RawFd,
}

// SAFETY: the struct only holds raw file descriptors (plain ints);
// epoll_ctl/epoll_wait/read/write on them are thread-safe kernel
// calls, so sharing or moving a Poller across threads is sound.
unsafe impl Send for Poller {}
// SAFETY: see the Send impl above — all methods take &self and the
// kernel serialises concurrent epoll/eventfd operations.
unsafe impl Sync for Poller {}

impl Poller {
    /// Creates a new epoll instance and registers the internal waker.
    pub fn new() -> io::Result<Poller> {
        // SAFETY: epoll_create1 takes no pointers; the flag is valid.
        let epfd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: eventfd takes no pointers; the flags are valid.
        let notify_fd = match cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) }) {
            Ok(fd) => fd,
            Err(e) => {
                // SAFETY: epfd was just returned by epoll_create1 and
                // has not been closed.
                unsafe { close(epfd) };
                return Err(e);
            }
        };
        let poller = Poller { epfd, notify_fd };
        poller.ctl(EPOLL_CTL_ADD, notify_fd, EPOLLIN, NOTIFY_KEY)?;
        Ok(poller)
    }

    /// Registers `source` with the given interest. Fails with
    /// `InvalidInput` if `interest.key` is the reserved waker key.
    pub fn add(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key as u64 == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "event key usize::MAX is reserved for the notify waker",
            ));
        }
        self.ctl(
            EPOLL_CTL_ADD,
            source.as_raw_fd(),
            interest.mask(),
            interest.key as u64,
        )
    }

    /// Changes the interest set of an already-registered `source`.
    pub fn modify(&self, source: &impl AsRawFd, interest: Event) -> io::Result<()> {
        if interest.key as u64 == NOTIFY_KEY {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "event key usize::MAX is reserved for the notify waker",
            ));
        }
        self.ctl(
            EPOLL_CTL_MOD,
            source.as_raw_fd(),
            interest.mask(),
            interest.key as u64,
        )
    }

    /// Deregisters `source`. Must be called before the fd is closed;
    /// errors from already-closed fds are reported, not hidden.
    pub fn delete(&self, source: &impl AsRawFd) -> io::Result<()> {
        self.ctl(EPOLL_CTL_DEL, source.as_raw_fd(), 0, 0)
    }

    /// Blocks until at least one event is ready, `timeout` elapses
    /// (`None` blocks indefinitely), or another thread calls
    /// [`Poller::notify`]. Clears `events` first; returns the number
    /// of events appended. Wakeups from `notify` drain the eventfd and
    /// are *not* reported as events — a return of `Ok(0)` may mean
    /// either timeout or notification.
    pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<usize> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            None => -1,
            Some(t) => {
                // Round sub-millisecond timeouts up so `Some(small)`
                // cannot degenerate into a busy loop.
                let ms = t.as_millis();
                if ms == 0 && !t.is_zero() {
                    1
                } else {
                    ms.min(c_int::MAX as u128) as c_int
                }
            }
        };
        let mut buf = [EpollEvent { events: 0, data: 0 }; MAX_EVENTS];
        let n = loop {
            // SAFETY: buf is a valid mutable array of MAX_EVENTS
            // EpollEvent entries and outlives the call; epfd is open.
            let r =
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), MAX_EVENTS as c_int, timeout_ms) };
            if r >= 0 {
                break r as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
            // EINTR: retry. The original deadline is not re-armed,
            // which at worst stretches the timeout — acceptable for a
            // poll loop that re-derives deadlines every iteration.
        };
        for ev in buf.iter().take(n) {
            // Copy out of the (possibly packed) ABI struct before use.
            let data = ev.data;
            let mask = ev.events;
            if data == NOTIFY_KEY {
                self.drain_notify();
                continue;
            }
            events.push(Event {
                key: data as usize,
                readable: mask & (EPOLLIN | EPOLLRDHUP | EPOLLPRI | EPOLLERR | EPOLLHUP) != 0,
                writable: mask & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(events.len())
    }

    /// Wakes up one pending or the next [`Poller::wait`] call.
    /// Multiple notifications before a wait coalesce into one wakeup.
    pub fn notify(&self) -> io::Result<()> {
        let one: u64 = 1;
        // SAFETY: notify_fd is an open eventfd and the buffer is a
        // valid 8-byte value, the size eventfd writes require.
        let r = unsafe { write(self.notify_fd, (&one as *const u64).cast::<c_void>(), 8) };
        if r < 0 {
            let err = io::Error::last_os_error();
            // EAGAIN means the counter is saturated — a wakeup is
            // already guaranteed, so the notification is delivered.
            if err.kind() != io::ErrorKind::WouldBlock {
                return Err(err);
            }
        }
        Ok(())
    }

    /// Resets the eventfd counter after a notify wakeup.
    fn drain_notify(&self) {
        let mut buf: u64 = 0;
        // SAFETY: notify_fd is an open nonblocking eventfd and the
        // buffer is a valid 8-byte destination. A failed read (EAGAIN
        // race with another drain) leaves the counter for the next
        // wakeup, which is harmless.
        let _ = unsafe { read(self.notify_fd, (&mut buf as *mut u64).cast::<c_void>(), 8) };
    }

    /// Shared epoll_ctl wrapper.
    fn ctl(&self, op: c_int, fd: RawFd, mask: u32, key: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events: mask,
            data: key,
        };
        // SAFETY: epfd is an open epoll fd, ev is a valid EpollEvent
        // for the duration of the call, and op is one of the three
        // EPOLL_CTL_* constants. For EPOLL_CTL_DEL the kernel ignores
        // the event pointer (passing one is valid on all kernels).
        cvt(unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) })?;
        Ok(())
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        // SAFETY: both fds were opened by Poller::new and are closed
        // exactly once here.
        unsafe {
            close(self.notify_fd);
            close(self.epfd);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::time::Instant;

    #[test]
    fn timeout_expires_without_events() {
        let poller = Poller::new().unwrap();
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0);
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn notify_wakes_a_blocked_wait_without_reporting_an_event() {
        let poller = std::sync::Arc::new(Poller::new().unwrap());
        let p2 = std::sync::Arc::clone(&poller);
        let waker = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            p2.notify().unwrap();
        });
        let mut events = Vec::new();
        let start = Instant::now();
        let n = poller
            .wait(&mut events, Some(Duration::from_secs(10)))
            .unwrap();
        assert_eq!(n, 0, "waker wakeups must not surface as events");
        assert!(start.elapsed() < Duration::from_secs(5));
        waker.join().unwrap();
    }

    #[test]
    fn socket_readability_is_reported_level_triggered() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::readable(7)).unwrap();

        client.write_all(b"ping").unwrap();
        let mut events = Vec::new();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].key, 7);
        assert!(events[0].readable);

        // Level-triggered: unread data re-reports on the next wait.
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1, "unread data must re-report");

        // After draining, readability clears.
        let mut sink = [0u8; 16];
        let mut server = server;
        let got = server.read(&mut sink).unwrap();
        assert_eq!(got, 4);
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "drained socket must stop reporting readable");
        poller.delete(&server).unwrap();
    }

    #[test]
    fn modify_switches_interest_to_writable() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let poller = Poller::new().unwrap();
        poller.add(&server, Event::none(3)).unwrap();
        client.write_all(b"x").unwrap();
        let mut events = Vec::new();
        let n = poller
            .wait(&mut events, Some(Duration::from_millis(20)))
            .unwrap();
        assert_eq!(n, 0, "Event::none must report nothing for readable data");

        poller.modify(&server, Event::writable(3)).unwrap();
        poller
            .wait(&mut events, Some(Duration::from_secs(5)))
            .unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable, "idle socket buffer must be writable");
    }

    #[test]
    fn reserved_key_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let poller = Poller::new().unwrap();
        let err = poller
            .add(&listener, Event::readable(usize::MAX))
            .unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }
}
