//! Offline vendor stub of the `criterion` API subset this workspace's
//! benches use. It is a real (if simple) measurement harness: each
//! benchmark is warmed up, then timed over `sample_size` samples of
//! adaptively-chosen iteration counts, and the median time per
//! iteration is printed together with the sample mean ± standard
//! deviation (so noisy runs are visible at a glance) — with derived
//! element throughput when [`Throughput::Elements`] is set. Heavier
//! statistical machinery (outlier analysis, HTML reports, regression
//! detection) is intentionally absent; swap in the real `criterion`
//! when registry access exists.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock budget per sample; keeps full bench runs fast.
const SAMPLE_BUDGET: Duration = Duration::from_millis(20);

/// Harness entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets how many timing samples each benchmark collects.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a single stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(id, self.sample_size, None, f);
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A named group of benchmarks sharing throughput settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used for derived rates.
    pub fn throughput(&mut self, throughput: Throughput) {
        self.throughput = Some(throughput);
    }

    /// Runs a benchmark inside this group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.criterion.sample_size, self.throughput, f);
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.criterion.sample_size, self.throughput, |b| {
            f(b, input)
        });
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier, optionally `function/parameter` shaped.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id made of the parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Timing driver handed to every benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `f`, discarding each return value through
    /// a black box so the work is not optimized away.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(id: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Calibration: one iteration, timed, to pick the per-sample count.
    let mut bencher = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    let once = bencher.elapsed.max(Duration::from_nanos(1));
    let iters = (SAMPLE_BUDGET.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter_ns.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = per_iter_ns[per_iter_ns.len() / 2];
    let lo = per_iter_ns[0];
    let hi = per_iter_ns[per_iter_ns.len() - 1];
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let stddev = (per_iter_ns
        .iter()
        .map(|x| (x - mean) * (x - mean))
        .sum::<f64>()
        / per_iter_ns.len() as f64)
        .sqrt();

    let mut line = format!(
        "{id:<48} time: [{} {} {}]  mean: {} ± {}",
        fmt_ns(lo),
        fmt_ns(median),
        fmt_ns(hi),
        fmt_ns(mean),
        fmt_ns(stddev)
    );
    if let Some(tp) = throughput {
        let (count, unit) = match tp {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = count as f64 / (median / 1e9);
        line.push_str(&format!("  thrpt: {} {unit}", fmt_rate(rate)));
    }
    println!("{line}");
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

fn fmt_rate(rate: f64) -> String {
    if rate >= 1e9 {
        format!("{:.3} G", rate / 1e9)
    } else if rate >= 1e6 {
        format!("{:.3} M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.3} K", rate / 1e3)
    } else {
        format!("{rate:.1} ")
    }
}

/// Declares a group of benchmark functions; both the plain and the
/// `name/config/targets` forms of the real macro are accepted.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_id_formats() {
        assert_eq!(BenchmarkId::new("scalar", 1000).to_string(), "scalar/1000");
        assert_eq!(BenchmarkId::from_parameter(26).to_string(), "26");
    }

    #[test]
    fn harness_runs_closures() {
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("smoke");
        group.throughput(Throughput::Elements(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("param", 4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
