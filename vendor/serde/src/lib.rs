//! Offline vendor stub of `serde`.
//!
//! Provides the `Serialize`/`Deserialize` *names* — marker traits plus
//! the no-op derive macros from the sibling `serde_derive` stub — so the
//! workspace compiles without registry access. Nothing in-tree performs
//! real (de)serialization; the derives document intent and keep the
//! public API source-compatible with the real `serde` so the stub can be
//! swapped out later.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

/// Marker trait standing in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
