//! Offline vendor stub of the `rand` 0.8 API subset this workspace uses.
//!
//! The build environment has no registry access, so this crate
//! reimplements — self-contained, `std`-only — exactly the surface the
//! Prive-HD crates call: [`rngs::StdRng`] (seedable, deterministic),
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`) and
//! [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256\*\* seeded through SplitMix64. It is
//! *not* the ChaCha12 generator the real `StdRng` wraps, so seeded
//! streams differ from upstream `rand`; everything in this workspace
//! only relies on determinism and statistical quality, not on matching
//! upstream streams.

pub mod rngs;
pub mod seq;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (high bits of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Seedable construction, mirroring `rand::SeedableRng::seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be drawn uniformly from an RNG (the `Standard`
/// distribution of real `rand`).
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit; low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps a random word into `[0, span)` by widening multiply. The bias is
/// at most `span / 2^64`, far below anything observable in this
/// workspace's statistical tests.
#[inline]
fn mul_shift(word: u64, span: u64) -> u64 {
    ((word as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + mul_shift(rng.next_u64(), span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample(rng);
                self.start + (self.end - self.start) * unit
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// User-facing extension methods, blanket-implemented for every
/// [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value of any [`Standard`]-samplable type.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_samples_live_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(-2..=2);
            assert!((-2..=2).contains(&i));
            let u = rng.gen_range(0..7usize);
            assert!(u < 7);
            let f = rng.gen_range(-0.5..0.5f64);
            assert!((-0.5..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_every_value_of_small_ranges() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[(rng.gen_range(-2..=2) + 2) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bool_samples_are_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(11);
        let ones = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..=5_500).contains(&ones), "ones = {ones}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use crate::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }
}
