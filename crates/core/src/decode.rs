//! The reconstruction attack of §III-A (Eq. 9–10) and its quality metrics.
//!
//! HD encoding is almost linear and the base hypervectors are
//! quasi-orthogonal, so an adversary holding the item memory can invert
//! Eq. (2a): multiplying the encoding by base `B_m` and summing dimensions
//! gives `Σ_j H_j·B_{m,j} = D_hv·v_m + cross-terms ≈ D_hv·v_m`, i.e.
//!
//! ```text
//! v_m ≈ (H · B_m) / D_hv                          (Eq. 10)
//! ```
//!
//! [`Decoder`] implements exactly this, and [`mse`] / [`psnr`] quantify
//! reconstruction quality (Fig. 2, Fig. 6, Fig. 9b).

use serde::{Deserialize, Serialize};

use crate::basis::ItemMemory;
use crate::error::HdError;
use crate::hypervector::Hypervector;

/// The adversary's decoder: inverts an encoded hypervector back to the
/// feature vector, given the item memory (base hypervectors).
///
/// This is intentionally a *separate* object from the encoder: the threat
/// model of §III-A is an adversary who has obtained (or regenerated) the
/// public base hypervectors and inspects offloaded queries or model
/// differences.
///
/// # Examples
///
/// ```
/// use privehd_core::{Decoder, Encoder, EncoderConfig, ScalarEncoder, mse};
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let enc = ScalarEncoder::new(EncoderConfig::new(16, 10_000).with_seed(1))?;
/// let input: Vec<f64> = (0..16).map(|i| i as f64 / 15.0).collect();
/// let h = enc.encode(&input)?;
/// let decoder = Decoder::new(enc.item_memory().clone());
/// let rec = decoder.decode(&h)?;
/// // Quasi-orthogonality makes the reconstruction nearly exact.
/// assert!(mse(&input, rec.features())? < 1e-2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Decoder {
    item_memory: ItemMemory,
}

/// A reconstructed feature vector plus bookkeeping.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Reconstruction {
    features: Vec<f64>,
    /// Dimensionality of the hypervector the reconstruction came from.
    pub encoded_dim: usize,
}

impl Reconstruction {
    /// The reconstructed (estimated) feature values.
    pub fn features(&self) -> &[f64] {
        &self.features
    }

    /// The reconstructed features clamped to `[0, 1]`, the normalized
    /// feature range — what an attacker would render as an image.
    pub fn features_clamped(&self) -> Vec<f64> {
        self.features.iter().map(|v| v.clamp(0.0, 1.0)).collect()
    }

    /// Consumes the reconstruction, returning the raw feature estimates.
    pub fn into_features(self) -> Vec<f64> {
        self.features
    }
}

impl Decoder {
    /// Builds a decoder from the (public/leaked) item memory.
    pub fn new(item_memory: ItemMemory) -> Self {
        Self { item_memory }
    }

    /// The item memory the decoder uses.
    pub fn item_memory(&self) -> &ItemMemory {
        &self.item_memory
    }

    /// Reconstructs every feature via Eq. (10):
    /// `v_m = (H · B_m) / D_hv`.
    ///
    /// Works on raw, quantized and/or masked encodings alike — the whole
    /// point of Fig. 6 / Fig. 9(b) is measuring how much those transforms
    /// degrade this attack.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if the encoding dimension
    /// differs from the item memory's.
    pub fn decode(&self, encoded: &Hypervector) -> Result<Reconstruction, HdError> {
        if encoded.dim() != self.item_memory.dim() {
            return Err(HdError::DimensionMismatch {
                expected: self.item_memory.dim(),
                actual: encoded.dim(),
            });
        }
        let d = encoded.dim() as f64;
        let features = self
            .item_memory
            .iter()
            .map(|base| base.dot_dense(encoded).map(|dot| dot / d))
            .collect::<Result<Vec<f64>, HdError>>()?;
        Ok(Reconstruction {
            features,
            encoded_dim: encoded.dim(),
        })
    }

    /// Decodes a *quantized* encoding, rescaling by the quantization gain.
    ///
    /// A bipolar-quantized encoding `sign(H)` correlates with `H` but has
    /// unit magnitude; dividing by `D_hv` (Eq. 10) then under-estimates
    /// feature scale by roughly `E|H_j|`. This variant rescales by the
    /// ratio of norms so PSNR comparisons against the original features
    /// are fair — this is the adversary doing their best.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] on a dimension mismatch.
    pub fn decode_rescaled(
        &self,
        obfuscated: &Hypervector,
        reference_norm: f64,
    ) -> Result<Reconstruction, HdError> {
        let mut rec = self.decode(obfuscated)?;
        let own = obfuscated.l2_norm();
        if own > 0.0 && reference_norm > 0.0 {
            let gain = reference_norm / own;
            for f in &mut rec.features {
                *f *= gain;
            }
        }
        Ok(rec)
    }
}

/// Mean squared error between two equal-length feature vectors.
///
/// # Errors
///
/// Returns [`HdError::DimensionMismatch`] on a length mismatch and
/// [`HdError::EmptyInput`] for empty slices.
pub fn mse(original: &[f64], reconstructed: &[f64]) -> Result<f64, HdError> {
    if original.is_empty() {
        return Err(HdError::EmptyInput("mse operands"));
    }
    if original.len() != reconstructed.len() {
        return Err(HdError::DimensionMismatch {
            expected: original.len(),
            actual: reconstructed.len(),
        });
    }
    Ok(original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b).powi(2))
        .sum::<f64>()
        / original.len() as f64)
}

/// Peak signal-to-noise ratio in dB:
/// `PSNR = 10·log10(MAX² / MSE)` with `MAX = 1.0` (normalized features).
///
/// Returns `f64::INFINITY` for a perfect reconstruction.
///
/// # Errors
///
/// Propagates the errors of [`mse`].
pub fn psnr(original: &[f64], reconstructed: &[f64]) -> Result<f64, HdError> {
    let e = mse(original, reconstructed)?;
    if e == 0.0 {
        return Ok(f64::INFINITY);
    }
    Ok(10.0 * (1.0 / e).log10())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig, ScalarEncoder};
    use crate::obfuscate::{ObfuscateConfig, Obfuscator};
    use crate::quantize::QuantScheme;

    fn setup(features: usize, dim: usize) -> (ScalarEncoder, Decoder, Vec<f64>) {
        let enc = ScalarEncoder::new(
            EncoderConfig::new(features, dim)
                .with_seed(13)
                .with_levels(256),
        )
        .unwrap();
        let dec = Decoder::new(enc.item_memory().clone());
        let input: Vec<f64> = (0..features)
            .map(|i| ((i * 31 + 7) % 100) as f64 / 99.0)
            .collect();
        (enc, dec, input)
    }

    #[test]
    fn decode_recovers_features_accurately() {
        let (enc, dec, input) = setup(32, 10_000);
        let h = enc.encode(&input).unwrap();
        let rec = dec.decode(&h).unwrap();
        let err = mse(&input, rec.features()).unwrap();
        assert!(err < 5e-3, "mse = {err}");
    }

    #[test]
    fn decode_error_shrinks_with_dimension() {
        // Cross-terms scale like sqrt(D_iv/D_hv): more dimensions, better
        // attack. This is the quantitative heart of Eq. (10).
        let (enc_s, dec_s, input) = setup(32, 1_000);
        let (enc_l, dec_l, _) = setup(32, 20_000);
        let small = dec_s.decode(&enc_s.encode(&input).unwrap()).unwrap();
        let large = dec_l.decode(&enc_l.encode(&input).unwrap()).unwrap();
        let mse_small = mse(&input, small.features()).unwrap();
        let mse_large = mse(&input, large.features()).unwrap();
        assert!(
            mse_large < mse_small,
            "mse {mse_large} at 20k should beat {mse_small} at 1k"
        );
    }

    #[test]
    fn quantization_and_masking_degrade_reconstruction() {
        // The Fig. 6 effect, in miniature.
        let (enc, dec, input) = setup(64, 8_192);
        let h = enc.encode(&input).unwrap();
        let clean = dec.decode(&h).unwrap();
        let psnr_clean = psnr(&input, &clean.features_clamped()).unwrap();

        let ob = Obfuscator::new(
            8_192,
            ObfuscateConfig::new(QuantScheme::Bipolar)
                .with_masked_dims(4_096)
                .with_seed(5),
        )
        .unwrap();
        let sent = ob.obfuscate(&h).unwrap();
        let attacked = dec.decode_rescaled(&sent, h.l2_norm()).unwrap();
        let psnr_attacked = psnr(&input, &attacked.features_clamped()).unwrap();

        assert!(
            psnr_clean - psnr_attacked > 3.0,
            "clean {psnr_clean} dB vs attacked {psnr_attacked} dB"
        );
    }

    #[test]
    fn mse_validates_inputs() {
        assert!(mse(&[], &[]).is_err());
        assert!(mse(&[1.0], &[1.0, 2.0]).is_err());
        assert_eq!(mse(&[1.0, 2.0], &[1.0, 2.0]).unwrap(), 0.0);
        assert_eq!(mse(&[0.0, 0.0], &[1.0, 1.0]).unwrap(), 1.0);
    }

    #[test]
    fn psnr_of_perfect_reconstruction_is_infinite() {
        assert_eq!(psnr(&[0.5; 4], &[0.5; 4]).unwrap(), f64::INFINITY);
    }

    #[test]
    fn psnr_known_value() {
        // MSE = 0.01 → PSNR = 20 dB.
        let orig = vec![0.5; 100];
        let rec: Vec<f64> = orig.iter().map(|v| v + 0.1).collect();
        let p = psnr(&orig, &rec).unwrap();
        assert!((p - 20.0).abs() < 1e-9, "psnr = {p}");
    }

    #[test]
    fn decode_checks_dimensions() {
        let (_, dec, _) = setup(8, 1_024);
        let wrong = Hypervector::zeros(512).unwrap();
        assert!(dec.decode(&wrong).is_err());
    }

    #[test]
    fn clamped_features_stay_in_unit_range() {
        let (enc, dec, input) = setup(16, 2_048);
        let h = enc.encode(&input).unwrap();
        let rec = dec.decode(&h).unwrap();
        for v in rec.features_clamped() {
            assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn rescaled_decode_improves_quantized_attack() {
        let (enc, dec, input) = setup(32, 8_192);
        let h = enc.encode(&input).unwrap();
        let q = QuantScheme::Bipolar.quantize(&h, QuantScheme::empirical_sigma(&h));
        let raw = dec.decode(&q).unwrap();
        let rescaled = dec.decode_rescaled(&q, h.l2_norm()).unwrap();
        let mse_raw = mse(&input, raw.features()).unwrap();
        let mse_rescaled = mse(&input, rescaled.features()).unwrap();
        assert!(
            mse_rescaled < mse_raw,
            "rescaling must help the adversary: {mse_rescaled} vs {mse_raw}"
        );
    }
}
