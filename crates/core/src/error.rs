//! Error type shared by every fallible operation in the crate.

use std::error::Error;
use std::fmt;

/// Errors produced by the HD computing substrate.
///
/// Every public fallible function in this crate returns
/// `Result<_, HdError>`. The variants carry enough context to diagnose a
/// misuse without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum HdError {
    /// Two hypervectors (or a hypervector and a model) were combined while
    /// having different dimensionalities.
    DimensionMismatch {
        /// Dimensionality expected by the receiver.
        expected: usize,
        /// Dimensionality actually supplied.
        actual: usize,
    },
    /// A dimension of zero was supplied where a positive one is required.
    EmptyDimension,
    /// A class label was out of range for the model.
    ClassOutOfRange {
        /// The offending label.
        class: usize,
        /// Number of classes in the model.
        num_classes: usize,
    },
    /// A feature vector had the wrong number of features for an encoder.
    FeatureCountMismatch {
        /// Number of features the encoder was built for.
        expected: usize,
        /// Number of features supplied.
        actual: usize,
    },
    /// An invalid configuration parameter (message explains which).
    InvalidConfig(String),
    /// A similarity or norm was requested of an all-zero hypervector.
    ZeroNorm,
    /// An operation needed a non-empty collection (e.g. training data).
    EmptyInput(&'static str),
}

impl fmt::Display for HdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdError::DimensionMismatch { expected, actual } => write!(
                f,
                "hypervector dimension mismatch: expected {expected}, got {actual}"
            ),
            HdError::EmptyDimension => write!(f, "hypervector dimension must be positive"),
            HdError::ClassOutOfRange { class, num_classes } => write!(
                f,
                "class label {class} out of range for model with {num_classes} classes"
            ),
            HdError::FeatureCountMismatch { expected, actual } => write!(
                f,
                "feature count mismatch: encoder expects {expected} features, got {actual}"
            ),
            HdError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            HdError::ZeroNorm => write!(f, "operation undefined on an all-zero hypervector"),
            HdError::EmptyInput(what) => write!(f, "empty input: {what}"),
        }
    }
}

impl Error for HdError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_unpunctuated() {
        let variants: Vec<HdError> = vec![
            HdError::DimensionMismatch {
                expected: 8,
                actual: 4,
            },
            HdError::EmptyDimension,
            HdError::ClassOutOfRange {
                class: 9,
                num_classes: 3,
            },
            HdError::FeatureCountMismatch {
                expected: 617,
                actual: 28,
            },
            HdError::InvalidConfig("levels must be >= 2".to_owned()),
            HdError::ZeroNorm,
            HdError::EmptyInput("training set"),
        ];
        for v in variants {
            let s = v.to_string();
            assert!(!s.is_empty());
            assert!(!s.ends_with('.'), "no trailing punctuation: {s}");
            assert!(
                s.chars().next().is_some_and(|c| c.is_lowercase()),
                "starts lowercase: {s}"
            );
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HdError>();
    }

    #[test]
    fn implements_std_error() {
        let e: Box<dyn Error> = Box::new(HdError::ZeroNorm);
        assert!(e.source().is_none());
    }
}
