//! # privehd-core
//!
//! Hyperdimensional (HD) computing substrate and the Prive-HD algorithms
//! from *"Prive-HD: Privacy-Preserved Hyperdimensional Computing"*
//! (Khaleghi, Imani, Rosing — DAC 2020).
//!
//! The crate provides, bottom-up:
//!
//! * [`hypervector`] — dense real hypervectors ([`Hypervector`]) and
//!   bit-packed bipolar hypervectors ([`BipolarHv`]) with the binding,
//!   bundling and similarity operations of HD computing.
//! * [`basis`] — seeded generation of the random base (location)
//!   hypervectors of Eq. (2) and the flip-chain level hypervectors used by
//!   the record encoding of Eq. (2b).
//! * [`encoder`] — the two paper encodings: the scalar-weight encoding of
//!   Eq. (2a) ([`ScalarEncoder`]) and the level-binding record encoding of
//!   Eq. (2b) ([`LevelEncoder`]).
//! * [`model`] — HD training (Eq. 3), retraining (Eq. 5) and inference
//!   (Eq. 4) with a cached contiguous scoring snapshot
//!   ([`kernels::ClassMatrix`]).
//! * [`kernels`] — the throughput layer: level-sliced popcount encode
//!   over a bit-sliced transposed item memory (dense, packed, and
//!   batch-packed forms), word-parallel (CSA) majority accumulation for
//!   the record encoding, blocked, branchless query×class scoring, and
//!   the packed-native `XOR`+`POPCNT` scoring path
//!   ([`kernels::PackedClassMatrix`]) with runtime-dispatched AVX2
//!   kernel arms. The naive paths are retained as `*_reference` methods
//!   for parity testing.
//! * [`pool`] — a persistent worker pool fed over a channel; batch
//!   encode/predict fan out here instead of spawning scoped threads per
//!   call.
//! * [`quantize`] — the Prive-HD encoding quantizations of Eq. (13):
//!   bipolar, ternary, biased ternary and 2-bit, plus the empirical value
//!   distribution used by the sensitivity formula of Eq. (14).
//! * [`prune`] — model pruning of close-to-zero class dimensions (Fig. 3)
//!   and the information-retrieval curves of Fig. 3.
//! * [`obfuscate`] — inference-privacy transformations applied to a query
//!   hypervector before offloading: quantization and dimension masking
//!   (Fig. 6).
//! * [`decode`] — the reconstruction attack of Eq. (9)–(10) together with
//!   MSE and PSNR metrics (Fig. 2).
//! * [`binary_model`] — the prior-work baseline () that quantizes
//!   class hypervectors too, which Fig. 5(a) compares against.
//! * [`online`] — similarity-weighted (OnlineHD-style) training, an
//!   adaptive refinement of the Eq. (5) retraining rule.
//! * [`plan`] — publish-time compilation: [`EncodePlan`] fuses
//!   encode∘obfuscate into one table-driven pass, [`ModelPlan`] pins the
//!   scoring snapshots behind a one-time kernel selection
//!   ([`plan::PlanKernel`]), and [`plan::PlanTarget`] renders a plan for
//!   software or hardware backends.
//! * [`telemetry`] — sampled, lock-free request tracing ([`Tracer`],
//!   [`Stage`], [`SpanEvent`]): the capture spine the serving layer's
//!   stage-level latency decomposition is built on.
//!
//! ## Quick example
//!
//! ```
//! use privehd_core::prelude::*;
//!
//! # fn main() -> Result<(), HdError> {
//! // Three 4-feature inputs in two classes.
//! let inputs = vec![
//!     (vec![0.9, 0.8, 0.1, 0.0], 0usize),
//!     (vec![0.8, 0.9, 0.0, 0.1], 0),
//!     (vec![0.1, 0.0, 0.9, 0.8], 1),
//! ];
//! let encoder = ScalarEncoder::new(EncoderConfig::new(4, 256).with_seed(7))?;
//! let mut model = HdModel::new(2, 256)?;
//! for (x, y) in &inputs {
//!     model.bundle(*y, &encoder.encode(x)?)?;
//! }
//! let query = encoder.encode(&[0.85, 0.85, 0.05, 0.05])?;
//! assert_eq!(model.predict(&query)?.class, 0);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod basis;
pub mod binary_model;
pub mod decode;
pub mod encoder;
pub mod error;
pub mod hypervector;
pub mod kernels;
pub mod model;
pub mod obfuscate;
pub mod online;
pub mod plan;
pub mod pool;
pub mod prune;
pub mod quantize;
pub mod telemetry;

pub use basis::{BasisGenerator, ItemMemory, LevelMemory};
pub use binary_model::{BinaryHdModel, QuantizedClassModel};
pub use decode::{mse, psnr, Decoder, Reconstruction};
pub use encoder::{Encoder, EncoderConfig, LevelEncoder, ScalarEncoder};
pub use error::HdError;
pub use hypervector::{BipolarHv, Hypervector};
pub use kernels::{ClassMatrix, PackedClassMatrix, TransposedItemMemory};
pub use model::{HdModel, Prediction, RetrainConfig, RetrainReport};
pub use obfuscate::{ObfuscateConfig, Obfuscator};
pub use online::{online_step, train_online, OnlineConfig, OnlineReport};
pub use plan::{
    EncodePlan, ModelPlan, PlanArtifact, PlanKernel, PlanTarget, SimdPath, SoftwareTarget,
};
pub use pool::ThreadPool;
pub use prune::{information_curve, InformationPoint, PruneMask, PruneStrategy};
pub use quantize::{QuantScheme, ValueHistogram};
pub use telemetry::{SpanEvent, Stage, TelemetryConfig, TraceCtx, TraceId, Tracer};

/// Commonly used items, importable with a single `use`.
pub mod prelude {
    pub use crate::basis::{BasisGenerator, ItemMemory, LevelMemory};
    pub use crate::binary_model::{BinaryHdModel, QuantizedClassModel};
    pub use crate::decode::{mse, psnr, Decoder, Reconstruction};
    pub use crate::encoder::{Encoder, EncoderConfig, LevelEncoder, ScalarEncoder};
    pub use crate::error::HdError;
    pub use crate::hypervector::{BipolarHv, Hypervector};
    pub use crate::model::{HdModel, Prediction, RetrainConfig, RetrainReport};
    pub use crate::obfuscate::{ObfuscateConfig, Obfuscator};
    pub use crate::online::{online_step, train_online, OnlineConfig, OnlineReport};
    pub use crate::plan::{EncodePlan, ModelPlan, PlanKernel, PlanTarget, SoftwareTarget};
    pub use crate::prune::{information_curve, PruneMask, PruneStrategy};
    pub use crate::quantize::{QuantScheme, ValueHistogram};
}

/// The hypervector dimensionality the paper uses throughout (~10,000).
pub const DEFAULT_DIMENSION: usize = 10_000;
