//! Encoding quantization (§III-B2, Eq. 13–14).
//!
//! Prive-HD quantizes only the *encoded* hypervectors; the scalar-vector
//! products and the accumulation run in full precision and only the final
//! hypervector is quantized (Eq. 13). Class hypervectors, being sums of
//! quantized encodings, stay non-binary. Quantizing bounds each dimension
//! of the encoding to a small alphabet, which caps the ℓ2 sensitivity at
//! `Δf = (Σ_k p_k · D_hv · k²)^{1/2}` (Eq. 14) independently of the
//! feature count `D_iv`.
//!
//! Four schemes are provided, matching Fig. 5:
//!
//! | scheme | alphabet | thresholds |
//! |---|---|---|
//! | [`QuantScheme::Bipolar`] | `{−1,+1}` | sign |
//! | [`QuantScheme::Ternary`] | `{−1,0,+1}` | symmetric, `p₋₁=p₀=p₊₁=1/3` |
//! | [`QuantScheme::TernaryBiased`] | `{−1,0,+1}` | `p₀=1/2`, `p₋₁=p₊₁=1/4` |
//! | [`QuantScheme::TwoBit`] | `{−2,−1,0,+1}` | quartiles of the Gaussian |
//!
//! Thresholds are expressed in units of the standard deviation of the
//! encoded components, which by the central-limit argument of §III-B is
//! `σ = √D_iv`. For a standard normal, `P(|X| ≤ zσ) = 1/3 ⇔ z ≈ 0.4307`
//! (uniform ternary) and `= 1/2 ⇔ z ≈ 0.6745` (biased ternary).
//!
//! [`QuantScheme::quantize_value`] is the per-component primitive the
//! compiled-plan layer ([`crate::plan::EncodePlan`]) drives through its
//! table-driven quantize-and-mask pass; the fused Bipolar fast path skips
//! it entirely because the sign is σ-independent.

use serde::{Deserialize, Serialize};

use crate::error::HdError;
use crate::hypervector::Hypervector;

/// z-score such that `P(|N(0,1)| < z) = 1/3` → uniform ternary.
const Z_TERNARY_UNIFORM: f64 = 0.430_727_299_295_457_4;
/// z-score such that `P(|N(0,1)| < z) = 1/2` → biased ternary (`p₀ = 1/2`).
const Z_TERNARY_BIASED: f64 = 0.674_489_750_196_081_7;
/// z-scores of the 25/50/75% quantiles used by the 2-bit scheme.
const Z_TWO_BIT: f64 = 0.674_489_750_196_081_7;

/// An encoding quantization scheme (Eq. 13).
///
/// # Examples
///
/// ```
/// use privehd_core::{Hypervector, QuantScheme};
///
/// let h = Hypervector::from_vec(vec![3.5, -0.2, -7.0, 0.0]);
/// // σ is the expected std of components (√D_iv); use 1.0 for raw values.
/// let q = QuantScheme::Bipolar.quantize(&h, 1.0);
/// assert_eq!(q.as_slice(), &[1.0, -1.0, -1.0, 1.0]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QuantScheme {
    /// No quantization (full-precision baseline).
    Full,
    /// 1-bit sign quantization to `{−1,+1}` (Eq. 13).
    Bipolar,
    /// Uniform ternary `{−1,0,+1}` with equal occupation probabilities.
    Ternary,
    /// Biased ternary with `p₀ = 1/2`, reducing sensitivity by ≈0.87×
    /// (§III-B2).
    TernaryBiased,
    /// 2-bit quantization to `{−2,−1,0,+1}` (the paper's `{−2,±1,0}`).
    TwoBit,
}

impl QuantScheme {
    /// All schemes in the order Fig. 5 plots them.
    pub const ALL: [QuantScheme; 5] = [
        QuantScheme::Full,
        QuantScheme::Bipolar,
        QuantScheme::Ternary,
        QuantScheme::TernaryBiased,
        QuantScheme::TwoBit,
    ];

    /// Short label used in reports and figures.
    pub fn label(&self) -> &'static str {
        match self {
            QuantScheme::Full => "full",
            QuantScheme::Bipolar => "bipolar",
            QuantScheme::Ternary => "ternary",
            QuantScheme::TernaryBiased => "ternary(biased)",
            QuantScheme::TwoBit => "2-bit",
        }
    }

    /// Quantizes a single component whose population standard deviation is
    /// `sigma`.
    pub fn quantize_value(&self, v: f64, sigma: f64) -> f64 {
        debug_assert!(sigma > 0.0, "sigma must be positive");
        match self {
            QuantScheme::Full => v,
            QuantScheme::Bipolar => {
                if v >= 0.0 {
                    1.0
                } else {
                    -1.0
                }
            }
            QuantScheme::Ternary => {
                let t = Z_TERNARY_UNIFORM * sigma;
                if v > t {
                    1.0
                } else if v < -t {
                    -1.0
                } else {
                    0.0
                }
            }
            QuantScheme::TernaryBiased => {
                let t = Z_TERNARY_BIASED * sigma;
                if v > t {
                    1.0
                } else if v < -t {
                    -1.0
                } else {
                    0.0
                }
            }
            QuantScheme::TwoBit => {
                let t = Z_TWO_BIT * sigma;
                if v > t {
                    1.0
                } else if v >= 0.0 {
                    0.0
                } else if v >= -t {
                    -1.0
                } else {
                    -2.0
                }
            }
        }
    }

    /// Quantizes an encoded hypervector (Eq. 13). `sigma` is the expected
    /// standard deviation of the components — `√D_iv` by the central-limit
    /// argument; pass [`QuantScheme::empirical_sigma`] of the vector for a
    /// data-driven threshold.
    pub fn quantize(&self, h: &Hypervector, sigma: f64) -> Hypervector {
        if matches!(self, QuantScheme::Full) {
            return h.clone();
        }
        Hypervector::from_vec(
            h.as_slice()
                .iter()
                .map(|&v| self.quantize_value(v, sigma))
                .collect(),
        )
    }

    /// The alphabet of the scheme, excluding the unbounded
    /// [`QuantScheme::Full`] (which returns an empty slice).
    pub fn alphabet(&self) -> &'static [f64] {
        match self {
            QuantScheme::Full => &[],
            QuantScheme::Bipolar => &[-1.0, 1.0],
            QuantScheme::Ternary | QuantScheme::TernaryBiased => &[-1.0, 0.0, 1.0],
            QuantScheme::TwoBit => &[-2.0, -1.0, 0.0, 1.0],
        }
    }

    /// The *theoretical* occupation probability `p_k` of each alphabet
    /// value under the Gaussian component assumption (same order as
    /// [`QuantScheme::alphabet`]).
    pub fn theoretical_probabilities(&self) -> &'static [f64] {
        match self {
            QuantScheme::Full => &[],
            QuantScheme::Bipolar => &[0.5, 0.5],
            QuantScheme::Ternary => &[1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0],
            QuantScheme::TernaryBiased => &[0.25, 0.5, 0.25],
            QuantScheme::TwoBit => &[0.25, 0.25, 0.25, 0.25],
        }
    }

    /// Bits needed to represent one quantized dimension in hardware.
    pub fn bits(&self) -> usize {
        match self {
            QuantScheme::Full => 64,
            QuantScheme::Bipolar => 1,
            QuantScheme::Ternary | QuantScheme::TernaryBiased | QuantScheme::TwoBit => 2,
        }
    }

    /// The empirical standard deviation of a hypervector's components,
    /// used as the data-driven `sigma` threshold input.
    pub fn empirical_sigma(h: &Hypervector) -> f64 {
        h.variance().sqrt()
    }

    /// Quantizes with a per-vector empirical threshold (σ estimated from
    /// the vector itself), which keeps the occupation probabilities close
    /// to the scheme's design point for any encoder and input
    /// distribution.
    pub fn quantize_adaptive(&self, h: &Hypervector) -> Hypervector {
        if matches!(self, QuantScheme::Full) {
            return h.clone();
        }
        let sigma = Self::empirical_sigma(h).max(f64::MIN_POSITIVE);
        self.quantize(h, sigma)
    }
}

impl std::fmt::Display for QuantScheme {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Empirical distribution of quantized component values — the `p_k` of
/// Eq. (14), measured rather than assumed.
///
/// # Examples
///
/// ```
/// use privehd_core::{Hypervector, QuantScheme, ValueHistogram};
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let q = Hypervector::from_vec(vec![1.0, -1.0, 1.0, 1.0]);
/// let hist = ValueHistogram::from_quantized(&q)?;
/// assert_eq!(hist.probability(1.0), 0.75);
/// // ℓ2 norm via Eq. (14): sqrt(Σ p_k · D · k²) = sqrt(4) = 2.
/// assert_eq!(hist.l2_norm(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueHistogram {
    dim: usize,
    /// Sorted (value, count) pairs.
    entries: Vec<(f64, usize)>,
}

impl ValueHistogram {
    /// Tallies the distinct component values of a quantized hypervector.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::InvalidConfig`] if the vector contains more than
    /// 16 distinct values — a sign it was not actually quantized.
    pub fn from_quantized(h: &Hypervector) -> Result<Self, HdError> {
        let mut entries: Vec<(f64, usize)> = Vec::new();
        for &v in h.as_slice() {
            match entries.iter_mut().find(|(val, _)| *val == v) {
                Some((_, c)) => *c += 1,
                None => {
                    if entries.len() >= 16 {
                        return Err(HdError::InvalidConfig(
                            "histogram input has more than 16 distinct values; quantize first"
                                .to_owned(),
                        ));
                    }
                    entries.push((v, 1));
                }
            }
        }
        entries.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        Ok(Self {
            dim: h.dim(),
            entries,
        })
    }

    /// The dimensionality the histogram was tallied over.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Occupation probability `p_k` of value `k` (0.0 if absent).
    pub fn probability(&self, value: f64) -> f64 {
        self.entries
            .iter()
            .find(|(v, _)| *v == value)
            .map(|(_, c)| *c as f64 / self.dim as f64)
            .unwrap_or(0.0)
    }

    /// Sorted `(value, probability)` pairs.
    pub fn probabilities(&self) -> Vec<(f64, f64)> {
        self.entries
            .iter()
            .map(|&(v, c)| (v, c as f64 / self.dim as f64))
            .collect()
    }

    /// The ℓ2 norm implied by Eq. (14):
    /// `(Σ_k p_k · D · k²)^{1/2}` — exactly the vector's ℓ2 norm, but
    /// computed from the histogram the way the paper formulates it.
    pub fn l2_norm(&self) -> f64 {
        self.entries
            .iter()
            .map(|&(v, c)| c as f64 * v * v)
            .sum::<f64>()
            .sqrt()
    }

    /// The ℓ1 norm implied by the histogram: `Σ_k p_k · D · |k|`.
    pub fn l1_norm(&self) -> f64 {
        self.entries.iter().map(|&(v, c)| c as f64 * v.abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A pseudo-Gaussian hypervector via sum of uniforms (CLT), std ≈ sigma.
    fn gaussian_hv(dim: usize, sigma: f64, seed: u64) -> Hypervector {
        let mut rng = StdRng::seed_from_u64(seed);
        Hypervector::from_vec(
            (0..dim)
                .map(|_| {
                    let s: f64 = (0..12).map(|_| rng.gen::<f64>()).sum::<f64>() - 6.0;
                    s * sigma
                })
                .collect(),
        )
    }

    #[test]
    fn full_scheme_is_identity() {
        let h = gaussian_hv(100, 3.0, 1);
        assert_eq!(QuantScheme::Full.quantize(&h, 3.0), h);
    }

    #[test]
    fn bipolar_is_sign() {
        let h = Hypervector::from_vec(vec![0.0, -0.1, 5.0, -3.0]);
        let q = QuantScheme::Bipolar.quantize(&h, 1.0);
        assert_eq!(q.as_slice(), &[1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn quantization_is_idempotent() {
        let h = gaussian_hv(500, 2.0, 2);
        for scheme in [
            QuantScheme::Bipolar,
            QuantScheme::Ternary,
            QuantScheme::TernaryBiased,
        ] {
            let q1 = scheme.quantize(&h, 2.0);
            // Re-quantizing an already quantized vector (σ now ~1) keeps
            // nonzero values fixed for symmetric schemes.
            let q2 = scheme.quantize(&q1, 1.0);
            for (a, b) in q1.as_slice().iter().zip(q2.as_slice()) {
                if *a != 0.0 {
                    assert_eq!(a, b);
                }
            }
        }
    }

    #[test]
    fn alphabet_covers_all_outputs() {
        let h = gaussian_hv(2_000, 5.0, 3);
        for scheme in QuantScheme::ALL.iter().skip(1) {
            let q = scheme.quantize(&h, 5.0);
            let alphabet = scheme.alphabet();
            for &v in q.as_slice() {
                assert!(alphabet.contains(&v), "{scheme}: {v} not in alphabet");
            }
        }
    }

    #[test]
    fn ternary_uniform_occupation_is_balanced() {
        let h = gaussian_hv(60_000, 4.0, 4);
        let q = QuantScheme::Ternary.quantize(&h, 4.0);
        let hist = ValueHistogram::from_quantized(&q).unwrap();
        for v in [-1.0, 0.0, 1.0] {
            let p = hist.probability(v);
            assert!((p - 1.0 / 3.0).abs() < 0.02, "p({v}) = {p}");
        }
    }

    #[test]
    fn ternary_biased_puts_half_mass_on_zero() {
        let h = gaussian_hv(60_000, 4.0, 5);
        let q = QuantScheme::TernaryBiased.quantize(&h, 4.0);
        let hist = ValueHistogram::from_quantized(&q).unwrap();
        assert!((hist.probability(0.0) - 0.5).abs() < 0.02);
        assert!((hist.probability(1.0) - 0.25).abs() < 0.02);
        assert!((hist.probability(-1.0) - 0.25).abs() < 0.02);
    }

    #[test]
    fn two_bit_uses_four_levels() {
        let h = gaussian_hv(60_000, 4.0, 6);
        let q = QuantScheme::TwoBit.quantize(&h, 4.0);
        let hist = ValueHistogram::from_quantized(&q).unwrap();
        for v in [-2.0, -1.0, 0.0, 1.0] {
            let p = hist.probability(v);
            assert!((p - 0.25).abs() < 0.02, "p({v}) = {p}");
        }
    }

    #[test]
    fn biased_ternary_reduces_l2_norm_by_0_87() {
        // §III-B2: sqrt(D/4 + D/4) / sqrt(D/3 + D/3) = sqrt(3)/2 ≈ 0.866.
        let h = gaussian_hv(100_000, 4.0, 7);
        let uniform = QuantScheme::Ternary.quantize(&h, 4.0).l2_norm();
        let biased = QuantScheme::TernaryBiased.quantize(&h, 4.0).l2_norm();
        let ratio = biased / uniform;
        assert!((ratio - 0.866).abs() < 0.02, "ratio = {ratio}");
    }

    #[test]
    fn histogram_norms_match_vector_norms() {
        let h = gaussian_hv(5_000, 2.0, 8);
        let q = QuantScheme::TwoBit.quantize(&h, 2.0);
        let hist = ValueHistogram::from_quantized(&q).unwrap();
        assert!((hist.l2_norm() - q.l2_norm()).abs() < 1e-9);
        assert!((hist.l1_norm() - q.l1_norm()).abs() < 1e-9);
    }

    #[test]
    fn histogram_rejects_unquantized_input() {
        let h = gaussian_hv(100, 1.0, 9);
        assert!(ValueHistogram::from_quantized(&h).is_err());
    }

    #[test]
    fn empirical_sigma_estimates_population_sigma() {
        let h = gaussian_hv(50_000, 3.0, 10);
        let s = QuantScheme::empirical_sigma(&h);
        assert!((s - 3.0).abs() < 0.1, "sigma = {s}");
    }

    #[test]
    fn bipolar_preserves_cosine_direction() {
        // Quantization degrades but must not invert similarity: a vector
        // stays closer to its own quantization than to an unrelated one.
        let a = gaussian_hv(10_000, 2.0, 11);
        let b = gaussian_hv(10_000, 2.0, 12);
        let qa = QuantScheme::Bipolar.quantize(&a, 2.0);
        assert!(a.cosine(&qa).unwrap() > 0.7);
        assert!(b.cosine(&qa).unwrap().abs() < 0.1);
    }

    #[test]
    fn labels_are_distinct() {
        let labels: std::collections::HashSet<_> =
            QuantScheme::ALL.iter().map(|s| s.label()).collect();
        assert_eq!(labels.len(), QuantScheme::ALL.len());
    }
}
