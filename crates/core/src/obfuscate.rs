//! Inference privacy (§III-C): obfuscating the offloaded query.
//!
//! Instead of sending raw data (or a reversible full-precision encoding)
//! to a cloud host, the edge device encodes locally, then
//!
//! 1. **quantizes** the query hypervector down to 1-bit bipolar
//!    ("inference quantization" — the model stays full precision and needs
//!    no access or retraining), and
//! 2. **masks** a chosen number of dimensions to zero,
//!
//! which degrades the reconstruction attack's PSNR from ~24 dB to ~13 dB
//! while costing well under 1% accuracy (Fig. 6, Fig. 9).

use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::HdError;
use crate::hypervector::Hypervector;
use crate::quantize::QuantScheme;

/// Process-wide count of masked-permutation materializations (the
/// shuffle-truncate-sort in [`Obfuscator::new`]). Serving audits read it
/// through [`permutation_build_count`] to pin that compiled plans build
/// the permutation once at publish/construction time and never on the
/// per-request path.
static PERMUTATION_BUILDS: AtomicU64 = AtomicU64::new(0);

/// Number of times a masked-dimension permutation has been materialized
/// since process start. Monotonic; used by conversion-counting tests,
/// not for synchronization.
pub fn permutation_build_count() -> u64 {
    // Relaxed: a monotonic event counter sampled by audit tests; no
    // other memory is published through it.
    PERMUTATION_BUILDS.load(Ordering::Relaxed)
}

/// Configuration of the edge-side obfuscation pipeline.
///
/// # Examples
///
/// ```
/// use privehd_core::{ObfuscateConfig, Obfuscator, QuantScheme, Hypervector};
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let cfg = ObfuscateConfig::new(QuantScheme::Bipolar)
///     .with_masked_dims(5_000)
///     .with_seed(7);
/// let ob = Obfuscator::new(10_000, cfg)?;
/// let query = Hypervector::from_vec(vec![3.0; 10_000]);
/// let sent = ob.obfuscate(&query)?;
/// assert_eq!(sent.count_zeros(), 5_000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObfuscateConfig {
    /// Quantization applied to the query before offloading
    /// (the paper uses [`QuantScheme::Bipolar`] for inference).
    pub scheme: QuantScheme,
    /// Number of dimensions masked (nullified) on top of quantization.
    pub masked_dims: usize,
    /// Seed selecting *which* dimensions are masked. The mask must be the
    /// same for every query of a session (the host needs consistent
    /// dimensions), hence a seed rather than fresh randomness.
    pub seed: u64,
}

impl ObfuscateConfig {
    /// Quantize-only configuration (no masking).
    pub fn new(scheme: QuantScheme) -> Self {
        Self {
            scheme,
            masked_dims: 0,
            seed: 0,
        }
    }

    /// Sets the number of masked dimensions.
    #[must_use]
    pub fn with_masked_dims(mut self, masked_dims: usize) -> Self {
        self.masked_dims = masked_dims;
        self
    }

    /// Sets the mask-selection seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Edge-side query obfuscator: quantize then mask.
///
/// Construction fixes the masked dimension set; [`Obfuscator::obfuscate`]
/// is then a pure function of the query, exactly what an IoT device would
/// run per inference.
#[derive(Debug, Clone)]
pub struct Obfuscator {
    config: ObfuscateConfig,
    dim: usize,
    masked: Vec<usize>,
}

impl Obfuscator {
    /// Builds an obfuscator for queries of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyDimension`] if `dim == 0` and
    /// [`HdError::InvalidConfig`] if `masked_dims >= dim` (at least one
    /// dimension must survive).
    pub fn new(dim: usize, config: ObfuscateConfig) -> Result<Self, HdError> {
        if dim == 0 {
            return Err(HdError::EmptyDimension);
        }
        if config.masked_dims >= dim {
            return Err(HdError::InvalidConfig(format!(
                "cannot mask {} of {} dimensions",
                config.masked_dims, dim
            )));
        }
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut indices: Vec<usize> = (0..dim).collect();
        indices.shuffle(&mut rng);
        indices.truncate(config.masked_dims);
        indices.sort_unstable();
        // Relaxed: monotonic audit counter (see PERMUTATION_BUILDS); no
        // ordering with other memory is required.
        PERMUTATION_BUILDS.fetch_add(1, Ordering::Relaxed);
        Ok(Self {
            config,
            dim,
            masked: indices,
        })
    }

    /// The configuration in force.
    pub fn config(&self) -> &ObfuscateConfig {
        &self.config
    }

    /// The query dimensionality this obfuscator was built for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The masked dimension indices (sorted).
    pub fn masked_indices(&self) -> &[usize] {
        &self.masked
    }

    /// Applies quantization then masking to a query hypervector, producing
    /// the vector that would be sent to the untrusted host.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if `query.dim()` differs
    /// from the constructed dimension.
    pub fn obfuscate(&self, query: &Hypervector) -> Result<Hypervector, HdError> {
        if query.dim() != self.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        let sigma = QuantScheme::empirical_sigma(query).max(f64::MIN_POSITIVE);
        let mut out = self.config.scheme.quantize(query, sigma);
        for &j in &self.masked {
            out.as_mut_slice()[j] = 0.0;
        }
        Ok(out)
    }

    /// Number of dimensions that actually reach the host (unmasked).
    pub fn unmasked_dims(&self) -> usize {
        self.dim - self.masked.len()
    }

    /// Bits on the wire per query: unmasked dimensions × bits per
    /// dimension (the multifaceted transfer saving of §III-C; a
    /// full-precision query would cost `dim × 64`).
    pub fn payload_bits(&self) -> usize {
        self.unmasked_dims() * self.config.scheme.bits()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn query(dim: usize) -> Hypervector {
        Hypervector::from_vec((0..dim).map(|i| ((i * 37 % 101) as f64) - 50.0).collect())
    }

    #[test]
    fn rejects_full_masking() {
        let cfg = ObfuscateConfig::new(QuantScheme::Bipolar).with_masked_dims(8);
        assert!(Obfuscator::new(8, cfg).is_err());
    }

    #[test]
    fn masking_zeroes_exactly_the_selected_dims() {
        let cfg = ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(100)
            .with_seed(3);
        let ob = Obfuscator::new(1_000, cfg).unwrap();
        let out = ob.obfuscate(&query(1_000)).unwrap();
        assert_eq!(ob.masked_indices().len(), 100);
        for &j in ob.masked_indices() {
            assert_eq!(out[j], 0.0);
        }
        // Bipolar elsewhere.
        for j in 0..1_000 {
            if !ob.masked_indices().contains(&j) {
                assert!(out[j] == 1.0 || out[j] == -1.0);
            }
        }
    }

    #[test]
    fn mask_is_stable_across_queries_and_rebuilds() {
        let cfg = ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(64)
            .with_seed(11);
        let a = Obfuscator::new(512, cfg).unwrap();
        let b = Obfuscator::new(512, cfg).unwrap();
        assert_eq!(a.masked_indices(), b.masked_indices());
    }

    #[test]
    fn different_seed_different_mask() {
        let base = ObfuscateConfig::new(QuantScheme::Bipolar).with_masked_dims(64);
        let a = Obfuscator::new(512, base.with_seed(1)).unwrap();
        let b = Obfuscator::new(512, base.with_seed(2)).unwrap();
        assert_ne!(a.masked_indices(), b.masked_indices());
    }

    #[test]
    fn payload_accounting() {
        let cfg = ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(4_000)
            .with_seed(0);
        let ob = Obfuscator::new(10_000, cfg).unwrap();
        assert_eq!(ob.unmasked_dims(), 6_000);
        assert_eq!(ob.payload_bits(), 6_000);
        let full = ObfuscateConfig::new(QuantScheme::Full);
        let ob_full = Obfuscator::new(10_000, full).unwrap();
        assert_eq!(ob_full.payload_bits(), 640_000);
    }

    #[test]
    fn quantize_only_when_no_masking() {
        let cfg = ObfuscateConfig::new(QuantScheme::Bipolar);
        let ob = Obfuscator::new(256, cfg).unwrap();
        let out = ob.obfuscate(&query(256)).unwrap();
        assert_eq!(out.count_zeros(), 0);
    }

    #[test]
    fn dimension_mismatch_is_detected() {
        let ob = Obfuscator::new(128, ObfuscateConfig::new(QuantScheme::Bipolar)).unwrap();
        assert!(ob.obfuscate(&query(64)).is_err());
    }
}
