//! Request tracing: sampled, lock-free span capture for the serving
//! path.
//!
//! The paper's offload split (edge encodes ∘ obfuscates, host
//! classifies) makes *where per-request time goes* the system's core
//! performance question. This module is the capture half of the answer:
//! a [`Tracer`] hands out [`TraceCtx`] handles (one per request),
//! decides 1-in-N sampling at request birth, and records timestamped
//! [`SpanEvent`]s — `(trace id, stage, t_start, t_end)` — into sharded
//! lock-free ring buffers. The aggregation half (per-[`Stage`] latency
//! histograms, Prometheus text exposition) lives in the serving crate;
//! this layer deliberately knows nothing about models, sockets, or
//! reports.
//!
//! ## Hot-path contract
//!
//! * No locks, ever. Sampling is one `fetch_add`; recording a span is a
//!   handful of `Relaxed` atomic stores into a seqlock-stamped ring
//!   slot.
//! * Unsampled requests cost two branches and zero stores per
//!   [`Tracer::record`] call — unless the span itself exceeds
//!   [`TelemetryConfig::slow_threshold`], in which case it is captured
//!   regardless of the sampling decision (slow requests are precisely
//!   the ones worth keeping).
//! * A disabled tracer ([`TelemetryConfig::disabled`]) records nothing
//!   and [`Tracer::begin`] marks every context unsampled; the overhead
//!   benchmark in `perfsuite --serve` compares against exactly this
//!   configuration.
//!
//! ## Ring semantics (best effort, by design)
//!
//! Each shard is a fixed-capacity ring of seqlock slots. Writers claim
//! a slot with one `fetch_add` on the shard head and stamp the slot's
//! sequence odd while writing, even when done; [`Tracer::snapshot`]
//! re-checks each slot's sequence around its reads and simply skips
//! slots that were mid-write or overwritten. Under overwrite pressure
//! the ring keeps the *newest* events; a torn or lost event is dropped,
//! never surfaced corrupt. Telemetry never blocks serving — that
//! trade-off is the point.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// One pipeline stage of the serving request path, from wire bytes to
/// the response frame. The order here is the order a healthy request
/// visits them in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Decoding the request frame from wire bytes (wire thread).
    WireDecode,
    /// Admission checks and payload preparation up to queue submission
    /// (wire thread; recorded only for requests that entered the
    /// queue).
    Admission,
    /// Server-side encode ∘ obfuscate of a raw-features payload (only
    /// on the raw path; packed queries were encoded on the device).
    Encode,
    /// Waiting in the bounded submission queue until the batcher routed
    /// the request into its model's open batch.
    QueueWait,
    /// Waiting in an open batch for the flush (batch-full or
    /// `max_delay`) plus worker pickup.
    BatchWait,
    /// Resolving the batch's model snapshot from the registry (once per
    /// batch).
    SnapshotResolve,
    /// The classification itself.
    Predict,
    /// Encoding the response frame into the connection's write buffer
    /// (wire thread).
    WireWrite,
    /// Submission to prediction, end to end — the span the trace ring
    /// uses to flag slow requests. Not duplicated as a stage histogram:
    /// the end-to-end histogram already exists in the serving metrics.
    EndToEnd,
}

impl Stage {
    /// Every stage, in request-path order.
    pub const ALL: [Stage; 9] = [
        Stage::WireDecode,
        Stage::Admission,
        Stage::Encode,
        Stage::QueueWait,
        Stage::BatchWait,
        Stage::SnapshotResolve,
        Stage::Predict,
        Stage::WireWrite,
        Stage::EndToEnd,
    ];

    /// Number of stages (`Stage::ALL.len()`).
    pub const COUNT: usize = Self::ALL.len();

    /// Stable dense index of this stage (its position in
    /// [`Stage::ALL`]).
    pub fn index(self) -> usize {
        match self {
            Stage::WireDecode => 0,
            Stage::Admission => 1,
            Stage::Encode => 2,
            Stage::QueueWait => 3,
            Stage::BatchWait => 4,
            Stage::SnapshotResolve => 5,
            Stage::Predict => 6,
            Stage::WireWrite => 7,
            Stage::EndToEnd => 8,
        }
    }

    /// Inverse of [`Stage::index`]; `None` for out-of-range values
    /// (e.g. a ring slot written by a future build).
    pub fn from_index(idx: usize) -> Option<Stage> {
        Self::ALL.get(idx).copied()
    }

    /// Stable snake_case name, used as the Prometheus `stage` label.
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::WireDecode => "wire_decode",
            Stage::Admission => "admission",
            Stage::Encode => "encode",
            Stage::QueueWait => "queue_wait",
            Stage::BatchWait => "batch_wait",
            Stage::SnapshotResolve => "snapshot_resolve",
            Stage::Predict => "predict",
            Stage::WireWrite => "wire_write",
            Stage::EndToEnd => "end_to_end",
        }
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Opaque per-request trace identifier, unique within one [`Tracer`]
/// (monotonic from 1; 0 never occurs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(pub u64);

impl std::fmt::Display for TraceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Per-request tracing context: the id plus the sampling decision made
/// once at [`Tracer::begin`]. `Copy`, two words — thread it through the
/// request path by value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceCtx {
    /// This request's trace id.
    pub id: TraceId,
    /// Whether this request was selected by 1-in-N sampling. Slow spans
    /// are captured even when `false`.
    pub sampled: bool,
}

impl TraceCtx {
    /// A context that records nothing (unless a span is slow on an
    /// enabled tracer). Useful for paths with no tracer in scope.
    pub fn unsampled() -> Self {
        Self {
            id: TraceId(0),
            sampled: false,
        }
    }
}

/// Tracing configuration, carried inside the serving engine's config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TelemetryConfig {
    /// Master switch. When `false`, [`Tracer::record`] is a no-op and
    /// [`Tracer::begin`] never samples — stage *histograms* in the
    /// serving layer still record (they are counters, not traces).
    pub enabled: bool,
    /// Sample one request in this many for full span capture (≥ 1;
    /// `1` traces everything).
    pub sample_one_in: u64,
    /// Spans at least this long are captured even when their request
    /// was not sampled, so tail latency is always explainable.
    pub slow_threshold: Duration,
    /// Slots per ring shard; older events are overwritten by newer ones
    /// once a shard wraps.
    pub ring_capacity: usize,
    /// Number of ring shards. Writer threads spread across shards by a
    /// cheap thread-local id, so concurrent writers rarely contend on a
    /// slot.
    pub shards: usize,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            sample_one_in: 64,
            slow_threshold: Duration::from_millis(25),
            ring_capacity: 256,
            shards: 4,
        }
    }
}

impl TelemetryConfig {
    /// A configuration that captures nothing: sampling off, no slow
    /// capture, rings never written. The baseline for overhead
    /// measurements.
    pub fn disabled() -> Self {
        Self {
            enabled: false,
            ..Self::default()
        }
    }
}

/// One captured span: a stage of one traced request, with start/end
/// timestamps in nanoseconds since the owning tracer's epoch
/// ([`Tracer::epoch`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// The request this span belongs to.
    pub trace: TraceId,
    /// Which pipeline stage the span covers.
    pub stage: Stage,
    /// Span start, nanoseconds since the tracer's epoch.
    pub start_ns: u64,
    /// Span end, nanoseconds since the tracer's epoch.
    pub end_ns: u64,
    /// True when the span exceeded the slow threshold (i.e. it may be
    /// present even though its request was not sampled).
    pub slow: bool,
}

impl SpanEvent {
    /// The span's duration.
    pub fn duration(&self) -> Duration {
        Duration::from_nanos(self.end_ns.saturating_sub(self.start_ns))
    }
}

/// One seqlock-stamped ring slot. `seq == 0` means never written; odd
/// means a writer is mid-store; a reader accepts a slot only when it
/// observes the same even sequence before and after its field reads.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    trace: AtomicU64,
    /// Stage index in the low byte, slow flag in bit 8.
    meta: AtomicU64,
    start_ns: AtomicU64,
    end_ns: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            trace: AtomicU64::new(0),
            meta: AtomicU64::new(0),
            start_ns: AtomicU64::new(0),
            end_ns: AtomicU64::new(0),
        }
    }
}

const META_SLOW_BIT: u64 = 1 << 8;

/// One ring shard: a claim counter plus fixed slots.
#[derive(Debug)]
struct Ring {
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl Ring {
    fn new(capacity: usize) -> Self {
        Self {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Slot::new()).collect(),
        }
    }

    fn push(&self, trace: u64, meta: u64, start_ns: u64, end_ns: u64) {
        // Relaxed: the head only distributes slot indices; payload
        // visibility is ordered by the per-slot seqlock, not the claim.
        let claim = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(claim as usize) % self.slots.len()];
        // Seqlock write: odd while storing, even (and advanced) after.
        // Two writers racing one slot (a full wrap mid-write) can leave
        // a sequence readers reject — the event is dropped, not torn.
        // AcqRel: the bump cannot reorder with either side's payload.
        let seq = slot.seq.fetch_add(1, Ordering::AcqRel);
        // Relaxed payload stores: the Release store of `seq` below
        // publishes them; readers reject torn reads via the sequence.
        slot.trace.store(trace, Ordering::Relaxed);
        slot.meta.store(meta, Ordering::Relaxed);
        slot.start_ns.store(start_ns, Ordering::Relaxed);
        slot.end_ns.store(end_ns, Ordering::Relaxed); // Relaxed: as above
                                                      // Release: pairs with the Acquire seq load in `snapshot_into`.
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    fn snapshot_into(&self, out: &mut Vec<SpanEvent>) {
        for slot in &self.slots {
            // Acquire: pairs with the writer's Release seq store — the
            // payload loads below cannot float above this check.
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 == 0 || s1 & 1 == 1 {
                continue; // never written, or mid-write
            }
            // Relaxed payload loads: bracketed by the Acquire above
            // and the fence + seq recheck below, which rejects torn
            // reads instead of ordering them.
            let trace = slot.trace.load(Ordering::Relaxed);
            let meta = slot.meta.load(Ordering::Relaxed);
            let start_ns = slot.start_ns.load(Ordering::Relaxed);
            let end_ns = slot.end_ns.load(Ordering::Relaxed); // Relaxed: as above
                                                              // Acquire fence: orders the payload loads before the seq
                                                              // recheck; a writer bumps seq (AcqRel) before touching the
                                                              // payload, so an unchanged Relaxed reload proves the loads
                                                              // above were not torn.
            std::sync::atomic::fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten while reading
            }
            let Some(stage) = Stage::from_index((meta & 0xFF) as usize) else {
                continue;
            };
            out.push(SpanEvent {
                trace: TraceId(trace),
                stage,
                start_ns,
                end_ns,
                slow: meta & META_SLOW_BIT != 0,
            });
        }
    }
}

/// Cheap stable per-thread id for shard selection: threads take
/// sequential ids on first use, so a fixed worker pool spreads evenly
/// over shards.
fn thread_shard_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        // Relaxed: ids only need uniqueness, not ordering with any
        // other memory.
        static ID: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    ID.with(|&id| id)
}

/// The span capture engine: sampling decisions plus sharded event
/// rings. One per serving engine; shared by `Arc` with the wire thread
/// and every worker.
///
/// # Examples
///
/// ```
/// use std::time::{Duration, Instant};
/// use privehd_core::telemetry::{Stage, TelemetryConfig, Tracer};
///
/// let tracer = Tracer::new(TelemetryConfig {
///     sample_one_in: 1, // trace everything
///     ..TelemetryConfig::default()
/// });
/// let ctx = tracer.begin();
/// assert!(ctx.sampled);
/// let start = Instant::now();
/// // ... work ...
/// tracer.record(ctx, Stage::Predict, start, Instant::now());
/// let events = tracer.snapshot();
/// assert_eq!(events.len(), 1);
/// assert_eq!(events[0].stage, Stage::Predict);
/// ```
#[derive(Debug)]
pub struct Tracer {
    cfg: TelemetryConfig,
    epoch: Instant,
    next_trace: AtomicU64,
    tick: AtomicU64,
    recorded: AtomicU64,
    shards: Vec<Ring>,
}

impl Tracer {
    /// Builds a tracer; zero-valued `sample_one_in`, `ring_capacity`,
    /// or `shards` are clamped up to 1 (a tracer never fails to
    /// construct — telemetry must not be able to take serving down).
    pub fn new(cfg: TelemetryConfig) -> Self {
        let cfg = TelemetryConfig {
            sample_one_in: cfg.sample_one_in.max(1),
            ring_capacity: cfg.ring_capacity.max(1),
            shards: cfg.shards.max(1),
            ..cfg
        };
        let shards = (0..cfg.shards)
            .map(|_| Ring::new(cfg.ring_capacity))
            .collect();
        Self {
            cfg,
            epoch: Instant::now(),
            next_trace: AtomicU64::new(0),
            tick: AtomicU64::new(0),
            recorded: AtomicU64::new(0),
            shards,
        }
    }

    /// A tracer that records nothing — [`TelemetryConfig::disabled`]
    /// shaped into a value. The overhead-comparison baseline.
    pub fn disabled() -> Self {
        Self::new(TelemetryConfig::disabled())
    }

    /// The configuration this tracer runs with (after clamping).
    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// The instant all [`SpanEvent`] timestamps are relative to.
    pub fn epoch(&self) -> Instant {
        self.epoch
    }

    /// Starts a trace for a new request: assigns the next id and makes
    /// the 1-in-N sampling decision. On a disabled tracer the context
    /// is always unsampled.
    pub fn begin(&self) -> TraceCtx {
        // Relaxed (both counters): trace ids only need uniqueness and
        // the sampling tick only needs fair distribution; neither
        // publishes any other memory.
        let id = TraceId(self.next_trace.fetch_add(1, Ordering::Relaxed) + 1);
        let sampled = self.cfg.enabled
            && self
                .tick
                .fetch_add(1, Ordering::Relaxed) // Relaxed: as above
                .is_multiple_of(self.cfg.sample_one_in);
        TraceCtx { id, sampled }
    }

    /// Records one span if it qualifies: the tracer is enabled, and the
    /// request is sampled *or* the span itself is at least
    /// [`TelemetryConfig::slow_threshold`] long. Timestamps before the
    /// tracer's epoch clamp to it.
    pub fn record(&self, ctx: TraceCtx, stage: Stage, start: Instant, end: Instant) {
        if !self.cfg.enabled {
            return;
        }
        let slow = end.saturating_duration_since(start) >= self.cfg.slow_threshold;
        if !ctx.sampled && !slow {
            return;
        }
        let start_ns = start.saturating_duration_since(self.epoch).as_nanos() as u64;
        let end_ns = end.saturating_duration_since(self.epoch).as_nanos() as u64;
        let meta = stage.index() as u64 | if slow { META_SLOW_BIT } else { 0 };
        let shard = &self.shards[thread_shard_id() % self.shards.len()];
        shard.push(ctx.id.0, meta, start_ns, end_ns);
        // Relaxed: statistics counter; readers tolerate lag.
        self.recorded.fetch_add(1, Ordering::Relaxed);
    }

    /// Total events ever pushed into the rings (including ones since
    /// overwritten).
    pub fn events_recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Best-effort copy of every currently readable ring event, sorted
    /// by start time. Events mid-write or overwritten during the read
    /// are skipped, never returned torn.
    pub fn snapshot(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for shard in &self.shards {
            shard.snapshot_into(&mut out);
        }
        out.sort_by_key(|e| (e.start_ns, e.trace, e.stage.index()));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(sample_one_in: u64) -> TelemetryConfig {
        TelemetryConfig {
            enabled: true,
            sample_one_in,
            slow_threshold: Duration::from_secs(3_600), // never slow in tests
            ring_capacity: 1_024,
            shards: 2,
        }
    }

    #[test]
    fn stage_index_roundtrips_and_names_are_unique() {
        let mut names = std::collections::HashSet::new();
        for (i, stage) in Stage::ALL.iter().enumerate() {
            assert_eq!(stage.index(), i);
            assert_eq!(Stage::from_index(i), Some(*stage));
            assert!(names.insert(stage.as_str()), "duplicate name {stage}");
        }
        assert_eq!(Stage::from_index(Stage::COUNT), None);
    }

    #[test]
    fn sampling_selects_one_in_n() {
        let tracer = Tracer::new(cfg(8));
        let sampled = (0..800).filter(|_| tracer.begin().sampled).count();
        assert_eq!(sampled, 100);
    }

    #[test]
    fn trace_ids_are_unique_and_nonzero() {
        let tracer = Tracer::new(cfg(4));
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            let ctx = tracer.begin();
            assert_ne!(ctx.id, TraceId(0));
            assert!(seen.insert(ctx.id));
        }
    }

    #[test]
    fn sampled_spans_are_captured_and_unsampled_are_not() {
        let tracer = Tracer::new(cfg(1));
        let t0 = Instant::now();
        let ctx = tracer.begin();
        tracer.record(ctx, Stage::Predict, t0, t0 + Duration::from_micros(50));
        let unsampled = TraceCtx {
            id: TraceId(999),
            sampled: false,
        };
        tracer.record(
            unsampled,
            Stage::Predict,
            t0,
            t0 + Duration::from_micros(50),
        );
        let events = tracer.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].trace, ctx.id);
        assert_eq!(events[0].stage, Stage::Predict);
        assert!(!events[0].slow);
        assert_eq!(events[0].duration(), Duration::from_micros(50));
    }

    #[test]
    fn slow_spans_are_captured_despite_sampling() {
        let mut c = cfg(u64::MAX); // effectively never sampled
        c.slow_threshold = Duration::from_millis(10);
        let tracer = Tracer::new(c);
        tracer.begin(); // consume the first (always-sampled) tick
        let ctx = tracer.begin();
        assert!(!ctx.sampled);
        let t0 = Instant::now();
        tracer.record(ctx, Stage::QueueWait, t0, t0 + Duration::from_micros(10));
        tracer.record(ctx, Stage::EndToEnd, t0, t0 + Duration::from_millis(50));
        let events = tracer.snapshot();
        assert_eq!(events.len(), 1, "only the slow span qualifies");
        assert_eq!(events[0].stage, Stage::EndToEnd);
        assert!(events[0].slow);
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        let t0 = Instant::now();
        for _ in 0..100 {
            let ctx = tracer.begin();
            assert!(!ctx.sampled);
            tracer.record(ctx, Stage::Predict, t0, t0 + Duration::from_secs(10));
        }
        assert!(tracer.snapshot().is_empty());
        assert_eq!(tracer.events_recorded(), 0);
    }

    #[test]
    fn ring_wraps_keep_newest_events() {
        let mut c = cfg(1);
        c.ring_capacity = 8;
        c.shards = 1;
        let tracer = Tracer::new(c);
        let t0 = Instant::now();
        for i in 0..100u64 {
            let ctx = tracer.begin();
            tracer.record(
                ctx,
                Stage::Predict,
                t0 + Duration::from_nanos(i),
                t0 + Duration::from_nanos(i + 1),
            );
        }
        let events = tracer.snapshot();
        assert_eq!(events.len(), 8);
        // The ring holds the newest 8 of the 100 traces.
        for e in &events {
            assert!(e.trace.0 > 92, "stale event {e:?} survived the wrap");
        }
        assert_eq!(tracer.events_recorded(), 100);
    }

    #[test]
    fn concurrent_writers_never_produce_torn_events() {
        let mut c = cfg(1);
        c.ring_capacity = 64;
        c.shards = 2;
        let tracer = std::sync::Arc::new(Tracer::new(c));
        let t0 = tracer.epoch();
        let mut handles = Vec::new();
        // Miri interprets every access; 2k iterations/writer takes
        // minutes there while 50 still exercise the seqlock races.
        let iters: u64 = if cfg!(miri) { 50 } else { 2_000 };
        for w in 0..4u64 {
            let tracer = std::sync::Arc::clone(&tracer);
            handles.push(std::thread::spawn(move || {
                for i in 0..iters {
                    let ctx = tracer.begin();
                    // Writer w stamps spans with duration w+1 µs: a torn
                    // read would mix durations across writers.
                    let start = t0 + Duration::from_nanos(i * 10);
                    let end = start + Duration::from_micros(w + 1);
                    tracer.record(ctx, Stage::Predict, start, end);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for e in tracer.snapshot() {
            let micros = e.duration().as_micros();
            assert!(
                (1..=4).contains(&micros),
                "torn span: {e:?} has duration {micros} µs"
            );
        }
    }

    #[test]
    fn zero_config_values_are_clamped() {
        let tracer = Tracer::new(TelemetryConfig {
            enabled: true,
            sample_one_in: 0,
            slow_threshold: Duration::ZERO,
            ring_capacity: 0,
            shards: 0,
        });
        assert_eq!(tracer.config().sample_one_in, 1);
        assert_eq!(tracer.config().ring_capacity, 1);
        assert_eq!(tracer.config().shards, 1);
        assert!(tracer.begin().sampled);
    }
}
