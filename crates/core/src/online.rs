//! Similarity-weighted (online) training — the adaptive refinement of
//! plain bundling used by modern HD frameworks (OnlineHD-style), an
//! extension the paper's Eq. (5) retraining gestures at.
//!
//! Plain bundling (Eq. 3) adds every encoding with weight 1, so
//! well-represented patterns keep reinforcing themselves. The online
//! rule weights each update by *how much the model still needs it*:
//!
//! ```text
//! if predicted == label:  C_l  += lr · (1 − δ_l) · H
//! else:                   C_l  += lr · (1 − δ_l) · H
//!                         C_l' −= lr · (1 − δ_l') · H
//! ```
//!
//! where `δ` is the cosine similarity to the respective class. This
//! converges to larger margins than Eq. (5)'s fixed ±1 updates and is
//! directly compatible with everything else in the crate (pruning,
//! quantization, noise) since it only changes the accumulation weights.

use serde::{Deserialize, Serialize};

use crate::error::HdError;
use crate::hypervector::Hypervector;
use crate::model::HdModel;

/// Configuration of the online trainer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Learning rate multiplier (1.0 is standard).
    pub learning_rate: f64,
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Stop early when an epoch ends at or above this training accuracy.
    pub target_accuracy: f64,
}

impl Default for OnlineConfig {
    fn default() -> Self {
        Self {
            learning_rate: 1.0,
            epochs: 10,
            target_accuracy: 1.0,
        }
    }
}

/// Per-epoch trace of online training.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineReport {
    /// Training accuracy at the end of each executed epoch.
    pub epoch_accuracy: Vec<f64>,
}

impl OnlineReport {
    /// Training accuracy after the final epoch.
    pub fn final_accuracy(&self) -> f64 {
        self.epoch_accuracy.last().copied().unwrap_or(0.0)
    }
}

/// Trains a model with similarity-weighted updates.
///
/// Starting from an untrained (all-zero) model, the first pass behaves
/// like bundling with decreasing weights; subsequent passes refine the
/// margins.
///
/// # Errors
///
/// Propagates label/dimension errors; [`HdError::EmptyInput`] for an
/// empty training set.
///
/// # Examples
///
/// ```
/// use privehd_core::online::{train_online, OnlineConfig};
/// use privehd_core::Hypervector;
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let samples = vec![
///     (Hypervector::from_vec(vec![1.0, 1.0, -1.0, -1.0]), 0),
///     (Hypervector::from_vec(vec![-1.0, -1.0, 1.0, 1.0]), 1),
/// ];
/// let (model, report) = train_online(2, 4, &samples, &OnlineConfig::default())?;
/// assert_eq!(report.final_accuracy(), 1.0);
/// assert_eq!(model.num_classes(), 2);
/// # Ok(())
/// # }
/// ```
pub fn train_online(
    num_classes: usize,
    dim: usize,
    samples: &[(Hypervector, usize)],
    config: &OnlineConfig,
) -> Result<(HdModel, OnlineReport), HdError> {
    if samples.is_empty() {
        return Err(HdError::EmptyInput("training set"));
    }
    let mut model = HdModel::new(num_classes, dim)?;
    let mut report = OnlineReport {
        epoch_accuracy: Vec::new(),
    };
    for _ in 0..config.epochs {
        for (h, label) in samples {
            online_step(&mut model, h, *label, config.learning_rate)?;
        }
        let acc = model.accuracy(samples)?;
        report.epoch_accuracy.push(acc);
        if acc >= config.target_accuracy {
            break;
        }
    }
    Ok((model, report))
}

/// One similarity-weighted update (exposed for streaming use: feed
/// samples as they arrive).
///
/// # Errors
///
/// Propagates label/dimension errors.
pub fn online_step(
    model: &mut HdModel,
    encoded: &Hypervector,
    label: usize,
    learning_rate: f64,
) -> Result<(), HdError> {
    // An untrained model cannot predict; bootstrap by bundling.
    let prediction = match model.predict(encoded) {
        Ok(p) => p,
        Err(HdError::ZeroNorm) => {
            return model.bundle(label, encoded);
        }
        Err(e) => return Err(e),
    };
    let query_norm = encoded.l2_norm();
    if query_norm == 0.0 {
        return Ok(());
    }
    // Cosine similarities (scores are dot/‖C‖; divide by ‖q‖).
    let sim_to = |class: usize| (prediction.scores[class] / query_norm).clamp(-1.0, 1.0);
    if prediction.class == label {
        let w = learning_rate * (1.0 - sim_to(label));
        if w > 0.0 {
            add_scaled_class(model, label, encoded, w)?;
        }
    } else {
        let w_up = learning_rate * (1.0 - sim_to(label));
        let w_down = learning_rate * (1.0 - sim_to(prediction.class));
        add_scaled_class(model, label, encoded, w_up)?;
        add_scaled_class(model, prediction.class, encoded, -w_down)?;
    }
    Ok(())
}

fn add_scaled_class(
    model: &mut HdModel,
    label: usize,
    encoded: &Hypervector,
    weight: f64,
) -> Result<(), HdError> {
    // Route through bundle semantics but with a scaled copy to reuse the
    // label/dimension validation.
    let scaled = encoded.clone() * weight;
    model.bundle(label, &scaled)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig, ScalarEncoder};
    use crate::model::HdModel;

    type Split = Vec<(Hypervector, usize)>;

    fn overlapping_data(seed: u64) -> (Split, Split) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let enc = ScalarEncoder::new(EncoderConfig::new(16, 2_048).with_seed(seed)).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        // Pattern-coded classes (high/low halves swapped) with feature
        // noise: separable in principle, imperfect at plain bundling.
        let mut make = |n: usize| {
            (0..n)
                .map(|_| {
                    let class = rng.gen_range(0..2usize);
                    let x: Vec<f64> = (0..16)
                        .map(|k| {
                            let base = if (k < 8) == (class == 0) { 0.75 } else { 0.25 };
                            (base + rng.gen_range(-0.35..0.35f64)).clamp(0.0, 1.0)
                        })
                        .collect();
                    (enc.encode(&x).unwrap(), class)
                })
                .collect::<Vec<_>>()
        };
        (make(60), make(30))
    }

    #[test]
    fn online_training_reaches_high_train_accuracy() {
        let (train, _) = overlapping_data(1);
        let cfg = OnlineConfig {
            epochs: 30,
            ..OnlineConfig::default()
        };
        let (_, report) = train_online(2, 2_048, &train, &cfg).unwrap();
        assert!(report.final_accuracy() > 0.9, "{}", report.final_accuracy());
    }

    #[test]
    fn online_matches_or_beats_bundling_on_train_data() {
        let (train, _) = overlapping_data(2);
        let bundled = HdModel::train(2, 2_048, &train).unwrap();
        let bundled_acc = bundled.accuracy(&train).unwrap();
        let (_, report) = train_online(2, 2_048, &train, &OnlineConfig::default()).unwrap();
        assert!(
            report.final_accuracy() >= bundled_acc - 1e-9,
            "online {} vs bundled {bundled_acc}",
            report.final_accuracy()
        );
    }

    #[test]
    fn zero_learning_rate_freezes_after_bootstrap() {
        let (train, _) = overlapping_data(3);
        let cfg = OnlineConfig {
            learning_rate: 0.0,
            epochs: 3,
            target_accuracy: 2.0, // never met, run all epochs
        };
        let (model, _) = train_online(2, 2_048, &train, &cfg).unwrap();
        // Only the bootstrap bundles (first sample of each class until
        // both classes are non-zero... in practice: the first sample)
        // contribute; the model is degenerate but construction succeeds.
        assert_eq!(model.num_classes(), 2);
    }

    #[test]
    fn empty_training_set_is_rejected() {
        assert!(matches!(
            train_online(2, 64, &[], &OnlineConfig::default()),
            Err(HdError::EmptyInput(_))
        ));
    }

    #[test]
    fn correct_confident_predictions_stop_updating() {
        // Once similarity saturates near 1, the weight (1 − δ) vanishes
        // and the class vector stabilizes.
        let h = Hypervector::from_vec(vec![1.0, -1.0, 1.0, -1.0]);
        let mut model = HdModel::new(1, 4).unwrap();
        model.bundle(0, &h).unwrap();
        let before = model.class(0).unwrap().clone();
        online_step(&mut model, &h, 0, 1.0).unwrap();
        let after = model.class(0).unwrap();
        let drift: f64 = before
            .as_slice()
            .iter()
            .zip(after.as_slice())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(drift < 1e-9, "drift = {drift}");
    }

    #[test]
    fn epochs_trace_is_monotone_nondecreasing_mostly() {
        let (train, _) = overlapping_data(4);
        let cfg = OnlineConfig {
            epochs: 6,
            ..OnlineConfig::default()
        };
        let (_, report) = train_online(2, 2_048, &train, &cfg).unwrap();
        let first = report.epoch_accuracy[0];
        let last = report.final_accuracy();
        assert!(last >= first - 0.05, "{first} -> {last}");
    }
}
