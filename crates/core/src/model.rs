//! HD training (Eq. 3), retraining (Eq. 5) and inference (Eq. 4).
//!
//! A trained model is one hypervector per class: `C_l = Σ_j H_{l,j}`.
//! Inference computes the cosine similarity of a query with every class;
//! as noted under Eq. (4), the query's own norm is a shared factor across
//! classes and is discarded, while the class norms are computed once and
//! cached.
//!
//! Scoring runs against a lazily built [`ClassMatrix`] snapshot — a
//! contiguous row-major copy of the class hypervectors with cached norms
//! and packed sign rows — invalidated on every mutation. The naive
//! per-query path is retained as [`HdModel::predict_reference`], the
//! arithmetic baseline the kernel parity tests (and the `perfsuite`
//! speedup measurements) compare against.

use std::sync::{Arc, OnceLock};

use serde::{Deserialize, Serialize};

use crate::error::HdError;
use crate::hypervector::{BipolarHv, Hypervector};
use crate::kernels::{ClassMatrix, PackedClassMatrix};
use crate::pool;
use crate::prune::PruneMask;
use crate::quantize::QuantScheme;

/// Queries scored together per cache tile of the batched predict path:
/// one class row is streamed against this many queries while hot.
/// `pub(crate)` so [`crate::plan::ModelPlan`] records the same tiling
/// in its compiled kernel descriptor.
pub(crate) const PREDICT_BLOCK: usize = 8;

/// A trained (or in-training) HD classification model.
///
/// # Examples
///
/// ```
/// use privehd_core::{HdModel, Hypervector};
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let mut model = HdModel::new(2, 4)?;
/// model.bundle(0, &Hypervector::from_vec(vec![1.0, 1.0, -1.0, -1.0]))?;
/// model.bundle(1, &Hypervector::from_vec(vec![-1.0, -1.0, 1.0, 1.0]))?;
/// let p = model.predict(&Hypervector::from_vec(vec![2.0, 1.0, -1.0, 0.0]))?;
/// assert_eq!(p.class, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HdModel {
    classes: Vec<Hypervector>,
    dim: usize,
    /// Lazily built scoring snapshot (contiguous rows + packed signs +
    /// norms); replaced with an empty cell on every mutation.
    #[serde(skip)]
    cache: OnceLock<Arc<ClassMatrix>>,
    /// Lazily built packed-native scoring snapshot: `Some` only when the
    /// class rows factor exactly into `sign × per-word scale` (see
    /// [`PackedClassMatrix::try_from_classes`]), `None` caches the
    /// "not packable" answer so the probe runs once per mutation.
    #[serde(skip)]
    packed_cache: OnceLock<Option<Arc<PackedClassMatrix>>>,
}

impl PartialEq for HdModel {
    /// Models compare by class hypervectors alone; the scoring cache is
    /// derived state.
    fn eq(&self, other: &Self) -> bool {
        self.dim == other.dim && self.classes == other.classes
    }
}

/// The result of classifying one query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Prediction {
    /// The winning class label.
    pub class: usize,
    /// The winning (normalized) similarity score.
    pub score: f64,
    /// Per-class similarity scores, index = class label.
    ///
    /// A class whose hypervector has zero norm (never trained) scores
    /// [`f64::NEG_INFINITY`], so it orders below every real similarity
    /// and survives arithmetic like [`Prediction::margin`] without the
    /// wrap-around hazards of the former `f64::MIN` sentinel.
    pub scores: Vec<f64>,
}

impl Prediction {
    /// Margin between the best and second-best class scores — a confidence
    /// proxy used by the information-loss analysis of Fig. 3(b).
    pub fn margin(&self) -> f64 {
        if self.scores.len() < 2 {
            return self.score;
        }
        let mut sorted = self.scores.clone();
        sorted.sort_by(|a, b| b.partial_cmp(a).expect("finite scores"));
        sorted[0] - sorted[1]
    }
}

/// Configuration of the retraining loop (Eq. 5 / Fig. 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetrainConfig {
    /// Maximum number of passes over the training set.
    pub epochs: usize,
    /// Stop early when an epoch ends with training accuracy at least this
    /// value (1.0 disables early stopping on accuracy).
    pub target_accuracy: f64,
    /// Stop early when an epoch makes no model update.
    pub stop_when_converged: bool,
}

impl Default for RetrainConfig {
    fn default() -> Self {
        // Fig. 4: 1-2 iterations suffice; we default to a small cap.
        Self {
            epochs: 5,
            target_accuracy: 1.0,
            stop_when_converged: true,
        }
    }
}

/// Per-epoch record returned by [`HdModel::retrain`], enough to re-plot
/// Fig. 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrainReport {
    /// Training accuracy measured at the end of each epoch.
    pub epoch_accuracy: Vec<f64>,
    /// Number of class updates (mispredictions) per epoch.
    pub epoch_updates: Vec<usize>,
}

impl RetrainReport {
    /// Accuracy after the final epoch (0.0 when no epoch ran).
    pub fn final_accuracy(&self) -> f64 {
        self.epoch_accuracy.last().copied().unwrap_or(0.0)
    }

    /// Number of epochs actually executed.
    pub fn epochs_run(&self) -> usize {
        self.epoch_accuracy.len()
    }
}

impl HdModel {
    /// Creates an untrained model with `num_classes` all-zero class
    /// hypervectors of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyDimension`] if `dim == 0` and
    /// [`HdError::InvalidConfig`] if `num_classes == 0`.
    pub fn new(num_classes: usize, dim: usize) -> Result<Self, HdError> {
        if num_classes == 0 {
            return Err(HdError::InvalidConfig(
                "model needs at least one class".to_owned(),
            ));
        }
        let classes = (0..num_classes)
            .map(|_| Hypervector::zeros(dim))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            classes,
            dim,
            cache: OnceLock::new(),
            packed_cache: OnceLock::new(),
        })
    }

    /// Builds a model directly from class hypervectors (e.g. after adding
    /// privacy noise).
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyInput`] for an empty vector and
    /// [`HdError::DimensionMismatch`] if classes disagree on dimension.
    pub fn from_classes(classes: Vec<Hypervector>) -> Result<Self, HdError> {
        let first_dim = classes
            .first()
            .ok_or(HdError::EmptyInput("class hypervectors"))?
            .dim();
        for c in &classes {
            if c.dim() != first_dim {
                return Err(HdError::DimensionMismatch {
                    expected: first_dim,
                    actual: c.dim(),
                });
            }
        }
        Ok(Self {
            classes,
            dim: first_dim,
            cache: OnceLock::new(),
            packed_cache: OnceLock::new(),
        })
    }

    /// Number of classes `|C|`.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality `D_hv`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The class hypervector for `label`.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::ClassOutOfRange`] for an invalid label.
    pub fn class(&self, label: usize) -> Result<&Hypervector, HdError> {
        self.classes.get(label).ok_or(HdError::ClassOutOfRange {
            class: label,
            num_classes: self.classes.len(),
        })
    }

    /// Iterates over the class hypervectors in label order.
    pub fn classes(&self) -> std::slice::Iter<'_, Hypervector> {
        self.classes.iter()
    }

    /// Training step of Eq. (3): adds an encoded hypervector into its
    /// class.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::ClassOutOfRange`] or
    /// [`HdError::DimensionMismatch`].
    pub fn bundle(&mut self, label: usize, encoded: &Hypervector) -> Result<(), HdError> {
        let n = self.classes.len();
        let class = self
            .classes
            .get_mut(label)
            .ok_or(HdError::ClassOutOfRange {
                class: label,
                num_classes: n,
            })?;
        class.add_scaled(encoded, 1.0)?;
        self.refresh_class(label);
        Ok(())
    }

    /// Trains a fresh model from encoded hypervectors (Eq. 3).
    ///
    /// # Errors
    ///
    /// Propagates label/dimension errors; returns
    /// [`HdError::EmptyInput`] for an empty training set.
    pub fn train(
        num_classes: usize,
        dim: usize,
        samples: &[(Hypervector, usize)],
    ) -> Result<Self, HdError> {
        if samples.is_empty() {
            return Err(HdError::EmptyInput("training set"));
        }
        let mut model = Self::new(num_classes, dim)?;
        for (h, y) in samples {
            model.bundle(*y, h)?;
        }
        Ok(model)
    }

    /// Classifies a query using the normalized dot product of Eq. (4).
    ///
    /// Only the class norms enter the normalization; the query norm is a
    /// constant factor across classes and is skipped, exactly as the paper
    /// notes under Eq. (4). Scoring runs against the cached
    /// [`ClassMatrix`] with the unrolled dot kernel; zero-norm classes
    /// score [`f64::NEG_INFINITY`] (see [`Prediction::scores`]).
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] for a wrong query dimension
    /// and [`HdError::ZeroNorm`] if every class hypervector is zero.
    pub fn predict(&self, query: &Hypervector) -> Result<Prediction, HdError> {
        crate::plan::note_kernel_probe();
        if query.dim() != self.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        let matrix = self.matrix();
        if matrix.all_zero() {
            return Err(HdError::ZeroNorm);
        }
        let mut scores = Vec::new();
        matrix.scores_into(query.as_slice(), &mut scores);
        Ok(prediction_from_scores(scores))
    }

    /// The retained naive inference path: one iterator-order dense dot
    /// per class — exactly the pre-kernel scoring arithmetic. Norms come
    /// from the cached snapshot (as the pre-kernel path used its norm
    /// cache), so perfsuite's baseline pays only the dots, not a
    /// per-query norm recomputation. Parity tests and the `perfsuite`
    /// speedup baseline compare [`HdModel::predict`] against this.
    ///
    /// # Errors
    ///
    /// Same contract as [`HdModel::predict`].
    pub fn predict_reference(&self, query: &Hypervector) -> Result<Prediction, HdError> {
        if query.dim() != self.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        let matrix = self.matrix();
        if matrix.all_zero() {
            return Err(HdError::ZeroNorm);
        }
        let norms = matrix.norms();
        let mut scores = Vec::with_capacity(self.classes.len());
        for (class, &norm) in self.classes.iter().zip(norms.iter()) {
            let dot = query.dot(class)?;
            scores.push(if norm == 0.0 {
                f64::NEG_INFINITY
            } else {
                dot / norm
            });
        }
        Ok(prediction_from_scores(scores))
    }

    /// Classifies a batch of queries with the blocked kernel, fanning
    /// tiles out over the persistent [`crate::pool`] workers.
    ///
    /// Each query goes through exactly the same arithmetic as
    /// [`HdModel::predict`] (one class row is simply scored against a
    /// whole tile of queries while cache-hot), so the results are
    /// bit-identical to calling `predict` sequentially. (The
    /// `privehd-serve` engine answers the requests of a batch one
    /// `predict` call at a time for per-request error isolation; this
    /// API is the bulk path for callers that hold a whole batch and want
    /// one `Result`.)
    ///
    /// # Errors
    ///
    /// Propagates the first prediction error encountered (dimension
    /// mismatch, [`HdError::ZeroNorm`] on an untrained model).
    pub fn predict_batch(&self, queries: &[Hypervector]) -> Result<Vec<Prediction>, HdError> {
        self.predict_batch_with(queries, pool::global().threads() + 1)
    }

    /// [`HdModel::predict_batch`] with an explicit concurrency cap, for
    /// callers that already provide their own parallelism and pass 1 to
    /// keep the batch single-threaded.
    ///
    /// # Errors
    ///
    /// Propagates the first prediction error encountered.
    pub fn predict_batch_with(
        &self,
        queries: &[Hypervector],
        threads: usize,
    ) -> Result<Vec<Prediction>, HdError> {
        crate::plan::note_kernel_probe();
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        // Validate everything up front so the parallel section is
        // infallible; the first offending query wins, as before.
        for q in queries {
            if q.dim() != self.dim {
                return Err(HdError::DimensionMismatch {
                    expected: self.dim,
                    actual: q.dim(),
                });
            }
        }
        let matrix = self.matrix();
        if matrix.all_zero() {
            return Err(HdError::ZeroNorm);
        }
        let threads = threads.max(1).min(queries.len());
        if threads <= 1 || queries.len() < 2 * PREDICT_BLOCK {
            return Ok(predict_blocks(matrix, queries));
        }
        let chunk = queries.len().div_ceil(threads);
        let tasks = queries.len().div_ceil(chunk);
        let results: Vec<Vec<Prediction>> = pool::global().map(tasks, |t| {
            predict_blocks(
                matrix,
                &queries[t * chunk..((t + 1) * chunk).min(queries.len())],
            )
        });
        Ok(results.into_iter().flatten().collect())
    }

    /// Classifies a bit-packed bipolar query — the fast path for
    /// obfuscated queries, whose components are all `±1` after the
    /// [`crate::obfuscate::Obfuscator`] quantization step.
    ///
    /// When the class rows factor exactly into packed signs × per-word
    /// scales (sign-only models after
    /// [`HdModel::quantize_classes`](Self::quantize_classes) with
    /// [`QuantScheme::Bipolar`]), scoring runs entirely in the packed
    /// domain through [`PackedClassMatrix`] — `XOR` + `POPCNT` word
    /// arithmetic, bit-exact against the dense scores for ±1 rows, and
    /// free of any O(dim) dense traffic. Otherwise the per-class dot
    /// selects signs branchlessly from the packed words
    /// ([`crate::kernels::dot_sign_dense`]) against the cached
    /// [`ClassMatrix`] rows. Either way the score is mathematically
    /// identical to [`HdModel::predict`] on [`BipolarHv::to_dense`], but
    /// floating-point summation order can differ for non-±1 rows, so
    /// last-ulp ties may resolve differently there.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] for a wrong query dimension
    /// and [`HdError::ZeroNorm`] if every class hypervector is zero.
    pub fn predict_packed(&self, query: &BipolarHv) -> Result<Prediction, HdError> {
        crate::plan::note_kernel_probe();
        if query.dim() != self.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        let mut scores = Vec::new();
        match self.packed_matrix() {
            Some(packed) if !packed.all_zero() => {
                packed.scores_packed_into(query.words(), &mut scores);
            }
            Some(_) => return Err(HdError::ZeroNorm),
            None => {
                let matrix = self.matrix();
                if matrix.all_zero() {
                    return Err(HdError::ZeroNorm);
                }
                matrix.scores_packed_into(query.words(), &mut scores);
            }
        }
        Ok(prediction_from_scores(scores))
    }

    /// Classification accuracy over a labelled set of encoded queries.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors; returns [`HdError::EmptyInput`] for an
    /// empty test set.
    pub fn accuracy(&self, samples: &[(Hypervector, usize)]) -> Result<f64, HdError> {
        if samples.is_empty() {
            return Err(HdError::EmptyInput("evaluation set"));
        }
        let mut correct = 0usize;
        for (h, y) in samples {
            if self.predict(h)?.class == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / samples.len() as f64)
    }

    /// Retraining of Eq. (5): iterates over the training set, and for every
    /// misprediction moves the query out of the wrong class and into the
    /// right one. Returns the per-epoch accuracy trace of Fig. 4.
    ///
    /// # Errors
    ///
    /// Propagates label/dimension errors; returns
    /// [`HdError::EmptyInput`] for an empty training set.
    pub fn retrain(
        &mut self,
        samples: &[(Hypervector, usize)],
        config: &RetrainConfig,
    ) -> Result<RetrainReport, HdError> {
        if samples.is_empty() {
            return Err(HdError::EmptyInput("retraining set"));
        }
        let mut report = RetrainReport {
            epoch_accuracy: Vec::new(),
            epoch_updates: Vec::new(),
        };
        for _ in 0..config.epochs {
            let mut updates = 0usize;
            for (h, y) in samples {
                let pred = self.predict(h)?;
                if pred.class != *y {
                    // Eq. (5): C_l += H ; C_l' −= H.
                    self.classes[*y].add_scaled(h, 1.0)?;
                    self.classes[pred.class].add_scaled(h, -1.0)?;
                    self.refresh_class(*y);
                    self.refresh_class(pred.class);
                    updates += 1;
                }
            }
            let acc = self.accuracy(samples)?;
            report.epoch_accuracy.push(acc);
            report.epoch_updates.push(updates);
            if acc >= config.target_accuracy || (config.stop_when_converged && updates == 0) {
                break;
            }
        }
        Ok(report)
    }

    /// Retraining restricted to a prune mask (§III-B1): mispredicted
    /// queries are masked before the Eq. (5) update so pruned dimensions
    /// stay *perpetually* zero.
    ///
    /// # Errors
    ///
    /// Propagates label/dimension errors.
    pub fn retrain_masked(
        &mut self,
        samples: &[(Hypervector, usize)],
        mask: &PruneMask,
        config: &RetrainConfig,
    ) -> Result<RetrainReport, HdError> {
        let masked: Vec<(Hypervector, usize)> = samples
            .iter()
            .map(|(h, y)| {
                let mut m = h.clone();
                mask.apply(&mut m)?;
                Ok((m, *y))
            })
            .collect::<Result<_, HdError>>()?;
        self.retrain(&masked, config)
    }

    /// Applies a prune mask to every class hypervector, zeroing the pruned
    /// dimensions.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if the mask dimension
    /// differs.
    pub fn apply_mask(&mut self, mask: &PruneMask) -> Result<(), HdError> {
        for c in &mut self.classes {
            mask.apply(c)?;
        }
        self.invalidate();
        Ok(())
    }

    /// Quantizes every class hypervector with `scheme` (used for the
    /// model-compression comparison against prior work \[17\], *not* by
    /// Prive-HD itself, which keeps classes full precision).
    pub fn quantize_classes(&mut self, scheme: QuantScheme) {
        for c in &mut self.classes {
            let sigma = QuantScheme::empirical_sigma(c).max(f64::MIN_POSITIVE);
            *c = scheme.quantize(c, sigma);
        }
        self.invalidate();
    }

    /// Adds `noise[l]` to class `l` — the Gaussian mechanism application
    /// point of Eq. (8). The caller (in `privehd-privacy`) owns noise
    /// generation and calibration.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::InvalidConfig`] if `noise.len()` differs from
    /// the class count, or a dimension error from the addition.
    pub fn add_class_noise(&mut self, noise: &[Hypervector]) -> Result<(), HdError> {
        if noise.len() != self.classes.len() {
            return Err(HdError::InvalidConfig(format!(
                "noise for {} classes supplied to a model with {}",
                noise.len(),
                self.classes.len()
            )));
        }
        for (c, n) in self.classes.iter_mut().zip(noise) {
            c.add_scaled(n, 1.0)?;
        }
        self.invalidate();
        Ok(())
    }

    /// Subtracts model `other` class-wise — the adversary's
    /// model-subtraction step from §III-A used to expose the encoding of a
    /// missing training input.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::InvalidConfig`] on class-count mismatch or a
    /// dimension error.
    pub fn difference(&self, other: &Self) -> Result<Vec<Hypervector>, HdError> {
        if self.classes.len() != other.classes.len() {
            return Err(HdError::InvalidConfig(
                "models have different class counts".to_owned(),
            ));
        }
        self.classes
            .iter()
            .zip(&other.classes)
            .map(|(a, b)| {
                let mut d = a.clone();
                d.add_scaled(b, -1.0)?;
                Ok(d)
            })
            .collect()
    }

    /// The cached scoring snapshot, built on first use after a mutation.
    fn matrix(&self) -> &Arc<ClassMatrix> {
        self.cache
            .get_or_init(|| Arc::new(ClassMatrix::from_classes(&self.classes)))
    }

    /// The cached packed-native snapshot: `Some` when the class rows are
    /// exactly packable, `None` otherwise (cached either way).
    fn packed_matrix(&self) -> Option<&Arc<PackedClassMatrix>> {
        self.packed_cache
            .get_or_init(|| PackedClassMatrix::try_from_classes(&self.classes).map(Arc::new))
            .as_ref()
    }

    /// Drops the scoring snapshots; called by mutations that touch many
    /// classes at once.
    fn invalidate(&mut self) {
        self.cache = OnceLock::new();
        self.packed_cache = OnceLock::new();
    }

    /// Refreshes a single class row of the scoring snapshot in place
    /// when the snapshot exists and is not shared (the common retraining
    /// case), falling back to a full invalidation otherwise. Keeps the
    /// per-update cost at one row copy instead of a whole-matrix
    /// rebuild. The packed snapshot has no in-place row update (the
    /// mutation can change packability), so it is always dropped.
    fn refresh_class(&mut self, label: usize) {
        self.packed_cache = OnceLock::new();
        let class = &self.classes[label];
        if let Some(arc) = self.cache.get_mut() {
            if let Some(matrix) = Arc::get_mut(arc) {
                matrix.update_class(label, class);
                return;
            }
        }
        self.cache = OnceLock::new();
    }

    /// The contiguous scoring snapshot (rows, packed signs, norms) the
    /// predict kernels run against, building it if necessary.
    pub fn class_matrix(&self) -> &ClassMatrix {
        self.matrix()
    }

    /// The packed-native scoring snapshot [`HdModel::predict_packed`]
    /// uses when the class rows factor exactly into `sign × scale` word
    /// blocks; `None` (cached) when they do not. Serving layers call
    /// this once at publish time so the probe/build never runs on the
    /// request path, and scrape its
    /// [`memory_bytes`](PackedClassMatrix::memory_bytes) next to the
    /// dense snapshot's.
    pub fn packed_class_matrix(&self) -> Option<&PackedClassMatrix> {
        self.packed_matrix().map(Arc::as_ref)
    }

    /// Rebuilds the scoring snapshots (norms included) eagerly. Call
    /// after a batch of mutations when many predictions follow;
    /// [`HdModel::predict`] works correctly either way.
    pub fn refresh_norms(&mut self) {
        self.invalidate();
        let _ = self.matrix();
        let _ = self.packed_matrix();
    }

    /// Shared-ownership handle to the dense scoring snapshot, for the
    /// plan compiler: the [`crate::plan::ModelPlan`] pins the snapshot
    /// it was compiled against so a later model mutation can never
    /// desynchronize a published plan from its matrices.
    pub(crate) fn matrix_arc(&self) -> Arc<ClassMatrix> {
        Arc::clone(self.matrix())
    }

    /// Shared-ownership handle to the packed scoring snapshot (`None`
    /// cached when the rows do not factor); plan-compiler counterpart of
    /// [`HdModel::matrix_arc`].
    pub(crate) fn packed_matrix_arc(&self) -> Option<Arc<PackedClassMatrix>> {
        self.packed_cache
            .get_or_init(|| PackedClassMatrix::try_from_classes(&self.classes).map(Arc::new))
            .clone()
    }
}

/// Shared argmax: winner = the last maximal score, matching the
/// pre-kernel `Iterator::max_by` behavior on ties. `pub(crate)` so the
/// compiled-plan predict paths resolve ties identically.
pub(crate) fn prediction_from_scores(scores: Vec<f64>) -> Prediction {
    let (class, &score) = scores
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN scores"))
        .expect("at least one class");
    Prediction {
        class,
        score,
        scores,
    }
}

/// Scores a slice of (pre-validated) queries tile by tile against the
/// matrix snapshot.
fn predict_blocks(matrix: &ClassMatrix, queries: &[Hypervector]) -> Vec<Prediction> {
    let mut out = Vec::with_capacity(queries.len());
    let mut refs: Vec<&[f64]> = Vec::with_capacity(PREDICT_BLOCK);
    for block in queries.chunks(PREDICT_BLOCK) {
        refs.clear();
        refs.extend(block.iter().map(Hypervector::as_slice));
        // The score rows are moved into the returned `Prediction`s, so
        // they are the one allocation per query that must happen anyway.
        let mut scores: Vec<Vec<f64>> = vec![Vec::new(); block.len()];
        matrix.scores_block_into(&refs, &mut scores);
        out.extend(scores.into_iter().map(prediction_from_scores));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig, ScalarEncoder};

    fn two_cluster_data(enc: &ScalarEncoder, n_per_class: usize) -> Vec<(Hypervector, usize)> {
        let mut out = Vec::new();
        for i in 0..n_per_class {
            let t = (i % 5) as f64 / 50.0;
            let a = vec![0.1 + t, 0.2 + t, 0.1, 0.9 - t, 0.8, 0.9];
            let b = vec![0.9 - t, 0.8, 0.9, 0.1 + t, 0.2, 0.1 + t];
            out.push((enc.encode(&a).unwrap(), 0));
            out.push((enc.encode(&b).unwrap(), 1));
        }
        out
    }

    #[test]
    fn new_validates() {
        assert!(HdModel::new(0, 8).is_err());
        assert!(HdModel::new(2, 0).is_err());
    }

    #[test]
    fn from_classes_checks_dims() {
        let a = Hypervector::zeros(4).unwrap();
        let b = Hypervector::zeros(8).unwrap();
        assert!(HdModel::from_classes(vec![a.clone(), b]).is_err());
        assert!(HdModel::from_classes(vec![]).is_err());
        assert!(HdModel::from_classes(vec![a]).is_ok());
    }

    #[test]
    fn bundle_rejects_bad_label() {
        let mut m = HdModel::new(2, 4).unwrap();
        let h = Hypervector::zeros(4).unwrap();
        assert_eq!(
            m.bundle(2, &h),
            Err(HdError::ClassOutOfRange {
                class: 2,
                num_classes: 2
            })
        );
    }

    #[test]
    fn predict_on_untrained_model_errors() {
        let m = HdModel::new(2, 4).unwrap();
        let h = Hypervector::from_vec(vec![1.0; 4]);
        assert_eq!(m.predict(&h), Err(HdError::ZeroNorm));
    }

    #[test]
    fn train_and_classify_separable_clusters() {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 2_048).with_seed(21)).unwrap();
        let train = two_cluster_data(&enc, 10);
        let model = HdModel::train(2, 2_048, &train).unwrap();
        assert_eq!(model.accuracy(&train).unwrap(), 1.0);
        let qa = enc.encode(&[0.15, 0.25, 0.1, 0.85, 0.8, 0.9]).unwrap();
        let qb = enc.encode(&[0.85, 0.8, 0.95, 0.1, 0.25, 0.1]).unwrap();
        assert_eq!(model.predict(&qa).unwrap().class, 0);
        assert_eq!(model.predict(&qb).unwrap().class, 1);
    }

    #[test]
    fn prediction_scores_are_cosine_like() {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 1_024).with_seed(2)).unwrap();
        let train = two_cluster_data(&enc, 5);
        let model = HdModel::train(2, 1_024, &train).unwrap();
        let q = enc.encode(&[0.1, 0.2, 0.1, 0.9, 0.8, 0.9]).unwrap();
        let p = model.predict(&q).unwrap();
        assert_eq!(p.scores.len(), 2);
        assert!(p.margin() > 0.0);
        // score == dot/||C|| (query norm skipped), so dividing by ||q||
        // recovers a true cosine in [−1, 1].
        let cos = p.score / q.l2_norm();
        assert!((-1.0..=1.0).contains(&cos));
    }

    #[test]
    fn retrain_fixes_a_corrupted_model() {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 2_048).with_seed(5)).unwrap();
        let train = two_cluster_data(&enc, 10);
        let mut model = HdModel::train(2, 2_048, &train).unwrap();
        // Corrupt: swap the two classes partially by bundling cross-class.
        let (h0, _) = &train[0];
        for _ in 0..30 {
            model.bundle(1, h0).unwrap();
        }
        let before = model.accuracy(&train).unwrap();
        let report = model.retrain(&train, &RetrainConfig::default()).unwrap();
        let after = model.accuracy(&train).unwrap();
        assert!(
            after >= before,
            "retraining must not hurt: {before} -> {after}"
        );
        assert!(after > 0.95, "after = {after}");
        assert!(report.epochs_run() >= 1);
    }

    #[test]
    fn retrain_report_tracks_updates() {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 1_024).with_seed(6)).unwrap();
        let train = two_cluster_data(&enc, 8);
        let mut model = HdModel::train(2, 1_024, &train).unwrap();
        let report = model.retrain(&train, &RetrainConfig::default()).unwrap();
        // Perfectly separable: converges with zero updates quickly.
        assert_eq!(*report.epoch_updates.last().unwrap(), 0);
        assert_eq!(report.final_accuracy(), 1.0);
    }

    #[test]
    fn retrain_masked_keeps_pruned_dims_zero() {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 512).with_seed(7)).unwrap();
        let train = two_cluster_data(&enc, 6);
        let mut model = HdModel::train(2, 512, &train).unwrap();
        let mask =
            PruneMask::select(&model, 256, crate::prune::PruneStrategy::LeastEffectual).unwrap();
        model.apply_mask(&mask).unwrap();
        model
            .retrain_masked(&train, &mask, &RetrainConfig::default())
            .unwrap();
        for c in model.classes() {
            for j in mask.pruned_indices() {
                assert_eq!(c[j], 0.0, "pruned dim {j} must stay zero");
            }
        }
    }

    #[test]
    fn difference_recovers_the_missing_input_encoding() {
        // §III-A membership attack: model(D2) − model(D1) = encoding of the
        // extra input.
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 1_024).with_seed(8)).unwrap();
        let train = two_cluster_data(&enc, 5);
        let extra = enc.encode(&[0.3, 0.4, 0.5, 0.6, 0.7, 0.8]).unwrap();
        let m1 = HdModel::train(2, 1_024, &train).unwrap();
        let mut with_extra = train.clone();
        with_extra.push((extra.clone(), 0));
        let m2 = HdModel::train(2, 1_024, &with_extra).unwrap();
        let diff = m2.difference(&m1).unwrap();
        // Floating-point summation order differs, so compare approximately.
        let err: f64 = diff[0]
            .as_slice()
            .iter()
            .zip(extra.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-9, "max abs err = {err}");
        assert!(diff[1].l2_norm() < 1e-9);
    }

    #[test]
    fn add_class_noise_validates_count() {
        let mut m = HdModel::new(2, 8).unwrap();
        let noise = vec![Hypervector::zeros(8).unwrap()];
        assert!(m.add_class_noise(&noise).is_err());
    }

    #[test]
    fn refresh_norms_matches_lazy_path() {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 256).with_seed(9)).unwrap();
        let train = two_cluster_data(&enc, 4);
        let mut a = HdModel::train(2, 256, &train).unwrap();
        let b = a.clone();
        a.refresh_norms();
        let q = &train[0].0;
        assert_eq!(a.predict(q).unwrap(), b.predict(q).unwrap());
    }

    #[test]
    fn in_place_cache_refresh_matches_full_rebuild() {
        // bundle/retrain refresh one matrix row in place when the cache
        // is hot and unshared; the result must equal a cold rebuild.
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 256).with_seed(12)).unwrap();
        let train = two_cluster_data(&enc, 4);
        let mut model = HdModel::train(2, 256, &train).unwrap();
        let q = &train[0].0;
        let _ = model.predict(q).unwrap(); // build the cache
        model.bundle(1, &train[1].0).unwrap(); // in-place row refresh
        let warm = model.predict(q).unwrap();
        let cold = HdModel::from_classes(model.classes().cloned().collect::<Vec<_>>())
            .unwrap()
            .predict(q)
            .unwrap();
        assert_eq!(warm, cold);
    }

    #[test]
    fn predict_batch_is_bit_identical_to_sequential() {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 1_024).with_seed(31)).unwrap();
        let train = two_cluster_data(&enc, 8);
        let model = HdModel::train(2, 1_024, &train).unwrap();
        let queries: Vec<Hypervector> = train.iter().map(|(h, _)| h.clone()).collect();
        let batched = model.predict_batch(&queries).unwrap();
        assert_eq!(batched.len(), queries.len());
        for (q, b) in queries.iter().zip(&batched) {
            assert_eq!(&model.predict(q).unwrap(), b);
        }
        // Explicit thread counts (including the sequential fallback) agree.
        assert_eq!(model.predict_batch_with(&queries, 1).unwrap(), batched);
        assert_eq!(model.predict_batch_with(&queries, 3).unwrap(), batched);
    }

    #[test]
    fn predict_batch_propagates_errors() {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 256).with_seed(32)).unwrap();
        let train = two_cluster_data(&enc, 4);
        let model = HdModel::train(2, 256, &train).unwrap();
        let mut queries: Vec<Hypervector> = train.iter().map(|(h, _)| h.clone()).collect();
        queries.push(Hypervector::zeros(128).unwrap());
        assert!(model.predict_batch(&queries).is_err());
    }

    #[test]
    fn predict_packed_matches_dense_on_bipolar_queries() {
        use crate::hypervector::BipolarHv;
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 512).with_seed(33)).unwrap();
        let train = two_cluster_data(&enc, 6);
        let model = HdModel::train(2, 512, &train).unwrap();
        for seed in 0..10 {
            let packed = BipolarHv::random(512, seed);
            let fast = model.predict_packed(&packed).unwrap();
            let slow = model.predict(&packed.to_dense()).unwrap();
            assert_eq!(fast.class, slow.class, "seed {seed}");
            for (a, b) in fast.scores.iter().zip(&slow.scores) {
                assert!((a - b).abs() < 1e-9, "seed {seed}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn sign_only_model_routes_through_packed_matrix() {
        use crate::hypervector::BipolarHv;
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 300).with_seed(41)).unwrap();
        let train = two_cluster_data(&enc, 6);
        let mut model = HdModel::train(2, 300, &train).unwrap();
        // Float accumulator rows do not factor into sign × scale…
        assert!(model.packed_class_matrix().is_none());
        // …but bipolar-quantized rows do (and the mutation must drop the
        // cached "not packable" answer).
        model.quantize_classes(QuantScheme::Bipolar);
        let packed = model.packed_class_matrix().expect("±1 rows pack exactly");
        assert!(
            packed.memory_bytes() * 8 < model.class_matrix().memory_bytes(),
            "packed snapshot must be far smaller than dense"
        );
        for seed in 0..8 {
            let q = BipolarHv::random(300, seed);
            let fast = model.predict_packed(&q).unwrap();
            let mut dense_scores = Vec::new();
            model
                .class_matrix()
                .scores_packed_into(q.words(), &mut dense_scores);
            assert_eq!(
                fast.scores, dense_scores,
                "seed {seed}: popcount path must bit-match"
            );
        }
    }

    #[test]
    fn predict_packed_validates_dim_and_norms() {
        use crate::hypervector::BipolarHv;
        let m = HdModel::new(2, 64).unwrap();
        assert_eq!(
            m.predict_packed(&BipolarHv::random(32, 0)),
            Err(HdError::DimensionMismatch {
                expected: 64,
                actual: 32
            })
        );
        assert_eq!(
            m.predict_packed(&BipolarHv::random(64, 0)),
            Err(HdError::ZeroNorm)
        );
    }

    #[test]
    fn accuracy_requires_samples() {
        let m = HdModel::new(2, 4).unwrap();
        assert_eq!(m.accuracy(&[]), Err(HdError::EmptyInput("evaluation set")));
    }
}
