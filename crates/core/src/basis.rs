//! Generation of base (location) and level hypervectors.
//!
//! Eq. (2) of the paper requires `D_iv` fixed random bipolar *base*
//! hypervectors — one per input feature — to retain the spatial/temporal
//! location of features, and, for the record encoding of Eq. (2b), a chain
//! of *level* hypervectors `L_0 … L_{ℓ−1}` where `L_0` and `L_{ℓ−1}` are
//! orthogonal and each `L_{k+1}` flips `D/(2ℓ)` randomly chosen bits of
//! `L_k`, so that nearby feature values map to similar hypervectors.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::error::HdError;
use crate::hypervector::BipolarHv;

/// Deterministic factory for the random hypervectors of an encoder.
///
/// All randomness flows from a single `u64` master seed so an encoder (and
/// therefore a whole experiment) can be reproduced exactly — also the basis
/// of the *rematerialization* trick used in hardware, where base vectors
/// are regenerated on the fly rather than stored.
#[derive(Debug, Clone)]
pub struct BasisGenerator {
    seed: u64,
}

impl BasisGenerator {
    /// Creates a generator rooted at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Generates the item memory: `count` base hypervectors of dimension
    /// `dim`, one per input feature.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyDimension`] when `dim == 0` and
    /// [`HdError::InvalidConfig`] when `count == 0`.
    pub fn item_memory(&self, count: usize, dim: usize) -> Result<ItemMemory, HdError> {
        if dim == 0 {
            return Err(HdError::EmptyDimension);
        }
        if count == 0 {
            return Err(HdError::InvalidConfig(
                "item memory needs at least one base hypervector".to_owned(),
            ));
        }
        // Each base vector gets its own deterministic stream, derived from
        // the master seed with a SplitMix64-style mix so neighbouring
        // features are decorrelated.
        let bases = (0..count)
            .map(|k| BipolarHv::random(dim, mix(self.seed, k as u64)))
            .collect();
        Ok(ItemMemory { bases, dim })
    }

    /// Generates the level memory: `levels` hypervectors of dimension `dim`
    /// forming the flip chain described in §II-A.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyDimension`] when `dim == 0` and
    /// [`HdError::InvalidConfig`] when `levels < 2`.
    pub fn level_memory(&self, levels: usize, dim: usize) -> Result<LevelMemory, HdError> {
        if dim == 0 {
            return Err(HdError::EmptyDimension);
        }
        if levels < 2 {
            return Err(HdError::InvalidConfig(
                "level memory needs at least two levels".to_owned(),
            ));
        }
        let mut rng = StdRng::seed_from_u64(mix(self.seed, 0xC0FF_EE00));
        let first = BipolarHv::random_with(dim, &mut rng);
        // Flipping D/(2ℓ) bits per step makes L_0 and L_{ℓ−1} differ in
        // about D/2 positions, i.e. orthogonal.
        let flips_per_step = (dim / (2 * levels)).max(1);
        let mut indices: Vec<usize> = (0..dim).collect();
        indices.shuffle(&mut rng);
        let mut vectors = Vec::with_capacity(levels);
        vectors.push(first);
        for step in 1..levels {
            let mut next = vectors[step - 1].clone();
            for &j in indices
                .iter()
                .cycle()
                .skip((step - 1) * flips_per_step)
                .take(flips_per_step)
            {
                next.flip(j);
            }
            vectors.push(next);
        }
        Ok(LevelMemory {
            vectors,
            dim,
            flips_per_step,
        })
    }
}

/// SplitMix64 finalizer: decorrelates per-feature seeds derived from the
/// master seed.
fn mix(seed: u64, k: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(k.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The fixed base/location hypervectors `B_0 … B_{D_iv−1}` of Eq. (2).
///
/// # Examples
///
/// ```
/// use privehd_core::BasisGenerator;
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let im = BasisGenerator::new(7).item_memory(617, 10_000)?;
/// assert_eq!(im.len(), 617);
/// // Distinct base hypervectors are quasi-orthogonal.
/// let sim = im.base(0).cosine(im.base(1))?;
/// assert!(sim.abs() < 0.05);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ItemMemory {
    bases: Vec<BipolarHv>,
    dim: usize,
}

impl ItemMemory {
    /// The base hypervector `B_k` for feature `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.len()`.
    pub fn base(&self, k: usize) -> &BipolarHv {
        &self.bases[k]
    }

    /// Number of base hypervectors (`D_iv`, the feature count).
    pub fn len(&self) -> usize {
        self.bases.len()
    }

    /// Whether the item memory is empty (never true for a constructed one).
    pub fn is_empty(&self) -> bool {
        self.bases.is_empty()
    }

    /// The hypervector dimensionality `D_hv`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Iterates over the base hypervectors in feature order.
    pub fn iter(&self) -> std::slice::Iter<'_, BipolarHv> {
        self.bases.iter()
    }

    /// Mean absolute pairwise cosine similarity over `samples` random pairs
    /// — a cheap orthogonality diagnostic (§II-A requires `δ(B_i, B_j) ≈ 0`).
    pub fn orthogonality(&self, samples: usize, seed: u64) -> f64 {
        use rand::Rng;
        if self.bases.len() < 2 || samples == 0 {
            return 0.0;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut acc = 0.0;
        for _ in 0..samples {
            let i = rng.gen_range(0..self.bases.len());
            let mut j = rng.gen_range(0..self.bases.len());
            while j == i {
                j = rng.gen_range(0..self.bases.len());
            }
            acc += self.bases[i]
                .cosine(&self.bases[j])
                .expect("same dimension by construction")
                .abs();
        }
        acc / samples as f64
    }
}

impl<'a> IntoIterator for &'a ItemMemory {
    type Item = &'a BipolarHv;
    type IntoIter = std::slice::Iter<'a, BipolarHv>;

    fn into_iter(self) -> Self::IntoIter {
        self.bases.iter()
    }
}

/// The level hypervectors `L_0 … L_{ℓ−1}` of the record encoding (Eq. 2b).
///
/// Adjacent levels are similar, distant levels orthogonal — preserving
/// closeness of the original feature values.
///
/// # Examples
///
/// ```
/// use privehd_core::BasisGenerator;
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let lm = BasisGenerator::new(7).level_memory(100, 10_000)?;
/// let near = lm.level(0).cosine(lm.level(1))?;
/// let far = lm.level(0).cosine(lm.level(99))?;
/// assert!(near > 0.9);
/// assert!(far.abs() < 0.1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LevelMemory {
    vectors: Vec<BipolarHv>,
    dim: usize,
    flips_per_step: usize,
}

impl LevelMemory {
    /// The level hypervector `L_k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= self.levels()`.
    pub fn level(&self, k: usize) -> &BipolarHv {
        &self.vectors[k]
    }

    /// Number of quantization levels `ℓ_iv`.
    pub fn levels(&self) -> usize {
        self.vectors.len()
    }

    /// The hypervector dimensionality `D_hv`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// How many bits each level flips relative to the previous one
    /// (`D/(2ℓ)`, clamped to at least 1).
    pub fn flips_per_step(&self) -> usize {
        self.flips_per_step
    }

    /// Maps a normalized feature value in `[0, 1]` to its level index.
    ///
    /// Values outside the range are clamped, mirroring the feature
    /// quantization of Eq. (1).
    pub fn level_index(&self, value: f64) -> usize {
        let clamped = value.clamp(0.0, 1.0);
        let idx = (clamped * self.levels() as f64).floor() as usize;
        idx.min(self.levels() - 1)
    }

    /// The level hypervector for a normalized feature value in `[0, 1]`.
    pub fn level_for(&self, value: f64) -> &BipolarHv {
        self.level(self.level_index(value))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_memory_validates_arguments() {
        let g = BasisGenerator::new(0);
        assert!(matches!(
            g.item_memory(0, 128),
            Err(HdError::InvalidConfig(_))
        ));
        assert!(matches!(g.item_memory(4, 0), Err(HdError::EmptyDimension)));
    }

    #[test]
    fn item_memory_is_reproducible() {
        let a = BasisGenerator::new(5).item_memory(10, 256).unwrap();
        let b = BasisGenerator::new(5).item_memory(10, 256).unwrap();
        for k in 0..10 {
            assert_eq!(a.base(k), b.base(k));
        }
    }

    #[test]
    fn different_seeds_give_different_bases() {
        let a = BasisGenerator::new(5).item_memory(1, 256).unwrap();
        let b = BasisGenerator::new(6).item_memory(1, 256).unwrap();
        assert_ne!(a.base(0), b.base(0));
    }

    #[test]
    fn bases_are_quasi_orthogonal() {
        let im = BasisGenerator::new(1).item_memory(50, 10_000).unwrap();
        assert!(im.orthogonality(100, 9) < 0.03);
    }

    #[test]
    fn level_memory_needs_two_levels() {
        let g = BasisGenerator::new(0);
        assert!(matches!(
            g.level_memory(1, 128),
            Err(HdError::InvalidConfig(_))
        ));
    }

    #[test]
    fn level_chain_similarity_decays_monotonically_on_average() {
        let lm = BasisGenerator::new(3).level_memory(20, 8_192).unwrap();
        let sims: Vec<f64> = (0..20)
            .map(|k| lm.level(0).cosine(lm.level(k)).unwrap())
            .collect();
        assert!(sims[0] > 0.999);
        assert!(sims[19].abs() < 0.1, "ends orthogonal: {}", sims[19]);
        // Loosely monotone: each step decreases similarity.
        for w in sims.windows(2) {
            assert!(w[1] <= w[0] + 1e-9, "monotone decay violated: {sims:?}");
        }
    }

    #[test]
    fn level_index_clamps_and_buckets() {
        let lm = BasisGenerator::new(3).level_memory(10, 512).unwrap();
        assert_eq!(lm.level_index(-0.5), 0);
        assert_eq!(lm.level_index(0.0), 0);
        assert_eq!(lm.level_index(0.95), 9);
        assert_eq!(lm.level_index(1.0), 9);
        assert_eq!(lm.level_index(2.0), 9);
        assert_eq!(lm.level_index(0.45), 4);
    }

    #[test]
    fn adjacent_levels_differ_by_flips_per_step() {
        let lm = BasisGenerator::new(11).level_memory(8, 4_096).unwrap();
        for k in 1..8 {
            let h = lm.level(k - 1).hamming(lm.level(k)).unwrap();
            assert_eq!(h, lm.flips_per_step(), "level {k}");
        }
    }

    #[test]
    fn iterating_item_memory_yields_all_bases() {
        let im = BasisGenerator::new(2).item_memory(7, 64).unwrap();
        assert_eq!(im.iter().count(), 7);
        assert_eq!((&im).into_iter().count(), 7);
    }
}
