//! The two HD encodings of Eq. (2).
//!
//! * [`ScalarEncoder`] — Eq. (2a): `H = Σ_k v_k · B_k`. The scalar feature
//!   value multiplies its base hypervector directly. This is the encoding
//!   whose reversibility (Eq. 9–10) the paper demonstrates, so it is the
//!   one used by the decoding attack and the inference-privacy
//!   experiments.
//! * [`LevelEncoder`] — Eq. (2b): `H = Σ_k (L_{v_k} ⊛ B_k)`. Each feature
//!   value is first quantized to one of `ℓ_iv` level hypervectors, which is
//!   bound (XNOR) to the base hypervector. Both operands are bipolar, which
//!   is what makes the LUT-based hardware implementation of §III-D
//!   possible.
//!
//! Both encoders implement the common [`Encoder`] trait so models,
//! pruning, quantization and the experiment harness are generic over the
//! encoding.

use serde::{Deserialize, Serialize};

use crate::basis::{BasisGenerator, ItemMemory, LevelMemory};
use crate::error::HdError;
use crate::hypervector::Hypervector;
use crate::kernels::{level_encode_majority, scalar_encode_level_sliced, TransposedItemMemory};
use crate::pool;
use crate::prune::PruneMask;

/// Configuration shared by both encoders.
///
/// # Examples
///
/// ```
/// use privehd_core::{EncoderConfig, ScalarEncoder};
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let cfg = EncoderConfig::new(617, 10_000).with_seed(42).with_levels(100);
/// let enc = ScalarEncoder::new(cfg)?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncoderConfig {
    /// Number of input features `D_iv`.
    pub features: usize,
    /// Hypervector dimensionality `D_hv`.
    pub dim: usize,
    /// Number of feature quantization levels `ℓ_iv` (used by
    /// [`LevelEncoder`]; [`ScalarEncoder`] quantizes its input to the same
    /// grid so the two encodings see identical information).
    pub levels: usize,
    /// Master seed for all random hypervectors.
    pub seed: u64,
}

impl EncoderConfig {
    /// Creates a configuration with the paper-typical defaults:
    /// 100 levels and seed 0.
    pub fn new(features: usize, dim: usize) -> Self {
        Self {
            features,
            dim,
            levels: 100,
            seed: 0,
        }
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of feature levels `ℓ_iv`.
    #[must_use]
    pub fn with_levels(mut self, levels: usize) -> Self {
        self.levels = levels;
        self
    }

    fn validate(&self) -> Result<(), HdError> {
        if self.dim == 0 {
            return Err(HdError::EmptyDimension);
        }
        if self.features == 0 {
            return Err(HdError::InvalidConfig(
                "encoder needs at least one feature".to_owned(),
            ));
        }
        if self.levels < 2 {
            return Err(HdError::InvalidConfig(
                "encoder needs at least two feature levels".to_owned(),
            ));
        }
        Ok(())
    }
}

/// An HD encoder: maps a normalized feature vector (values in `[0, 1]`)
/// to an encoded hypervector `H` of dimension `D_hv`.
pub trait Encoder: Send + Sync {
    /// Encodes one feature vector.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::FeatureCountMismatch`] if `input.len()` differs
    /// from the configured feature count.
    fn encode(&self, input: &[f64]) -> Result<Hypervector, HdError>;

    /// Encodes one feature vector, skipping pruned dimensions.
    ///
    /// Dimensions masked out by `mask` are left at zero and never
    /// computed — this is the "we do not anymore need to obtain the
    /// corresponding indexes of queries" saving of §III-B1.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::FeatureCountMismatch`] on a wrong feature count
    /// and [`HdError::DimensionMismatch`] if the mask dimension differs.
    fn encode_masked(&self, input: &[f64], mask: &PruneMask) -> Result<Hypervector, HdError>;

    /// Number of input features `D_iv`.
    fn features(&self) -> usize;

    /// Hypervector dimensionality `D_hv`.
    fn dim(&self) -> usize;

    /// Encodes one feature vector through the retained naive path — the
    /// arithmetic reference the kernel parity tests compare against.
    ///
    /// The default implementation is the tuned [`Encoder::encode`];
    /// encoders with a separate fast path override this with their
    /// straightforward per-feature accumulation.
    ///
    /// # Errors
    ///
    /// Same contract as [`Encoder::encode`].
    fn encode_reference(&self, input: &[f64]) -> Result<Hypervector, HdError> {
        self.encode(input)
    }

    /// Encodes a batch of inputs in parallel.
    ///
    /// The default implementation fans work out over the persistent
    /// [`crate::pool`] workers; encoders are immutable after
    /// construction so sharing is free.
    ///
    /// # Errors
    ///
    /// Propagates the first encoding error encountered.
    fn encode_batch(&self, inputs: &[Vec<f64>]) -> Result<Vec<Hypervector>, HdError>
    where
        Self: Sized,
    {
        encode_batch_parallel(self, inputs)
    }
}

/// Parallel batch encoding helper shared by both encoders: chunks the
/// batch over the persistent worker pool (no per-call thread spawns).
fn encode_batch_parallel<E: Encoder + ?Sized>(
    encoder: &E,
    inputs: &[Vec<f64>],
) -> Result<Vec<Hypervector>, HdError> {
    let pool = pool::global();
    let lanes = (pool.threads() + 1).min(inputs.len().max(1));
    if lanes <= 1 || inputs.len() < 32 {
        return inputs.iter().map(|x| encoder.encode(x)).collect();
    }
    let chunk = inputs.len().div_ceil(lanes);
    let tasks = inputs.len().div_ceil(chunk);
    let results: Vec<Result<Vec<Hypervector>, HdError>> = pool.map(tasks, |t| {
        inputs[t * chunk..((t + 1) * chunk).min(inputs.len())]
            .iter()
            .map(|x| encoder.encode(x))
            .collect()
    });
    let mut out = Vec::with_capacity(inputs.len());
    for r in results {
        out.extend(r?);
    }
    Ok(out)
}

/// The scalar-weight encoding of Eq. (2a): `H = Σ_k v_k · B_k`.
///
/// Feature values are first snapped to the `ℓ_iv`-level grid of Eq. (1)
/// (`f_0 … f_{ℓ−1}` uniformly spaced in `[0, 1]`), then each level value
/// multiplies its bipolar base hypervector and everything is accumulated.
///
/// # Examples
///
/// ```
/// use privehd_core::{Encoder, EncoderConfig, ScalarEncoder};
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let enc = ScalarEncoder::new(EncoderConfig::new(3, 1024).with_seed(1))?;
/// let h = enc.encode(&[0.2, 0.9, 0.5])?;
/// assert_eq!(h.dim(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ScalarEncoder {
    config: EncoderConfig,
    item_memory: ItemMemory,
    /// Dim-major bit-sliced transpose of the item memory, consumed by the
    /// level-sliced encode kernel.
    item_memory_t: TransposedItemMemory,
}

impl ScalarEncoder {
    /// Builds the encoder, generating its item memory (and the
    /// bit-sliced transpose the encode kernel runs on) from the seed.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::InvalidConfig`] / [`HdError::EmptyDimension`] on
    /// a bad configuration.
    pub fn new(config: EncoderConfig) -> Result<Self, HdError> {
        config.validate()?;
        let item_memory =
            BasisGenerator::new(config.seed).item_memory(config.features, config.dim)?;
        let item_memory_t = TransposedItemMemory::from_item_memory(&item_memory);
        Ok(Self {
            config,
            item_memory,
            item_memory_t,
        })
    }

    /// The bit-sliced, dim-major transpose of the item memory.
    pub fn item_memory_transposed(&self) -> &TransposedItemMemory {
        &self.item_memory_t
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The item memory (base hypervectors). Exposed because the decoding
    /// attack of Eq. (9)–(10) needs exactly these vectors.
    pub fn item_memory(&self) -> &ItemMemory {
        &self.item_memory
    }

    /// Snaps a normalized value to the `ℓ_iv`-level grid of Eq. (1).
    pub fn snap_to_level(&self, value: f64) -> f64 {
        snap(value, self.config.levels)
    }
}

/// Quantizes `value ∈ [0,1]` to the nearest of `levels` uniformly spaced
/// feature values `f_0=0 … f_{ℓ−1}=1`.
fn snap(value: f64, levels: usize) -> f64 {
    let clamped = value.clamp(0.0, 1.0);
    let steps = (levels - 1) as f64;
    (clamped * steps).round() / steps
}

impl Encoder for ScalarEncoder {
    fn encode(&self, input: &[f64]) -> Result<Hypervector, HdError> {
        if input.len() != self.config.features {
            return Err(HdError::FeatureCountMismatch {
                expected: self.config.features,
                actual: input.len(),
            });
        }
        Ok(Hypervector::from_vec(scalar_encode_level_sliced(
            &self.item_memory_t,
            input,
            self.config.levels,
        )))
    }

    fn encode_reference(&self, input: &[f64]) -> Result<Hypervector, HdError> {
        if input.len() != self.config.features {
            return Err(HdError::FeatureCountMismatch {
                expected: self.config.features,
                actual: input.len(),
            });
        }
        let dim = self.config.dim;
        let mut acc = vec![0.0f64; dim];
        for (k, &raw) in input.iter().enumerate() {
            let v = snap(raw, self.config.levels);
            if v == 0.0 {
                continue;
            }
            let base = self.item_memory.base(k);
            // acc_j += v * sign_j: walk the packed words.
            accumulate_signed(&mut acc, base.words(), v, dim);
        }
        Ok(Hypervector::from_vec(acc))
    }

    fn encode_masked(&self, input: &[f64], mask: &PruneMask) -> Result<Hypervector, HdError> {
        let mut h = self.encode(input)?;
        mask.apply(&mut h)?;
        Ok(h)
    }

    fn features(&self) -> usize {
        self.config.features
    }

    fn dim(&self) -> usize {
        self.config.dim
    }
}

/// The record / level-binding encoding of Eq. (2b):
/// `H = Σ_k (L_{v_k} ⊛ B_k)` where `⊛` is the bipolar bind (XNOR).
///
/// Every summand is a bipolar hypervector, so each dimension of `H` is the
/// sum of `D_iv` values in `{−1,+1}` — the quantity the LUT-6 majority
/// hardware of §III-D computes.
///
/// # Examples
///
/// ```
/// use privehd_core::{Encoder, EncoderConfig, LevelEncoder};
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let enc = LevelEncoder::new(EncoderConfig::new(3, 1024).with_levels(16))?;
/// let h = enc.encode(&[0.2, 0.9, 0.5])?;
/// // Every dimension is a sum of 3 values in {−1, +1}.
/// assert!(h.as_slice().iter().all(|v| v.abs() <= 3.0));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LevelEncoder {
    config: EncoderConfig,
    item_memory: ItemMemory,
    level_memory: LevelMemory,
}

impl LevelEncoder {
    /// Builds the encoder, generating item and level memories from the
    /// seed.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::InvalidConfig`] / [`HdError::EmptyDimension`] on
    /// a bad configuration.
    pub fn new(config: EncoderConfig) -> Result<Self, HdError> {
        config.validate()?;
        let gen = BasisGenerator::new(config.seed);
        let item_memory = gen.item_memory(config.features, config.dim)?;
        let level_memory = gen.level_memory(config.levels, config.dim)?;
        Ok(Self {
            config,
            item_memory,
            level_memory,
        })
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &EncoderConfig {
        &self.config
    }

    /// The item memory (base hypervectors).
    pub fn item_memory(&self) -> &ItemMemory {
        &self.item_memory
    }

    /// The level memory (level hypervector chain).
    pub fn level_memory(&self) -> &LevelMemory {
        &self.level_memory
    }

    /// Returns, for each feature of `input`, the bipolar summand
    /// `L_{v_k} ⊛ B_k` as packed words — the exact bit matrix the hardware
    /// pipeline of `privehd-hw` consumes.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::FeatureCountMismatch`] on a wrong feature count.
    pub fn bound_rows(&self, input: &[f64]) -> Result<Vec<crate::hypervector::BipolarHv>, HdError> {
        if input.len() != self.config.features {
            return Err(HdError::FeatureCountMismatch {
                expected: self.config.features,
                actual: input.len(),
            });
        }
        input
            .iter()
            .enumerate()
            .map(|(k, &v)| {
                self.level_memory
                    .level_for(v)
                    .bind(self.item_memory.base(k))
            })
            .collect()
    }
}

impl Encoder for LevelEncoder {
    fn encode(&self, input: &[f64]) -> Result<Hypervector, HdError> {
        if input.len() != self.config.features {
            return Err(HdError::FeatureCountMismatch {
                expected: self.config.features,
                actual: input.len(),
            });
        }
        Ok(Hypervector::from_vec(level_encode_majority(
            &self.item_memory,
            &self.level_memory,
            input,
        )))
    }

    fn encode_reference(&self, input: &[f64]) -> Result<Hypervector, HdError> {
        if input.len() != self.config.features {
            return Err(HdError::FeatureCountMismatch {
                expected: self.config.features,
                actual: input.len(),
            });
        }
        let dim = self.config.dim;
        let mut acc = vec![0.0f64; dim];
        for (k, &raw) in input.iter().enumerate() {
            let level = self.level_memory.level_for(raw);
            let bound = level
                .bind(self.item_memory.base(k))
                .expect("level and base share dimension by construction");
            accumulate_signed(&mut acc, bound.words(), 1.0, dim);
        }
        Ok(Hypervector::from_vec(acc))
    }

    fn encode_masked(&self, input: &[f64], mask: &PruneMask) -> Result<Hypervector, HdError> {
        let mut h = self.encode(input)?;
        mask.apply(&mut h)?;
        Ok(h)
    }

    fn features(&self) -> usize {
        self.config.features
    }

    fn dim(&self) -> usize {
        self.config.dim
    }
}

/// Adds `weight · sign_j` to every accumulator dimension, reading signs
/// from packed words: `acc_j += weight` where bit `j` is set, `−weight`
/// elsewhere.
fn accumulate_signed(acc: &mut [f64], words: &[u64], weight: f64, dim: usize) {
    for (w_idx, &word) in words.iter().enumerate() {
        let start = w_idx * 64;
        let end = (start + 64).min(dim);
        let mut w = word;
        // Subtract weight everywhere, then add 2*weight on set bits:
        // sign_j * weight = weight*(2*bit_j - 1).
        for a in &mut acc[start..end] {
            *a -= weight;
        }
        while w != 0 {
            let j = w.trailing_zeros() as usize;
            let idx = start + j;
            if idx >= dim {
                break;
            }
            acc[idx] += 2.0 * weight;
            w &= w - 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hypervector::BipolarHv;

    fn cfg(features: usize, dim: usize) -> EncoderConfig {
        EncoderConfig::new(features, dim)
            .with_seed(99)
            .with_levels(10)
    }

    #[test]
    fn config_validation() {
        assert!(ScalarEncoder::new(EncoderConfig::new(0, 10)).is_err());
        assert!(ScalarEncoder::new(EncoderConfig::new(10, 0)).is_err());
        assert!(ScalarEncoder::new(EncoderConfig::new(10, 10).with_levels(1)).is_err());
        assert!(LevelEncoder::new(EncoderConfig::new(10, 10).with_levels(1)).is_err());
    }

    #[test]
    fn scalar_encode_matches_naive_sum() {
        let enc = ScalarEncoder::new(cfg(5, 200)).unwrap();
        let input = [0.0, 0.25, 0.5, 0.75, 1.0];
        let h = enc.encode(&input).unwrap();
        for j in 0..200 {
            let expected: f64 = (0..5)
                .map(|k| enc.snap_to_level(input[k]) * enc.item_memory().base(k).sign(j))
                .sum();
            assert!((h[j] - expected).abs() < 1e-12, "dim {j}");
        }
    }

    #[test]
    fn level_encode_matches_naive_sum() {
        let enc = LevelEncoder::new(cfg(4, 150)).unwrap();
        let input = [0.1, 0.4, 0.6, 0.95];
        let h = enc.encode(&input).unwrap();
        for j in 0..150 {
            let expected: f64 = (0..4)
                .map(|k| {
                    let l = enc.level_memory().level_for(input[k]).sign(j);
                    let b = enc.item_memory().base(k).sign(j);
                    l * b
                })
                .sum();
            assert!((h[j] - expected).abs() < 1e-12, "dim {j}");
        }
    }

    #[test]
    fn wrong_feature_count_is_rejected() {
        let enc = ScalarEncoder::new(cfg(5, 100)).unwrap();
        assert_eq!(
            enc.encode(&[0.5; 4]),
            Err(HdError::FeatureCountMismatch {
                expected: 5,
                actual: 4
            })
        );
    }

    #[test]
    fn snap_grid_endpoints() {
        let enc = ScalarEncoder::new(cfg(1, 64)).unwrap(); // 10 levels
        assert_eq!(enc.snap_to_level(0.0), 0.0);
        assert_eq!(enc.snap_to_level(1.0), 1.0);
        assert_eq!(enc.snap_to_level(-3.0), 0.0);
        assert_eq!(enc.snap_to_level(5.0), 1.0);
        // 10 levels → grid step 1/9.
        let snapped = enc.snap_to_level(0.49);
        assert!((snapped - 4.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn similar_inputs_encode_similarly_level_encoder() {
        let enc =
            LevelEncoder::new(EncoderConfig::new(20, 4_096).with_levels(32).with_seed(5)).unwrap();
        let a: Vec<f64> = (0..20).map(|i| i as f64 / 19.0).collect();
        let mut b = a.clone();
        b[0] += 0.02; // tiny perturbation, same or adjacent level
        let c: Vec<f64> = (0..20).map(|i| (19 - i) as f64 / 19.0).collect();
        let ha = enc.encode(&a).unwrap();
        let hb = enc.encode(&b).unwrap();
        let hc = enc.encode(&c).unwrap();
        let sim_ab = ha.cosine(&hb).unwrap();
        let sim_ac = ha.cosine(&hc).unwrap();
        assert!(sim_ab > sim_ac, "sim_ab={sim_ab} sim_ac={sim_ac}");
        assert!(sim_ab > 0.9);
    }

    #[test]
    fn batch_encoding_agrees_with_sequential() {
        let enc = ScalarEncoder::new(cfg(8, 256)).unwrap();
        let inputs: Vec<Vec<f64>> = (0..50)
            .map(|i| (0..8).map(|k| ((i * 8 + k) % 10) as f64 / 9.0).collect())
            .collect();
        let batch = enc.encode_batch(&inputs).unwrap();
        for (i, x) in inputs.iter().enumerate() {
            assert_eq!(batch[i], enc.encode(x).unwrap(), "sample {i}");
        }
    }

    #[test]
    fn bound_rows_sum_equals_encoding() {
        let enc = LevelEncoder::new(cfg(6, 192)).unwrap();
        let input = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0];
        let rows = enc.bound_rows(&input).unwrap();
        let h = enc.encode(&input).unwrap();
        for j in 0..192 {
            let s: f64 = rows.iter().map(|r| r.sign(j)).sum();
            assert!((h[j] - s).abs() < 1e-12);
        }
    }

    #[test]
    fn encoded_dimension_distribution_is_centered() {
        // Central limit argument of §III-B: H_j ~ N(0, D_iv).
        let features = 200;
        let enc = LevelEncoder::new(
            EncoderConfig::new(features, 10_000)
                .with_levels(20)
                .with_seed(8),
        )
        .unwrap();
        let input: Vec<f64> = (0..features).map(|i| (i % 20) as f64 / 19.0).collect();
        let h = enc.encode(&input).unwrap();
        let mean = h.mean();
        let var = h.variance();
        assert!(mean.abs() < 3.0, "mean={mean}");
        // Variance should be near D_iv = 200 (loose band).
        assert!((100.0..400.0).contains(&var), "var={var}");
    }

    #[test]
    fn masked_encoding_zeroes_dims() {
        let enc = ScalarEncoder::new(cfg(5, 100)).unwrap();
        let mask = PruneMask::from_pruned_indices(100, &[0, 1, 2, 50, 99]).unwrap();
        let h = enc
            .encode_masked(&[0.3, 0.6, 0.9, 0.2, 0.8], &mask)
            .unwrap();
        for &j in &[0usize, 1, 2, 50, 99] {
            assert_eq!(h[j], 0.0);
        }
        assert!(h.count_zeros() >= 5);
    }

    #[test]
    fn accumulate_signed_handles_partial_tail_word() {
        let b = BipolarHv::random(70, 3);
        let mut acc = vec![0.0; 70];
        accumulate_signed(&mut acc, b.words(), 2.0, 70);
        for (j, &a) in acc.iter().enumerate() {
            assert_eq!(a, 2.0 * b.sign(j));
        }
    }
}
