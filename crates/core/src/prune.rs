//! Model pruning (§III-B1): discarding close-to-zero class dimensions.
//!
//! Not all dimensions of a class hypervector contribute equally to the
//! normalized dot-product of Eq. (4). Because information is uniformly
//! distributed over the dimensions of the *query*, dropping the class
//! dimensions whose magnitudes are closest to zero loses little prediction
//! information (Fig. 3) while reducing the model's sensitivity
//! (`Δf ∝ √D_hv`, Eq. 12/14). Pruned dimensions are *perpetually* zero:
//! queries never compute them, which also removes their contribution from
//! the query's sensitivity.

use serde::{Deserialize, Serialize};

use crate::error::HdError;
use crate::hypervector::Hypervector;
use crate::model::HdModel;

/// How the dimensions to prune are selected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PruneStrategy {
    /// Prune the dimensions whose aggregate class magnitude
    /// `Σ_l |c_{l,j}|` is smallest — the paper's "close-to-zero" rule.
    LeastEffectual,
    /// Prune uniformly random dimensions (ablation baseline; the seed makes
    /// it reproducible).
    Random {
        /// RNG seed for the random selection.
        seed: u64,
    },
}

/// A set of pruned (perpetually zero) hypervector dimensions.
///
/// The mask is shared between the model and every query encoder: a
/// dimension pruned from the model is simply never encoded.
///
/// # Examples
///
/// ```
/// use privehd_core::{Hypervector, PruneMask};
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let mask = PruneMask::from_pruned_indices(8, &[1, 3])?;
/// let mut h = Hypervector::from_vec(vec![1.0; 8]);
/// mask.apply(&mut h)?;
/// assert_eq!(h.as_slice(), &[1.0, 0.0, 1.0, 0.0, 1.0, 1.0, 1.0, 1.0]);
/// assert_eq!(mask.kept(), 6);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PruneMask {
    /// `true` = dimension is kept, `false` = pruned.
    keep: Vec<bool>,
}

impl PruneMask {
    /// A mask that keeps every dimension.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyDimension`] if `dim == 0`.
    pub fn keep_all(dim: usize) -> Result<Self, HdError> {
        if dim == 0 {
            return Err(HdError::EmptyDimension);
        }
        Ok(Self {
            keep: vec![true; dim],
        })
    }

    /// Builds a mask from the explicit list of pruned dimension indices.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyDimension`] if `dim == 0` and
    /// [`HdError::InvalidConfig`] if any index is out of range.
    pub fn from_pruned_indices(dim: usize, pruned: &[usize]) -> Result<Self, HdError> {
        let mut mask = Self::keep_all(dim)?;
        for &j in pruned {
            if j >= dim {
                return Err(HdError::InvalidConfig(format!(
                    "pruned index {j} out of range for dimension {dim}"
                )));
            }
            mask.keep[j] = false;
        }
        Ok(mask)
    }

    /// Selects the `count` least-effectual dimensions of `model` (or
    /// random ones, per `strategy`) and returns the corresponding mask.
    ///
    /// The effectuality score of dimension `j` is `Σ_l |c_{l,j}|` over all
    /// class hypervectors, i.e. a dimension is prunable when it is
    /// close to zero in *every* class.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::InvalidConfig`] if `count >= model.dim()`.
    pub fn select(model: &HdModel, count: usize, strategy: PruneStrategy) -> Result<Self, HdError> {
        let dim = model.dim();
        if count >= dim {
            return Err(HdError::InvalidConfig(format!(
                "cannot prune {count} of {dim} dimensions"
            )));
        }
        let pruned: Vec<usize> = match strategy {
            PruneStrategy::LeastEffectual => {
                let mut order = rank_dimensions(model);
                order.truncate(count);
                order
            }
            PruneStrategy::Random { seed } => {
                use rand::seq::SliceRandom;
                use rand::SeedableRng;
                let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
                let mut idx: Vec<usize> = (0..dim).collect();
                idx.shuffle(&mut rng);
                idx.truncate(count);
                idx
            }
        };
        Self::from_pruned_indices(dim, &pruned)
    }

    /// Total dimensionality covered by the mask.
    pub fn dim(&self) -> usize {
        self.keep.len()
    }

    /// Number of kept (unpruned) dimensions.
    pub fn kept(&self) -> usize {
        self.keep.iter().filter(|k| **k).count()
    }

    /// Number of pruned dimensions.
    pub fn pruned(&self) -> usize {
        self.dim() - self.kept()
    }

    /// Whether dimension `j` survives pruning.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.dim()`.
    pub fn is_kept(&self, j: usize) -> bool {
        self.keep[j]
    }

    /// Zeroes the pruned dimensions of `h` in place.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if `h.dim() != self.dim()`.
    pub fn apply(&self, h: &mut Hypervector) -> Result<(), HdError> {
        if h.dim() != self.dim() {
            return Err(HdError::DimensionMismatch {
                expected: self.dim(),
                actual: h.dim(),
            });
        }
        for (v, &k) in h.as_mut_slice().iter_mut().zip(&self.keep) {
            if !k {
                *v = 0.0;
            }
        }
        Ok(())
    }

    /// Iterates over the pruned dimension indices.
    pub fn pruned_indices(&self) -> impl Iterator<Item = usize> + '_ {
        self.keep
            .iter()
            .enumerate()
            .filter_map(|(j, &k)| (!k).then_some(j))
    }

    /// Merges another mask into this one (a dimension pruned by either is
    /// pruned by the result).
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if the dimensions differ.
    pub fn union(&self, other: &Self) -> Result<Self, HdError> {
        if self.dim() != other.dim() {
            return Err(HdError::DimensionMismatch {
                expected: self.dim(),
                actual: other.dim(),
            });
        }
        Ok(Self {
            keep: self
                .keep
                .iter()
                .zip(&other.keep)
                .map(|(&a, &b)| a && b)
                .collect(),
        })
    }
}

/// Ranks dimensions from least to most effectual: ascending
/// `Σ_l |c_{l,j}|`.
pub(crate) fn rank_dimensions(model: &HdModel) -> Vec<usize> {
    let dim = model.dim();
    let mut scores = vec![0.0f64; dim];
    for class in model.classes() {
        for (j, &v) in class.as_slice().iter().enumerate() {
            scores[j] += v.abs();
        }
    }
    let mut order: Vec<usize> = (0..dim).collect();
    order.sort_by(|&a, &b| {
        scores[a]
            .partial_cmp(&scores[b])
            .expect("scores are finite")
    });
    order
}

/// One point of the information-retrieval curve of Fig. 3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InformationPoint {
    /// Number of dimensions restored (Fig. 3a) or pruned (Fig. 3b).
    pub dimensions: usize,
    /// Fraction of the original (full-dimension) dot product retained,
    /// per class: `⟨H, C⟩_restricted / ⟨H, C⟩_full`.
    pub information: Vec<f64>,
}

/// Reproduces the Fig. 3 experiment: how much of the full dot-product
/// "information" between `query` and each class hypervector of `model` is
/// retained when only a subset of dimensions participates.
///
/// Dimensions are ordered least-effectual-first (the paper restores the
/// close-to-zero dimensions first in Fig. 3a). For each step count `s` in
/// `steps`, the returned point reports, per class,
/// `Σ_{j ∈ first s dims} h_j·c_j / Σ_j h_j·c_j` when `restore` is true
/// (Fig. 3a), or the complementary "keep the most effectual `D−s`"
/// fraction when `restore` is false (Fig. 3b: x-axis is *dimensions
/// removed*).
///
/// # Errors
///
/// Returns [`HdError::DimensionMismatch`] if `query.dim() != model.dim()`
/// and [`HdError::ZeroNorm`] if a full dot product is zero.
pub fn information_curve(
    model: &HdModel,
    query: &Hypervector,
    steps: &[usize],
    restore: bool,
) -> Result<Vec<InformationPoint>, HdError> {
    if query.dim() != model.dim() {
        return Err(HdError::DimensionMismatch {
            expected: model.dim(),
            actual: query.dim(),
        });
    }
    let order = rank_dimensions(model); // least effectual first
    let classes: Vec<&Hypervector> = model.classes().collect();
    let full: Vec<f64> = classes
        .iter()
        .map(|c| query.dot(c).expect("dims checked"))
        .collect();
    if full.contains(&0.0) {
        return Err(HdError::ZeroNorm);
    }
    // Prefix sums over the least-effectual ordering, per class.
    let dim = model.dim();
    let mut points = Vec::with_capacity(steps.len());
    for &s in steps {
        let s = s.min(dim);
        let info: Vec<f64> = classes
            .iter()
            .zip(&full)
            .map(|(c, &f)| {
                let partial: f64 = if restore {
                    order[..s].iter().map(|&j| query[j] * c.as_slice()[j]).sum()
                } else {
                    // Prune the s least effectual: keep the rest.
                    order[s..].iter().map(|&j| query[j] * c.as_slice()[j]).sum()
                };
                partial / f
            })
            .collect();
        points.push(InformationPoint {
            dimensions: s,
            information: info,
        });
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig, ScalarEncoder};
    use crate::model::HdModel;

    fn toy_model() -> (HdModel, Hypervector) {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, 128).with_seed(3)).unwrap();
        let mut model = HdModel::new(2, 128).unwrap();
        for i in 0..10 {
            let a: Vec<f64> = (0..6).map(|k| ((i + k) % 4) as f64 / 3.0 * 0.3).collect();
            let b: Vec<f64> = (0..6).map(|k| 0.7 + ((i + k) % 4) as f64 / 30.0).collect();
            model.bundle(0, &enc.encode(&a).unwrap()).unwrap();
            model.bundle(1, &enc.encode(&b).unwrap()).unwrap();
        }
        let q = enc.encode(&[0.1, 0.2, 0.0, 0.3, 0.1, 0.2]).unwrap();
        (model, q)
    }

    #[test]
    fn keep_all_keeps_everything() {
        let m = PruneMask::keep_all(16).unwrap();
        assert_eq!(m.kept(), 16);
        assert_eq!(m.pruned(), 0);
    }

    #[test]
    fn from_indices_validates_range() {
        assert!(PruneMask::from_pruned_indices(4, &[4]).is_err());
        assert!(PruneMask::from_pruned_indices(0, &[]).is_err());
    }

    #[test]
    fn apply_zeroes_only_pruned() {
        let mask = PruneMask::from_pruned_indices(5, &[0, 4]).unwrap();
        let mut h = Hypervector::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        mask.apply(&mut h).unwrap();
        assert_eq!(h.as_slice(), &[0.0, 2.0, 3.0, 4.0, 0.0]);
    }

    #[test]
    fn apply_rejects_wrong_dim() {
        let mask = PruneMask::keep_all(5).unwrap();
        let mut h = Hypervector::zeros(6).unwrap();
        assert!(mask.apply(&mut h).is_err());
    }

    #[test]
    fn select_least_effectual_prunes_small_dims() {
        let (model, _) = toy_model();
        let mask = PruneMask::select(&model, 64, PruneStrategy::LeastEffectual).unwrap();
        assert_eq!(mask.pruned(), 64);
        // Every pruned dim must score <= every kept dim.
        let order = rank_dimensions(&model);
        let cutoff: std::collections::HashSet<usize> = order[..64].iter().copied().collect();
        for j in mask.pruned_indices() {
            assert!(cutoff.contains(&j));
        }
    }

    #[test]
    fn select_random_is_reproducible() {
        let (model, _) = toy_model();
        let a = PruneMask::select(&model, 32, PruneStrategy::Random { seed: 1 }).unwrap();
        let b = PruneMask::select(&model, 32, PruneStrategy::Random { seed: 1 }).unwrap();
        let c = PruneMask::select(&model, 32, PruneStrategy::Random { seed: 2 }).unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.pruned(), 32);
    }

    #[test]
    fn select_rejects_pruning_everything() {
        let (model, _) = toy_model();
        assert!(PruneMask::select(&model, 128, PruneStrategy::LeastEffectual).is_err());
    }

    #[test]
    fn union_prunes_either() {
        let a = PruneMask::from_pruned_indices(4, &[0]).unwrap();
        let b = PruneMask::from_pruned_indices(4, &[3]).unwrap();
        let u = a.union(&b).unwrap();
        assert_eq!(u.pruned(), 2);
        assert!(!u.is_kept(0));
        assert!(!u.is_kept(3));
    }

    #[test]
    fn information_curve_restore_reaches_one() {
        let (model, q) = toy_model();
        let pts = information_curve(&model, &q, &[0, 64, 128], true).unwrap();
        assert_eq!(pts[0].dimensions, 0);
        for i in pts[0].information.iter() {
            assert!((i - 0.0).abs() < 1e-12);
        }
        for i in pts[2].information.iter() {
            assert!((i - 1.0).abs() < 1e-9, "full restore retrieves everything");
        }
    }

    #[test]
    fn information_curve_least_effectual_first_is_slow_to_rise() {
        // Restoring the least effectual half should retrieve well under
        // half of the information (Fig. 3a: first 60% retrieves ~20%).
        let (model, q) = toy_model();
        let pts = information_curve(&model, &q, &[64], true).unwrap();
        // Use the winning class (largest |full| dot product).
        let frac = pts[0].information[0].abs().min(pts[0].information[1].abs());
        assert!(frac < 0.6, "least-effectual half retrieved {frac}");
    }

    #[test]
    fn information_curve_prune_complements_restore() {
        let (model, q) = toy_model();
        let restore = information_curve(&model, &q, &[48], true).unwrap();
        let prune = information_curve(&model, &q, &[48], false).unwrap();
        for (r, p) in restore[0].information.iter().zip(&prune[0].information) {
            assert!((r + p - 1.0).abs() < 1e-9);
        }
    }
}
