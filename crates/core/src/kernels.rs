//! Throughput-oriented encode and predict kernels.
//!
//! The straightforward implementations of Eq. (2) and Eq. (4) walk one
//! `±v` update per feature per dimension and one dense `f64` dot per
//! class per query. This module replaces those hot paths with kernels
//! that exploit the bit-packed structure of the item/level memories:
//!
//! * [`TransposedItemMemory`] + [`scalar_encode_level_sliced`] — the
//!   scalar encoding of Eq. (2a). `snap` maps every feature onto one of
//!   `ℓ_iv` grid values `g_k/(ℓ−1)`, so the per-dimension sum
//!   `Σ_k v_k·sign_{k,j}` factors over the *binary digits* of the grid
//!   indices: `acc_j = (2·Σ_b 2^b·popcount(T_j ∧ m_b) − Σ_k g_k)/(ℓ−1)`,
//!   where `T_j` is the dim-major bit row of the item memory (one bit
//!   per feature) and `m_b` masks the features whose grid index has bit
//!   `b` set. One query builds `⌈log₂ ℓ⌉` masks and then runs pure
//!   AND+POPCNT per dimension — no per-feature sign walks. The integer
//!   sum is exact; a single final multiply scales it back to the grid.
//! * [`level_encode_majority`] — the record encoding of Eq. (2b) as a
//!   word-parallel majority accumulation: the bound rows `L_{v_k} ⊛ B_k`
//!   are streamed through a carry-save-adder (CSA) bit-slice counter, so
//!   64 dimensions advance per machine-word operation instead of one
//!   `f64` update per dimension. Counts are exact small integers, so the
//!   result bit-matches the naive accumulation.
//! * [`ClassMatrix`] + [`dot_unrolled`] / [`dot_sign_dense`] — inference
//!   (Eq. 4) against a contiguous row-major copy of the class
//!   hypervectors with cached norms and packed sign rows. Dots run with
//!   four independent accumulators (breaking the serial `fadd` dependency
//!   chain of a naive fold) and the packed-query variant selects the sign
//!   branchlessly via the `f64` sign bit — no `trailing_zeros` loops.
//!
//! The naive paths stay available as `*_reference` methods on the
//! encoders/model; the property tests in `tests/properties.rs` hold the
//! kernels to them (bit-exact where the arithmetic is integer, ≤1e-9
//! absolute where only the floating-point summation order differs).
//!
//! Per-query scratch (grid indices, digit masks, CSA planes) lives in a
//! thread-local buffer so steady-state encoding performs no allocations
//! beyond the returned hypervector.

use std::cell::RefCell;

use crate::basis::{ItemMemory, LevelMemory};
use crate::hypervector::Hypervector;

const WORD_BITS: usize = 64;

/// Columns per scoring tile: 2048 × 8 B = 16 KB per class-row slice, so
/// a full tile (every class's slice + a block of query slices) stays
/// L2-resident even for a few dozen classes.
const DIM_TILE: usize = 2_048;

thread_local! {
    static SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::default());
}

/// Reusable per-thread buffers for the encode kernels.
#[derive(Debug, Default)]
struct KernelScratch {
    /// Grid indices `g_k`, one per feature (scalar encode).
    grid: Vec<u64>,
    /// Digit masks `m_b`, `bits × f_words` words (scalar encode).
    masks: Vec<u64>,
    /// CSA bit-planes, word-major `hv_words × planes` (level encode).
    planes: Vec<u64>,
}

/// Dim-major, bit-sliced copy of an [`ItemMemory`].
///
/// Row `j` packs the signs of base hypervectors `B_0 … B_{D_iv−1}` *at
/// dimension `j`* into `⌈D_iv/64⌉` words (bit `k` set ⇔ `B_k[j] = +1`).
/// This is the transpose of the feature-major layout [`ItemMemory`]
/// stores, and it is what lets [`scalar_encode_level_sliced`] answer
/// "how many features of this subset are positive at dimension `j`"
/// with a handful of `AND` + `POPCNT` instructions.
#[derive(Debug, Clone)]
pub struct TransposedItemMemory {
    features: usize,
    dim: usize,
    f_words: usize,
    words: Vec<u64>,
}

impl TransposedItemMemory {
    /// Builds the transpose of `item` (done once per encoder).
    pub fn from_item_memory(item: &ItemMemory) -> Self {
        let features = item.len();
        let dim = item.dim();
        let f_words = features.div_ceil(WORD_BITS);
        let mut words = vec![0u64; dim * f_words];
        for (k, base) in item.iter().enumerate() {
            let (fw, fb) = (k / WORD_BITS, k % WORD_BITS);
            for (w, &bw) in base.words().iter().enumerate() {
                let mut word = bw;
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    let j = w * WORD_BITS + b;
                    if j >= dim {
                        break;
                    }
                    words[j * f_words + fw] |= 1 << fb;
                    word &= word - 1;
                }
            }
        }
        Self {
            features,
            dim,
            f_words,
            words,
        }
    }

    /// Number of features `D_iv` (bits per row).
    pub fn features(&self) -> usize {
        self.features
    }

    /// Hypervector dimensionality `D_hv` (number of rows).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed bit row for dimension `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.dim()`.
    pub fn row(&self, j: usize) -> &[u64] {
        &self.words[j * self.f_words..(j + 1) * self.f_words]
    }
}

/// Level-sliced scalar encode (Eq. 2a): see the [module docs](self) for
/// the factorization. `input` must hold exactly `im_t.features()` values;
/// they are clamped to `[0, 1]` and snapped to the `levels`-point grid
/// exactly like the reference path.
///
/// # Panics
///
/// Panics if `input.len() != im_t.features()` or `levels < 2` (the
/// encoder validates both before calling).
pub fn scalar_encode_level_sliced(
    im_t: &TransposedItemMemory,
    input: &[f64],
    levels: usize,
) -> Vec<f64> {
    assert_eq!(input.len(), im_t.features, "feature count mismatch");
    assert!(levels >= 2, "need at least two levels");
    // The integer pipeline would silently snap NaN to grid index 0;
    // poison the whole encoding instead, as the reference path does.
    if input.iter().any(|v| v.is_nan()) {
        return vec![f64::NAN; im_t.dim];
    }
    let steps = (levels - 1) as f64;
    let max_index = (levels - 1) as u64;
    let bits = (u64::BITS - max_index.leading_zeros()) as usize;
    let f_words = im_t.f_words;

    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();

        // 1. Quantize each feature to its grid index g_k = round(v·(ℓ−1)).
        scratch.grid.clear();
        scratch
            .grid
            .extend(input.iter().map(|&raw| quantize_index(raw, steps)));

        // 2. Slice the indices into per-digit feature masks m_b and the
        //    per-query constant Σ_k g_k.
        scratch.masks.clear();
        scratch.masks.resize(bits * f_words, 0);
        let mut index_total: u64 = 0;
        for (k, &g) in scratch.grid.iter().enumerate() {
            index_total += g;
            let (fw, fb) = (k / WORD_BITS, k % WORD_BITS);
            let mut digits = g;
            while digits != 0 {
                let b = digits.trailing_zeros() as usize;
                scratch.masks[b * f_words + fw] |= 1 << fb;
                digits &= digits - 1;
            }
        }

        // 3. Pure popcount accumulation per dimension.
        let inv_steps = 1.0 / steps;
        let total = index_total as i64;
        let mut acc = Vec::with_capacity(im_t.dim);
        for row in im_t.words.chunks_exact(f_words) {
            let mut weighted: u64 = 0;
            for (b, mask) in scratch.masks.chunks_exact(f_words).enumerate() {
                let mut count: u32 = 0;
                for (rw, mw) in row.iter().zip(mask) {
                    count += (rw & mw).count_ones();
                }
                weighted += u64::from(count) << b;
            }
            // acc_j = (2·Σ_b 2^b·pos_count_{b,j} − Σ_k g_k) / (ℓ−1):
            // exact in integers, one rounding at the final scale.
            acc.push((2 * weighted as i64 - total) as f64 * inv_steps);
        }
        acc
    })
}

/// `round(clamp(v)·steps)` as the grid index, mirroring the reference
/// `snap` exactly (including `round`'s away-from-zero ties).
fn quantize_index(raw: f64, steps: f64) -> u64 {
    (raw.clamp(0.0, 1.0) * steps).round() as u64
}

/// Record/level encode (Eq. 2b) by word-parallel majority accumulation:
/// every bound row `L_{v_k} ⊛ B_k` is XNOR-ed on the fly and inserted
/// into a carry-save bit-slice counter; the per-dimension counts are
/// extracted once at the end as `acc_j = 2·count_j − D_iv`.
///
/// Bit-matches the naive per-feature accumulation (all arithmetic is
/// exact small integers).
///
/// # Panics
///
/// Panics if `input.len() != item.len()` or the level/item memories
/// disagree on dimensionality (the encoder validates both).
pub fn level_encode_majority(item: &ItemMemory, lm: &LevelMemory, input: &[f64]) -> Vec<f64> {
    assert_eq!(input.len(), item.len(), "feature count mismatch");
    assert_eq!(item.dim(), lm.dim(), "item/level dimension mismatch");
    let dim = item.dim();
    let hv_words = dim.div_ceil(WORD_BITS);
    let features = input.len();
    // Counts reach `features`, so ⌈log₂(features+1)⌉ planes suffice.
    let planes = (u64::BITS - (features as u64).leading_zeros()) as usize;

    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        scratch.planes.clear();
        scratch.planes.resize(hv_words * planes, 0);

        for (k, &raw) in input.iter().enumerate() {
            let level = lm.level_for(raw).words();
            let base = item.base(k).words();
            for (w, (lw, bw)) in level.iter().zip(base).enumerate() {
                // Bound row word: bipolar bind is XNOR. Tail bits beyond
                // `dim` are garbage but never extracted below.
                let mut carry = !(lw ^ bw);
                let slots = &mut scratch.planes[w * planes..(w + 1) * planes];
                for slot in slots {
                    if carry == 0 {
                        break;
                    }
                    let next = *slot & carry;
                    *slot ^= carry;
                    carry = next;
                }
            }
        }

        let n = features as i64;
        let mut acc = Vec::with_capacity(dim);
        for (w, slots) in scratch.planes.chunks_exact(planes).enumerate() {
            let lanes = (dim - w * WORD_BITS).min(WORD_BITS);
            for b in 0..lanes {
                let mut count: i64 = 0;
                for (p, plane) in slots.iter().enumerate() {
                    count += (((plane >> b) & 1) << p) as i64;
                }
                acc.push((2 * count - n) as f64);
            }
        }
        acc
    })
}

/// Dense `f64` dot product with four independent accumulators.
///
/// Mathematically identical to a sequential fold; the four-lane
/// accumulation breaks the serial `fadd` dependency chain, which is what
/// buys the throughput. The summation order differs from a naive fold,
/// so compare against it with a tolerance, not bit-equality. Trailing
/// elements of the longer slice are ignored (callers pass equal
/// lengths).
pub fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let quads = n - n % 4;
    let mut acc = [0.0f64; 4];
    for (ca, cb) in a[..quads].chunks_exact(4).zip(b[..quads].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in a[quads..n].iter().zip(&b[quads..n]) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// Dot product of a bit-packed bipolar vector (`1 ↔ +1`) against dense
/// `f64` values, fully branchless: the query bit selects the sign by
/// XOR-ing the `f64` sign bit, with no `trailing_zeros` walk and no
/// data-dependent branches.
///
/// `values` beyond `64·words.len()` are ignored; unused tail bits of the
/// last word must be zero (both invariants hold for
/// [`crate::BipolarHv`]).
pub fn dot_sign_dense(words: &[u64], values: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    for (w, chunk) in words.iter().zip(values.chunks(WORD_BITS)) {
        // Bit set → +v; bit clear → −v via the IEEE-754 sign bit. The
        // inverted word shifts right four bits per quad so each lane's
        // select is a constant-offset bit test.
        let mut nw = !w;
        let quads = chunk.chunks_exact(4);
        let tail = quads.remainder();
        for quad in quads {
            acc[0] += f64::from_bits(quad[0].to_bits() ^ ((nw & 1) << 63));
            acc[1] += f64::from_bits(quad[1].to_bits() ^ ((nw >> 1 & 1) << 63));
            acc[2] += f64::from_bits(quad[2].to_bits() ^ ((nw >> 2 & 1) << 63));
            acc[3] += f64::from_bits(quad[3].to_bits() ^ ((nw >> 3 & 1) << 63));
            nw >>= 4;
        }
        for (b, &v) in tail.iter().enumerate() {
            acc[b & 3] += f64::from_bits(v.to_bits() ^ ((nw >> b & 1) << 63));
        }
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// A contiguous, inference-ready snapshot of a model's class
/// hypervectors.
///
/// Holds the dense values row-major (`classes × dim`, so one class is
/// one cache-friendly streak), the packed sign bit of every value
/// (`value ≥ 0 ↔ 1`, the binarization convention of
/// [`crate::BinaryHdModel`]) and the cached ℓ2 norms. Built lazily by
/// [`crate::HdModel`] and rebuilt only after mutation.
#[derive(Debug, Clone)]
pub struct ClassMatrix {
    num_classes: usize,
    dim: usize,
    hv_words: usize,
    dense: Vec<f64>,
    sign_rows: Vec<u64>,
    norms: Vec<f64>,
}

impl ClassMatrix {
    /// Snapshots `classes` (all of the same dimensionality) into the
    /// contiguous layout. An empty slice yields an empty matrix whose
    /// [`ClassMatrix::all_zero`] is true, so degenerate models degrade
    /// to [`crate::HdError::ZeroNorm`] instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if class dimensionalities disagree (the model guarantees
    /// they do not).
    pub fn from_classes(classes: &[Hypervector]) -> Self {
        let dim = classes.first().map_or(0, Hypervector::dim);
        let hv_words = dim.div_ceil(WORD_BITS);
        let num_classes = classes.len();
        let mut dense = Vec::with_capacity(num_classes * dim);
        let mut sign_rows = vec![0u64; num_classes * hv_words];
        let mut norms = Vec::with_capacity(num_classes);
        for (l, class) in classes.iter().enumerate() {
            assert_eq!(class.dim(), dim, "class dimension mismatch");
            dense.extend_from_slice(class.as_slice());
            for (j, &v) in class.as_slice().iter().enumerate() {
                if v >= 0.0 {
                    sign_rows[l * hv_words + j / WORD_BITS] |= 1 << (j % WORD_BITS);
                }
            }
            norms.push(class.l2_norm());
        }
        Self {
            num_classes,
            dim,
            hv_words,
            dense,
            sign_rows,
            norms,
        }
    }

    /// Number of classes (rows).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Hypervector dimensionality (columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The dense values of class `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_classes()`.
    pub fn class_row(&self, l: usize) -> &[f64] {
        &self.dense[l * self.dim..(l + 1) * self.dim]
    }

    /// The packed sign bits of class `l` (`value ≥ 0 ↔ 1`; tail bits
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_classes()`.
    pub fn sign_row(&self, l: usize) -> &[u64] {
        &self.sign_rows[l * self.hv_words..(l + 1) * self.hv_words]
    }

    /// Cached ℓ2 norms, index = class label.
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// True when every class hypervector is all-zero (untrained model)
    /// — vacuously true for an empty matrix.
    pub fn all_zero(&self) -> bool {
        self.norms.iter().all(|&n| n == 0.0)
    }

    /// Re-snapshots a single class row in place (dense values, sign
    /// bits, norm) after a targeted mutation such as a retraining
    /// update, avoiding a full matrix rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range or `class` has the wrong
    /// dimensionality (the model guarantees both).
    pub fn update_class(&mut self, l: usize, class: &Hypervector) {
        assert_eq!(class.dim(), self.dim, "class dimension mismatch");
        let values = class.as_slice();
        self.dense[l * self.dim..(l + 1) * self.dim].copy_from_slice(values);
        let signs = &mut self.sign_rows[l * self.hv_words..(l + 1) * self.hv_words];
        signs.fill(0);
        for (j, &v) in values.iter().enumerate() {
            if v >= 0.0 {
                signs[j / WORD_BITS] |= 1 << (j % WORD_BITS);
            }
        }
        self.norms[l] = class.l2_norm();
    }

    /// Normalized scores of one dense query against every class, written
    /// into `scores` (cleared first). Zero-norm classes score
    /// [`f64::NEG_INFINITY`]. Routed through the same tiled accumulation
    /// as [`ClassMatrix::scores_block_into`] (with a block of one), so
    /// single-query and blocked results are bit-identical.
    pub fn scores_into(&self, query: &[f64], scores: &mut Vec<f64>) {
        scores.clear();
        scores.resize(self.num_classes, 0.0);
        self.scores_tiled([query].as_slice(), std::slice::from_mut(scores));
    }

    /// [`ClassMatrix::scores_into`] for a block of queries at once — the
    /// cache-friendly tile of batched inference.
    ///
    /// # Panics
    ///
    /// Panics if `queries` and `out` lengths differ.
    pub fn scores_block_into(&self, queries: &[&[f64]], out: &mut [Vec<f64>]) {
        assert_eq!(queries.len(), out.len(), "one score row per query");
        for scores in out.iter_mut() {
            scores.clear();
            scores.resize(self.num_classes, 0.0);
        }
        self.scores_tiled(queries, out);
    }

    /// Shared tiled scoring core. The dimension axis is cut into
    /// [`DIM_TILE`]-column tiles and every `(query, class)` pair
    /// accumulates one partial [`dot_unrolled`] per tile: each matrix
    /// element is read once per *block* instead of once per query, so a
    /// block of `B` queries cuts class-matrix memory traffic by `B×`.
    /// Tile boundaries are a function of the dimension alone, so the
    /// per-pair summation order is independent of the block size —
    /// blocked, single-query and batched paths all bit-match.
    fn scores_tiled(&self, queries: &[&[f64]], out: &mut [Vec<f64>]) {
        for tile_start in (0..self.dim).step_by(DIM_TILE) {
            let tile_end = (tile_start + DIM_TILE).min(self.dim);
            for l in 0..self.num_classes {
                let row = &self.dense[l * self.dim + tile_start..l * self.dim + tile_end];
                for (q, scores) in queries.iter().zip(out.iter_mut()) {
                    scores[l] += dot_unrolled(&q[tile_start..tile_end], row);
                }
            }
        }
        for scores in out.iter_mut() {
            for (s, &norm) in scores.iter_mut().zip(&self.norms) {
                *s = if norm == 0.0 {
                    f64::NEG_INFINITY
                } else {
                    *s / norm
                };
            }
        }
    }

    /// Normalized scores of a bit-packed bipolar query against every
    /// class via [`dot_sign_dense`]. Zero-norm classes score
    /// [`f64::NEG_INFINITY`].
    pub fn scores_packed_into(&self, query_words: &[u64], scores: &mut Vec<f64>) {
        scores.clear();
        scores.reserve(self.num_classes);
        for l in 0..self.num_classes {
            let norm = self.norms[l];
            scores.push(if norm == 0.0 {
                f64::NEG_INFINITY
            } else {
                dot_sign_dense(query_words, self.class_row(l)) / norm
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisGenerator;
    use crate::hypervector::BipolarHv;

    #[test]
    fn transposed_item_memory_matches_signs() {
        let im = BasisGenerator::new(3).item_memory(70, 130).unwrap();
        let t = TransposedItemMemory::from_item_memory(&im);
        assert_eq!(t.features(), 70);
        assert_eq!(t.dim(), 130);
        for j in 0..130 {
            let row = t.row(j);
            for k in 0..70 {
                let bit = (row[k / 64] >> (k % 64)) & 1;
                let expected = u64::from(im.base(k).sign(j) > 0.0);
                assert_eq!(bit, expected, "dim {j} feature {k}");
            }
        }
    }

    #[test]
    fn scalar_kernel_matches_direct_sum() {
        let im = BasisGenerator::new(9).item_memory(13, 190).unwrap();
        let t = TransposedItemMemory::from_item_memory(&im);
        let levels = 10;
        let input: Vec<f64> = (0..13).map(|i| i as f64 / 12.0).collect();
        let acc = scalar_encode_level_sliced(&t, &input, levels);
        let steps = (levels - 1) as f64;
        for (j, &a) in acc.iter().enumerate() {
            let expected: f64 = (0..13)
                .map(|k| {
                    let g = (input[k].clamp(0.0, 1.0) * steps).round();
                    g / steps * im.base(k).sign(j)
                })
                .sum();
            assert!((a - expected).abs() < 1e-9, "dim {j}: {a} vs {expected}");
        }
    }

    #[test]
    fn level_kernel_matches_bound_row_sum() {
        let gen = BasisGenerator::new(4);
        let im = gen.item_memory(9, 200).unwrap();
        let lm = gen.level_memory(12, 200).unwrap();
        let input: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
        let acc = level_encode_majority(&im, &lm, &input);
        for (j, &a) in acc.iter().enumerate() {
            let expected: f64 = (0..9)
                .map(|k| lm.level_for(input[k]).sign(j) * im.base(k).sign(j))
                .sum();
            assert_eq!(a, expected, "dim {j}");
        }
    }

    #[test]
    fn dot_kernels_match_naive() {
        let values: Vec<f64> = (0..133).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let other: Vec<f64> = (0..133).map(|i| (i as f64 * 0.11).cos() * 3.0).collect();
        let naive: f64 = values.iter().zip(&other).map(|(a, b)| a * b).sum();
        assert!((dot_unrolled(&values, &other) - naive).abs() < 1e-9);

        let packed = BipolarHv::random(133, 5);
        let naive_signed: f64 = (0..133).map(|j| packed.sign(j) * values[j]).sum();
        let fast = dot_sign_dense(packed.words(), &values);
        assert!(
            (fast - naive_signed).abs() < 1e-9,
            "{fast} vs {naive_signed}"
        );
    }

    #[test]
    fn class_matrix_snapshots_classes() {
        let classes = vec![
            Hypervector::from_vec(vec![1.0, -2.0, 0.0, 3.0, -1.0]),
            Hypervector::from_vec(vec![0.0; 5]),
        ];
        let m = ClassMatrix::from_classes(&classes);
        assert_eq!(m.num_classes(), 2);
        assert_eq!(m.dim(), 5);
        assert_eq!(m.class_row(0), classes[0].as_slice());
        assert_eq!(m.norms()[1], 0.0);
        assert!(!m.all_zero());
        // Sign row: 1, -2, 0, 3, -1 → bits 1,0,1,1,0 (≥ 0 convention).
        assert_eq!(m.sign_row(0)[0], 0b01101);

        let mut scores = Vec::new();
        m.scores_into(&[1.0, 1.0, 1.0, 1.0, 1.0], &mut scores);
        assert_eq!(scores[1], f64::NEG_INFINITY);
        let expected = (1.0 - 2.0 + 0.0 + 3.0 - 1.0) / classes[0].l2_norm();
        assert!((scores[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_class_matrix_degrades_gracefully() {
        let m = ClassMatrix::from_classes(&[]);
        assert_eq!(m.num_classes(), 0);
        assert!(m.all_zero());
        let mut scores = vec![1.0];
        m.scores_into(&[], &mut scores);
        assert!(scores.is_empty());
    }

    #[test]
    fn update_class_matches_fresh_snapshot() {
        let mut classes = vec![
            Hypervector::from_vec((0..70).map(|j| (j as f64 * 0.3).sin()).collect()),
            Hypervector::from_vec((0..70).map(|j| (j as f64 * 0.7).cos()).collect()),
        ];
        let mut incremental = ClassMatrix::from_classes(&classes);
        classes[1] = Hypervector::from_vec((0..70).map(|j| (j as f64 * 1.3).sin()).collect());
        incremental.update_class(1, &classes[1]);
        let fresh = ClassMatrix::from_classes(&classes);
        assert_eq!(incremental.class_row(1), fresh.class_row(1));
        assert_eq!(incremental.sign_row(1), fresh.sign_row(1));
        assert_eq!(incremental.norms(), fresh.norms());
    }

    #[test]
    fn blocked_scores_bit_match_single_query_scores() {
        let classes: Vec<Hypervector> = (0..3)
            .map(|c| {
                Hypervector::from_vec((0..97).map(|j| ((c * 97 + j) as f64 * 0.7).sin()).collect())
            })
            .collect();
        let m = ClassMatrix::from_classes(&classes);
        let queries: Vec<Vec<f64>> = (0..5)
            .map(|q| (0..97).map(|j| ((q * 31 + j) as f64 * 0.3).cos()).collect())
            .collect();
        let refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        let mut blocked: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
        m.scores_block_into(&refs, &mut blocked);
        for (q, b) in queries.iter().zip(&blocked) {
            let mut single = Vec::new();
            m.scores_into(q, &mut single);
            assert_eq!(&single, b, "blocked path must be bit-identical");
        }
    }
}
