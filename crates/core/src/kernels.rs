//! Throughput-oriented encode and predict kernels.
//!
//! The straightforward implementations of Eq. (2) and Eq. (4) walk one
//! `±v` update per feature per dimension and one dense `f64` dot per
//! class per query. This module replaces those hot paths with kernels
//! that exploit the bit-packed structure of the item/level memories:
//!
//! * [`TransposedItemMemory`] + [`scalar_encode_level_sliced`] — the
//!   scalar encoding of Eq. (2a). `snap` maps every feature onto one of
//!   `ℓ_iv` grid values `g_k/(ℓ−1)`, so the per-dimension sum
//!   `Σ_k v_k·sign_{k,j}` factors over the *binary digits* of the grid
//!   indices: `acc_j = (2·Σ_b 2^b·popcount(T_j ∧ m_b) − Σ_k g_k)/(ℓ−1)`,
//!   where `T_j` is the dim-major bit row of the item memory (one bit
//!   per feature) and `m_b` masks the features whose grid index has bit
//!   `b` set. One query builds `⌈log₂ ℓ⌉` masks and then runs pure
//!   AND+POPCNT per dimension — no per-feature sign walks. The integer
//!   sum is exact; a single final multiply scales it back to the grid.
//! * [`level_encode_majority`] — the record encoding of Eq. (2b) as a
//!   word-parallel majority accumulation: the bound rows `L_{v_k} ⊛ B_k`
//!   are streamed through a carry-save-adder (CSA) bit-slice counter, so
//!   64 dimensions advance per machine-word operation instead of one
//!   `f64` update per dimension. Counts are exact small integers, so the
//!   result bit-matches the naive accumulation.
//! * [`ClassMatrix`] + [`dot_unrolled`] / [`dot_sign_dense`] — inference
//!   (Eq. 4) against a contiguous row-major copy of the class
//!   hypervectors with cached norms and packed sign rows. Dots run with
//!   four independent accumulators (breaking the serial `fadd` dependency
//!   chain of a naive fold) and the packed-query variant selects the sign
//!   branchlessly via the `f64` sign bit — no `trailing_zeros` loops.
//! * [`PackedClassMatrix`] + [`xor_popcount`] — the packed-native
//!   inference path: class rows stored as bit-packed signs plus one
//!   magnitude scale per 64-dim word block, scored against bit-packed
//!   queries with pure `XOR` + `POPCNT` word arithmetic
//!   (`dot = Σ_w s_w·(valid_w − 2·mismatch_w)`), so a 1-bit/dim wire
//!   query is never expanded to dense `f64`s on the serving path.
//! * [`scalar_encode_packed`] / [`scalar_encode_packed_batch`] — the
//!   Eq. (2a) kernel fused with bipolar quantization: the accumulator
//!   sign comparison happens in exact integers and the packed words are
//!   emitted directly. The batch form builds every query's digit masks
//!   up front and then streams each transposed item-memory row once
//!   across the whole batch, amortizing the row's memory traffic.
//!
//! The `f64` dot kernels and [`xor_popcount`] dispatch to explicit AVX2
//! (`std::arch`) variants when the CPU supports them — detected once at
//! runtime, short-circuited at compile time under
//! `-C target-feature=+avx2` — with scalar fallbacks the AVX2 arms
//! bit-match (separate mul+add, identical lane order; see
//! `docs/PERF.md` for the dispatch policy).
//!
//! The naive paths stay available as `*_reference` methods on the
//! encoders/model; the property tests in `tests/properties.rs` hold the
//! kernels to them (bit-exact where the arithmetic is integer, ≤1e-9
//! absolute where only the floating-point summation order differs).
//!
//! Per-query scratch (grid indices, digit masks, CSA planes) lives in a
//! thread-local buffer so steady-state encoding performs no allocations
//! beyond the returned hypervector.

use std::cell::RefCell;

use crate::basis::{ItemMemory, LevelMemory};
use crate::hypervector::{BipolarHv, Hypervector};

const WORD_BITS: usize = 64;

/// Columns per scoring tile: 2048 × 8 B = 16 KB per class-row slice, so
/// a full tile (every class's slice + a block of query slices) stays
/// L2-resident even for a few dozen classes.
const DIM_TILE: usize = 2_048;

thread_local! {
    static SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::default());
}

/// Reusable per-thread buffers for the encode kernels.
#[derive(Debug, Default)]
struct KernelScratch {
    /// Grid indices `g_k`, one per feature (scalar encode).
    grid: Vec<u64>,
    /// Digit masks `m_b`, `bits × f_words` words (scalar encode).
    masks: Vec<u64>,
    /// CSA bit-planes, word-major `hv_words × planes` (level encode).
    planes: Vec<u64>,
}

/// Dim-major, bit-sliced copy of an [`ItemMemory`].
///
/// Row `j` packs the signs of base hypervectors `B_0 … B_{D_iv−1}` *at
/// dimension `j`* into `⌈D_iv/64⌉` words (bit `k` set ⇔ `B_k[j] = +1`).
/// This is the transpose of the feature-major layout [`ItemMemory`]
/// stores, and it is what lets [`scalar_encode_level_sliced`] answer
/// "how many features of this subset are positive at dimension `j`"
/// with a handful of `AND` + `POPCNT` instructions.
#[derive(Debug, Clone)]
pub struct TransposedItemMemory {
    features: usize,
    dim: usize,
    f_words: usize,
    words: Vec<u64>,
}

impl TransposedItemMemory {
    /// Builds the transpose of `item` (done once per encoder).
    pub fn from_item_memory(item: &ItemMemory) -> Self {
        let features = item.len();
        let dim = item.dim();
        let f_words = features.div_ceil(WORD_BITS);
        let mut words = vec![0u64; dim * f_words];
        for (k, base) in item.iter().enumerate() {
            let (fw, fb) = (k / WORD_BITS, k % WORD_BITS);
            for (w, &bw) in base.words().iter().enumerate() {
                let mut word = bw;
                while word != 0 {
                    let b = word.trailing_zeros() as usize;
                    let j = w * WORD_BITS + b;
                    if j >= dim {
                        break;
                    }
                    words[j * f_words + fw] |= 1 << fb;
                    word &= word - 1;
                }
            }
        }
        Self {
            features,
            dim,
            f_words,
            words,
        }
    }

    /// Number of features `D_iv` (bits per row).
    pub fn features(&self) -> usize {
        self.features
    }

    /// Hypervector dimensionality `D_hv` (number of rows).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed bit row for dimension `j`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.dim()`.
    pub fn row(&self, j: usize) -> &[u64] {
        &self.words[j * self.f_words..(j + 1) * self.f_words]
    }
}

/// Level-sliced scalar encode (Eq. 2a): see the [module docs](self) for
/// the factorization. `input` must hold exactly `im_t.features()` values;
/// they are clamped to `[0, 1]` and snapped to the `levels`-point grid
/// exactly like the reference path.
///
/// # Panics
///
/// Panics if `input.len() != im_t.features()` or `levels < 2` (the
/// encoder validates both before calling).
pub fn scalar_encode_level_sliced(
    im_t: &TransposedItemMemory,
    input: &[f64],
    levels: usize,
) -> Vec<f64> {
    assert_eq!(input.len(), im_t.features, "feature count mismatch");
    assert!(levels >= 2, "need at least two levels");
    // The integer pipeline would silently snap NaN to grid index 0;
    // poison the whole encoding instead, as the reference path does.
    if input.iter().any(|v| v.is_nan()) {
        return vec![f64::NAN; im_t.dim];
    }
    let steps = (levels - 1) as f64;
    let max_index = (levels - 1) as u64;
    let bits = (u64::BITS - max_index.leading_zeros()) as usize;
    let f_words = im_t.f_words;

    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();

        // 1. Quantize each feature to its grid index g_k = round(v·(ℓ−1)).
        scratch.grid.clear();
        scratch
            .grid
            .extend(input.iter().map(|&raw| quantize_index(raw, steps)));

        // 2. Slice the indices into per-digit feature masks m_b and the
        //    per-query constant Σ_k g_k.
        scratch.masks.clear();
        scratch.masks.resize(bits * f_words, 0);
        let mut index_total: u64 = 0;
        for (k, &g) in scratch.grid.iter().enumerate() {
            index_total += g;
            let (fw, fb) = (k / WORD_BITS, k % WORD_BITS);
            let mut digits = g;
            while digits != 0 {
                let b = digits.trailing_zeros() as usize;
                scratch.masks[b * f_words + fw] |= 1 << fb;
                digits &= digits - 1;
            }
        }

        // 3. Pure popcount accumulation per dimension.
        let inv_steps = 1.0 / steps;
        let total = index_total as i64;
        let mut acc = Vec::with_capacity(im_t.dim);
        for row in im_t.words.chunks_exact(f_words) {
            let mut weighted: u64 = 0;
            for (b, mask) in scratch.masks.chunks_exact(f_words).enumerate() {
                let mut count: u32 = 0;
                for (rw, mw) in row.iter().zip(mask) {
                    count += (rw & mw).count_ones();
                }
                weighted += u64::from(count) << b;
            }
            // acc_j = (2·Σ_b 2^b·pos_count_{b,j} − Σ_k g_k) / (ℓ−1):
            // exact in integers, one rounding at the final scale.
            acc.push((2 * weighted as i64 - total) as f64 * inv_steps);
        }
        acc
    })
}

/// `round(clamp(v)·steps)` as the grid index, mirroring the reference
/// `snap` exactly (including `round`'s away-from-zero ties).
fn quantize_index(raw: f64, steps: f64) -> u64 {
    (raw.clamp(0.0, 1.0) * steps).round() as u64
}

/// [`scalar_encode_level_sliced`] fused with bipolar quantization: the
/// packed sign words are emitted directly (bit 1 ⇔ `acc_j ≥ 0`, the
/// [`crate::QuantScheme::Bipolar`] convention) and the dense `f64`
/// accumulator is never materialized. The sign test
/// `2·weighted_j ≥ Σ_k g_k` runs in exact integers, so the result
/// bit-matches bipolar-quantizing the dense kernel's output.
///
/// Returns `None` if any input is NaN: the dense path poisons the whole
/// encoding with NaN, which a 1-bit representation cannot carry.
///
/// # Panics
///
/// Panics if `input.len() != im_t.features()` or `levels < 2` (the
/// encoder validates both).
pub fn scalar_encode_packed(
    im_t: &TransposedItemMemory,
    input: &[f64],
    levels: usize,
) -> Option<BipolarHv> {
    scalar_encode_packed_batch(im_t, &[input], levels)
        .map(|mut out| out.pop().expect("one query in, one hypervector out"))
}

/// Batch form of [`scalar_encode_packed`]: every query's level-grid
/// digit masks are built up front, then each transposed item-memory row
/// is streamed *once* across the whole batch. The item-memory traffic —
/// `D_hv × ⌈D_iv/64⌉` words, the dominant memory term of Eq. (2a) — is
/// paid per batch instead of per query.
///
/// Returns `None` if any query contains NaN (see
/// [`scalar_encode_packed`]); an empty batch yields an empty vector.
///
/// # Panics
///
/// Panics if any query's length differs from `im_t.features()` or
/// `levels < 2`.
pub fn scalar_encode_packed_batch(
    im_t: &TransposedItemMemory,
    inputs: &[&[f64]],
    levels: usize,
) -> Option<Vec<BipolarHv>> {
    assert!(levels >= 2, "need at least two levels");
    for input in inputs {
        assert_eq!(input.len(), im_t.features, "feature count mismatch");
        if input.iter().any(|v| v.is_nan()) {
            return None;
        }
    }
    if inputs.is_empty() {
        return Some(Vec::new());
    }
    let steps = (levels - 1) as f64;
    let max_index = (levels - 1) as u64;
    let bits = (u64::BITS - max_index.leading_zeros()) as usize;
    let f_words = im_t.f_words;
    let hv_words = im_t.dim.div_ceil(WORD_BITS);

    // Phase 1: quantize every query and slice its grid indices into
    // digit masks (one `bits × f_words` block per query) plus the
    // per-query constant Σ_k g_k. Allocated per batch, not per query.
    let mut masks = vec![0u64; inputs.len() * bits * f_words];
    let mut totals = Vec::with_capacity(inputs.len());
    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        for (input, qmasks) in inputs.iter().zip(masks.chunks_exact_mut(bits * f_words)) {
            scratch.grid.clear();
            scratch
                .grid
                .extend(input.iter().map(|&raw| quantize_index(raw, steps)));
            let mut index_total: u64 = 0;
            for (k, &g) in scratch.grid.iter().enumerate() {
                index_total += g;
                let (fw, fb) = (k / WORD_BITS, k % WORD_BITS);
                let mut digits = g;
                while digits != 0 {
                    let b = digits.trailing_zeros() as usize;
                    qmasks[b * f_words + fw] |= 1 << fb;
                    digits &= digits - 1;
                }
            }
            totals.push(index_total);
        }
    });

    // Phase 2: one pass over the transposed item memory, scoring all
    // queries against each dim-row while it is cache-hot.
    let mut out_words = vec![0u64; inputs.len() * hv_words];
    for (j, row) in im_t.words.chunks_exact(f_words).enumerate() {
        let (jw, jb) = (j / WORD_BITS, j % WORD_BITS);
        for (q, qmasks) in masks.chunks_exact(bits * f_words).enumerate() {
            let mut weighted: u64 = 0;
            for (b, mask) in qmasks.chunks_exact(f_words).enumerate() {
                let mut count: u32 = 0;
                for (rw, mw) in row.iter().zip(mask) {
                    count += (rw & mw).count_ones();
                }
                weighted += u64::from(count) << b;
            }
            // acc_j ≥ 0 ⇔ 2·weighted ≥ Σ_k g_k: the 1/(ℓ−1) scale is
            // positive, so the comparison happens in exact integers.
            if 2 * weighted >= totals[q] {
                out_words[q * hv_words + jw] |= 1 << jb;
            }
        }
    }

    Some(
        out_words
            .chunks_exact(hv_words)
            .map(|words| BipolarHv::from_words(im_t.dim, words.to_vec()))
            .collect(),
    )
}

/// [`scalar_encode_level_sliced`] fused with bipolar quantization *and*
/// dimension masking — the compiled
/// [`EncodePlan`](crate::plan::EncodePlan) kernel for the paper's
/// operating point (bipolar inference quantization + masked dims,
/// §III-C). `keep_words` packs one bit per dimension (bit set ⇔ the
/// dimension survives the obfuscation mask; `⌈dim/64⌉` words, zero tail
/// bits).
///
/// Masked dimensions are emitted as `0.0` *without ever accumulating
/// them*: the whole `bits × ⌈D_iv/64⌉` popcount phase — the dominant
/// cost of Eq. (2a) — is skipped for every masked dimension, which is
/// where the compiled plan's speedup over encode-then-obfuscate comes
/// from. Kept dimensions run the exact-integer sign test
/// `2·weighted_j ≥ Σ_k g_k` of [`scalar_encode_packed`], so the output
/// bit-matches `obfuscate(encode(input))` under
/// [`crate::QuantScheme::Bipolar`] (whose result is independent of the
/// σ threshold).
///
/// Returns `None` if any input is NaN — the generic composition then
/// defines the semantics (NaN poisons the accumulator and the bipolar
/// comparison resolves it) and the caller falls back to it.
///
/// # Panics
///
/// Panics if `input.len() != im_t.features()`, `levels < 2`, or
/// `keep_words` is shorter than `⌈dim/64⌉` (the plan compiler
/// guarantees all three).
pub fn scalar_encode_bipolar_masked(
    im_t: &TransposedItemMemory,
    input: &[f64],
    levels: usize,
    keep_words: &[u64],
) -> Option<Vec<f64>> {
    assert_eq!(input.len(), im_t.features, "feature count mismatch");
    assert!(levels >= 2, "need at least two levels");
    assert!(
        keep_words.len() >= im_t.dim.div_ceil(WORD_BITS),
        "keep mask shorter than the dimension"
    );
    if input.iter().any(|v| v.is_nan()) {
        return None;
    }
    let steps = (levels - 1) as f64;
    let max_index = (levels - 1) as u64;
    let bits = (u64::BITS - max_index.leading_zeros()) as usize;
    let f_words = im_t.f_words;

    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();

        // Phase 1: grid indices and digit masks, exactly as in
        // `scalar_encode_level_sliced`.
        scratch.grid.clear();
        scratch
            .grid
            .extend(input.iter().map(|&raw| quantize_index(raw, steps)));
        scratch.masks.clear();
        scratch.masks.resize(bits * f_words, 0);
        let mut index_total: u64 = 0;
        for (k, &g) in scratch.grid.iter().enumerate() {
            index_total += g;
            let (fw, fb) = (k / WORD_BITS, k % WORD_BITS);
            let mut digits = g;
            while digits != 0 {
                let b = digits.trailing_zeros() as usize;
                scratch.masks[b * f_words + fw] |= 1 << fb;
                digits &= digits - 1;
            }
        }

        // Phase 2: popcount accumulation for *kept* dimensions only.
        let total = index_total;
        let mut acc = Vec::with_capacity(im_t.dim);
        for (j, row) in im_t.words.chunks_exact(f_words).enumerate() {
            if keep_words[j / WORD_BITS] >> (j % WORD_BITS) & 1 == 0 {
                acc.push(0.0);
                continue;
            }
            let mut weighted: u64 = 0;
            for (b, mask) in scratch.masks.chunks_exact(f_words).enumerate() {
                let mut count: u32 = 0;
                for (rw, mw) in row.iter().zip(mask) {
                    count += (rw & mw).count_ones();
                }
                weighted += u64::from(count) << b;
            }
            // acc_j ≥ 0 ⇔ 2·weighted ≥ Σ_k g_k (positive 1/(ℓ−1) scale),
            // then Bipolar maps `≥ 0` to +1 — all in exact integers.
            acc.push(if 2 * weighted >= total { 1.0 } else { -1.0 });
        }
        Some(acc)
    })
}

/// True when the dot/popcount kernels of this module will dispatch to
/// their AVX2 arms on this host — the probe
/// [`crate::plan::ModelPlan::compile`] runs *once* per published model
/// instead of (implicitly, inside each kernel call) per batch. Always
/// false off x86-64.
pub fn avx2_dispatch() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        avx2_available()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// Record/level encode (Eq. 2b) by word-parallel majority accumulation:
/// every bound row `L_{v_k} ⊛ B_k` is XNOR-ed on the fly and inserted
/// into a carry-save bit-slice counter; the per-dimension counts are
/// extracted once at the end as `acc_j = 2·count_j − D_iv`.
///
/// Bit-matches the naive per-feature accumulation (all arithmetic is
/// exact small integers).
///
/// # Panics
///
/// Panics if `input.len() != item.len()` or the level/item memories
/// disagree on dimensionality (the encoder validates both).
pub fn level_encode_majority(item: &ItemMemory, lm: &LevelMemory, input: &[f64]) -> Vec<f64> {
    assert_eq!(input.len(), item.len(), "feature count mismatch");
    assert_eq!(item.dim(), lm.dim(), "item/level dimension mismatch");
    let dim = item.dim();
    let hv_words = dim.div_ceil(WORD_BITS);
    let features = input.len();
    // Counts reach `features`, so ⌈log₂(features+1)⌉ planes suffice.
    let planes = (u64::BITS - (features as u64).leading_zeros()) as usize;

    SCRATCH.with(|scratch| {
        let scratch = &mut *scratch.borrow_mut();
        scratch.planes.clear();
        scratch.planes.resize(hv_words * planes, 0);

        for (k, &raw) in input.iter().enumerate() {
            let level = lm.level_for(raw).words();
            let base = item.base(k).words();
            for (w, (lw, bw)) in level.iter().zip(base).enumerate() {
                // Bound row word: bipolar bind is XNOR. Tail bits beyond
                // `dim` are garbage but never extracted below.
                let mut carry = !(lw ^ bw);
                let slots = &mut scratch.planes[w * planes..(w + 1) * planes];
                for slot in slots {
                    if carry == 0 {
                        break;
                    }
                    let next = *slot & carry;
                    *slot ^= carry;
                    carry = next;
                }
            }
        }

        let n = features as i64;
        let mut acc = Vec::with_capacity(dim);
        for (w, slots) in scratch.planes.chunks_exact(planes).enumerate() {
            let lanes = (dim - w * WORD_BITS).min(WORD_BITS);
            for b in 0..lanes {
                let mut count: i64 = 0;
                for (p, plane) in slots.iter().enumerate() {
                    count += (((plane >> b) & 1) << p) as i64;
                }
                acc.push((2 * count - n) as f64);
            }
        }
        acc
    })
}

/// True when the AVX2 kernel arms may run. Compiling with
/// `-C target-feature=+avx2` (the CI AVX2 leg) short-circuits the check
/// at compile time; otherwise a CPUID probe decides at runtime
/// (`std::is_x86_feature_detected!` memoizes, so steady-state dispatch
/// is one relaxed atomic load).
#[cfg(target_arch = "x86_64")]
#[inline]
fn avx2_available() -> bool {
    // Miri interprets MIR and cannot execute vendor intrinsics; force
    // the scalar arms so `cargo miri test` exercises these dispatch
    // sites instead of aborting on the first AVX2 instruction. The
    // guard beats the cfg!(target_feature) short-circuit on purpose:
    // a `-C target-feature=+avx2` build run under Miri must still take
    // the scalar path.
    if cfg!(miri) {
        return false;
    }
    cfg!(target_feature = "avx2") || std::is_x86_feature_detected!("avx2")
}

/// Dense `f64` dot product with four independent accumulators.
///
/// Mathematically identical to a sequential fold; the four-lane
/// accumulation breaks the serial `fadd` dependency chain, which is what
/// buys the throughput. The summation order differs from a naive fold,
/// so compare against it with a tolerance, not bit-equality. Trailing
/// elements of the longer slice are ignored (callers pass equal
/// lengths).
///
/// Dispatches to an AVX2 variant on capable x86-64 CPUs; the vector arm
/// keeps the scalar arm's per-lane operation order (separate mul+add,
/// no FMA contraction), so both arms return bit-identical sums.
pub fn dot_unrolled(a: &[f64], b: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: `avx2_available` verified the AVX2 requirement.
        return unsafe { dot_unrolled_avx2(a, b) };
    }
    dot_unrolled_scalar(a, b)
}

fn dot_unrolled_scalar(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let quads = n - n % 4;
    let mut acc = [0.0f64; 4];
    for (ca, cb) in a[..quads].chunks_exact(4).zip(b[..quads].chunks_exact(4)) {
        acc[0] += ca[0] * cb[0];
        acc[1] += ca[1] * cb[1];
        acc[2] += ca[2] * cb[2];
        acc[3] += ca[3] * cb[3];
    }
    let mut tail = 0.0;
    for (x, y) in a[quads..n].iter().zip(&b[quads..n]) {
        tail += x * y;
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3]) + tail
}

/// AVX2 arm of [`dot_unrolled`]: one `__m256d` accumulator whose four
/// lanes mirror the scalar arm's four accumulators exactly.
///
/// # Safety
///
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_unrolled_avx2(a: &[f64], b: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let quads = n - n % 4;
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i < quads {
        // SAFETY: `i + 3 < quads ≤ a.len(), b.len()` — both 32-byte
        // unaligned loads stay in bounds.
        let va = unsafe { _mm256_loadu_pd(a.as_ptr().add(i)) };
        // SAFETY: as above — same bound for `b`.
        let vb = unsafe { _mm256_loadu_pd(b.as_ptr().add(i)) };
        // Separate mul + add (no FMA): each lane performs the same two
        // correctly-rounded operations as the scalar arm, keeping the
        // two arms bit-identical.
        acc = _mm256_add_pd(acc, _mm256_mul_pd(va, vb));
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    // SAFETY: `lanes` is exactly the 32 bytes the store writes.
    unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), acc) };
    let mut tail = 0.0;
    for (x, y) in a[quads..n].iter().zip(&b[quads..n]) {
        tail += x * y;
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]) + tail
}

/// Dot product of a bit-packed bipolar vector (`1 ↔ +1`) against dense
/// `f64` values, fully branchless: the query bit selects the sign by
/// XOR-ing the `f64` sign bit, with no `trailing_zeros` walk and no
/// data-dependent branches.
///
/// `values` beyond `64·words.len()` are ignored; unused tail bits of the
/// last word must be zero (both invariants hold for
/// [`crate::BipolarHv`]).
///
/// Dispatches to an AVX2 variant on capable x86-64 CPUs, bit-identical
/// to the scalar arm (same lane assignment and addition order).
pub fn dot_sign_dense(words: &[u64], values: &[f64]) -> f64 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: `avx2_available` verified the AVX2 requirement.
        return unsafe { dot_sign_dense_avx2(words, values) };
    }
    dot_sign_dense_scalar(words, values)
}

fn dot_sign_dense_scalar(words: &[u64], values: &[f64]) -> f64 {
    let mut acc = [0.0f64; 4];
    for (w, chunk) in words.iter().zip(values.chunks(WORD_BITS)) {
        // Bit set → +v; bit clear → −v via the IEEE-754 sign bit. The
        // inverted word shifts right four bits per quad so each lane's
        // select is a constant-offset bit test.
        let mut nw = !w;
        let quads = chunk.chunks_exact(4);
        let tail = quads.remainder();
        for quad in quads {
            acc[0] += f64::from_bits(quad[0].to_bits() ^ ((nw & 1) << 63));
            acc[1] += f64::from_bits(quad[1].to_bits() ^ ((nw >> 1 & 1) << 63));
            acc[2] += f64::from_bits(quad[2].to_bits() ^ ((nw >> 2 & 1) << 63));
            acc[3] += f64::from_bits(quad[3].to_bits() ^ ((nw >> 3 & 1) << 63));
            nw >>= 4;
        }
        for (b, &v) in tail.iter().enumerate() {
            acc[b & 3] += f64::from_bits(v.to_bits() ^ ((nw >> b & 1) << 63));
        }
    }
    (acc[0] + acc[1]) + (acc[2] + acc[3])
}

/// AVX2 arm of [`dot_sign_dense`]: the per-lane sign masks come from a
/// variable 64-bit left shift of the inverted query word
/// (`(!w) << (63−lane)` isolates bit `lane` at the sign position), so
/// four sign selects and four adds happen per vector op. Lane
/// assignment (`position mod 4`) and addition order match the scalar
/// arm exactly — only a full 64-value chunk can be followed by another
/// chunk, so the global quad prefix coincides with the per-chunk quads.
///
/// # Safety
///
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn dot_sign_dense_avx2(words: &[u64], values: &[f64]) -> f64 {
    use std::arch::x86_64::*;
    let n = values.len().min(words.len() * WORD_BITS);
    let quads = n - n % 4;
    let sign_bit = _mm256_set1_epi64x(i64::MIN);
    let shifts = _mm256_setr_epi64x(63, 62, 61, 60);
    let mut acc = _mm256_setzero_pd();
    let mut i = 0;
    while i < quads {
        let nw = !words[i / WORD_BITS] >> (i % WORD_BITS);
        let signs = _mm256_and_si256(
            _mm256_sllv_epi64(_mm256_set1_epi64x(nw as i64), shifts),
            sign_bit,
        );
        // SAFETY: `i + 3 < quads ≤ values.len()` keeps the load in
        // bounds.
        let v = unsafe { _mm256_loadu_pd(values.as_ptr().add(i)) };
        acc = _mm256_add_pd(acc, _mm256_xor_pd(v, _mm256_castsi256_pd(signs)));
        i += 4;
    }
    let mut lanes = [0.0f64; 4];
    // SAFETY: `lanes` is exactly the 32 bytes the store writes.
    unsafe { _mm256_storeu_pd(lanes.as_mut_ptr(), acc) };
    if quads < n {
        let nw = !words[quads / WORD_BITS] >> (quads % WORD_BITS);
        for (b, &v) in values[quads..n].iter().enumerate() {
            lanes[b & 3] += f64::from_bits(v.to_bits() ^ ((nw >> b & 1) << 63));
        }
    }
    (lanes[0] + lanes[1]) + (lanes[2] + lanes[3])
}

/// Number of mismatching sign bits between two packed bipolar rows:
/// `Σ_w popcount(a_w ⊕ b_w)` over the shorter slice — the Hamming
/// kernel of the packed predict path.
///
/// Dispatches to an AVX2 variant (256-bit XOR, scalar `POPCNT`
/// extraction — see `docs/PERF.md`); both arms are pure integer
/// arithmetic and trivially agree.
pub fn xor_popcount(a: &[u64], b: &[u64]) -> u64 {
    #[cfg(target_arch = "x86_64")]
    if avx2_available() {
        // SAFETY: `avx2_available` verified the AVX2 requirement.
        return unsafe { xor_popcount_avx2(a, b) };
    }
    xor_popcount_scalar(a, b)
}

fn xor_popcount_scalar(a: &[u64], b: &[u64]) -> u64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| u64::from((x ^ y).count_ones()))
        .sum()
}

/// AVX2 arm of [`xor_popcount`]: XOR four words per 256-bit op, count
/// with scalar `POPCNT` (no AVX-512 `VPOPCNTDQ` dependence).
///
/// # Safety
///
/// The CPU must support AVX2.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn xor_popcount_avx2(a: &[u64], b: &[u64]) -> u64 {
    use std::arch::x86_64::*;
    let n = a.len().min(b.len());
    let quads = n - n % 4;
    let mut total = 0u64;
    let mut i = 0;
    while i < quads {
        // SAFETY: `i + 3 < quads ≤ a.len(), b.len()` keeps both 32-byte
        // loads in bounds.
        let va = unsafe { _mm256_loadu_si256(a.as_ptr().add(i).cast()) };
        // SAFETY: as above — same bound for `b`.
        let vb = unsafe { _mm256_loadu_si256(b.as_ptr().add(i).cast()) };
        let mut x = [0u64; 4];
        // SAFETY: `x` is exactly the 32 bytes the store writes.
        unsafe { _mm256_storeu_si256(x.as_mut_ptr().cast(), _mm256_xor_si256(va, vb)) };
        total += x.iter().map(|w| u64::from(w.count_ones())).sum::<u64>();
        i += 4;
    }
    for (x, y) in a[quads..n].iter().zip(&b[quads..n]) {
        total += u64::from((x ^ y).count_ones());
    }
    total
}

/// A contiguous, inference-ready snapshot of a model's class
/// hypervectors.
///
/// Holds the dense values row-major (`classes × dim`, so one class is
/// one cache-friendly streak), the packed sign bit of every value
/// (`value ≥ 0 ↔ 1`, the binarization convention of
/// [`crate::BinaryHdModel`]) and the cached ℓ2 norms. Built lazily by
/// [`crate::HdModel`] and rebuilt only after mutation.
#[derive(Debug, Clone)]
pub struct ClassMatrix {
    num_classes: usize,
    dim: usize,
    hv_words: usize,
    dense: Vec<f64>,
    sign_rows: Vec<u64>,
    norms: Vec<f64>,
}

impl ClassMatrix {
    /// Snapshots `classes` (all of the same dimensionality) into the
    /// contiguous layout. An empty slice yields an empty matrix whose
    /// [`ClassMatrix::all_zero`] is true, so degenerate models degrade
    /// to [`crate::HdError::ZeroNorm`] instead of panicking.
    ///
    /// # Panics
    ///
    /// Panics if class dimensionalities disagree (the model guarantees
    /// they do not).
    pub fn from_classes(classes: &[Hypervector]) -> Self {
        let dim = classes.first().map_or(0, Hypervector::dim);
        let hv_words = dim.div_ceil(WORD_BITS);
        let num_classes = classes.len();
        let mut dense = Vec::with_capacity(num_classes * dim);
        let mut sign_rows = vec![0u64; num_classes * hv_words];
        let mut norms = Vec::with_capacity(num_classes);
        for (l, class) in classes.iter().enumerate() {
            assert_eq!(class.dim(), dim, "class dimension mismatch");
            dense.extend_from_slice(class.as_slice());
            for (j, &v) in class.as_slice().iter().enumerate() {
                if v >= 0.0 {
                    sign_rows[l * hv_words + j / WORD_BITS] |= 1 << (j % WORD_BITS);
                }
            }
            norms.push(class.l2_norm());
        }
        Self {
            num_classes,
            dim,
            hv_words,
            dense,
            sign_rows,
            norms,
        }
    }

    /// Number of classes (rows).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Hypervector dimensionality (columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The dense values of class `l`.
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_classes()`.
    pub fn class_row(&self, l: usize) -> &[f64] {
        &self.dense[l * self.dim..(l + 1) * self.dim]
    }

    /// The packed sign bits of class `l` (`value ≥ 0 ↔ 1`; tail bits
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_classes()`.
    pub fn sign_row(&self, l: usize) -> &[u64] {
        &self.sign_rows[l * self.hv_words..(l + 1) * self.hv_words]
    }

    /// Cached ℓ2 norms, index = class label.
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// True when every class hypervector is all-zero (untrained model)
    /// — vacuously true for an empty matrix.
    pub fn all_zero(&self) -> bool {
        self.norms.iter().all(|&n| n == 0.0)
    }

    /// Re-snapshots a single class row in place (dense values, sign
    /// bits, norm) after a targeted mutation such as a retraining
    /// update, avoiding a full matrix rebuild.
    ///
    /// # Panics
    ///
    /// Panics if `l` is out of range or `class` has the wrong
    /// dimensionality (the model guarantees both).
    pub fn update_class(&mut self, l: usize, class: &Hypervector) {
        assert_eq!(class.dim(), self.dim, "class dimension mismatch");
        let values = class.as_slice();
        self.dense[l * self.dim..(l + 1) * self.dim].copy_from_slice(values);
        let signs = &mut self.sign_rows[l * self.hv_words..(l + 1) * self.hv_words];
        signs.fill(0);
        for (j, &v) in values.iter().enumerate() {
            if v >= 0.0 {
                signs[j / WORD_BITS] |= 1 << (j % WORD_BITS);
            }
        }
        self.norms[l] = class.l2_norm();
    }

    /// Normalized scores of one dense query against every class, written
    /// into `scores` (cleared first). Zero-norm classes score
    /// [`f64::NEG_INFINITY`]. Routed through the same tiled accumulation
    /// as [`ClassMatrix::scores_block_into`] (with a block of one), so
    /// single-query and blocked results are bit-identical.
    pub fn scores_into(&self, query: &[f64], scores: &mut Vec<f64>) {
        scores.clear();
        scores.resize(self.num_classes, 0.0);
        self.scores_tiled([query].as_slice(), std::slice::from_mut(scores));
    }

    /// [`ClassMatrix::scores_into`] for a block of queries at once — the
    /// cache-friendly tile of batched inference.
    ///
    /// # Panics
    ///
    /// Panics if `queries` and `out` lengths differ.
    pub fn scores_block_into(&self, queries: &[&[f64]], out: &mut [Vec<f64>]) {
        assert_eq!(queries.len(), out.len(), "one score row per query");
        for scores in out.iter_mut() {
            scores.clear();
            scores.resize(self.num_classes, 0.0);
        }
        self.scores_tiled(queries, out);
    }

    /// Shared tiled scoring core. The dimension axis is cut into
    /// [`DIM_TILE`]-column tiles and every `(query, class)` pair
    /// accumulates one partial [`dot_unrolled`] per tile: each matrix
    /// element is read once per *block* instead of once per query, so a
    /// block of `B` queries cuts class-matrix memory traffic by `B×`.
    /// Tile boundaries are a function of the dimension alone, so the
    /// per-pair summation order is independent of the block size —
    /// blocked, single-query and batched paths all bit-match.
    fn scores_tiled(&self, queries: &[&[f64]], out: &mut [Vec<f64>]) {
        for tile_start in (0..self.dim).step_by(DIM_TILE) {
            let tile_end = (tile_start + DIM_TILE).min(self.dim);
            for l in 0..self.num_classes {
                let row = &self.dense[l * self.dim + tile_start..l * self.dim + tile_end];
                for (q, scores) in queries.iter().zip(out.iter_mut()) {
                    scores[l] += dot_unrolled(&q[tile_start..tile_end], row);
                }
            }
        }
        for scores in out.iter_mut() {
            for (s, &norm) in scores.iter_mut().zip(&self.norms) {
                *s = if norm == 0.0 {
                    f64::NEG_INFINITY
                } else {
                    *s / norm
                };
            }
        }
    }

    /// Normalized scores of a bit-packed bipolar query against every
    /// class via [`dot_sign_dense`]. Zero-norm classes score
    /// [`f64::NEG_INFINITY`].
    pub fn scores_packed_into(&self, query_words: &[u64], scores: &mut Vec<f64>) {
        scores.clear();
        scores.reserve(self.num_classes);
        for l in 0..self.num_classes {
            let norm = self.norms[l];
            scores.push(if norm == 0.0 {
                f64::NEG_INFINITY
            } else {
                dot_sign_dense(query_words, self.class_row(l)) / norm
            });
        }
    }

    /// Heap footprint of this snapshot in bytes (dense values, packed
    /// sign rows, cached norms) — the dense side of the per-model
    /// `memory_bytes` serving metric.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.dense.as_slice())
            + std::mem::size_of_val(self.sign_rows.as_slice())
            + std::mem::size_of_val(self.norms.as_slice())
    }
}

/// A bit-packed, inference-ready snapshot of a model's class
/// hypervectors — the packed-native counterpart of [`ClassMatrix`].
///
/// Each class is stored as its packed sign row (bit 1 ⇔ `value ≥ 0`,
/// the same convention as [`ClassMatrix::sign_row`]) plus one `f64`
/// magnitude scale per 64-dimension word block. Construction succeeds
/// only when that factorization is *exact* — every block holds values
/// of one shared magnitude (signs free) or is entirely zero (scale 0) —
/// which covers sign-only models produced by
/// [`crate::HdModel::quantize_classes`] with
/// [`crate::QuantScheme::Bipolar`] and blockwise-uniform quantized
/// rows; anything else returns `None` and the caller keeps scoring
/// through the dense rows.
///
/// Scoring a packed query is then pure word arithmetic:
/// `dot_l = Σ_w s_lw · (valid_w − 2·popcount(q_w ⊕ σ_lw))` — tail bits
/// of both operands are zero, so the XOR never counts them — at
/// 64 dimensions per `XOR` + `POPCNT` instead of one `f64` add per
/// dimension. For ±1 rows every partial sum is a small exact integer,
/// so the scores bit-match the dense path (asserted by the parity
/// proptests in `tests/properties.rs`).
#[derive(Debug, Clone)]
pub struct PackedClassMatrix {
    num_classes: usize,
    dim: usize,
    hv_words: usize,
    sign_rows: Vec<u64>,
    /// One magnitude per (class, 64-dim word block), row-major.
    word_scales: Vec<f64>,
    /// Per-class uniform scale when every word block shares one
    /// magnitude (the sign-only fast path: one popcount chain per class,
    /// one multiply at the end); `None` for mixed-scale rows.
    uniform: Vec<Option<f64>>,
    norms: Vec<f64>,
}

impl PackedClassMatrix {
    /// Attempts to snapshot `classes` into the packed layout. Returns
    /// `None` unless every 64-dim block of every class is exactly
    /// `sign × scale` (see the type docs); an empty slice yields an
    /// empty matrix.
    ///
    /// # Panics
    ///
    /// Panics if class dimensionalities disagree (the model guarantees
    /// they do not).
    pub fn try_from_classes(classes: &[Hypervector]) -> Option<Self> {
        let dim = classes.first().map_or(0, Hypervector::dim);
        let hv_words = dim.div_ceil(WORD_BITS);
        let num_classes = classes.len();
        let mut sign_rows = vec![0u64; num_classes * hv_words];
        let mut word_scales = Vec::with_capacity(num_classes * hv_words);
        let mut uniform = Vec::with_capacity(num_classes);
        let mut norms = Vec::with_capacity(num_classes);
        for (l, class) in classes.iter().enumerate() {
            assert_eq!(class.dim(), dim, "class dimension mismatch");
            let values = class.as_slice();
            let mut row_scale: Option<f64> = None;
            let mut row_uniform = true;
            for (w, block) in values.chunks(WORD_BITS).enumerate() {
                let mut scale = 0.0f64;
                let mut zeros = false;
                for (b, &v) in block.iter().enumerate() {
                    if v >= 0.0 {
                        sign_rows[l * hv_words + w] |= 1 << b;
                    }
                    let mag = v.abs();
                    if !mag.is_finite() {
                        return None;
                    }
                    if mag == 0.0 {
                        zeros = true;
                    } else if scale == 0.0 {
                        scale = mag;
                    } else if mag != scale {
                        return None;
                    }
                }
                // A block mixing zeros and non-zeros is not `sign×scale`:
                // the factorization puts ±scale at every lane.
                if zeros && scale != 0.0 {
                    return None;
                }
                word_scales.push(scale);
                match row_scale {
                    None => row_scale = Some(scale),
                    Some(s) if s == scale => {}
                    Some(_) => row_uniform = false,
                }
            }
            uniform.push(if row_uniform { row_scale } else { None });
            norms.push(class.l2_norm());
        }
        Some(Self {
            num_classes,
            dim,
            hv_words,
            sign_rows,
            word_scales,
            uniform,
            norms,
        })
    }

    /// Number of classes (rows).
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Hypervector dimensionality (columns).
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed sign bits of class `l` (`value ≥ 0 ↔ 1`; tail bits
    /// zero).
    ///
    /// # Panics
    ///
    /// Panics if `l >= self.num_classes()`.
    pub fn sign_row(&self, l: usize) -> &[u64] {
        &self.sign_rows[l * self.hv_words..(l + 1) * self.hv_words]
    }

    /// Cached ℓ2 norms, index = class label.
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// True when every class hypervector is all-zero (untrained model)
    /// — vacuously true for an empty matrix.
    pub fn all_zero(&self) -> bool {
        self.norms.iter().all(|&n| n == 0.0)
    }

    /// Heap footprint of this snapshot in bytes (sign rows, word
    /// scales, uniform flags, norms) — the packed side of the per-model
    /// `memory_bytes` serving metric. Roughly 64× smaller than
    /// [`ClassMatrix::memory_bytes`] on the dense values it replaces.
    pub fn memory_bytes(&self) -> usize {
        std::mem::size_of_val(self.sign_rows.as_slice())
            + std::mem::size_of_val(self.word_scales.as_slice())
            + std::mem::size_of_val(self.uniform.as_slice())
            + std::mem::size_of_val(self.norms.as_slice())
    }

    /// Normalized scores of a bit-packed bipolar query against every
    /// class, written into `scores` (cleared first) — the popcount
    /// realization of Eq. (4). Zero-norm classes score
    /// [`f64::NEG_INFINITY`]. `query_words` must hold exactly
    /// `⌈dim/64⌉` words with zero tail bits (the [`BipolarHv`]
    /// invariants).
    pub fn scores_packed_into(&self, query_words: &[u64], scores: &mut Vec<f64>) {
        scores.clear();
        scores.reserve(self.num_classes);
        for l in 0..self.num_classes {
            let norm = self.norms[l];
            if norm == 0.0 {
                scores.push(f64::NEG_INFINITY);
                continue;
            }
            let row = self.sign_row(l);
            let dot = match self.uniform[l] {
                // Uniform row: one popcount chain, one multiply. The
                // parenthesized integer is exact, so for scale 1 this
                // bit-matches the dense `±1` summation.
                Some(scale) => {
                    let mismatches = xor_popcount(query_words, row) as i64;
                    scale * (self.dim as i64 - 2 * mismatches) as f64
                }
                // Mixed scales: per-word popcount × scale. Tail bits of
                // both operands are zero, so the last word's mismatch
                // count only covers its `valid_w` live lanes.
                None => {
                    let scales = &self.word_scales[l * self.hv_words..(l + 1) * self.hv_words];
                    let mut dot = 0.0;
                    for (w, (qw, (sw, &scale))) in
                        query_words.iter().zip(row.iter().zip(scales)).enumerate()
                    {
                        let valid = (self.dim - w * WORD_BITS).min(WORD_BITS) as i64;
                        let mismatches = i64::from((qw ^ sw).count_ones());
                        dot += scale * (valid - 2 * mismatches) as f64;
                    }
                    dot
                }
            };
            scores.push(dot / norm);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basis::BasisGenerator;
    use crate::hypervector::BipolarHv;

    #[test]
    fn transposed_item_memory_matches_signs() {
        let im = BasisGenerator::new(3).item_memory(70, 130).unwrap();
        let t = TransposedItemMemory::from_item_memory(&im);
        assert_eq!(t.features(), 70);
        assert_eq!(t.dim(), 130);
        for j in 0..130 {
            let row = t.row(j);
            for k in 0..70 {
                let bit = (row[k / 64] >> (k % 64)) & 1;
                let expected = u64::from(im.base(k).sign(j) > 0.0);
                assert_eq!(bit, expected, "dim {j} feature {k}");
            }
        }
    }

    #[test]
    fn scalar_kernel_matches_direct_sum() {
        let im = BasisGenerator::new(9).item_memory(13, 190).unwrap();
        let t = TransposedItemMemory::from_item_memory(&im);
        let levels = 10;
        let input: Vec<f64> = (0..13).map(|i| i as f64 / 12.0).collect();
        let acc = scalar_encode_level_sliced(&t, &input, levels);
        let steps = (levels - 1) as f64;
        for (j, &a) in acc.iter().enumerate() {
            let expected: f64 = (0..13)
                .map(|k| {
                    let g = (input[k].clamp(0.0, 1.0) * steps).round();
                    g / steps * im.base(k).sign(j)
                })
                .sum();
            assert!((a - expected).abs() < 1e-9, "dim {j}: {a} vs {expected}");
        }
    }

    #[test]
    fn level_kernel_matches_bound_row_sum() {
        let gen = BasisGenerator::new(4);
        let im = gen.item_memory(9, 200).unwrap();
        let lm = gen.level_memory(12, 200).unwrap();
        let input: Vec<f64> = (0..9).map(|i| i as f64 / 8.0).collect();
        let acc = level_encode_majority(&im, &lm, &input);
        for (j, &a) in acc.iter().enumerate() {
            let expected: f64 = (0..9)
                .map(|k| lm.level_for(input[k]).sign(j) * im.base(k).sign(j))
                .sum();
            assert_eq!(a, expected, "dim {j}");
        }
    }

    #[test]
    fn dot_kernels_match_naive() {
        let values: Vec<f64> = (0..133).map(|i| (i as f64 * 0.37).sin() * 5.0).collect();
        let other: Vec<f64> = (0..133).map(|i| (i as f64 * 0.11).cos() * 3.0).collect();
        let naive: f64 = values.iter().zip(&other).map(|(a, b)| a * b).sum();
        assert!((dot_unrolled(&values, &other) - naive).abs() < 1e-9);

        let packed = BipolarHv::random(133, 5);
        let naive_signed: f64 = (0..133).map(|j| packed.sign(j) * values[j]).sum();
        let fast = dot_sign_dense(packed.words(), &values);
        assert!(
            (fast - naive_signed).abs() < 1e-9,
            "{fast} vs {naive_signed}"
        );
    }

    #[test]
    fn class_matrix_snapshots_classes() {
        let classes = vec![
            Hypervector::from_vec(vec![1.0, -2.0, 0.0, 3.0, -1.0]),
            Hypervector::from_vec(vec![0.0; 5]),
        ];
        let m = ClassMatrix::from_classes(&classes);
        assert_eq!(m.num_classes(), 2);
        assert_eq!(m.dim(), 5);
        assert_eq!(m.class_row(0), classes[0].as_slice());
        assert_eq!(m.norms()[1], 0.0);
        assert!(!m.all_zero());
        // Sign row: 1, -2, 0, 3, -1 → bits 1,0,1,1,0 (≥ 0 convention).
        assert_eq!(m.sign_row(0)[0], 0b01101);

        let mut scores = Vec::new();
        m.scores_into(&[1.0, 1.0, 1.0, 1.0, 1.0], &mut scores);
        assert_eq!(scores[1], f64::NEG_INFINITY);
        let expected = (1.0 - 2.0 + 0.0 + 3.0 - 1.0) / classes[0].l2_norm();
        assert!((scores[0] - expected).abs() < 1e-12);
    }

    #[test]
    fn empty_class_matrix_degrades_gracefully() {
        let m = ClassMatrix::from_classes(&[]);
        assert_eq!(m.num_classes(), 0);
        assert!(m.all_zero());
        let mut scores = vec![1.0];
        m.scores_into(&[], &mut scores);
        assert!(scores.is_empty());
    }

    #[test]
    fn update_class_matches_fresh_snapshot() {
        let mut classes = vec![
            Hypervector::from_vec((0..70).map(|j| (j as f64 * 0.3).sin()).collect()),
            Hypervector::from_vec((0..70).map(|j| (j as f64 * 0.7).cos()).collect()),
        ];
        let mut incremental = ClassMatrix::from_classes(&classes);
        classes[1] = Hypervector::from_vec((0..70).map(|j| (j as f64 * 1.3).sin()).collect());
        incremental.update_class(1, &classes[1]);
        let fresh = ClassMatrix::from_classes(&classes);
        assert_eq!(incremental.class_row(1), fresh.class_row(1));
        assert_eq!(incremental.sign_row(1), fresh.sign_row(1));
        assert_eq!(incremental.norms(), fresh.norms());
    }

    #[test]
    fn xor_popcount_matches_hamming() {
        let a = BipolarHv::random(517, 11);
        let b = BipolarHv::random(517, 12);
        assert_eq!(
            xor_popcount(a.words(), b.words()),
            a.hamming(&b).unwrap() as u64
        );
        assert_eq!(xor_popcount(a.words(), a.words()), 0);
    }

    #[test]
    fn packed_matrix_bit_matches_dense_for_sign_rows() {
        // ±1 rows across an off-word-boundary dimension: every partial
        // sum is an exact small integer, so packed and dense scores
        // must be bit-identical.
        let dim = 197;
        let classes: Vec<Hypervector> = (0..5)
            .map(|c| {
                Hypervector::from_vec(
                    (0..dim)
                        .map(|j| {
                            if ((c * dim + j) * 2654435761) % 7 < 3 {
                                1.0
                            } else {
                                -1.0
                            }
                        })
                        .collect(),
                )
            })
            .collect();
        let dense = ClassMatrix::from_classes(&classes);
        let packed = PackedClassMatrix::try_from_classes(&classes).expect("±1 rows pack exactly");
        let query = BipolarHv::random(dim, 99);
        let (mut ds, mut ps) = (Vec::new(), Vec::new());
        dense.scores_packed_into(query.words(), &mut ds);
        packed.scores_packed_into(query.words(), &mut ps);
        assert_eq!(ds, ps, "packed popcount scores must bit-match dense");
    }

    #[test]
    fn packed_matrix_handles_zero_norm_and_scaled_rows() {
        let dim = 70;
        let classes = vec![
            Hypervector::from_vec(vec![0.0; dim]),
            Hypervector::from_vec(
                (0..dim)
                    .map(|j| if j % 3 == 0 { 2.5 } else { -2.5 })
                    .collect(),
            ),
        ];
        let packed = PackedClassMatrix::try_from_classes(&classes).expect("uniform scale packs");
        assert!(!packed.all_zero());
        let query = BipolarHv::random(dim, 3);
        let mut scores = Vec::new();
        packed.scores_packed_into(query.words(), &mut scores);
        assert_eq!(scores[0], f64::NEG_INFINITY);
        let naive: f64 = (0..dim).map(|j| query.sign(j) * classes[1][j]).sum();
        let expected = naive / classes[1].l2_norm();
        assert!(
            (scores[1] - expected).abs() < 1e-9,
            "{} vs {expected}",
            scores[1]
        );
    }

    #[test]
    fn packed_matrix_rejects_inexact_rows() {
        // Mixed magnitudes inside one 64-dim block are not sign×scale.
        let mixed = vec![Hypervector::from_vec(vec![1.0, -2.0, 1.0, 1.0])];
        assert!(PackedClassMatrix::try_from_classes(&mixed).is_none());
        // So is a block mixing zeros with non-zeros (masked dims).
        let masked = vec![Hypervector::from_vec(vec![1.0, 0.0, -1.0, 1.0])];
        assert!(PackedClassMatrix::try_from_classes(&masked).is_none());
        // Per-block scales are fine: block 0 all ±3, block 1 all ±0.5.
        let blocky = vec![Hypervector::from_vec(
            (0..100)
                .map(|j| {
                    let mag = if j < 64 { 3.0 } else { 0.5 };
                    if j % 2 == 0 {
                        mag
                    } else {
                        -mag
                    }
                })
                .collect(),
        )];
        let packed = PackedClassMatrix::try_from_classes(&blocky).expect("blockwise uniform packs");
        let dense = ClassMatrix::from_classes(&blocky);
        let query = BipolarHv::random(100, 8);
        let (mut ds, mut ps) = (Vec::new(), Vec::new());
        dense.scores_packed_into(query.words(), &mut ds);
        packed.scores_packed_into(query.words(), &mut ps);
        assert!((ds[0] - ps[0]).abs() < 1e-9, "{} vs {}", ds[0], ps[0]);
    }

    #[test]
    fn empty_packed_matrix_degrades_gracefully() {
        let m = PackedClassMatrix::try_from_classes(&[]).expect("empty packs");
        assert_eq!(m.num_classes(), 0);
        assert!(m.all_zero());
        let mut scores = vec![1.0];
        m.scores_packed_into(&[], &mut scores);
        assert!(scores.is_empty());
    }

    #[test]
    fn packed_encode_matches_dense_sign() {
        let im = BasisGenerator::new(21).item_memory(23, 150).unwrap();
        let t = TransposedItemMemory::from_item_memory(&im);
        let levels = 12;
        let inputs: Vec<Vec<f64>> = (0..5)
            .map(|q| {
                (0..23)
                    .map(|k| ((q * 23 + k) as f64 * 0.17).sin().abs())
                    .collect()
            })
            .collect();
        let refs: Vec<&[f64]> = inputs.iter().map(|v| v.as_slice()).collect();
        let batch = scalar_encode_packed_batch(&t, &refs, levels).expect("no NaN");
        assert_eq!(batch.len(), inputs.len());
        for (input, packed) in inputs.iter().zip(&batch) {
            let dense = scalar_encode_level_sliced(&t, input, levels);
            for (j, &v) in dense.iter().enumerate() {
                let expected = if v >= 0.0 { 1.0 } else { -1.0 };
                assert_eq!(packed.sign(j), expected, "dim {j}");
            }
            let single = scalar_encode_packed(&t, input, levels).expect("no NaN");
            assert_eq!(&single, packed, "single-query path must match batch");
        }
    }

    #[test]
    fn packed_encode_refuses_nan() {
        let im = BasisGenerator::new(2).item_memory(4, 64).unwrap();
        let t = TransposedItemMemory::from_item_memory(&im);
        assert!(scalar_encode_packed(&t, &[0.1, f64::NAN, 0.3, 0.4], 4).is_none());
    }

    #[test]
    fn masked_bipolar_encode_matches_encode_then_mask() {
        // Off-word-boundary dim; mask out every third dimension.
        let dim = 197;
        let im = BasisGenerator::new(17).item_memory(19, dim).unwrap();
        let t = TransposedItemMemory::from_item_memory(&im);
        let levels = 10;
        let mut keep = vec![0u64; dim.div_ceil(64)];
        for j in 0..dim {
            if j % 3 != 0 {
                keep[j / 64] |= 1 << (j % 64);
            }
        }
        let input: Vec<f64> = (0..19).map(|k| (k as f64 * 0.29).sin().abs()).collect();
        let fused = scalar_encode_bipolar_masked(&t, &input, levels, &keep).expect("no NaN input");
        let dense = scalar_encode_level_sliced(&t, &input, levels);
        for (j, (&f, &d)) in fused.iter().zip(&dense).enumerate() {
            let expected = if j % 3 == 0 {
                0.0
            } else if d >= 0.0 {
                1.0
            } else {
                -1.0
            };
            assert_eq!(f, expected, "dim {j}");
        }
        // NaN input falls back to the generic composition.
        let mut poisoned = input.clone();
        poisoned[3] = f64::NAN;
        assert!(scalar_encode_bipolar_masked(&t, &poisoned, levels, &keep).is_none());
    }

    #[test]
    fn blocked_scores_bit_match_single_query_scores() {
        let classes: Vec<Hypervector> = (0..3)
            .map(|c| {
                Hypervector::from_vec((0..97).map(|j| ((c * 97 + j) as f64 * 0.7).sin()).collect())
            })
            .collect();
        let m = ClassMatrix::from_classes(&classes);
        let queries: Vec<Vec<f64>> = (0..5)
            .map(|q| (0..97).map(|j| ((q * 31 + j) as f64 * 0.3).cos()).collect())
            .collect();
        let refs: Vec<&[f64]> = queries.iter().map(|q| q.as_slice()).collect();
        let mut blocked: Vec<Vec<f64>> = vec![Vec::new(); queries.len()];
        m.scores_block_into(&refs, &mut blocked);
        for (q, b) in queries.iter().zip(&blocked) {
            let mut single = Vec::new();
            m.scores_into(q, &mut single);
            assert_eq!(&single, b, "blocked path must be bit-identical");
        }
    }
}
