//! Dense real hypervectors and bit-packed bipolar hypervectors.
//!
//! HD computing manipulates two kinds of vectors:
//!
//! * [`BipolarHv`] — the random base/location/level hypervectors
//!   `B ∈ {−1,+1}^D` of Eq. (2). They are stored bit-packed (one bit per
//!   dimension, `1 ↔ +1`) so that binding (element-wise product, which for
//!   bipolar values is XNOR) and dot products (popcount) run at
//!   64 dimensions per word.
//! * [`Hypervector`] — dense `f64` vectors: encoded queries, class
//!   hypervectors, and anything that accumulates or carries noise.

use std::fmt;
use std::ops::{Add, AddAssign, Index, Mul, Neg, Sub, SubAssign};
use std::sync::atomic::{AtomicU64, Ordering};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::error::HdError;

const WORD_BITS: usize = 64;

/// Process-wide count of packed↔dense representation conversions
/// ([`BipolarHv::to_dense`] and [`BipolarHv::from_signs`] calls).
static DENSE_CONVERSIONS: AtomicU64 = AtomicU64::new(0);

/// Process-wide number of packed↔dense representation conversions
/// performed so far: every [`BipolarHv::to_dense`] expansion and every
/// [`BipolarHv::from_signs`] re-pack counts one.
///
/// This is an audit hook, not a metric: the packed-native serving tests
/// snapshot it around a request to prove a packed wire query reaches the
/// predict kernel without an O(dim) dense detour. The counter is relaxed
/// — read it only once the audited work has completed (e.g. after the
/// request's reply arrived).
pub fn dense_conversion_count() -> u64 {
    DENSE_CONVERSIONS.load(Ordering::Relaxed)
}

/// A dense real-valued hypervector of fixed dimensionality.
///
/// This is the working type for encoded hypervectors `H` (Eq. 2), class
/// hypervectors `C_l` (Eq. 3) and noisy private models (Eq. 8).
///
/// # Examples
///
/// ```
/// use privehd_core::Hypervector;
///
/// let a = Hypervector::from_vec(vec![1.0, -1.0, 1.0, 1.0]);
/// let b = Hypervector::from_vec(vec![1.0, 1.0, -1.0, 1.0]);
/// let sum = a.clone() + b.clone();
/// assert_eq!(sum.as_slice(), &[2.0, 0.0, 0.0, 2.0]);
/// assert!(a.cosine(&b).unwrap() < 1.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Hypervector {
    values: Vec<f64>,
}

impl Hypervector {
    /// Creates an all-zero hypervector of dimension `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyDimension`] if `dim == 0`.
    pub fn zeros(dim: usize) -> Result<Self, HdError> {
        if dim == 0 {
            return Err(HdError::EmptyDimension);
        }
        Ok(Self {
            values: vec![0.0; dim],
        })
    }

    /// Wraps an existing vector of components.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty; use [`Hypervector::zeros`] plus
    /// assignment when the dimension is dynamic.
    pub fn from_vec(values: Vec<f64>) -> Self {
        assert!(
            !values.is_empty(),
            "hypervector must have at least one dimension"
        );
        Self { values }
    }

    /// The dimensionality `D` of the hypervector.
    pub fn dim(&self) -> usize {
        self.values.len()
    }

    /// A read-only view of the components.
    pub fn as_slice(&self) -> &[f64] {
        &self.values
    }

    /// A mutable view of the components.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.values
    }

    /// Consumes the hypervector and returns the underlying component vector.
    pub fn into_vec(self) -> Vec<f64> {
        self.values
    }

    /// Dot product `⟨self, other⟩ = Σ_k h_k · g_k`.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if dimensions differ.
    pub fn dot(&self, other: &Self) -> Result<f64, HdError> {
        self.check_dim(other.dim())?;
        Ok(self
            .values
            .iter()
            .zip(&other.values)
            .map(|(a, b)| a * b)
            .sum())
    }

    /// Euclidean (ℓ2) norm `‖H‖₂`.
    pub fn l2_norm(&self) -> f64 {
        self.values.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// ℓ1 norm `‖H‖₁ = Σ |h_k|` — the sensitivity measure of Eq. (7)/(11).
    pub fn l1_norm(&self) -> f64 {
        self.values.iter().map(|v| v.abs()).sum()
    }

    /// Cosine similarity `δ(self, other)` of Eq. (4).
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if dimensions differ and
    /// [`HdError::ZeroNorm`] if either vector has zero norm.
    pub fn cosine(&self, other: &Self) -> Result<f64, HdError> {
        let dot = self.dot(other)?;
        let denom = self.l2_norm() * other.l2_norm();
        if denom == 0.0 {
            return Err(HdError::ZeroNorm);
        }
        Ok(dot / denom)
    }

    /// Adds `other` scaled by `weight` into `self` (fused bundle step).
    ///
    /// This is the inner loop of training (Eq. 3) and retraining (Eq. 5),
    /// where `weight` is `+1` or `−1`.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if dimensions differ.
    pub fn add_scaled(&mut self, other: &Self, weight: f64) -> Result<(), HdError> {
        self.check_dim(other.dim())?;
        for (a, b) in self.values.iter_mut().zip(&other.values) {
            *a += weight * b;
        }
        Ok(())
    }

    /// Element-wise (Hadamard) product, the real-valued binding operation.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if dimensions differ.
    pub fn hadamard(&self, other: &Self) -> Result<Self, HdError> {
        self.check_dim(other.dim())?;
        Ok(Self {
            values: self
                .values
                .iter()
                .zip(&other.values)
                .map(|(a, b)| a * b)
                .collect(),
        })
    }

    /// Returns the number of exactly-zero components (used by masking and
    /// pruning diagnostics).
    pub fn count_zeros(&self) -> usize {
        self.values.iter().filter(|v| **v == 0.0).count()
    }

    /// Mean of the components.
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population variance of the components.
    pub fn variance(&self) -> f64 {
        let mean = self.mean();
        self.values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / self.values.len() as f64
    }

    fn check_dim(&self, other: usize) -> Result<(), HdError> {
        if self.dim() != other {
            Err(HdError::DimensionMismatch {
                expected: self.dim(),
                actual: other,
            })
        } else {
            Ok(())
        }
    }
}

impl Index<usize> for Hypervector {
    type Output = f64;

    fn index(&self, index: usize) -> &f64 {
        &self.values[index]
    }
}

impl Add for Hypervector {
    type Output = Hypervector;

    /// Bundling: element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ; use [`Hypervector::add_scaled`] for
    /// a fallible variant.
    fn add(mut self, rhs: Hypervector) -> Hypervector {
        self += rhs;
        self
    }
}

impl AddAssign for Hypervector {
    fn add_assign(&mut self, rhs: Hypervector) {
        assert_eq!(self.dim(), rhs.dim(), "bundle of mismatched dimensions");
        for (a, b) in self.values.iter_mut().zip(rhs.values) {
            *a += b;
        }
    }
}

impl Sub for Hypervector {
    type Output = Hypervector;

    /// Element-wise subtraction (used by retraining, Eq. 5, and by the
    /// model-subtraction attack of §III-A).
    ///
    /// # Panics
    ///
    /// Panics if the dimensions differ.
    fn sub(mut self, rhs: Hypervector) -> Hypervector {
        self -= rhs;
        self
    }
}

impl SubAssign for Hypervector {
    fn sub_assign(&mut self, rhs: Hypervector) {
        assert_eq!(
            self.dim(),
            rhs.dim(),
            "subtraction of mismatched dimensions"
        );
        for (a, b) in self.values.iter_mut().zip(rhs.values) {
            *a -= b;
        }
    }
}

impl Mul<f64> for Hypervector {
    type Output = Hypervector;

    fn mul(mut self, rhs: f64) -> Hypervector {
        for v in &mut self.values {
            *v *= rhs;
        }
        self
    }
}

impl Neg for Hypervector {
    type Output = Hypervector;

    fn neg(self) -> Hypervector {
        self * -1.0
    }
}

impl fmt::Display for Hypervector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: Vec<String> = self
            .values
            .iter()
            .take(8)
            .map(|v| format!("{v:.2}"))
            .collect();
        write!(
            f,
            "Hv[dim={}: {}{}]",
            self.dim(),
            preview.join(", "),
            if self.dim() > 8 { ", …" } else { "" }
        )
    }
}

/// A bit-packed bipolar hypervector `B ∈ {−1,+1}^D`.
///
/// Bit value `1` represents `+1`, bit value `0` represents `−1`. Binding of
/// two bipolar hypervectors (element-wise product) is XNOR on the packed
/// words, and the dot product is `D − 2·hamming`, both of which run at 64
/// dimensions per machine word.
///
/// # Examples
///
/// ```
/// use privehd_core::BipolarHv;
///
/// let a = BipolarHv::random(1024, 1);
/// let b = BipolarHv::random(1024, 2);
/// // Binding is self-inverse: (a ⊛ b) ⊛ b == a.
/// assert_eq!(a.bind(&b).unwrap().bind(&b).unwrap(), a);
/// // Independently drawn hypervectors are quasi-orthogonal.
/// assert!(a.cosine(&b).unwrap().abs() < 0.2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BipolarHv {
    dim: usize,
    words: Vec<u64>,
}

impl BipolarHv {
    /// Draws a uniformly random bipolar hypervector from a seed.
    ///
    /// Two calls with the same `(dim, seed)` return the same hypervector,
    /// which is how base hypervectors are *rematerialized* instead of
    /// stored in the FPGA implementation (§III-D).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn random(dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        Self::random_with(dim, &mut rng)
    }

    /// Draws a uniformly random bipolar hypervector from an existing RNG.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    pub fn random_with<R: Rng + ?Sized>(dim: usize, rng: &mut R) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        let n_words = dim.div_ceil(WORD_BITS);
        let mut words: Vec<u64> = (0..n_words).map(|_| rng.gen()).collect();
        Self::mask_tail(dim, &mut words);
        Self { dim, words }
    }

    /// Builds a bipolar hypervector from explicit `±1` signs.
    ///
    /// Any strictly positive value maps to `+1`; zero or negative values
    /// map to `−1`.
    ///
    /// # Panics
    ///
    /// Panics if `signs` is empty.
    pub fn from_signs(signs: &[f64]) -> Self {
        assert!(
            !signs.is_empty(),
            "hypervector must have at least one dimension"
        );
        // Relaxed: standalone monotonic counter read only by tests and
        // gauges; no other memory is published through it.
        DENSE_CONVERSIONS.fetch_add(1, Ordering::Relaxed);
        let dim = signs.len();
        let mut words = vec![0u64; dim.div_ceil(WORD_BITS)];
        for (i, &s) in signs.iter().enumerate() {
            if s > 0.0 {
                words[i / WORD_BITS] |= 1 << (i % WORD_BITS);
            }
        }
        Self { dim, words }
    }

    /// Builds a bipolar hypervector from pre-packed sign words
    /// (`1 ↔ +1`); tail bits beyond `dim` are masked off. Used to adopt
    /// packed rows produced by the kernels layer — and packed wire
    /// payloads — without a dense detour (and without a dense-sized
    /// allocation).
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0` or `words.len() != dim.div_ceil(64)`.
    pub fn from_words(dim: usize, mut words: Vec<u64>) -> Self {
        assert!(dim > 0, "hypervector dimension must be positive");
        assert_eq!(words.len(), dim.div_ceil(WORD_BITS), "word count mismatch");
        Self::mask_tail(dim, &mut words);
        Self { dim, words }
    }

    /// The dimensionality `D`.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The packed 64-bit words (`1 ↔ +1`). The unused tail bits of the last
    /// word are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// The sign of dimension `j` as `+1.0` or `−1.0`.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.dim()`.
    pub fn sign(&self, j: usize) -> f64 {
        assert!(j < self.dim, "dimension index out of range");
        if self.words[j / WORD_BITS] >> (j % WORD_BITS) & 1 == 1 {
            1.0
        } else {
            -1.0
        }
    }

    /// Flips (negates) dimension `j` in place.
    ///
    /// This is the primitive used to build level hypervector chains, where
    /// each level flips `D/(2·ℓ)` random positions of the previous one.
    ///
    /// # Panics
    ///
    /// Panics if `j >= self.dim()`.
    pub fn flip(&mut self, j: usize) {
        assert!(j < self.dim, "dimension index out of range");
        self.words[j / WORD_BITS] ^= 1 << (j % WORD_BITS);
    }

    /// Binding: the element-wise product of two bipolar hypervectors,
    /// computed as XNOR of the packed words.
    ///
    /// Binding is commutative, associative and self-inverse
    /// (`a.bind(b).bind(b) == a`), the algebraic property that makes the
    /// decoding attack of Eq. (9) possible.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if dimensions differ.
    pub fn bind(&self, other: &Self) -> Result<Self, HdError> {
        if self.dim != other.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        let mut words: Vec<u64> = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| !(a ^ b))
            .collect();
        Self::mask_tail(self.dim, &mut words);
        Ok(Self {
            dim: self.dim,
            words,
        })
    }

    /// Hamming distance: the number of dimensions where the signs differ.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if dimensions differ.
    pub fn hamming(&self, other: &Self) -> Result<usize, HdError> {
        if self.dim != other.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: other.dim,
            });
        }
        Ok(self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum())
    }

    /// Dot product of two bipolar hypervectors: `D − 2·hamming`.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if dimensions differ.
    pub fn dot(&self, other: &Self) -> Result<i64, HdError> {
        let h = self.hamming(other)? as i64;
        Ok(self.dim as i64 - 2 * h)
    }

    /// Cosine similarity of two bipolar hypervectors (`dot / D`).
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if dimensions differ.
    pub fn cosine(&self, other: &Self) -> Result<f64, HdError> {
        Ok(self.dot(other)? as f64 / self.dim as f64)
    }

    /// Dot product against a dense real hypervector:
    /// `Σ_j sign_j · h_j` — the inner loop of both decoding (Eq. 9) and
    /// similarity checking of quantized queries.
    ///
    /// Runs branchlessly through [`crate::kernels::dot_sign_dense`] (the
    /// packed bit selects the sign via the `f64` sign bit; no
    /// `trailing_zeros` walk), so only floating-point summation order
    /// differs from the naive `Σ sign(j)·h[j]` loop.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] if dimensions differ.
    pub fn dot_dense(&self, dense: &Hypervector) -> Result<f64, HdError> {
        if self.dim != dense.dim() {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: dense.dim(),
            });
        }
        Ok(crate::kernels::dot_sign_dense(
            &self.words,
            dense.as_slice(),
        ))
    }

    /// Expands into a dense `±1.0` hypervector.
    ///
    /// Counted by [`dense_conversion_count`]: the packed-native serving
    /// path must never reach this.
    pub fn to_dense(&self) -> Hypervector {
        // Relaxed: monotonic counter; see `dense_conversion_count`.
        DENSE_CONVERSIONS.fetch_add(1, Ordering::Relaxed);
        let values = (0..self.dim).map(|j| self.sign(j)).collect();
        Hypervector::from_vec(values)
    }

    /// Number of `+1` dimensions.
    pub fn count_positive(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    fn mask_tail(dim: usize, words: &mut [u64]) {
        let tail = dim % WORD_BITS;
        if tail != 0 {
            if let Some(last) = words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }
}

impl fmt::Display for BipolarHv {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let preview: String = (0..self.dim.min(16))
            .map(|j| if self.sign(j) > 0.0 { '+' } else { '-' })
            .collect();
        write!(
            f,
            "BipolarHv[dim={}: {}{}]",
            self.dim,
            preview,
            if self.dim > 16 { "…" } else { "" }
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_rejects_zero_dim() {
        assert_eq!(Hypervector::zeros(0), Err(HdError::EmptyDimension));
    }

    #[test]
    fn dot_and_norms() {
        let a = Hypervector::from_vec(vec![3.0, -4.0]);
        assert_eq!(a.l2_norm(), 5.0);
        assert_eq!(a.l1_norm(), 7.0);
        let b = Hypervector::from_vec(vec![1.0, 1.0]);
        assert_eq!(a.dot(&b).unwrap(), -1.0);
    }

    #[test]
    fn cosine_of_self_is_one() {
        let a = Hypervector::from_vec(vec![0.5, 2.0, -1.0, 7.5]);
        assert!((a.cosine(&a).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_norm_errors() {
        let z = Hypervector::zeros(4).unwrap();
        let a = Hypervector::from_vec(vec![1.0; 4]);
        assert_eq!(a.cosine(&z), Err(HdError::ZeroNorm));
    }

    #[test]
    fn dimension_mismatch_is_reported() {
        let a = Hypervector::zeros(4).unwrap();
        let b = Hypervector::zeros(8).unwrap();
        assert_eq!(
            a.dot(&b),
            Err(HdError::DimensionMismatch {
                expected: 4,
                actual: 8
            })
        );
    }

    #[test]
    fn add_scaled_matches_operator_add() {
        let mut a = Hypervector::from_vec(vec![1.0, 2.0]);
        let b = Hypervector::from_vec(vec![10.0, 20.0]);
        a.add_scaled(&b, 1.0).unwrap();
        assert_eq!(a.as_slice(), &[11.0, 22.0]);
        a.add_scaled(&b, -1.0).unwrap();
        assert_eq!(a.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn random_bipolar_is_deterministic_per_seed() {
        let a = BipolarHv::random(100, 42);
        let b = BipolarHv::random(100, 42);
        let c = BipolarHv::random(100, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn random_bipolar_is_roughly_balanced() {
        let a = BipolarHv::random(10_000, 7);
        let pos = a.count_positive();
        assert!((4_500..=5_500).contains(&pos), "pos = {pos}");
    }

    #[test]
    fn bind_is_self_inverse() {
        let a = BipolarHv::random(257, 1);
        let b = BipolarHv::random(257, 2);
        assert_eq!(a.bind(&b).unwrap().bind(&b).unwrap(), a);
    }

    #[test]
    fn bind_with_self_is_identity_vector() {
        let a = BipolarHv::random(130, 3);
        let id = a.bind(&a).unwrap();
        assert_eq!(id.count_positive(), 130);
    }

    #[test]
    fn random_hypervectors_are_quasi_orthogonal() {
        let a = BipolarHv::random(10_000, 10);
        let b = BipolarHv::random(10_000, 11);
        assert!(a.cosine(&b).unwrap().abs() < 0.05);
    }

    #[test]
    fn dot_dense_agrees_with_naive() {
        let b = BipolarHv::random(300, 5);
        let h = Hypervector::from_vec((0..300).map(|i| (i as f64).sin()).collect());
        let naive: f64 = (0..300).map(|j| b.sign(j) * h[j]).sum();
        let fast = b.dot_dense(&h).unwrap();
        assert!((naive - fast).abs() < 1e-9, "naive={naive} fast={fast}");
    }

    #[test]
    fn to_dense_round_trips_through_from_signs() {
        let b = BipolarHv::random(77, 9);
        let dense = b.to_dense();
        assert_eq!(BipolarHv::from_signs(dense.as_slice()), b);
    }

    #[test]
    fn flip_changes_exactly_one_dimension() {
        let mut b = BipolarHv::random(65, 4);
        let before = b.clone();
        b.flip(64);
        assert_eq!(before.hamming(&b).unwrap(), 1);
        b.flip(64);
        assert_eq!(before, b);
    }

    #[test]
    fn tail_bits_stay_masked() {
        let a = BipolarHv::random(65, 123);
        let b = BipolarHv::random(65, 321);
        let bound = a.bind(&b).unwrap();
        // XNOR would set the 63 unused tail bits without masking.
        assert_eq!(bound.words().last().unwrap() >> 1, 0);
        assert!(bound.count_positive() <= 65);
    }

    #[test]
    fn hamming_of_self_is_zero() {
        let a = BipolarHv::random(1000, 77);
        assert_eq!(a.hamming(&a).unwrap(), 0);
        assert_eq!(a.dot(&a).unwrap(), 1000);
    }

    #[test]
    fn display_formats_are_nonempty() {
        let h = Hypervector::from_vec(vec![1.0; 20]);
        let b = BipolarHv::random(20, 0);
        assert!(format!("{h}").contains("dim=20"));
        assert!(format!("{b}").contains("dim=20"));
    }
}
