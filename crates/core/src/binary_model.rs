//! The prior-work baseline: fully quantized models (ref. \[17\], F5-HD-style).
//!
//! Fig. 5(a) contrasts Prive-HD's *encoding-only* quantization (class
//! hypervectors accumulate in full precision; 93.1% on ISOLET) against
//! prior model quantization that binarizes **both** encodings and class
//! hypervectors (88.1%). This module implements that baseline two ways:
//!
//! * [`QuantizedClassModel`] — train as usual, then quantize the class
//!   hypervectors with any [`QuantScheme`]; inference is the same
//!   normalized dot product.
//! * [`BinaryHdModel`] — the fully binary associative memory used by
//!   binary HDC accelerators: classes are bit-packed sign vectors and
//!   inference is a Hamming-distance vote, which is the cheapest
//!   possible hardware but gives up the most accuracy.

use serde::{Deserialize, Serialize};

use crate::error::HdError;
use crate::hypervector::{BipolarHv, Hypervector};
use crate::model::{HdModel, Prediction};
use crate::quantize::QuantScheme;

/// Prior-work baseline: a trained model whose class hypervectors are
/// quantized after training.
///
/// # Examples
///
/// ```
/// use privehd_core::{HdModel, Hypervector, QuantScheme};
/// use privehd_core::binary_model::QuantizedClassModel;
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let mut model = HdModel::new(2, 4)?;
/// model.bundle(0, &Hypervector::from_vec(vec![3.0, 2.0, -1.0, -2.0]))?;
/// model.bundle(1, &Hypervector::from_vec(vec![-2.0, -3.0, 2.0, 1.0]))?;
/// let baseline = QuantizedClassModel::from_model(&model, QuantScheme::Bipolar);
/// let q = Hypervector::from_vec(vec![1.0, 1.0, -1.0, -1.0]);
/// assert_eq!(baseline.predict(&q)?.class, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedClassModel {
    model: HdModel,
    scheme: QuantScheme,
}

impl QuantizedClassModel {
    /// Quantizes the classes of a trained model with `scheme`
    /// (per-class empirical thresholds).
    pub fn from_model(model: &HdModel, scheme: QuantScheme) -> Self {
        let mut quantized = model.clone();
        quantized.quantize_classes(scheme);
        quantized.refresh_norms();
        Self {
            model: quantized,
            scheme,
        }
    }

    /// The quantization scheme applied to the classes.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// The quantized class hypervectors.
    pub fn model(&self) -> &HdModel {
        &self.model
    }

    /// Classifies a query against the quantized classes.
    ///
    /// # Errors
    ///
    /// Propagates [`HdModel::predict`] errors.
    pub fn predict(&self, query: &Hypervector) -> Result<Prediction, HdError> {
        self.model.predict(query)
    }

    /// Accuracy over encoded `(query, label)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates [`HdModel::accuracy`] errors.
    pub fn accuracy(&self, samples: &[(Hypervector, usize)]) -> Result<f64, HdError> {
        self.model.accuracy(samples)
    }
}

/// A fully binary associative memory: one bit-packed sign vector per
/// class, Hamming-distance inference.
///
/// # Examples
///
/// ```
/// use privehd_core::binary_model::BinaryHdModel;
/// use privehd_core::{HdModel, Hypervector};
///
/// # fn main() -> Result<(), privehd_core::HdError> {
/// let mut model = HdModel::new(2, 64)?;
/// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
/// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
/// let binary = BinaryHdModel::from_model(&model)?;
/// let query = Hypervector::from_vec(vec![0.5; 64]);
/// assert_eq!(binary.predict(&query)?, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BinaryHdModel {
    classes: Vec<BipolarHv>,
    dim: usize,
}

impl BinaryHdModel {
    /// Binarizes the class hypervectors of a trained model (sign of each
    /// dimension; `sign(0) = +1`, matching [`QuantScheme::Bipolar`]).
    ///
    /// # Errors
    ///
    /// Returns [`HdError::EmptyInput`] for a model with no classes (not
    /// constructible through the public API, but checked for safety).
    pub fn from_model(model: &HdModel) -> Result<Self, HdError> {
        // The model's scoring snapshot already packs each class's sign
        // bits with the same `value ≥ 0 ↔ +1` convention; adopt its rows
        // instead of re-walking the dense values.
        let matrix = model.class_matrix();
        let classes: Vec<BipolarHv> = (0..matrix.num_classes())
            .map(|l| BipolarHv::from_words(matrix.dim(), matrix.sign_row(l).to_vec()))
            .collect();
        if classes.is_empty() {
            return Err(HdError::EmptyInput("class hypervectors"));
        }
        Ok(Self {
            classes,
            dim: model.dim(),
        })
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// Hypervector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The bit-packed class vectors.
    pub fn classes(&self) -> &[BipolarHv] {
        &self.classes
    }

    /// Classifies a dense query: binarize, then nearest class by Hamming
    /// distance.
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] for a wrong query
    /// dimension.
    pub fn predict(&self, query: &Hypervector) -> Result<usize, HdError> {
        if query.dim() != self.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        let q = BipolarHv::from_signs(&sign_vector(query));
        self.predict_bipolar(&q)
    }

    /// Classifies an already-binarized query (the hardware-native path:
    /// pure XOR + popcount).
    ///
    /// # Errors
    ///
    /// Returns [`HdError::DimensionMismatch`] for a wrong query
    /// dimension.
    pub fn predict_bipolar(&self, query: &BipolarHv) -> Result<usize, HdError> {
        let mut best = 0usize;
        let mut best_distance = usize::MAX;
        for (label, class) in self.classes.iter().enumerate() {
            let d = query.hamming(class)?;
            if d < best_distance {
                best_distance = d;
                best = label;
            }
        }
        Ok(best)
    }

    /// Accuracy over encoded `(query, label)` pairs.
    ///
    /// # Errors
    ///
    /// Propagates prediction errors; errors on an empty set.
    pub fn accuracy(&self, samples: &[(Hypervector, usize)]) -> Result<f64, HdError> {
        if samples.is_empty() {
            return Err(HdError::EmptyInput("evaluation set"));
        }
        let mut correct = 0usize;
        for (h, y) in samples {
            if self.predict(h)? == *y {
                correct += 1;
            }
        }
        Ok(correct as f64 / samples.len() as f64)
    }

    /// Model size in bits — the compression argument of ref. \[17\]
    /// (`|C| · D` bits vs `|C| · D · 64` for full precision).
    pub fn size_bits(&self) -> usize {
        self.classes.len() * self.dim
    }
}

fn sign_vector(h: &Hypervector) -> Vec<f64> {
    h.as_slice()
        .iter()
        .map(|&v| if v >= 0.0 { 1.0 } else { -1.0 })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::{Encoder, EncoderConfig, ScalarEncoder};

    fn trained() -> (HdModel, Vec<(Hypervector, usize)>) {
        let enc = ScalarEncoder::new(EncoderConfig::new(8, 2_048).with_seed(3)).unwrap();
        let mut model = HdModel::new(2, 2_048).unwrap();
        let mut test = Vec::new();
        for i in 0..12 {
            let t = (i % 4) as f64 / 40.0;
            let a: Vec<f64> = (0..8).map(|k| 0.1 + t + 0.02 * k as f64).collect();
            let b: Vec<f64> = (0..8).map(|k| 0.9 - t - 0.02 * k as f64).collect();
            let ha = enc.encode(&a).unwrap();
            let hb = enc.encode(&b).unwrap();
            if i < 8 {
                model.bundle(0, &ha).unwrap();
                model.bundle(1, &hb).unwrap();
            } else {
                test.push((ha, 0));
                test.push((hb, 1));
            }
        }
        (model, test)
    }

    #[test]
    fn quantized_class_model_still_classifies() {
        let (model, test) = trained();
        for scheme in [
            QuantScheme::Bipolar,
            QuantScheme::Ternary,
            QuantScheme::TwoBit,
        ] {
            let q = QuantizedClassModel::from_model(&model, scheme);
            assert_eq!(q.accuracy(&test).unwrap(), 1.0, "{scheme}");
            assert_eq!(q.scheme(), scheme);
        }
    }

    #[test]
    fn quantized_classes_live_in_the_alphabet() {
        let (model, _) = trained();
        let q = QuantizedClassModel::from_model(&model, QuantScheme::Ternary);
        for c in q.model().classes() {
            for &v in c.as_slice() {
                assert!([-1.0, 0.0, 1.0].contains(&v));
            }
        }
    }

    #[test]
    fn binary_model_classifies_separable_data() {
        let (model, test) = trained();
        let binary = BinaryHdModel::from_model(&model).unwrap();
        assert_eq!(binary.accuracy(&test).unwrap(), 1.0);
        assert_eq!(binary.num_classes(), 2);
        assert_eq!(binary.dim(), 2_048);
    }

    #[test]
    fn binary_model_is_64x_smaller() {
        let (model, _) = trained();
        let binary = BinaryHdModel::from_model(&model).unwrap();
        let full_bits = model.num_classes() * model.dim() * 64;
        assert_eq!(binary.size_bits() * 64, full_bits);
    }

    #[test]
    fn binary_predict_checks_dimensions() {
        let (model, _) = trained();
        let binary = BinaryHdModel::from_model(&model).unwrap();
        let wrong = Hypervector::zeros(64).unwrap();
        assert!(binary.predict(&wrong).is_err());
    }

    #[test]
    fn bipolar_fast_path_matches_dense_path() {
        let (model, test) = trained();
        let binary = BinaryHdModel::from_model(&model).unwrap();
        for (h, _) in &test {
            let dense = binary.predict(h).unwrap();
            let packed = BipolarHv::from_signs(&sign_vector(h));
            assert_eq!(dense, binary.predict_bipolar(&packed).unwrap());
        }
    }

    #[test]
    fn full_precision_classes_never_lose_to_binary_on_margin() {
        // The Fig. 5(a) argument: keeping classes full precision retains
        // strictly more information, so accuracy(full) >= accuracy(binary)
        // on the same queries.
        let (model, test) = trained();
        let full_acc = model.accuracy(&test).unwrap();
        let binary_acc = BinaryHdModel::from_model(&model)
            .unwrap()
            .accuracy(&test)
            .unwrap();
        assert!(full_acc >= binary_acc);
    }
}
