//! A small persistent worker pool for data-parallel kernels.
//!
//! The batch entry points of this crate ([`crate::Encoder::encode_batch`],
//! [`crate::HdModel::predict_batch`]) used to fan work out with
//! [`std::thread::scope`], paying a thread spawn + join per call. Under a
//! serving workload that cost recurs on every batch, so this module keeps
//! one lazily-created, process-wide pool ([`global`]) whose workers park
//! on a condvar between calls.
//!
//! The design favours predictability over sophistication:
//!
//! * Every worker owns a deque. Submissions are spread round-robin
//!   across the deques; a worker pops its own deque from the front and,
//!   when that is empty, steals from the *back* of its siblings'. A
//!   burst of jobs (or one worker wedged on a long job) is therefore
//!   redistributed instead of serializing every claim behind the single
//!   shared channel lock the previous design used.
//! * Within one `run`, workers pull indexed tasks off a shared atomic
//!   counter, so chunks self-balance across lanes without further
//!   queueing.
//! * The *calling* thread always participates as a lane, and a `run`
//!   issued from inside a pool task executes fully inline. A `run` call
//!   can therefore never deadlock — the caller alone guarantees
//!   progress, and nesting never ties workers up waiting on each other.
//! * `run` only returns once every lane has finished, which is what makes
//!   lending non-`'static` borrows to the workers sound (see the single
//!   `unsafe` block below).

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// A boxed unit of work handed to a worker thread.
type Job = Box<dyn FnOnce() + Send + 'static>;

thread_local! {
    /// True on pool worker threads. A nested `run` issued from inside a
    /// pool task executes inline instead of queueing: every queued lane
    /// job is awaited to completion by its `WaitGuard`, so nesting
    /// through the queue would let all workers block on jobs no free
    /// worker remains to execute.
    static IN_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The queues and coordination state shared by submitters and workers.
struct PoolShared {
    /// One deque per worker. Submissions land round-robin; the owning
    /// worker pops from the front, idle siblings steal from the back
    /// (the freshest job), leaving the owner its oldest work.
    deques: Vec<Mutex<VecDeque<Job>>>,
    /// Round-robin cursor selecting the next submission's home deque.
    cursor: AtomicUsize,
    coord: Mutex<CoordState>,
    /// Signalled on every submission and on close.
    jobs: Condvar,
}

/// Coordinator state guarded by [`PoolShared::coord`].
struct CoordState {
    /// Count of submitted-but-unclaimed jobs. The reservation is taken
    /// *before* the job is pushed onto a deque and released only after
    /// a successful pop, so `pending` is always an upper bound on the
    /// jobs physically present across the deques: a worker that sees
    /// `pending > 0` yet finds every deque empty knows a push is
    /// mid-flight and retries instead of parking forever.
    pending: usize,
    /// Set on pool drop; workers exit once this is set *and* `pending`
    /// reaches zero, so jobs queued before the drop still run.
    closed: bool,
}

impl PoolShared {
    /// Submits one job: reserve in `pending`, place on the round-robin
    /// deque, wake a parked worker. Must not be called on an empty pool
    /// (zero deques) — those cases execute inline at the call site.
    fn push(&self, job: Job) {
        {
            let mut coord = self.coord.lock().expect("pool lock poisoned");
            coord.pending += 1;
        }
        // Relaxed: the cursor only spreads jobs across deques for
        // balance; the job itself is published by the deque's mutex.
        let slot = self.cursor.fetch_add(1, Ordering::Relaxed) % self.deques.len();
        self.deques[slot]
            .lock()
            .expect("pool deque poisoned")
            .push_back(job);
        self.jobs.notify_one();
    }

    /// Claims one job for the worker owning deque `home`, parking while
    /// everything is empty. Returns `None` once the pool has closed and
    /// every submitted job has been claimed.
    fn claim(&self, home: usize) -> Option<Job> {
        loop {
            if let Some(job) = self.try_pop(home) {
                return Some(job);
            }
            let coord = self.coord.lock().expect("pool lock poisoned");
            if coord.pending == 0 {
                if coord.closed {
                    return None;
                }
                // Parking atomically releases the coordinator lock, and
                // `push` reserves under that same lock before notifying,
                // so a submission can never slip between this check and
                // the wait.
                drop(self.jobs.wait(coord).expect("pool lock poisoned"));
            } else {
                // pending > 0 but every deque looked empty: a push is
                // still between its reservation and its deque insert.
                // Transient by construction — retry after a yield.
                drop(coord);
                std::thread::yield_now();
            }
        }
    }

    /// One scan over the deques: the home deque from the front, then
    /// each sibling from the back. Releases the `pending` reservation
    /// on a hit.
    fn try_pop(&self, home: usize) -> Option<Job> {
        let n = self.deques.len();
        for k in 0..n {
            let slot = (home + k) % n;
            let job = {
                let mut deque = self.deques[slot].lock().expect("pool deque poisoned");
                if k == 0 {
                    deque.pop_front()
                } else {
                    deque.pop_back()
                }
            };
            if let Some(job) = job {
                let mut coord = self.coord.lock().expect("pool lock poisoned");
                coord.pending -= 1;
                return Some(job);
            }
        }
        None
    }
}

/// A persistent pool of worker threads executing indexed task batches.
///
/// Most callers want the shared [`global`] pool; constructing a private
/// pool is mainly useful in tests and benchmarks that need an exact
/// thread count.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use privehd_core::pool::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// let hits = AtomicUsize::new(0);
/// pool.run(100, |_i| {
///     hits.fetch_add(1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 100);
/// ```
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("threads", &self.workers.len())
            .finish_non_exhaustive()
    }
}

/// Waits for the run to be *drained* (all task indices claimed, no lane
/// still executing the closure) even when the caller's own lane panics,
/// so the borrow lent to the workers stays alive until no lane can
/// touch it again. Queued lane jobs that have not started yet do NOT
/// hold the run back: when they are eventually dequeued they observe an
/// exhausted counter and exit without ever dereferencing the closure.
struct WaitGuard<'a>(&'a RunCtx);

impl Drop for WaitGuard<'_> {
    fn drop(&mut self) {
        self.0.wait_drained();
    }
}

impl ThreadPool {
    /// Spawns a pool with `threads` worker threads (zero is allowed; every
    /// [`ThreadPool::run`] then executes inline on the caller).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(PoolShared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            cursor: AtomicUsize::new(0),
            coord: Mutex::new(CoordState {
                pending: 0,
                closed: false,
            }),
            jobs: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("privehd-pool-{i}"))
                    .spawn(move || worker_loop(&shared, i))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { shared, workers }
    }

    /// Number of worker threads (the caller adds one more lane to every
    /// `run`).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Executes `f(0) … f(tasks − 1)`, fanning the indices out over the
    /// worker threads plus the calling thread, and returns once all of
    /// them have completed.
    ///
    /// Task indices are claimed from a shared counter, so tasks should be
    /// coarse enough (a chunk of items, not one item) to amortize the
    /// atomic increment.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked, after all lanes have stopped.
    pub fn run<F>(&self, tasks: usize, f: F)
    where
        F: Fn(usize) + Send + Sync,
    {
        if tasks == 0 {
            return;
        }
        // The caller is always a lane; extra lanes are only worth queueing
        // when there is more than one task to share. Nested calls from
        // inside a pool task run inline (see `IN_POOL_WORKER`).
        let lanes = if IN_POOL_WORKER.with(std::cell::Cell::get) {
            0
        } else {
            self.workers.len().min(tasks - 1)
        };
        if lanes == 0 {
            for i in 0..tasks {
                f(i);
            }
            return;
        }

        // SAFETY: lifetime erasure only — the wide pointer is
        // dereferenced exclusively by lanes that claimed a task index,
        // which `wait_drained` keeps within this stack frame's lifetime
        // (see `RunCtx::work_lane`); stale queued jobs hold the pointer
        // without ever dereferencing it.
        let f_ptr: *const (dyn Fn(usize) + Send + Sync) =
            unsafe { std::mem::transmute(&f as &(dyn Fn(usize) + Send + Sync)) };
        let ctx = Arc::new(RunCtx {
            f: f_ptr,
            next: AtomicUsize::new(0),
            tasks,
            active: Mutex::new(0),
            drained: Condvar::new(),
            panicked: AtomicBool::new(false),
        });

        {
            for _ in 0..lanes {
                let ctx = Arc::clone(&ctx);
                self.shared.push(Box::new(move || ctx.work_lane()));
            }

            let guard = WaitGuard(&ctx);
            // The caller's lane: drain indices alongside the workers.
            loop {
                let i = ctx.next.fetch_add(1, Ordering::Relaxed);
                if i >= tasks {
                    break;
                }
                f(i);
            }
            // Blocks until every index is claimed and no lane still runs
            // `f`; queued stragglers later no-op against the exhausted
            // counter without delaying us.
            drop(guard);
        }

        if ctx.panicked.load(Ordering::SeqCst) {
            panic!("a pool task panicked");
        }
    }

    /// Queues one fire-and-forget `job` for execution on a worker
    /// thread, returning immediately. With zero workers the job runs
    /// inline on the caller — same degradation contract as
    /// [`ThreadPool::run`], so single-core deployments keep the old
    /// synchronous behavior.
    ///
    /// Unlike [`ThreadPool::run`] there is no completion barrier: a job
    /// that must signal completion does so itself (e.g. through a
    /// channel or a waker). Jobs queued before the pool drops are
    /// executed before the workers exit.
    pub fn spawn(&self, job: impl FnOnce() + Send + 'static) {
        if self.workers.is_empty() {
            job();
            return;
        }
        self.shared.push(Box::new(job));
    }

    /// Like [`ThreadPool::run`] but collects one `R` per task, in task
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if any task panicked.
    pub fn map<R, F>(&self, tasks: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Send + Sync,
    {
        let slots: Vec<Mutex<Option<R>>> = (0..tasks).map(|_| Mutex::new(None)).collect();
        self.run(tasks, |i| {
            *slots[i].lock().expect("slot poisoned") = Some(f(i));
        });
        slots
            .into_iter()
            .map(|s| {
                s.into_inner()
                    .expect("slot poisoned")
                    .expect("every task index ran")
            })
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut coord = self.shared.coord.lock().expect("pool lock poisoned");
            coord.closed = true;
        }
        self.shared.jobs.notify_all();
        for w in self.workers.drain(..) {
            w.join().expect("pool worker panicked outside a task");
        }
    }
}

/// Shared state of one `run` call. Queued lane jobs hold it via `Arc`,
/// possibly long after the originating `run` returned; only the raw
/// closure pointer must never be touched then, which the exhausted task
/// counter guarantees.
struct RunCtx {
    /// The caller's closure. Valid exactly while some lane can still
    /// claim a task index (the caller blocks in [`RunCtx::wait_drained`]
    /// until that window is over); a raw pointer rather than a
    /// transmuted `'static` reference so stale queued jobs never *hold*
    /// a dangling reference.
    f: *const (dyn Fn(usize) + Send + Sync),
    next: AtomicUsize,
    tasks: usize,
    /// Lanes currently inside `work_lane`'s claim-and-execute window.
    active: Mutex<usize>,
    drained: Condvar,
    panicked: AtomicBool,
}

// SAFETY: the pointee is `Sync` (`F: Send + Sync` in `run`), the atomics
// and lock guard all other fields, and pointer validity is enforced by
// the wait-drained protocol documented on the fields.
unsafe impl Send for RunCtx {}
// SAFETY: as above.
unsafe impl Sync for RunCtx {}

impl RunCtx {
    fn work_lane(&self) {
        {
            let mut active = self.active.lock().expect("pool lock poisoned");
            *active += 1;
        }
        let outcome = catch_unwind(AssertUnwindSafe(|| loop {
            // Relaxed: the counter only partitions indices between
            // lanes; the closure and its captures were published to
            // this lane by the deque's mutex, not by this counter.
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.tasks {
                break;
            }
            // SAFETY: this lane registered in `active` *before* claiming
            // the index, and indices below `tasks` can only be claimed
            // while the caller of `run` is still blocked in
            // `wait_drained` (it exhausts the counter itself before
            // checking), so `f` is alive for the whole call.
            let f = unsafe { &*self.f };
            f(i);
        }));
        if outcome.is_err() {
            self.panicked.store(true, Ordering::SeqCst);
        }
        let mut active = self.active.lock().expect("pool lock poisoned");
        *active -= 1;
        if *active == 0 {
            self.drained.notify_all();
        }
    }

    /// Blocks until every task index has been claimed and no lane is
    /// still executing the closure — the point after which `f` can be
    /// invalidated. Lane jobs still sitting in the queue are not waited
    /// for: once they run they observe the exhausted counter and exit
    /// without touching `f`.
    fn wait_drained(&self) {
        let mut active = self.active.lock().expect("pool lock poisoned");
        while *active > 0 || self.next.load(Ordering::SeqCst) < self.tasks {
            active = self.drained.wait(active).expect("pool lock poisoned");
        }
    }
}

fn worker_loop(shared: &PoolShared, home: usize) {
    IN_POOL_WORKER.with(|flag| flag.set(true));
    while let Some(job) = shared.claim(home) {
        job();
    }
}

/// The shared process-wide pool, created on first use.
///
/// Its size defaults to `available_parallelism() − 1` workers (the caller
/// of [`ThreadPool::run`] is the remaining lane) and can be pinned with
/// the `PRIVEHD_POOL_THREADS` environment variable (total lane count;
/// `1` forces fully inline execution).
pub fn global() -> &'static ThreadPool {
    static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let lanes = std::env::var("PRIVEHD_POOL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(4)
            });
        ThreadPool::new(lanes.saturating_sub(1))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn zero_worker_pool_runs_inline() {
        let pool = ThreadPool::new(0);
        let sum = AtomicU64::new(0);
        pool.run(10, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 45);
    }

    #[test]
    fn every_index_runs_exactly_once() {
        let pool = ThreadPool::new(3);
        let hits: Vec<AtomicUsize> = (0..257).map(|_| AtomicUsize::new(0)).collect();
        pool.run(hits.len(), |i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
        for (i, h) in hits.iter().enumerate() {
            assert_eq!(h.load(Ordering::Relaxed), 1, "index {i}");
        }
    }

    #[test]
    fn map_preserves_task_order() {
        let pool = ThreadPool::new(2);
        let out = pool.map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn pool_is_reusable_across_calls() {
        let pool = ThreadPool::new(2);
        for round in 1..=5u64 {
            let sum = AtomicU64::new(0);
            pool.run(64, |i| {
                sum.fetch_add(round * i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), round * (63 * 64 / 2));
        }
    }

    #[test]
    fn panicking_task_propagates_after_all_lanes_finish() {
        let pool = ThreadPool::new(2);
        let completed = Arc::new(AtomicUsize::new(0));
        let seen = Arc::clone(&completed);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(32, |i| {
                if i == 5 {
                    panic!("boom");
                }
                seen.fetch_add(1, Ordering::Relaxed);
            });
        }));
        assert!(result.is_err());
        // The pool stays usable after a panicked run.
        let sum = AtomicU64::new(0);
        pool.run(8, |i| {
            sum.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 28);
    }

    #[test]
    // Wall-clock assertion: Miri's interpreter timing makes the "fast
    // run returns quickly" bound meaningless there.
    #[cfg_attr(miri, ignore)]
    fn finished_run_is_not_blocked_by_another_runs_stragglers() {
        use std::time::{Duration, Instant};
        // One worker, occupied by a slow run from another thread: a fast
        // run whose caller drains its own counter must return without
        // waiting for its queued lane job to surface behind the slow one.
        let pool = Arc::new(ThreadPool::new(1));
        let slow_pool = Arc::clone(&pool);
        let slow = std::thread::spawn(move || {
            slow_pool.run(2, |_| std::thread::sleep(Duration::from_millis(300)));
        });
        std::thread::sleep(Duration::from_millis(50)); // worker grabs the slow lane
        let start = Instant::now();
        pool.run(4, |_| {});
        assert!(
            start.elapsed() < Duration::from_millis(250),
            "fast run stalled behind the slow run's queued lane job"
        );
        slow.join().unwrap();
    }

    #[test]
    fn nested_run_executes_inline_without_deadlock() {
        let pool = ThreadPool::new(2);
        let hits = AtomicUsize::new(0);
        pool.run(8, |_outer| {
            // A nested run from inside a pool task must not queue jobs
            // (all workers could be blocked in WaitGuards) — it runs
            // inline on whichever lane issued it.
            pool.run(4, |_inner| {
                hits.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(hits.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn spawn_runs_fire_and_forget_jobs_on_workers() {
        let pool = ThreadPool::new(2);
        let (tx, rx) = std::sync::mpsc::channel();
        for i in 0..16 {
            let tx = tx.clone();
            pool.spawn(move || {
                tx.send(i).expect("receiver alive");
            });
        }
        let mut got: Vec<usize> = (0..16)
            .map(|_| {
                rx.recv_timeout(std::time::Duration::from_secs(10))
                    .expect("spawned job ran")
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn spawn_runs_inline_with_zero_workers() {
        let pool = ThreadPool::new(0);
        let flag = Arc::new(AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        pool.spawn(move || {
            f2.store(7, Ordering::SeqCst);
        });
        // No barrier to wait on: with zero workers the job already ran
        // inline before `spawn` returned.
        assert_eq!(flag.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn idle_worker_steals_jobs_stuck_behind_a_busy_sibling() {
        use std::time::Duration;
        let pool = ThreadPool::new(2);
        let (release_tx, release_rx) = std::sync::mpsc::channel::<()>();
        let (done_tx, done_rx) = std::sync::mpsc::channel::<usize>();
        // Wedge one worker on a long job...
        pool.spawn(move || {
            release_rx.recv_timeout(Duration::from_secs(30)).ok();
        });
        // ...then submit a burst. Round-robin parks half of it on the
        // wedged worker's deque; the free worker must steal that half
        // rather than leave it stranded until the blocker finishes.
        for i in 0..8 {
            let tx = done_tx.clone();
            pool.spawn(move || {
                tx.send(i).expect("receiver alive");
            });
        }
        let mut got: Vec<usize> = (0..8)
            .map(|_| {
                done_rx
                    .recv_timeout(Duration::from_secs(10))
                    .expect("burst job stranded behind the wedged worker")
            })
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..8).collect::<Vec<_>>());
        release_tx.send(()).expect("blocker alive");
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = global() as *const ThreadPool;
        let b = global() as *const ThreadPool;
        assert_eq!(a, b);
    }
}
