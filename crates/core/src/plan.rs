//! Publish-time compilation of the encode∘obfuscate∘predict pipeline.
//!
//! Every serving request used to walk generic, config-driven code: the
//! edge re-derived the obfuscation permutation per call and the engine
//! re-decided kernel dispatch (dense vs packed snapshot, AVX2 vs
//! scalar, block sizes) per batch — even though all of it is fully
//! determined the moment a model is published. This module compiles
//! those decisions **once**:
//!
//! * [`EncodePlan`] — the client-side encode∘obfuscate transform as one
//!   precomputed keep-mask table. Under [`QuantScheme::Bipolar`] (the
//!   paper's inference operating point, §III-C) it drives the fused
//!   [`kernels::scalar_encode_bipolar_masked`] kernel, which never
//!   accumulates masked dimensions at all; other schemes run one fused
//!   quantize+mask output pass over the encode kernel's accumulator.
//!   Either way the permutation is materialized exactly once, at
//!   compile time (pinned by [`crate::obfuscate::permutation_build_count`]).
//! * [`ModelPlan`] — the server-side scoring pipeline: shared-ownership
//!   pins of the dense/packed class snapshots plus a one-time kernel
//!   selection ([`PlanKernel`], including the AVX2-vs-scalar
//!   [`SimdPath`] probe) that engine workers dispatch through instead
//!   of re-probing per batch (pinned by [`kernel_probe_count`]).
//! * [`PlanTarget`] — the compiler-backend abstraction: a plan can be
//!   *rendered* for different execution substrates. [`SoftwareTarget`]
//!   (this crate) describes the kernel tables above; `privehd-hw`
//!   provides an FPGA target that renders the same plan as Verilog plus
//!   an analytic resource/throughput model, turning the dormant
//!   hardware pipeline into a second backend of the same compiler.
//!
//! Every compiled path is bit-identical to the generic composition it
//! replaces; `tests/properties.rs` holds plans to the generic paths
//! across schemes, masks and word-boundary dimensions.

// The compiled plan dispatch runs on the serve request path; this file
// is listed in the analyzer's PANIC_PATH_SCOPE, so keep it free of
// panic-capable constructs outside tests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::encoder::{Encoder, ScalarEncoder};
use crate::error::HdError;
use crate::hypervector::{BipolarHv, Hypervector};
use crate::kernels::{self, ClassMatrix, PackedClassMatrix};
use crate::model::{prediction_from_scores, HdModel, Prediction, PREDICT_BLOCK};
use crate::obfuscate::{ObfuscateConfig, Obfuscator};
use crate::quantize::QuantScheme;

/// Process-wide count of kernel-selection probes: one per *generic*
/// predict entry ([`HdModel::predict`] and friends re-decide dense vs
/// packed and the dispatch path on every call) and one per
/// [`ModelPlan::compile`]. Serving audits read it through
/// [`kernel_probe_count`] to pin that requests served through a
/// compiled plan never re-probe.
static KERNEL_PROBES: AtomicU64 = AtomicU64::new(0);

/// Number of kernel-selection probes since process start. Monotonic;
/// read by conversion-counting tests, not for synchronization.
pub fn kernel_probe_count() -> u64 {
    // Relaxed: a monotonic event counter sampled by audit tests; no
    // other memory is published through it.
    KERNEL_PROBES.load(Ordering::Relaxed)
}

/// Records one kernel-selection probe (generic predict entry or plan
/// compile).
pub(crate) fn note_kernel_probe() {
    // Relaxed: monotonic audit counter (see KERNEL_PROBES); no ordering
    // with other memory is required.
    KERNEL_PROBES.fetch_add(1, Ordering::Relaxed);
}

const WORD_BITS: usize = 64;

/// Which arm the runtime-dispatched dot/popcount kernels take on this
/// host — probed once at plan-compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimdPath {
    /// The explicit `std::arch` AVX2 arms.
    Avx2,
    /// The portable scalar arms.
    Scalar,
}

impl SimdPath {
    /// Probes the host once (memoized CPUID underneath).
    pub fn probe() -> Self {
        if kernels::avx2_dispatch() {
            SimdPath::Avx2
        } else {
            SimdPath::Scalar
        }
    }

    /// Short label for reports and rendered plans.
    pub fn label(&self) -> &'static str {
        match self {
            SimdPath::Avx2 => "avx2",
            SimdPath::Scalar => "scalar",
        }
    }
}

/// The scoring kernel a compiled [`ModelPlan`] dispatches through —
/// selected once per publish instead of re-decided per batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanKernel {
    /// The class rows factor into `sign × scale` word blocks: score
    /// packed queries with pure `XOR` + `POPCNT` word arithmetic over
    /// `hv_words` words per class.
    PackedPopcount {
        /// Packed words per class row (`⌈dim/64⌉`).
        hv_words: usize,
        /// Host SIMD arm the popcount/dot kernels take.
        simd: SimdPath,
    },
    /// General dense rows: tiled `f64` scoring against the contiguous
    /// [`ClassMatrix`], `block` queries per cache tile on the batch
    /// path.
    DenseTiled {
        /// Queries scored per class-row tile on the batched path.
        block: usize,
        /// Host SIMD arm the dot kernels take.
        simd: SimdPath,
    },
}

impl PlanKernel {
    /// Short label for reports and rendered plans.
    pub fn label(&self) -> &'static str {
        match self {
            PlanKernel::PackedPopcount { .. } => "packed-popcount",
            PlanKernel::DenseTiled { .. } => "dense-tiled",
        }
    }

    /// The SIMD arm this kernel was compiled for.
    pub fn simd(&self) -> SimdPath {
        match self {
            PlanKernel::PackedPopcount { simd, .. } | PlanKernel::DenseTiled { simd, .. } => *simd,
        }
    }
}

/// The client-side encode∘obfuscate transform, compiled to one
/// precomputed keep-mask table.
///
/// Compilation materializes the obfuscation permutation exactly once
/// (the same seeded shuffle as [`Obfuscator::new`], so masks are
/// bit-identical) and stores it as a packed keep bitmap.
/// [`EncodePlan::apply`] is then a single table-driven pass:
/// bit-identical to `obfuscator.obfuscate(&encoder.encode(input)?)`
/// with no per-call permutation work and — under
/// [`QuantScheme::Bipolar`] — no accumulation of masked dimensions at
/// all.
#[derive(Debug, Clone)]
pub struct EncodePlan {
    scheme: QuantScheme,
    dim: usize,
    masked_dims: usize,
    /// One bit per dimension; set ⇔ the dimension survives the mask.
    /// `⌈dim/64⌉` words, zero tail bits.
    keep_words: Vec<u64>,
}

impl EncodePlan {
    /// Compiles the plan for queries of dimension `dim` — one
    /// permutation build, at compile time.
    ///
    /// # Errors
    ///
    /// Same contract as [`Obfuscator::new`]:
    /// [`HdError::EmptyDimension`] if `dim == 0`,
    /// [`HdError::InvalidConfig`] if `masked_dims >= dim`.
    pub fn compile(dim: usize, config: ObfuscateConfig) -> Result<Self, HdError> {
        let obfuscator = Obfuscator::new(dim, config)?;
        Ok(Self::from_obfuscator(&obfuscator))
    }

    /// Compiles the plan from an already-constructed obfuscator without
    /// re-materializing the permutation.
    pub fn from_obfuscator(obfuscator: &Obfuscator) -> Self {
        let dim = obfuscator.dim();
        let hv_words = dim.div_ceil(WORD_BITS);
        let mut keep_words = vec![u64::MAX; hv_words];
        let tail = dim % WORD_BITS;
        if tail != 0 {
            if let Some(last) = keep_words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        for &j in obfuscator.masked_indices() {
            if let Some(word) = keep_words.get_mut(j / WORD_BITS) {
                *word &= !(1u64 << (j % WORD_BITS));
            }
        }
        Self {
            scheme: obfuscator.config().scheme,
            dim,
            masked_dims: obfuscator.masked_indices().len(),
            keep_words,
        }
    }

    /// The quantization scheme baked into the plan.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Query dimensionality the plan was compiled for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of dimensions the mask nullifies.
    pub fn masked_dims(&self) -> usize {
        self.masked_dims
    }

    /// The packed keep bitmap (bit set ⇔ dimension survives;
    /// `⌈dim/64⌉` words, zero tail bits).
    pub fn keep_words(&self) -> &[u64] {
        &self.keep_words
    }

    /// Encodes and obfuscates one feature vector in a single
    /// table-driven pass — bit-identical to
    /// `obfuscator.obfuscate(&encoder.encode(input)?)`.
    ///
    /// Under [`QuantScheme::Bipolar`] the fused masked kernel skips the
    /// entire accumulation of masked dimensions (the quantized sign is
    /// σ-independent, so nothing about a masked dimension is ever
    /// needed); NaN inputs fall back to the generic composition, whose
    /// NaN semantics are the contract. Other schemes need the full
    /// accumulator for the σ estimate, so they run the encode kernel
    /// and fuse quantization + masking into one output pass.
    ///
    /// # Errors
    ///
    /// [`HdError::DimensionMismatch`] if the encoder's output dimension
    /// differs from the compiled plan's, and
    /// [`HdError::FeatureCountMismatch`] for a wrong input length.
    pub fn apply(&self, encoder: &ScalarEncoder, input: &[f64]) -> Result<Hypervector, HdError> {
        let config = encoder.config();
        if config.dim != self.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: config.dim,
            });
        }
        if input.len() != config.features {
            return Err(HdError::FeatureCountMismatch {
                expected: config.features,
                actual: input.len(),
            });
        }
        if self.scheme == QuantScheme::Bipolar {
            if let Some(acc) = kernels::scalar_encode_bipolar_masked(
                encoder.item_memory_transposed(),
                input,
                config.levels,
                &self.keep_words,
            ) {
                return Ok(Hypervector::from_vec(acc));
            }
            // NaN input: the fused integer kernel cannot represent the
            // poisoned accumulator; the generic pass below resolves it
            // exactly like encode-then-obfuscate does.
        }
        let mut h = encoder.encode(input)?;
        // σ is estimated from the *pre-mask* accumulator, exactly as
        // `Obfuscator::obfuscate` does.
        let sigma = QuantScheme::empirical_sigma(&h).max(f64::MIN_POSITIVE);
        for (chunk, &keep) in h.as_mut_slice().chunks_mut(WORD_BITS).zip(&self.keep_words) {
            for (b, v) in chunk.iter_mut().enumerate() {
                *v = if keep >> b & 1 == 1 {
                    self.scheme.quantize_value(*v, sigma)
                } else {
                    0.0
                };
            }
        }
        Ok(h)
    }
}

/// The server-side scoring pipeline compiled once per published model:
/// shared-ownership pins of the scoring snapshots plus the one-time
/// [`PlanKernel`] selection request workers dispatch through.
///
/// Every predict method is bit-identical (scores, tie-breaking, error
/// contract) to the corresponding generic [`HdModel`] entry point — but
/// performs no per-call cache probing, no packability re-decision and
/// no SIMD re-detection.
#[derive(Debug, Clone)]
pub struct ModelPlan {
    dim: usize,
    dense: Arc<ClassMatrix>,
    packed: Option<Arc<PackedClassMatrix>>,
    kernel: PlanKernel,
}

impl ModelPlan {
    /// Compiles the plan: builds/pins both scoring snapshots and
    /// selects the kernel. Counts as exactly one kernel-selection probe
    /// (see [`kernel_probe_count`]).
    pub fn compile(model: &HdModel) -> Self {
        note_kernel_probe();
        let dim = model.dim();
        let dense = model.matrix_arc();
        let packed = model.packed_matrix_arc();
        let simd = SimdPath::probe();
        let kernel = match &packed {
            Some(p) => PlanKernel::PackedPopcount {
                hv_words: p.dim().div_ceil(WORD_BITS),
                simd,
            },
            None => PlanKernel::DenseTiled {
                block: PREDICT_BLOCK,
                simd,
            },
        };
        Self {
            dim,
            dense,
            packed,
            kernel,
        }
    }

    /// Hypervector dimensionality the plan scores at.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.dense.num_classes()
    }

    /// The kernel selected at compile time.
    pub fn kernel(&self) -> PlanKernel {
        self.kernel
    }

    /// Scores a bit-packed bipolar query through the compiled kernel —
    /// bit-identical to [`HdModel::predict_packed`], with zero per-call
    /// dispatch decisions.
    ///
    /// # Errors
    ///
    /// [`HdError::DimensionMismatch`] for a wrong query dimension and
    /// [`HdError::ZeroNorm`] if every class hypervector is zero.
    pub fn predict_packed(&self, query: &BipolarHv) -> Result<Prediction, HdError> {
        if query.dim() != self.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        let mut scores = Vec::new();
        match &self.packed {
            Some(packed) if !packed.all_zero() => {
                packed.scores_packed_into(query.words(), &mut scores);
            }
            Some(_) => return Err(HdError::ZeroNorm),
            None => {
                if self.dense.all_zero() {
                    return Err(HdError::ZeroNorm);
                }
                self.dense.scores_packed_into(query.words(), &mut scores);
            }
        }
        Ok(prediction_from_scores(scores))
    }

    /// Scores a dense query through the compiled kernel — bit-identical
    /// to [`HdModel::predict`].
    ///
    /// # Errors
    ///
    /// [`HdError::DimensionMismatch`] for a wrong query dimension and
    /// [`HdError::ZeroNorm`] if every class hypervector is zero.
    pub fn predict_dense(&self, query: &Hypervector) -> Result<Prediction, HdError> {
        if query.dim() != self.dim {
            return Err(HdError::DimensionMismatch {
                expected: self.dim,
                actual: query.dim(),
            });
        }
        if self.dense.all_zero() {
            return Err(HdError::ZeroNorm);
        }
        let mut scores = Vec::new();
        self.dense.scores_into(query.as_slice(), &mut scores);
        Ok(prediction_from_scores(scores))
    }

    /// [`ModelPlan::predict_dense`] with the strictly-bipolar bridge:
    /// a dense query whose every component is exactly `±1` (an
    /// obfuscated query that arrived dense) is repacked and routed
    /// through [`ModelPlan::predict_packed`]. This is the compiled form
    /// of the engine's `packed_fastpath` per-request decision.
    ///
    /// # Errors
    ///
    /// Same contract as [`ModelPlan::predict_dense`].
    pub fn predict_dense_auto(&self, query: &Hypervector) -> Result<Prediction, HdError> {
        if is_strictly_bipolar(query.as_slice()) {
            return self.predict_packed(&BipolarHv::from_signs(query.as_slice()));
        }
        self.predict_dense(query)
    }

    /// One-line human-readable description of the compiled kernel, used
    /// by rendered plans and reports.
    pub fn describe(&self) -> String {
        match self.kernel {
            PlanKernel::PackedPopcount { hv_words, simd } => format!(
                "packed-popcount: {} classes × {hv_words} words (dim {}), xor+popcnt, {} arms",
                self.num_classes(),
                self.dim,
                simd.label()
            ),
            PlanKernel::DenseTiled { block, simd } => format!(
                "dense-tiled: {} classes × {} dims, f64 dot, block {block}, {} arms",
                self.num_classes(),
                self.dim,
                simd.label()
            ),
        }
    }
}

/// True when every component is exactly `+1.0` or `-1.0` — the
/// precondition for repacking a dense query into a [`BipolarHv`]
/// without changing its scores.
pub fn is_strictly_bipolar(values: &[f64]) -> bool {
    values.iter().all(|&v| v == 1.0 || v == -1.0)
}

/// A rendering of a compiled plan for one execution substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanArtifact {
    /// The target that rendered it (see [`PlanTarget::name`]).
    pub target: &'static str,
    /// One-paragraph human-readable summary.
    pub summary: String,
    /// The rendered payload — a kernel table description for the
    /// software target, synthesizable RTL for the hardware target.
    pub payload: String,
}

/// A compiler backend: renders a compiled [`ModelPlan`] for one
/// execution substrate.
///
/// [`SoftwareTarget`] (this crate) renders the kernel-table form the
/// serving engine executes; `privehd-hw` renders the same plan as
/// synthesizable Verilog plus an analytic FPGA resource/throughput
/// model.
pub trait PlanTarget {
    /// Stable target name (`"software"`, `"fpga"`, …).
    fn name(&self) -> &'static str;

    /// Renders the plan for this substrate.
    fn render(&self, plan: &ModelPlan) -> PlanArtifact;
}

impl std::fmt::Debug for dyn PlanTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlanTarget")
            .field("name", &self.name())
            .finish()
    }
}

/// The in-process software backend: renders the kernel tables the
/// serving engine dispatches through.
#[derive(Debug, Clone, Copy, Default)]
pub struct SoftwareTarget;

impl PlanTarget for SoftwareTarget {
    fn name(&self) -> &'static str {
        "software"
    }

    fn render(&self, plan: &ModelPlan) -> PlanArtifact {
        let payload = format!(
            "kernel = {}\nsimd = {}\nclasses = {}\ndim = {}\n",
            plan.kernel().label(),
            plan.kernel().simd().label(),
            plan.num_classes(),
            plan.dim(),
        );
        PlanArtifact {
            target: self.name(),
            summary: plan.describe(),
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoder::EncoderConfig;

    fn trained_model(dim: usize, seed: u64) -> (ScalarEncoder, HdModel) {
        let enc = ScalarEncoder::new(EncoderConfig::new(6, dim).with_seed(seed)).unwrap();
        let mut model = HdModel::new(2, dim).unwrap();
        for i in 0..8 {
            let t = i as f64 / 40.0;
            let a = vec![0.1 + t, 0.2, 0.1, 0.9 - t, 0.8, 0.9];
            let b = vec![0.9 - t, 0.8, 0.9, 0.1 + t, 0.2, 0.1];
            model.bundle(0, &enc.encode(&a).unwrap()).unwrap();
            model.bundle(1, &enc.encode(&b).unwrap()).unwrap();
        }
        (enc, model)
    }

    #[test]
    fn compile_selects_dense_for_float_rows_and_popcount_for_sign_rows() {
        let (_, mut model) = trained_model(300, 3);
        let plan = ModelPlan::compile(&model);
        assert!(matches!(plan.kernel(), PlanKernel::DenseTiled { .. }));
        model.quantize_classes(QuantScheme::Bipolar);
        let plan = ModelPlan::compile(&model);
        assert!(matches!(
            plan.kernel(),
            PlanKernel::PackedPopcount { hv_words: 5, .. }
        ));
        assert_eq!(plan.num_classes(), 2);
        assert_eq!(plan.dim(), 300);
    }

    #[test]
    fn plan_predicts_bit_identically_to_the_model() {
        let (enc, model) = trained_model(300, 5);
        let plan = ModelPlan::compile(&model);
        let q = enc.encode(&[0.2, 0.3, 0.1, 0.8, 0.7, 0.9]).unwrap();
        assert_eq!(plan.predict_dense(&q).unwrap(), model.predict(&q).unwrap());
        let packed = BipolarHv::random(300, 9);
        assert_eq!(
            plan.predict_packed(&packed).unwrap(),
            model.predict_packed(&packed).unwrap()
        );
        // The auto bridge repacks strictly-bipolar dense queries.
        let dense_bipolar = packed.to_dense();
        assert_eq!(
            plan.predict_dense_auto(&dense_bipolar).unwrap(),
            model.predict_packed(&packed).unwrap()
        );
        // …and leaves general dense queries on the dense kernel.
        assert_eq!(
            plan.predict_dense_auto(&q).unwrap(),
            model.predict(&q).unwrap()
        );
    }

    #[test]
    fn plan_mirrors_model_error_contract() {
        let (_, model) = trained_model(300, 7);
        let plan = ModelPlan::compile(&model);
        let short = Hypervector::from_vec(vec![1.0; 64]);
        assert_eq!(
            plan.predict_dense(&short),
            Err(HdError::DimensionMismatch {
                expected: 300,
                actual: 64
            })
        );
        let untrained = HdModel::new(2, 64).unwrap();
        let plan = ModelPlan::compile(&untrained);
        assert_eq!(
            plan.predict_dense(&Hypervector::from_vec(vec![1.0; 64])),
            Err(HdError::ZeroNorm)
        );
        assert_eq!(
            plan.predict_packed(&BipolarHv::random(64, 0)),
            Err(HdError::ZeroNorm)
        );
    }

    #[test]
    fn encode_plan_matches_generic_composition() {
        let (enc, _) = trained_model(300, 11);
        for scheme in QuantScheme::ALL {
            let cfg = ObfuscateConfig::new(scheme)
                .with_masked_dims(90)
                .with_seed(4);
            let ob = Obfuscator::new(300, cfg).unwrap();
            let plan = EncodePlan::compile(300, cfg).unwrap();
            assert_eq!(plan.masked_dims(), 90);
            let input = [0.15, 0.5, 0.85, 0.3, 0.7, 0.05];
            let generic = ob.obfuscate(&enc.encode(&input).unwrap()).unwrap();
            let fused = plan.apply(&enc, &input).unwrap();
            assert_eq!(
                fused.as_slice(),
                generic.as_slice(),
                "{scheme}: compiled plan must bit-match encode∘obfuscate"
            );
        }
    }

    #[test]
    fn encode_plan_nan_falls_back_to_generic_semantics() {
        let (enc, _) = trained_model(200, 13);
        let cfg = ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(50)
            .with_seed(2);
        let ob = Obfuscator::new(200, cfg).unwrap();
        let plan = EncodePlan::compile(200, cfg).unwrap();
        let input = [0.1, f64::NAN, 0.3, 0.4, 0.5, 0.6];
        let generic = ob.obfuscate(&enc.encode(&input).unwrap()).unwrap();
        let fused = plan.apply(&enc, &input).unwrap();
        assert_eq!(fused.as_slice(), generic.as_slice());
    }

    #[test]
    fn encode_plan_validates_like_the_generic_path() {
        let (enc, _) = trained_model(200, 17);
        let cfg = ObfuscateConfig::new(QuantScheme::Bipolar);
        assert!(EncodePlan::compile(0, cfg).is_err());
        assert!(EncodePlan::compile(8, cfg.with_masked_dims(8)).is_err());
        let plan = EncodePlan::compile(200, cfg).unwrap();
        assert_eq!(
            plan.apply(&enc, &[0.5; 4]),
            Err(HdError::FeatureCountMismatch {
                expected: 6,
                actual: 4
            })
        );
        let other = EncodePlan::compile(100, cfg).unwrap();
        assert!(matches!(
            other.apply(&enc, &[0.5; 6]),
            Err(HdError::DimensionMismatch { .. })
        ));
    }

    // NOTE: the counter is process-global and other unit tests exercise
    // the (probe-counted) generic predict paths concurrently, so this
    // only asserts the lower bound here; the exact "zero probes per
    // served request" audit lives in `privehd-serve/tests/plan_probes.rs`
    // where it owns its test binary.
    #[test]
    fn compile_notes_a_kernel_probe() {
        let (_, model) = trained_model(128, 19);
        let before = kernel_probe_count();
        let _plan = ModelPlan::compile(&model);
        assert!(kernel_probe_count() > before, "compile must probe");
    }

    #[test]
    fn software_target_renders_the_kernel_table() {
        let (_, mut model) = trained_model(256, 23);
        model.quantize_classes(QuantScheme::Bipolar);
        let plan = ModelPlan::compile(&model);
        let artifact = SoftwareTarget.render(&plan);
        assert_eq!(artifact.target, "software");
        assert!(artifact.summary.contains("packed-popcount"));
        assert!(artifact.payload.contains("kernel = packed-popcount"));
        assert!(artifact.payload.contains("classes = 2"));
    }

    #[test]
    fn strictly_bipolar_detection() {
        assert!(is_strictly_bipolar(&[1.0, -1.0, 1.0]));
        assert!(!is_strictly_bipolar(&[1.0, 0.0]));
        assert!(!is_strictly_bipolar(&[1.0, f64::NAN]));
        assert!(is_strictly_bipolar(&[]));
    }
}
