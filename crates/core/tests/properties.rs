//! Property-based tests for the HD substrate: algebraic invariants of
//! hypervector operations, quantization, pruning and decoding.

use proptest::prelude::*;

use privehd_core::prelude::*;
use privehd_core::{Encoder, Hypervector};

fn dense_hv(dim: usize) -> impl Strategy<Value = Hypervector> {
    prop::collection::vec(-100.0f64..100.0, dim).prop_map(Hypervector::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- Hypervector algebra ------------------------------------------

    #[test]
    fn cosine_is_bounded_and_symmetric(a in dense_hv(64), b in dense_hv(64)) {
        prop_assume!(a.l2_norm() > 1e-9 && b.l2_norm() > 1e-9);
        let ab = a.cosine(&b).unwrap();
        let ba = b.cosine(&a).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn dot_is_bilinear(a in dense_hv(32), b in dense_hv(32), c in dense_hv(32), k in -5.0f64..5.0) {
        // <a + k·b, c> = <a,c> + k·<b,c>
        let mut akb = a.clone();
        akb.add_scaled(&b, k).unwrap();
        let lhs = akb.dot(&c).unwrap();
        let rhs = a.dot(&c).unwrap() + k * b.dot(&c).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
    }

    #[test]
    fn l2_norm_triangle_inequality(a in dense_hv(48), b in dense_hv(48)) {
        let sum = a.clone() + b.clone();
        prop_assert!(sum.l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-9);
    }

    #[test]
    fn l1_dominates_l2(a in dense_hv(48)) {
        prop_assert!(a.l1_norm() + 1e-9 >= a.l2_norm());
    }

    // --- Bipolar hypervectors -----------------------------------------

    #[test]
    fn bind_is_commutative_and_self_inverse(seed1 in 0u64..1_000, seed2 in 0u64..1_000, dim in 1usize..300) {
        let a = BipolarHv::random(dim, seed1);
        let b = BipolarHv::random(dim, seed2);
        prop_assert_eq!(a.bind(&b).unwrap(), b.bind(&a).unwrap());
        prop_assert_eq!(&a.bind(&b).unwrap().bind(&b).unwrap(), &a);
    }

    #[test]
    fn hamming_dot_identity(seed1 in 0u64..1_000, seed2 in 0u64..1_000, dim in 1usize..300) {
        let a = BipolarHv::random(dim, seed1);
        let b = BipolarHv::random(dim, seed2);
        let h = a.hamming(&b).unwrap();
        prop_assert_eq!(a.dot(&b).unwrap(), dim as i64 - 2 * h as i64);
        prop_assert!(h <= dim);
    }

    #[test]
    fn dot_dense_matches_naive(seed in 0u64..1_000, values in prop::collection::vec(-10.0f64..10.0, 1..200)) {
        let dim = values.len();
        let b = BipolarHv::random(dim, seed);
        let h = Hypervector::from_vec(values);
        let naive: f64 = (0..dim).map(|j| b.sign(j) * h[j]).sum();
        prop_assert!((b.dot_dense(&h).unwrap() - naive).abs() < 1e-9);
    }

    // --- Quantization ---------------------------------------------------

    #[test]
    fn quantized_values_stay_in_alphabet(a in dense_hv(128), sigma in 0.1f64..50.0) {
        for scheme in [QuantScheme::Bipolar, QuantScheme::Ternary, QuantScheme::TernaryBiased, QuantScheme::TwoBit] {
            let q = scheme.quantize(&a, sigma);
            for &v in q.as_slice() {
                prop_assert!(scheme.alphabet().contains(&v), "{scheme}: {v}");
            }
        }
    }

    #[test]
    fn quantization_is_odd_for_symmetric_schemes(a in dense_hv(64), sigma in 0.1f64..50.0) {
        // q(-x) == -q(x) for ternary schemes (bipolar breaks at exactly 0).
        for scheme in [QuantScheme::Ternary, QuantScheme::TernaryBiased] {
            let q_pos = scheme.quantize(&a, sigma);
            let q_neg = scheme.quantize(&(-a.clone()), sigma);
            for (p, n) in q_pos.as_slice().iter().zip(q_neg.as_slice()) {
                prop_assert!((p + n).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn quantization_preserves_strong_signs(a in dense_hv(64)) {
        // Any component beyond every threshold keeps its sign under all
        // schemes (with sigma = 1, the largest threshold is < 0.7).
        let q = QuantScheme::Ternary.quantize(&a, 1.0);
        for (orig, quant) in a.as_slice().iter().zip(q.as_slice()) {
            if orig.abs() > 1.0 {
                prop_assert_eq!(orig.signum(), quant.signum());
            }
        }
    }

    // --- Pruning ---------------------------------------------------------

    #[test]
    fn prune_mask_kept_plus_pruned_is_dim(dim in 1usize..200, frac in 0.0f64..0.99) {
        let pruned: Vec<usize> = (0..((dim as f64 * frac) as usize)).collect();
        let mask = PruneMask::from_pruned_indices(dim, &pruned).unwrap();
        prop_assert_eq!(mask.kept() + mask.pruned(), dim);
    }

    #[test]
    fn masking_is_idempotent(a in dense_hv(64), frac in 0.0f64..0.9) {
        let pruned: Vec<usize> = (0..((64.0 * frac) as usize)).collect();
        let mask = PruneMask::from_pruned_indices(64, &pruned).unwrap();
        let mut once = a.clone();
        mask.apply(&mut once).unwrap();
        let mut twice = once.clone();
        mask.apply(&mut twice).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn masking_never_increases_norms(a in dense_hv(64), frac in 0.0f64..0.9) {
        let pruned: Vec<usize> = (0..((64.0 * frac) as usize)).collect();
        let mask = PruneMask::from_pruned_indices(64, &pruned).unwrap();
        let mut m = a.clone();
        mask.apply(&mut m).unwrap();
        prop_assert!(m.l2_norm() <= a.l2_norm() + 1e-12);
        prop_assert!(m.l1_norm() <= a.l1_norm() + 1e-12);
    }

    // --- Encoding / decoding ---------------------------------------------

    #[test]
    fn encoding_is_deterministic(values in prop::collection::vec(0.0f64..1.0, 4..24), seed in 0u64..100) {
        let enc = ScalarEncoder::new(
            EncoderConfig::new(values.len(), 256).with_seed(seed),
        ).unwrap();
        prop_assert_eq!(enc.encode(&values).unwrap(), enc.encode(&values).unwrap());
    }

    #[test]
    fn encoding_is_linear_in_bundling(x in prop::collection::vec(0.0f64..1.0, 8), y in prop::collection::vec(0.0f64..1.0, 8)) {
        // encode(x) + encode(y) equals bundling the two encodings —
        // the linearity that makes Eq. (3) training well-defined.
        let enc = ScalarEncoder::new(EncoderConfig::new(8, 128).with_seed(3)).unwrap();
        let hx = enc.encode(&x).unwrap();
        let hy = enc.encode(&y).unwrap();
        let bundle = hx.clone() + hy.clone();
        for j in 0..128 {
            prop_assert!((bundle[j] - (hx[j] + hy[j])).abs() < 1e-12);
        }
    }

    #[test]
    fn decode_inverts_encode_with_bounded_error(values in prop::collection::vec(0.0f64..1.0, 4..16)) {
        // Eq. 10: reconstruction error shrinks as D_hv grows; at 8192
        // dims and few features it is small for every input.
        let enc = ScalarEncoder::new(
            EncoderConfig::new(values.len(), 8_192).with_levels(256).with_seed(11),
        ).unwrap();
        let snapped: Vec<f64> = values.iter().map(|&v| enc.snap_to_level(v)).collect();
        let h = enc.encode(&values).unwrap();
        let rec = Decoder::new(enc.item_memory().clone()).decode(&h).unwrap();
        let err = mse(&snapped, rec.features()).unwrap();
        prop_assert!(err < 0.05, "mse = {err}");
    }

    // --- Kernel ↔ reference parity ---------------------------------------
    //
    // The tuned paths of `privehd_core::kernels` must agree with the
    // retained naive implementations: bit-exactly where the arithmetic
    // is integer (level encode), and within 1e-9 absolute where only
    // floating-point summation order differs (scalar encode, dots).
    // Dimensions are drawn around word boundaries on purpose so the
    // tail-word masking is always exercised.

    #[test]
    fn scalar_encode_kernel_matches_reference(
        values in prop::collection::vec(0.0f64..1.0, 1..40),
        dim in 1usize..200,
        levels in 2usize..300,
        seed in 0u64..50,
    ) {
        let enc = ScalarEncoder::new(
            EncoderConfig::new(values.len(), dim).with_levels(levels).with_seed(seed),
        ).unwrap();
        let fast = enc.encode(&values).unwrap();
        let naive = enc.encode_reference(&values).unwrap();
        prop_assert_eq!(fast.dim(), naive.dim());
        for j in 0..dim {
            prop_assert!((fast[j] - naive[j]).abs() < 1e-9, "dim {}: {} vs {}", j, fast[j], naive[j]);
        }
    }

    #[test]
    fn scalar_encode_kernel_handles_all_zero_input(
        features in 1usize..30,
        dim in 1usize..200,
        seed in 0u64..50,
    ) {
        let enc = ScalarEncoder::new(
            EncoderConfig::new(features, dim).with_seed(seed),
        ).unwrap();
        let zeros = vec![0.0; features];
        let h = enc.encode(&zeros).unwrap();
        prop_assert_eq!(h, Hypervector::zeros(dim).unwrap());
    }

    #[test]
    fn level_encode_kernel_bit_matches_reference(
        values in prop::collection::vec(0.0f64..1.0, 1..40),
        dim in 1usize..200,
        levels in 2usize..64,
        seed in 0u64..50,
    ) {
        let enc = LevelEncoder::new(
            EncoderConfig::new(values.len(), dim).with_levels(levels).with_seed(seed),
        ).unwrap();
        let fast = enc.encode(&values).unwrap();
        let naive = enc.encode_reference(&values).unwrap();
        // All-integer arithmetic on both paths → exact equality.
        prop_assert_eq!(fast, naive);
    }

    #[test]
    fn predict_kernel_matches_reference(
        dim in 1usize..200,
        num_classes in 1usize..6,
        seed in 0u64..50,
    ) {
        // Deterministic pseudo-random model + query from the seed.
        let classes: Vec<Hypervector> = (0..num_classes)
            .map(|c| Hypervector::from_vec(
                (0..dim).map(|j| (((seed as usize + c * 131 + j) as f64) * 0.7).sin()).collect(),
            ))
            .collect();
        let model = HdModel::from_classes(classes).unwrap();
        let query = Hypervector::from_vec(
            (0..dim).map(|j| (((seed as usize + j) as f64) * 0.3).cos()).collect(),
        );
        let fast = model.predict(&query).unwrap();
        let naive = model.predict_reference(&query).unwrap();
        prop_assert_eq!(fast.scores.len(), naive.scores.len());
        for (a, b) in fast.scores.iter().zip(&naive.scores) {
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
        // Scores agree to 1e-9, so the argmax can only differ on a
        // genuine near-tie; accept either label but require the winning
        // scores to coincide.
        prop_assert!((fast.score - naive.score).abs() < 1e-9);
    }

    #[test]
    fn predict_kernel_single_class_model(dim in 1usize..200, seed in 0u64..50) {
        let class = Hypervector::from_vec(
            (0..dim).map(|j| (((seed as usize + j) as f64) * 0.9).sin() + 0.01).collect(),
        );
        let model = HdModel::from_classes(vec![class]).unwrap();
        let query = Hypervector::from_vec(vec![1.0; dim]);
        let fast = model.predict(&query).unwrap();
        let naive = model.predict_reference(&query).unwrap();
        prop_assert_eq!(fast.class, 0);
        prop_assert_eq!(naive.class, 0);
        prop_assert!((fast.score - naive.score).abs() < 1e-9);
    }

    #[test]
    fn predict_batch_kernel_bit_matches_predict(
        dim in 1usize..150,
        n_queries in 1usize..40,
        seed in 0u64..20,
    ) {
        let classes: Vec<Hypervector> = (0..3)
            .map(|c| Hypervector::from_vec(
                (0..dim).map(|j| (((seed as usize + c * 17 + j) as f64) * 0.5).sin()).collect(),
            ))
            .collect();
        let model = HdModel::from_classes(classes).unwrap();
        let queries: Vec<Hypervector> = (0..n_queries)
            .map(|q| Hypervector::from_vec(
                (0..dim).map(|j| (((q * 37 + j) as f64) * 0.2).cos()).collect(),
            ))
            .collect();
        let batched = model.predict_batch(&queries).unwrap();
        for (q, b) in queries.iter().zip(&batched) {
            // The blocked tile path must be *bit-identical* to predict.
            prop_assert_eq!(&model.predict(q).unwrap(), b);
        }
    }

    #[test]
    fn packed_predict_kernel_matches_dense_scores(
        dim in 1usize..200,
        seed in 0u64..50,
    ) {
        let classes: Vec<Hypervector> = (0..3)
            .map(|c| Hypervector::from_vec(
                (0..dim).map(|j| (((seed as usize + c * 31 + j) as f64) * 1.1).sin()).collect(),
            ))
            .collect();
        let model = HdModel::from_classes(classes).unwrap();
        let packed = BipolarHv::random(dim, seed);
        let fast = model.predict_packed(&packed).unwrap();
        let dense = model.predict(&packed.to_dense()).unwrap();
        for (a, b) in fast.scores.iter().zip(&dense.scores) {
            prop_assert!((a - b).abs() < 1e-9, "{} vs {}", a, b);
        }
    }

    // --- PackedClassMatrix ↔ dense ClassMatrix parity --------------------
    //
    // For sign-only models every score is a sum of ±1 terms divided by
    // the same norm — exact in f64 in any summation order — so the
    // popcount path must match the dense path *bit for bit*, not just
    // to a tolerance. Dimensions are drawn across word boundaries so
    // the tail-bit masking of the last 64-bit word is always exercised.

    #[test]
    fn packed_matrix_scores_bit_match_dense_for_sign_models(
        dim in 1usize..200,
        num_classes in 1usize..5,
        seed in 0u64..50,
    ) {
        let classes: Vec<Hypervector> = (0..num_classes)
            .map(|c| Hypervector::from_vec(
                (0..dim)
                    .map(|j| if ((seed as usize + c * 131 + j) * 2_654_435_761) % 5 < 2 { 1.0 } else { -1.0 })
                    .collect(),
            ))
            .collect();
        let model = HdModel::from_classes(classes).unwrap();
        prop_assert!(model.packed_class_matrix().is_some(), "±1 rows must pack exactly");
        let query = BipolarHv::random(dim, seed);
        let fast = model.predict_packed(&query).unwrap();
        let dense = model.predict(&query.to_dense()).unwrap();
        prop_assert_eq!(fast.scores, dense.scores);
        prop_assert_eq!(fast.class, dense.class);
    }

    #[test]
    fn quantized_model_packed_scores_bit_match_dense(
        dim in 1usize..200,
        seed in 0u64..50,
    ) {
        // Arbitrary float training collapsed to signs by the paper's
        // bipolar class quantization: the packed representation must
        // exist and stay bit-exact against the dense scorer.
        let classes: Vec<Hypervector> = (0..3)
            .map(|c| Hypervector::from_vec(
                (0..dim).map(|j| (((seed as usize + c * 31 + j) as f64) * 1.3).sin()).collect(),
            ))
            .collect();
        let mut model = HdModel::from_classes(classes).unwrap();
        model.quantize_classes(QuantScheme::Bipolar);
        prop_assert!(model.packed_class_matrix().is_some());
        let query = BipolarHv::random(dim, seed.wrapping_mul(31));
        let fast = model.predict_packed(&query).unwrap();
        let dense = model.predict(&query.to_dense()).unwrap();
        prop_assert_eq!(fast.scores, dense.scores);
    }

    #[test]
    fn packed_matrix_zero_norm_classes_score_neg_infinity(
        dim in 1usize..150,
        seed in 0u64..50,
    ) {
        // A never-trained (all-zero) class next to a ±1 class: the
        // packed scorer must reproduce the NEG_INFINITY sentinel and
        // never predict the untrained class.
        let signs = Hypervector::from_vec(
            (0..dim)
                .map(|j| if (seed as usize + j).is_multiple_of(3) { -1.0 } else { 1.0 })
                .collect(),
        );
        let zero = Hypervector::zeros(dim).unwrap();
        let model = HdModel::from_classes(vec![signs, zero]).unwrap();
        prop_assert!(model.packed_class_matrix().is_some(), "zero rows pack (scale 0)");
        let query = BipolarHv::random(dim, seed);
        let fast = model.predict_packed(&query).unwrap();
        let dense = model.predict(&query.to_dense()).unwrap();
        prop_assert_eq!(fast.scores[1], f64::NEG_INFINITY);
        prop_assert_eq!(fast.class, 0);
        prop_assert_eq!(fast.scores, dense.scores);
    }

    // --- Compiled plan ↔ generic parity ----------------------------------
    //
    // `privehd_core::plan` compiles the encode∘obfuscate composition
    // and the model's kernel selection at publish time. Every compiled
    // path must be *bit-identical* to the generic composition it
    // replaces — same hypervectors, same scores, same argmax — across
    // word-boundary dimensions, masked and unmasked obfuscation, every
    // quantization scheme, and zero-norm (never-trained) classes.

    #[test]
    fn encode_plan_bit_matches_generic_composition(
        values in prop::collection::vec(0.0f64..1.0, 1..24),
        dim in 1usize..200,
        masked_frac in 0.0f64..0.9,
        seed in 0u64..50,
    ) {
        let enc = ScalarEncoder::new(
            EncoderConfig::new(values.len(), dim).with_seed(seed),
        ).unwrap();
        let masked_dims = ((dim as f64) * masked_frac) as usize;
        for scheme in QuantScheme::ALL {
            let obfuscator = Obfuscator::new(
                dim,
                ObfuscateConfig::new(scheme)
                    .with_masked_dims(masked_dims)
                    .with_seed(seed ^ 0xA5),
            ).unwrap();
            let plan = EncodePlan::from_obfuscator(&obfuscator);
            let fused = plan.apply(&enc, &values).unwrap();
            let generic = obfuscator.obfuscate(&enc.encode(&values).unwrap()).unwrap();
            prop_assert_eq!(fused, generic);
        }
    }

    #[test]
    fn plan_predict_bit_matches_model_for_float_models(
        dim in 1usize..200,
        num_classes in 1usize..5,
        seed in 0u64..50,
    ) {
        let classes: Vec<Hypervector> = (0..num_classes)
            .map(|c| Hypervector::from_vec(
                (0..dim).map(|j| (((seed as usize + c * 131 + j) as f64) * 0.7).sin()).collect(),
            ))
            .collect();
        let model = HdModel::from_classes(classes).unwrap();
        let plan = ModelPlan::compile(&model);
        // Float rows cannot pack: the compiler must select dense tiling.
        prop_assert!(matches!(plan.kernel(), PlanKernel::DenseTiled { .. }));
        let query = Hypervector::from_vec(
            (0..dim).map(|j| (((seed as usize + j) as f64) * 0.3).cos()).collect(),
        );
        prop_assert_eq!(
            plan.predict_dense(&query).unwrap(),
            model.predict(&query).unwrap(),
        );
    }

    #[test]
    fn plan_packed_predict_bit_matches_model_for_sign_models(
        dim in 1usize..200,
        num_classes in 1usize..5,
        seed in 0u64..50,
    ) {
        let classes: Vec<Hypervector> = (0..num_classes)
            .map(|c| Hypervector::from_vec(
                (0..dim)
                    .map(|j| if ((seed as usize + c * 131 + j) * 2_654_435_761) % 5 < 2 { 1.0 } else { -1.0 })
                    .collect(),
            ))
            .collect();
        let model = HdModel::from_classes(classes).unwrap();
        let plan = ModelPlan::compile(&model);
        // Sign-only rows pack: the compiler must select XOR+POPCNT.
        prop_assert!(matches!(plan.kernel(), PlanKernel::PackedPopcount { .. }));
        let query = BipolarHv::random(dim, seed);
        let expected = model.predict_packed(&query).unwrap();
        prop_assert_eq!(&plan.predict_packed(&query).unwrap(), &expected);
        // A strictly-bipolar dense submission of the same query must
        // land on the same kernel with the same result.
        prop_assert_eq!(&plan.predict_dense_auto(&query.to_dense()).unwrap(), &expected);
    }

    #[test]
    fn plan_predict_bit_matches_model_for_level_quantized_models(
        dim in 1usize..200,
        seed in 0u64..50,
    ) {
        // Multi-level class quantization (ternary / 2-bit) leaves rows
        // unpackable; the compiled dense path must stay bit-identical.
        for scheme in [QuantScheme::Ternary, QuantScheme::TernaryBiased, QuantScheme::TwoBit] {
            let classes: Vec<Hypervector> = (0..3)
                .map(|c| Hypervector::from_vec(
                    (0..dim).map(|j| (((seed as usize + c * 31 + j) as f64) * 1.3).sin()).collect(),
                ))
                .collect();
            let mut model = HdModel::from_classes(classes).unwrap();
            model.quantize_classes(scheme);
            let plan = ModelPlan::compile(&model);
            let query = Hypervector::from_vec(
                (0..dim).map(|j| (((seed as usize + j) as f64) * 0.9).cos()).collect(),
            );
            prop_assert_eq!(
                plan.predict_dense(&query).unwrap(),
                model.predict(&query).unwrap(),
            );
        }
    }

    #[test]
    fn plan_scores_zero_norm_classes_like_the_model(
        dim in 1usize..150,
        seed in 0u64..50,
    ) {
        // A never-trained (all-zero) class next to a ±1 class: the
        // compiled plan must reproduce the NEG_INFINITY sentinel on
        // both its packed and dense paths, and never predict the
        // untrained class.
        let signs = Hypervector::from_vec(
            (0..dim)
                .map(|j| if (seed as usize + j).is_multiple_of(3) { -1.0 } else { 1.0 })
                .collect(),
        );
        let zero = Hypervector::zeros(dim).unwrap();
        let model = HdModel::from_classes(vec![signs, zero]).unwrap();
        let plan = ModelPlan::compile(&model);
        let query = BipolarHv::random(dim, seed);
        let fast = plan.predict_packed(&query).unwrap();
        prop_assert_eq!(fast.scores[1], f64::NEG_INFINITY);
        prop_assert_eq!(fast.class, 0);
        prop_assert_eq!(&fast, &model.predict_packed(&query).unwrap());
        let dense_query = query.to_dense();
        prop_assert_eq!(
            plan.predict_dense(&dense_query).unwrap(),
            model.predict(&dense_query).unwrap(),
        );
    }

    #[test]
    fn zero_norm_classes_score_neg_infinity(dim in 1usize..100, seed in 0u64..50) {
        // One trained class, one never-trained (all-zero) class: the
        // documented NEG_INFINITY sentinel, never the old f64::MIN.
        let trained = Hypervector::from_vec(
            (0..dim).map(|j| (((seed as usize + j) as f64) * 0.63).sin() + 0.01).collect(),
        );
        let zero = Hypervector::zeros(dim).unwrap();
        let model = HdModel::from_classes(vec![trained, zero]).unwrap();
        let query = Hypervector::from_vec(vec![1.0; dim]);
        for p in [model.predict(&query).unwrap(), model.predict_reference(&query).unwrap()] {
            prop_assert_eq!(p.scores[1], f64::NEG_INFINITY);
            prop_assert_eq!(p.class, 0);
        }
    }
}
