//! Property-based tests for the HD substrate: algebraic invariants of
//! hypervector operations, quantization, pruning and decoding.

use proptest::prelude::*;

use privehd_core::prelude::*;
use privehd_core::{Encoder, Hypervector};

fn dense_hv(dim: usize) -> impl Strategy<Value = Hypervector> {
    prop::collection::vec(-100.0f64..100.0, dim).prop_map(Hypervector::from_vec)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // --- Hypervector algebra ------------------------------------------

    #[test]
    fn cosine_is_bounded_and_symmetric(a in dense_hv(64), b in dense_hv(64)) {
        prop_assume!(a.l2_norm() > 1e-9 && b.l2_norm() > 1e-9);
        let ab = a.cosine(&b).unwrap();
        let ba = b.cosine(&a).unwrap();
        prop_assert!((-1.0 - 1e-9..=1.0 + 1e-9).contains(&ab));
        prop_assert!((ab - ba).abs() < 1e-12);
    }

    #[test]
    fn dot_is_bilinear(a in dense_hv(32), b in dense_hv(32), c in dense_hv(32), k in -5.0f64..5.0) {
        // <a + k·b, c> = <a,c> + k·<b,c>
        let mut akb = a.clone();
        akb.add_scaled(&b, k).unwrap();
        let lhs = akb.dot(&c).unwrap();
        let rhs = a.dot(&c).unwrap() + k * b.dot(&c).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-6 * (1.0 + lhs.abs()));
    }

    #[test]
    fn l2_norm_triangle_inequality(a in dense_hv(48), b in dense_hv(48)) {
        let sum = a.clone() + b.clone();
        prop_assert!(sum.l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-9);
    }

    #[test]
    fn l1_dominates_l2(a in dense_hv(48)) {
        prop_assert!(a.l1_norm() + 1e-9 >= a.l2_norm());
    }

    // --- Bipolar hypervectors -----------------------------------------

    #[test]
    fn bind_is_commutative_and_self_inverse(seed1 in 0u64..1_000, seed2 in 0u64..1_000, dim in 1usize..300) {
        let a = BipolarHv::random(dim, seed1);
        let b = BipolarHv::random(dim, seed2);
        prop_assert_eq!(a.bind(&b).unwrap(), b.bind(&a).unwrap());
        prop_assert_eq!(&a.bind(&b).unwrap().bind(&b).unwrap(), &a);
    }

    #[test]
    fn hamming_dot_identity(seed1 in 0u64..1_000, seed2 in 0u64..1_000, dim in 1usize..300) {
        let a = BipolarHv::random(dim, seed1);
        let b = BipolarHv::random(dim, seed2);
        let h = a.hamming(&b).unwrap();
        prop_assert_eq!(a.dot(&b).unwrap(), dim as i64 - 2 * h as i64);
        prop_assert!(h <= dim);
    }

    #[test]
    fn dot_dense_matches_naive(seed in 0u64..1_000, values in prop::collection::vec(-10.0f64..10.0, 1..200)) {
        let dim = values.len();
        let b = BipolarHv::random(dim, seed);
        let h = Hypervector::from_vec(values);
        let naive: f64 = (0..dim).map(|j| b.sign(j) * h[j]).sum();
        prop_assert!((b.dot_dense(&h).unwrap() - naive).abs() < 1e-9);
    }

    // --- Quantization ---------------------------------------------------

    #[test]
    fn quantized_values_stay_in_alphabet(a in dense_hv(128), sigma in 0.1f64..50.0) {
        for scheme in [QuantScheme::Bipolar, QuantScheme::Ternary, QuantScheme::TernaryBiased, QuantScheme::TwoBit] {
            let q = scheme.quantize(&a, sigma);
            for &v in q.as_slice() {
                prop_assert!(scheme.alphabet().contains(&v), "{scheme}: {v}");
            }
        }
    }

    #[test]
    fn quantization_is_odd_for_symmetric_schemes(a in dense_hv(64), sigma in 0.1f64..50.0) {
        // q(-x) == -q(x) for ternary schemes (bipolar breaks at exactly 0).
        for scheme in [QuantScheme::Ternary, QuantScheme::TernaryBiased] {
            let q_pos = scheme.quantize(&a, sigma);
            let q_neg = scheme.quantize(&(-a.clone()), sigma);
            for (p, n) in q_pos.as_slice().iter().zip(q_neg.as_slice()) {
                prop_assert!((p + n).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn quantization_preserves_strong_signs(a in dense_hv(64)) {
        // Any component beyond every threshold keeps its sign under all
        // schemes (with sigma = 1, the largest threshold is < 0.7).
        let q = QuantScheme::Ternary.quantize(&a, 1.0);
        for (orig, quant) in a.as_slice().iter().zip(q.as_slice()) {
            if orig.abs() > 1.0 {
                prop_assert_eq!(orig.signum(), quant.signum());
            }
        }
    }

    // --- Pruning ---------------------------------------------------------

    #[test]
    fn prune_mask_kept_plus_pruned_is_dim(dim in 1usize..200, frac in 0.0f64..0.99) {
        let pruned: Vec<usize> = (0..((dim as f64 * frac) as usize)).collect();
        let mask = PruneMask::from_pruned_indices(dim, &pruned).unwrap();
        prop_assert_eq!(mask.kept() + mask.pruned(), dim);
    }

    #[test]
    fn masking_is_idempotent(a in dense_hv(64), frac in 0.0f64..0.9) {
        let pruned: Vec<usize> = (0..((64.0 * frac) as usize)).collect();
        let mask = PruneMask::from_pruned_indices(64, &pruned).unwrap();
        let mut once = a.clone();
        mask.apply(&mut once).unwrap();
        let mut twice = once.clone();
        mask.apply(&mut twice).unwrap();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn masking_never_increases_norms(a in dense_hv(64), frac in 0.0f64..0.9) {
        let pruned: Vec<usize> = (0..((64.0 * frac) as usize)).collect();
        let mask = PruneMask::from_pruned_indices(64, &pruned).unwrap();
        let mut m = a.clone();
        mask.apply(&mut m).unwrap();
        prop_assert!(m.l2_norm() <= a.l2_norm() + 1e-12);
        prop_assert!(m.l1_norm() <= a.l1_norm() + 1e-12);
    }

    // --- Encoding / decoding ---------------------------------------------

    #[test]
    fn encoding_is_deterministic(values in prop::collection::vec(0.0f64..1.0, 4..24), seed in 0u64..100) {
        let enc = ScalarEncoder::new(
            EncoderConfig::new(values.len(), 256).with_seed(seed),
        ).unwrap();
        prop_assert_eq!(enc.encode(&values).unwrap(), enc.encode(&values).unwrap());
    }

    #[test]
    fn encoding_is_linear_in_bundling(x in prop::collection::vec(0.0f64..1.0, 8), y in prop::collection::vec(0.0f64..1.0, 8)) {
        // encode(x) + encode(y) equals bundling the two encodings —
        // the linearity that makes Eq. (3) training well-defined.
        let enc = ScalarEncoder::new(EncoderConfig::new(8, 128).with_seed(3)).unwrap();
        let hx = enc.encode(&x).unwrap();
        let hy = enc.encode(&y).unwrap();
        let bundle = hx.clone() + hy.clone();
        for j in 0..128 {
            prop_assert!((bundle[j] - (hx[j] + hy[j])).abs() < 1e-12);
        }
    }

    #[test]
    fn decode_inverts_encode_with_bounded_error(values in prop::collection::vec(0.0f64..1.0, 4..16)) {
        // Eq. 10: reconstruction error shrinks as D_hv grows; at 8192
        // dims and few features it is small for every input.
        let enc = ScalarEncoder::new(
            EncoderConfig::new(values.len(), 8_192).with_levels(256).with_seed(11),
        ).unwrap();
        let snapped: Vec<f64> = values.iter().map(|&v| enc.snap_to_level(v)).collect();
        let h = enc.encode(&values).unwrap();
        let rec = Decoder::new(enc.item_memory().clone()).decode(&h).unwrap();
        let err = mse(&snapped, rec.features()).unwrap();
        prop_assert!(err < 0.05, "mse = {err}");
    }
}
