//! Wire-server behavior over real loopback sockets: per-connection
//! admission (the `Busy` cap), malformed-frame hygiene (typed error
//! then close), idle timeouts, engine-shutdown drain, and the
//! connection cap.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use privehd_core::{BipolarHv, HdModel, Hypervector};
use privehd_serve::wire::{Frame, WireClient, WireClientError, WireConfig, WireServer, WireStatus};
use privehd_serve::{ModelId, ServeConfig, ServeEngine, ShardedRegistry};

const DIM: usize = 256;

fn trained_registry() -> Arc<ShardedRegistry> {
    let mut model = HdModel::new(2, DIM).unwrap();
    model
        .bundle(0, &Hypervector::from_vec(vec![1.0; DIM]))
        .unwrap();
    model
        .bundle(1, &Hypervector::from_vec(vec![-1.0; DIM]))
        .unwrap();
    Arc::new(ShardedRegistry::with_model(model, "wire-test").unwrap())
}

fn positive_query() -> BipolarHv {
    BipolarHv::from_signs(&vec![1.0; DIM])
}

#[test]
fn per_connection_in_flight_cap_answers_busy() {
    // A slow engine (long batching window, nothing to flush early) so
    // accepted requests provably stay in flight while the flood lands.
    let engine = ServeEngine::start(
        trained_registry(),
        ServeConfig {
            max_batch: 512,
            max_delay: Duration::from_millis(300),
            workers: 1,
            queue_depth: 512,
            packed_fastpath: false,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            max_in_flight: 4,
            ..WireConfig::default()
        },
    )
    .unwrap();

    let mut client = WireClient::connect(server.local_addr()).unwrap();
    let ids: Vec<u64> = (0..10)
        .map(|_| {
            client
                .send_packed(&ModelId::default(), &positive_query())
                .unwrap()
        })
        .collect();

    let mut busy = 0;
    let mut served = 0;
    for _ in &ids {
        let resp = client.recv().unwrap();
        assert!(ids.contains(&resp.request_id));
        match resp.outcome {
            Ok(p) => {
                assert_eq!(p.class, 0);
                served += 1;
            }
            Err(fault) => {
                assert_eq!(fault.status, WireStatus::Busy);
                assert!(fault.status.is_retryable());
                busy += 1;
            }
        }
    }
    // Exactly the cap's worth was admitted; the rest was shed at the
    // connection edge without ever touching the shared queue.
    assert_eq!((served, busy), (4, 6));
    let report = server.shutdown();
    assert_eq!(report.busy_rejections, 6);
    assert_eq!(report.frames_in, 10);
    assert_eq!(report.responses_out, 10);
    let engine_report = engine.shutdown();
    assert_eq!(engine_report.submitted, 4);
}

#[test]
fn malformed_frames_get_typed_error_then_close() {
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start("127.0.0.1:0", engine.handle(), WireConfig::default()).unwrap();

    // Raw socket speaking garbage: expect one BadFrame fault, then EOF.
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    sock.write_all(b"GARBAGE GARBAGE GARBAGE").unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match sock.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed before EOF: {e}"),
        }
    }
    let (frame, used) = Frame::decode(&buf, 1 << 20)
        .unwrap()
        .expect("an error frame");
    assert_eq!(used, buf.len(), "exactly one response then close");
    let Frame::Response(resp) = frame else {
        panic!("expected a response frame");
    };
    let fault = resp.outcome.unwrap_err();
    assert_eq!(fault.status, WireStatus::BadFrame);

    // A fresh, well-formed connection still works: one bad peer does
    // not poison the server.
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    let served = client
        .call_packed(&ModelId::default(), &positive_query())
        .unwrap();
    assert_eq!(served.class, 0);

    let report = server.shutdown();
    assert_eq!(report.decode_errors, 1);
    engine.shutdown();
}

#[test]
fn oversized_and_wrong_version_frames_are_typed() {
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            max_body_bytes: 1_024,
            ..WireConfig::default()
        },
    )
    .unwrap();

    // Oversized: a declared body length over the server's cap.
    let mut header = Vec::new();
    header.extend_from_slice(b"PVHD");
    header.push(1); // version
    header.push(0x01); // packed request
    header.extend_from_slice(&7u64.to_le_bytes()); // request id
    header.extend_from_slice(&u32::MAX.to_le_bytes()); // body length
    let fault = fault_from_raw(server.local_addr(), &header);
    assert_eq!(fault.1.status, WireStatus::TooLarge);
    assert_eq!(fault.0, 7, "request id salvaged from the bad frame");

    // Wrong version: typed as UnsupportedVersion, id still salvaged.
    let mut v2 = header.clone();
    v2[4] = 2;
    let fault = fault_from_raw(server.local_addr(), &v2);
    assert_eq!(fault.1.status, WireStatus::UnsupportedVersion);
    assert_eq!(fault.0, 7);

    let report = server.shutdown();
    assert_eq!(report.decode_errors, 2);
    engine.shutdown();
}

/// Writes raw bytes, reads to EOF, returns (request id, fault) of the
/// single expected error response.
fn fault_from_raw(
    addr: std::net::SocketAddr,
    bytes: &[u8],
) -> (u64, privehd_serve::wire::WireFault) {
    let mut sock = TcpStream::connect(addr).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    sock.write_all(bytes).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match sock.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("read failed before EOF: {e}"),
        }
    }
    let (frame, _) = Frame::decode(&buf, 1 << 20)
        .unwrap()
        .expect("an error frame");
    let Frame::Response(resp) = frame else {
        panic!("expected a response frame");
    };
    (resp.request_id, resp.outcome.unwrap_err())
}

#[test]
fn fault_frame_survives_bytes_still_in_flight() {
    // Regression: a peer that keeps streaming after its frame went bad
    // must still receive the typed fault. Closing the socket with
    // unread bytes in the kernel buffer would RST and destroy the
    // fault frame; the server instead half-closes and lingers,
    // discarding the in-flight bytes.
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            max_body_bytes: 4_096,
            ..WireConfig::default()
        },
    )
    .unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Header declaring a body far over the cap…
    let mut bad = Vec::new();
    bad.extend_from_slice(b"PVHD");
    bad.push(1);
    bad.push(0x01);
    bad.extend_from_slice(&9u64.to_le_bytes());
    bad.extend_from_slice(&(1_u32 << 20).to_le_bytes());
    sock.write_all(&bad).unwrap();
    // …followed by a sizeable chunk of the "body" still in flight.
    sock.write_all(&vec![0xABu8; 256 * 1024]).unwrap();
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    loop {
        match sock.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) => panic!("fault frame lost to a reset: {e}"),
        }
    }
    let (frame, _) = Frame::decode(&buf, 1 << 20)
        .unwrap()
        .expect("the typed fault frame");
    let Frame::Response(resp) = frame else {
        panic!("expected a response frame");
    };
    assert_eq!(resp.request_id, 9);
    assert_eq!(resp.outcome.unwrap_err().status, WireStatus::TooLarge);
    server.shutdown();
    engine.shutdown();
}

#[test]
fn engine_shutdown_maps_to_closed_faults() {
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start("127.0.0.1:0", engine.handle(), WireConfig::default()).unwrap();
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    // Engine goes first; the transport stays up and answers Closed.
    engine.shutdown();
    let err = client
        .call_packed(&ModelId::default(), &positive_query())
        .unwrap_err();
    let WireClientError::Fault(fault) = err else {
        panic!("expected a fault, got {err}");
    };
    assert_eq!(fault.status, WireStatus::Closed);
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped() {
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            idle_timeout: Duration::from_millis(100),
            ..WireConfig::default()
        },
    )
    .unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Say nothing; the server should hang up on its own.
    let mut chunk = [0u8; 16];
    assert_eq!(sock.read(&mut chunk).unwrap(), 0, "expected EOF");
    let report = server.shutdown();
    assert_eq!(report.idle_closed, 1);
    engine.shutdown();
}

#[test]
fn peers_stalled_mid_frame_are_reaped() {
    // A half-open peer (a few valid header bytes, then silence) must
    // not pin a connection slot forever: the idle timeout applies even
    // with unparsed bytes buffered.
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            idle_timeout: Duration::from_millis(100),
            ..WireConfig::default()
        },
    )
    .unwrap();
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // Valid magic + version, then stall: an incomplete frame forever.
    sock.write_all(b"PVHD\x01").unwrap();
    let mut chunk = [0u8; 16];
    assert_eq!(sock.read(&mut chunk).unwrap(), 0, "expected EOF");
    let report = server.shutdown();
    assert_eq!(report.idle_closed, 1);
    engine.shutdown();
}

#[test]
fn over_cap_query_dimensions_are_refused_cheaply() {
    // Admission accounts for bytes held in the engine queue: a raw
    // frame may declare up to `max_query_dim` features (one f64 per
    // dim after encoding), a packed frame — which stays packed at 1
    // bit/dim — up to 64× that.
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            max_query_dim: 2,
            ..WireConfig::default()
        },
    )
    .unwrap();
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    // DIM (256) exceeds the packed cap (64 × 2 = 128): typed fault, no
    // submission…
    let err = client
        .call_packed(&ModelId::default(), &positive_query())
        .unwrap_err();
    let WireClientError::Fault(fault) = err else {
        panic!("expected a fault, got {err}");
    };
    assert_eq!(fault.status, WireStatus::ModelError);
    assert!(
        fault.detail.contains("exceeds the server cap 128"),
        "{fault}"
    );
    // …and raw feature vectors use the dense (unmultiplied) cap.
    let err = client
        .call_raw(&ModelId::default(), &vec![0.5; 200])
        .unwrap_err();
    let WireClientError::Fault(fault) = err else {
        panic!("expected a fault, got {err}");
    };
    assert_eq!(fault.status, WireStatus::ModelError);
    assert!(fault.detail.contains("exceeds the server cap 2"), "{fault}");
    // The connection stays healthy; a packed query well beyond the raw
    // cap but within the 64× packed allowance is admitted.
    let small = BipolarHv::from_signs(&vec![1.0; 128]);
    let err = client.call_packed(&ModelId::default(), &small).unwrap_err();
    // 128 dims passes admission; the model (256-dim) then rejects it —
    // proving the request reached the engine.
    let WireClientError::Fault(fault) = err else {
        panic!("expected a fault, got {err}");
    };
    assert_eq!(fault.status, WireStatus::ModelError);
    assert!(fault.detail.contains("dimension"), "{fault}");
    let engine_report = engine.shutdown();
    assert_eq!(engine_report.submitted, 1, "only the in-cap query entered");
    server.shutdown();
}

#[test]
fn connection_cap_refuses_extras() {
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            max_connections: 2,
            ..WireConfig::default()
        },
    )
    .unwrap();
    let mut a = WireClient::connect(server.local_addr()).unwrap();
    let mut b = WireClient::connect(server.local_addr()).unwrap();
    // Force both through a round trip so the server has registered them.
    assert_eq!(
        a.call_packed(&ModelId::default(), &positive_query())
            .unwrap()
            .class,
        0
    );
    assert_eq!(
        b.call_packed(&ModelId::default(), &positive_query())
            .unwrap()
            .class,
        0
    );
    // The third connect is accepted by the OS but closed by the server.
    let mut c = TcpStream::connect(server.local_addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let mut chunk = [0u8; 16];
    assert_eq!(c.read(&mut chunk).unwrap(), 0, "expected refusal EOF");
    let report = server.shutdown();
    assert_eq!(report.refused, 1);
    assert_eq!(report.accepted, 2);
    engine.shutdown();
}

#[test]
fn stats_scrape_exposes_stage_decomposition() {
    // Serve real traffic (packed and raw, so the Encode stage runs),
    // then scrape the Stats frame and check the Prometheus text carries
    // the stage-level latency decomposition.
    let edge = privehd_serve::ClientEdge::new(
        privehd_core::EncoderConfig::new(8, DIM).with_seed(11),
        privehd_core::ObfuscateConfig::new(privehd_core::QuantScheme::Bipolar),
    )
    .unwrap();
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig::default().with_edge(ModelId::default(), edge),
    )
    .unwrap();
    let mut client = WireClient::connect(server.local_addr()).unwrap();
    for _ in 0..8 {
        client
            .call_packed(&ModelId::default(), &positive_query())
            .unwrap();
    }
    client.call_raw(&ModelId::default(), &[0.9; 8]).unwrap();

    let text = client.stats().unwrap();
    assert!(text.contains("privehd_serve_requests_total{outcome=\"completed\"} 9"));
    for stage in [
        "wire_decode",
        "admission",
        "encode",
        "queue_wait",
        "batch_wait",
        "snapshot_resolve",
        "predict",
        "wire_write",
    ] {
        let count_line = format!("privehd_serve_stage_latency_seconds_count{{stage=\"{stage}\"}}");
        let line = text
            .lines()
            .find(|l| l.starts_with(&count_line))
            .unwrap_or_else(|| panic!("no {stage} stage series in:\n{text}"));
        let n: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(n > 0, "stage {stage} has zero count:\n{text}");
    }
    assert!(text.contains("privehd_wire_frames_total{direction=\"in\"} 9"));
    assert!(text.contains("privehd_wire_stats_served_total 1"));
    // Snapshot footprint: the served ±1 model exposes both
    // representations, and the packed one is the ~64× smaller of the
    // two (the whole point of 1-bit serving).
    let memory = |repr: &str| -> u64 {
        let prefix =
            format!("privehd_serve_model_memory_bytes{{model=\"default\",repr=\"{repr}\"}}");
        text.lines()
            .find(|l| l.starts_with(&prefix))
            .unwrap_or_else(|| panic!("no {repr} memory gauge in:\n{text}"))
            .rsplit(' ')
            .next()
            .unwrap()
            .parse()
            .unwrap()
    };
    let (dense, packed) = (memory("dense"), memory("packed"));
    assert!(dense > 0 && packed > 0, "dense {dense} packed {packed}");
    assert!(
        packed * 8 < dense,
        "packed gauge {packed} not substantially below dense {dense}"
    );
    // Stats traffic is metadata: not in frames_in/responses_out. A
    // second scrape still works and sees itself counted.
    let text2 = client.stats().unwrap();
    assert!(text2.contains("privehd_wire_frames_total{direction=\"in\"} 9"));
    assert!(text2.contains("privehd_wire_stats_served_total 2"));
    // Predictions still serve after scrapes on the same connection.
    assert_eq!(
        client
            .call_packed(&ModelId::default(), &positive_query())
            .unwrap()
            .class,
        0
    );

    let report = server.shutdown();
    assert_eq!(report.stats_served, 2);
    assert_eq!(report.frames_in, 10);
    assert_eq!(report.responses_out, 10);
    engine.shutdown();
}

#[test]
fn unknown_frame_kind_answers_typed_fault() {
    // A well-formed frame with an unallocated kind byte must come back
    // as a typed BadFrame fault (id salvaged), not a dropped socket.
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    let server = WireServer::start("127.0.0.1:0", engine.handle(), WireConfig::default()).unwrap();
    let mut frame = Vec::new();
    frame.extend_from_slice(b"PVHD");
    frame.push(1); // version
    frame.push(0x7F); // unallocated kind
    frame.extend_from_slice(&21u64.to_le_bytes());
    frame.extend_from_slice(&0u32.to_le_bytes());
    let crc = privehd_serve::wire::crc32(&frame);
    frame.extend_from_slice(&crc.to_le_bytes());
    let (id, fault) = fault_from_raw(server.local_addr(), &frame);
    assert_eq!(id, 21);
    assert_eq!(fault.status, WireStatus::BadFrame);
    let report = server.shutdown();
    assert_eq!(report.decode_errors, 1);
    engine.shutdown();
}

#[test]
fn invalid_wire_configs_are_rejected() {
    let engine = ServeEngine::start(trained_registry(), ServeConfig::default()).unwrap();
    for bad in [
        WireConfig {
            max_connections: 0,
            ..WireConfig::default()
        },
        WireConfig {
            max_body_bytes: 1,
            ..WireConfig::default()
        },
        WireConfig {
            max_in_flight: 0,
            ..WireConfig::default()
        },
        WireConfig {
            max_query_dim: 0,
            ..WireConfig::default()
        },
    ] {
        assert!(matches!(
            WireServer::start("127.0.0.1:0", engine.handle(), bad),
            Err(privehd_serve::ServeError::InvalidConfig(_))
        ));
    }
    engine.shutdown();
}
