//! Frame-codec test battery: property-based roundtrips (encode ∘
//! decode = id for arbitrary valid frames) plus adversarial decodes —
//! truncation at every byte, oversized length fields, bad
//! magic/version/kind, corrupted CRC, structurally lying bodies —
//! asserting typed errors and no panics or allocation blowups.

use std::time::Duration;

use privehd_core::BipolarHv;
use privehd_serve::wire::frame::{
    Frame, FrameError, QueryPayload, RequestFrame, ResponseFrame, StatsReplyFrame,
    StatsRequestFrame, WireFault, WirePrediction, WireStatus, DEFAULT_MAX_BODY, HEADER_LEN,
};
use privehd_serve::ModelId;
use proptest::prelude::*;

fn model_id_from(bytes: Vec<u8>) -> ModelId {
    // Arbitrary printable-ish names, including empty and multi-byte.
    let name: String = bytes
        .into_iter()
        .map(|b| char::from_u32(0x20 + u32::from(b) % 0x60).unwrap())
        .collect();
    ModelId::new(name)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn packed_request_roundtrips(
        request_id in any::<u64>(),
        id_bytes in proptest::collection::vec(any::<u8>(), 0..24),
        dim in 1usize..2_048,
        seed in any::<u64>(),
    ) {
        let frame = Frame::Request(RequestFrame {
            request_id,
            model: model_id_from(id_bytes),
            payload: QueryPayload::Packed(BipolarHv::random(dim, seed)),
        });
        let bytes = frame.encode().unwrap();
        let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn raw_request_roundtrips(
        request_id in any::<u64>(),
        id_bytes in proptest::collection::vec(any::<u8>(), 0..24),
        features in proptest::collection::vec(-1.0e9f64..1.0e9, 0..640),
    ) {
        let frame = Frame::Request(RequestFrame {
            request_id,
            model: model_id_from(id_bytes),
            payload: QueryPayload::Raw(features),
        });
        let bytes = frame.encode().unwrap();
        let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(decoded, frame);
    }

    #[test]
    fn response_frames_roundtrip(
        request_id in any::<u64>(),
        class in any::<u32>(),
        score in -1.0f64..1.0,
        version in any::<u64>(),
        batch in any::<u32>(),
        latency_ns in any::<u64>(),
        status_code in 1u8..=8,
        detail_bytes in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let ok = Frame::Response(ResponseFrame {
            request_id,
            outcome: Ok(WirePrediction {
                model: ModelId::new("m"),
                class,
                score,
                model_version: version,
                batch_size: batch,
                latency: Duration::from_nanos(latency_ns),
            }),
        });
        let fault = Frame::Response(ResponseFrame {
            request_id,
            outcome: Err(WireFault::new(
                WireStatus::from_code(status_code).unwrap(),
                model_id_from(detail_bytes).as_str(),
            )),
        });
        for frame in [ok, fault] {
            let bytes = frame.encode().unwrap();
            let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn stats_frames_roundtrip(
        request_id in any::<u64>(),
        text_bytes in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        // Bytes fanned out over ASCII and multi-byte codepoints (the
        // spread stays below the surrogate range, so every value maps).
        let text: String = text_bytes
            .into_iter()
            .map(|b| char::from_u32(0x20 + u32::from(b) * 37).unwrap())
            .collect();
        let req = Frame::StatsRequest(StatsRequestFrame { request_id });
        let reply = Frame::StatsReply(StatsReplyFrame { request_id, text });
        for frame in [req, reply] {
            let bytes = frame.encode().unwrap();
            let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
            prop_assert_eq!(consumed, bytes.len());
            prop_assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn truncation_never_panics_or_misdecodes(
        dim in 1usize..512,
        seed in any::<u64>(),
        cut in 0usize..1_000,
    ) {
        let frame = Frame::Request(RequestFrame {
            request_id: 77,
            model: ModelId::new("tenant"),
            payload: QueryPayload::Packed(BipolarHv::random(dim, seed)),
        });
        let bytes = frame.encode().unwrap();
        let cut = cut.min(bytes.len().saturating_sub(1));
        // Every strict prefix decodes as "incomplete", never as a frame
        // and never as an error (the bytes so far are valid).
        prop_assert_eq!(Frame::decode(&bytes[..cut], DEFAULT_MAX_BODY).unwrap(), None);
    }

    #[test]
    fn single_byte_corruption_is_always_detected(
        dim in 1usize..256,
        seed in any::<u64>(),
        at in 0usize..10_000,
        flip in 1u8..=255,
    ) {
        let frame = Frame::Request(RequestFrame {
            request_id: 3,
            model: ModelId::new("t"),
            payload: QueryPayload::Packed(BipolarHv::random(dim, seed)),
        });
        let mut bytes = frame.encode().unwrap();
        let at = at % bytes.len();
        bytes[at] ^= flip;
        // A flipped byte must never silently decode to a *different*
        // valid frame: either a typed error, an incomplete parse (the
        // flip enlarged the declared length), or — only if the flip
        // produced another self-consistent frame, which CRC makes
        // astronomically unlikely — the identical frame.
        match Frame::decode(&bytes, DEFAULT_MAX_BODY) {
            Err(_) | Ok(None) => {}
            Ok(Some((decoded, _))) => prop_assert_eq!(decoded, frame),
        }
    }
}

/// Builds a valid packed-request frame to corrupt in the tests below.
fn valid_frame_bytes() -> Vec<u8> {
    Frame::Request(RequestFrame {
        request_id: 42,
        model: ModelId::new("tenant-a"),
        payload: QueryPayload::Packed(BipolarHv::random(192, 9)),
    })
    .encode()
    .unwrap()
}

#[test]
fn bad_magic_is_rejected_immediately() {
    let mut bytes = valid_frame_bytes();
    bytes[0] = b'X';
    assert_eq!(
        Frame::decode(&bytes, DEFAULT_MAX_BODY),
        Err(FrameError::BadMagic)
    );
    // Even before a full header arrives: garbage fails on its first
    // bytes instead of waiting for more.
    assert_eq!(
        Frame::decode(b"JUNK", DEFAULT_MAX_BODY),
        Err(FrameError::BadMagic)
    );
    assert_eq!(Frame::decode(b"PV", DEFAULT_MAX_BODY), Ok(None));
}

#[test]
fn unsupported_version_is_typed() {
    let mut bytes = valid_frame_bytes();
    bytes[4] = 99;
    assert_eq!(
        Frame::decode(&bytes, DEFAULT_MAX_BODY),
        Err(FrameError::UnsupportedVersion(99))
    );
}

#[test]
fn unknown_kind_is_typed() {
    let mut bytes = valid_frame_bytes();
    bytes[5] = 0x7F;
    assert_eq!(
        Frame::decode(&bytes, DEFAULT_MAX_BODY),
        Err(FrameError::UnknownKind(0x7F))
    );
}

#[test]
fn oversized_length_fails_fast_without_buffering() {
    // A hostile length field must be rejected from the header alone —
    // no waiting for (or allocating) 4 GiB of body.
    let mut bytes = valid_frame_bytes();
    bytes[14..18].copy_from_slice(&u32::MAX.to_le_bytes());
    let header_only = &bytes[..HEADER_LEN];
    assert_eq!(
        Frame::decode(header_only, DEFAULT_MAX_BODY),
        Err(FrameError::Oversized {
            len: u32::MAX as usize,
            max: DEFAULT_MAX_BODY,
        })
    );
}

#[test]
fn corrupted_crc_is_typed() {
    let mut bytes = valid_frame_bytes();
    let last = bytes.len() - 1;
    bytes[last] ^= 0xFF;
    assert!(matches!(
        Frame::decode(&bytes, DEFAULT_MAX_BODY),
        Err(FrameError::BadCrc { .. })
    ));
}

#[test]
fn lying_dimension_cannot_force_a_big_allocation() {
    // Recompute a valid CRC over a body whose declared dimension wildly
    // exceeds the packed words actually present: the decoder must
    // cross-check before allocating anything dimension-sized.
    let frame = Frame::Request(RequestFrame {
        request_id: 1,
        model: ModelId::new("m"),
        payload: QueryPayload::Packed(BipolarHv::random(64, 1)),
    });
    let mut bytes = frame.encode().unwrap();
    // Body layout: id_len u16 | "m" | dim u32 | words. dim sits at
    // HEADER_LEN + 2 + 1.
    let dim_at = HEADER_LEN + 3;
    bytes[dim_at..dim_at + 4].copy_from_slice(&0x0FFF_FFFFu32.to_le_bytes());
    let crc_at = bytes.len() - 4;
    let crc = privehd_serve::wire::crc32(&bytes[..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
    assert_eq!(
        Frame::decode(&bytes, DEFAULT_MAX_BODY),
        Err(FrameError::BadBody("packed words disagree with dimension"))
    );
}

#[test]
fn zero_dimension_query_is_rejected() {
    let frame = Frame::Request(RequestFrame {
        request_id: 1,
        model: ModelId::new("m"),
        payload: QueryPayload::Packed(BipolarHv::random(64, 1)),
    });
    let mut bytes = frame.encode().unwrap();
    let dim_at = HEADER_LEN + 3;
    bytes[dim_at..dim_at + 4].copy_from_slice(&0u32.to_le_bytes());
    // Drop the now-superfluous words so lengths agree, then re-CRC.
    let body_len = 2 + 1 + 4; // id_len + "m" + dim
    bytes.truncate(HEADER_LEN + body_len);
    bytes[14..18].copy_from_slice(&(body_len as u32).to_le_bytes());
    let crc = privehd_serve::wire::crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    assert_eq!(
        Frame::decode(&bytes, DEFAULT_MAX_BODY),
        Err(FrameError::BadBody("zero-dimension query"))
    );
}

#[test]
fn trailing_body_bytes_are_rejected() {
    // Append 8 extra bytes inside the body (with lengths and CRC made
    // consistent): structurally complete fields + leftovers = error.
    let frame = Frame::Response(ResponseFrame {
        request_id: 5,
        outcome: Err(WireFault::new(WireStatus::Busy, "x")),
    });
    let mut bytes = frame.encode().unwrap();
    let crc_at = bytes.len() - 4;
    bytes.truncate(crc_at);
    bytes.extend_from_slice(&[0u8; 8]);
    let new_body_len = (bytes.len() - HEADER_LEN) as u32;
    bytes[14..18].copy_from_slice(&new_body_len.to_le_bytes());
    let crc = privehd_serve::wire::crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());
    assert_eq!(
        Frame::decode(&bytes, DEFAULT_MAX_BODY),
        Err(FrameError::BadBody("trailing bytes after body fields"))
    );
}

#[test]
fn non_utf8_stats_reply_body_is_rejected() {
    let frame = Frame::StatsReply(StatsReplyFrame {
        request_id: 6,
        text: "ok".into(),
    });
    let mut bytes = frame.encode().unwrap();
    // Overwrite the body with an invalid UTF-8 sequence and re-CRC.
    bytes[HEADER_LEN] = 0xFF;
    let crc_at = bytes.len() - 4;
    let crc = privehd_serve::wire::crc32(&bytes[..crc_at]);
    bytes[crc_at..].copy_from_slice(&crc.to_le_bytes());
    assert_eq!(
        Frame::decode(&bytes, DEFAULT_MAX_BODY),
        Err(FrameError::BadBody("stats text is not UTF-8"))
    );
}

#[test]
fn error_display_is_informative() {
    for (err, needle) in [
        (FrameError::BadMagic, "magic"),
        (FrameError::UnsupportedVersion(9), "version 9"),
        (FrameError::UnknownKind(0x33), "0x33"),
        (FrameError::Oversized { len: 10, max: 5 }, "exceeds cap"),
        (
            FrameError::BadCrc {
                computed: 1,
                received: 2,
            },
            "CRC",
        ),
        (FrameError::BadBody("nope"), "nope"),
        (FrameError::BadStatus(0), "status"),
    ] {
        assert!(err.to_string().contains(needle), "{err}");
    }
}
