//! Concurrent record-vs-report consistency for the stage-level latency
//! decomposition: writer threads hammer a live engine while a reader
//! snapshots reports mid-flight, checking the invariants the
//! instrumentation order guarantees (per-stage counts never exceed the
//! end-to-end count, every snapshot is internally coherent) rather
//! than exact counts, which are unknowable mid-run.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use privehd_core::telemetry::Stage;
use privehd_core::{HdModel, Hypervector};
use privehd_serve::{ServeConfig, ServeEngine, ServeReport, ShardedRegistry};

const DIM: usize = 128;

fn trained_registry() -> Arc<ShardedRegistry> {
    let mut model = HdModel::new(2, DIM).unwrap();
    model
        .bundle(0, &Hypervector::from_vec(vec![1.0; DIM]))
        .unwrap();
    model
        .bundle(1, &Hypervector::from_vec(vec![-1.0; DIM]))
        .unwrap();
    Arc::new(ShardedRegistry::with_model(model, "stage-test").unwrap())
}

/// The engine-side stages recorded once per *served* request, whose
/// counts therefore can never exceed the end-to-end completion count.
const PER_REQUEST_ENGINE_STAGES: [Stage; 3] = [Stage::QueueWait, Stage::BatchWait, Stage::Predict];

fn assert_coherent(report: &ServeReport, where_: &str) {
    let e2e = report.completed + report.failed;
    for row in &report.stages {
        if PER_REQUEST_ENGINE_STAGES.contains(&row.stage) {
            assert!(
                row.count <= e2e,
                "{where_}: stage {} count {} exceeds end-to-end count {e2e}",
                row.stage,
                row.count
            );
        }
        if row.stage == Stage::SnapshotResolve {
            // Once per batch, and batches never outnumber completions.
            assert!(
                row.count <= report.batches,
                "{where_}: snapshot_resolve count {} exceeds batch count {}",
                row.count,
                report.batches
            );
        }
        assert!(
            row.count > 0,
            "{where_}: zero-count stage rows must be filtered from reports"
        );
        assert!(
            row.p50 <= row.p95 && row.p95 <= row.p99,
            "{where_}: stage {} quantiles out of order",
            row.stage
        );
    }
    for m in &report.per_model {
        let model_e2e = m.completed + m.failed;
        for row in &m.stages {
            if PER_REQUEST_ENGINE_STAGES.contains(&row.stage) {
                assert!(
                    row.count <= model_e2e,
                    "{where_}: model {} stage {} count {} exceeds its e2e {model_e2e}",
                    m.model,
                    row.stage,
                    row.count
                );
            }
        }
    }
}

#[test]
fn concurrent_stage_recording_never_overcounts() {
    let engine = Arc::new(
        ServeEngine::start(
            trained_registry(),
            ServeConfig {
                max_batch: 8,
                max_delay: Duration::from_micros(200),
                ..ServeConfig::default()
            },
        )
        .unwrap(),
    );
    let stop = Arc::new(AtomicBool::new(false));

    // Writers: three submitter threads driving requests to completion.
    let writers: Vec<_> = (0..3)
        .map(|w| {
            let engine = Arc::clone(&engine);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut served = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let sign = if (served + w).is_multiple_of(2) {
                        1.0
                    } else {
                        -1.0
                    };
                    let query = Hypervector::from_vec(vec![sign; DIM]);
                    if let Ok(pending) = engine.submit_default(query) {
                        pending.wait().unwrap();
                        served += 1;
                    }
                }
                served
            })
        })
        .collect();

    // Reader: snapshots the report mid-flight and checks coherence on
    // every snapshot, racing the writers' record path.
    let reader = {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut snapshots = 0u32;
            while !stop.load(Ordering::Relaxed) {
                let report = engine.metrics().report(Duration::from_secs(1));
                assert_coherent(&report, "mid-flight");
                snapshots += 1;
                std::thread::sleep(Duration::from_micros(500));
            }
            snapshots
        })
    };

    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);
    let served: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
    let snapshots = reader.join().unwrap();
    assert!(served > 0, "writers made no progress");
    assert!(snapshots > 0, "reader made no progress");

    // Quiescent: with everything drained the counts are exact — every
    // served request recorded every per-request engine stage.
    let engine = Arc::into_inner(engine).expect("all clones joined");
    let report = engine.shutdown();
    assert_coherent(&report, "final");
    assert_eq!(report.completed, served);
    for stage in PER_REQUEST_ENGINE_STAGES {
        let row = report
            .stages
            .iter()
            .find(|r| r.stage == stage)
            .unwrap_or_else(|| panic!("no {stage} row in the final report"));
        assert_eq!(
            row.count, served,
            "stage {stage} count disagrees with completions at quiescence"
        );
    }
}
