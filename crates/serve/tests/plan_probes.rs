//! The compiled-plan contract, end to end: after a model is published
//! (and a `ClientEdge` constructed), serving requests performs **zero**
//! per-call obfuscation-permutation builds and **zero** per-batch
//! kernel re-probes — every such decision happened once, at compile
//! time.
//!
//! The audit reads two process-global counters:
//! `privehd_core::obfuscate::permutation_build_count()` (bumped by every
//! `Obfuscator::new`) and `privehd_core::plan::kernel_probe_count()`
//! (bumped by every generic `HdModel` predict entry and every
//! `ModelPlan::compile`). Cargo runs every `#[test]` in one binary as
//! threads of one process, so this file holds exactly one test: nothing
//! else may build obfuscators or run predicts inside the audited window.

use std::sync::Arc;

use privehd_core::obfuscate::permutation_build_count;
use privehd_core::plan::kernel_probe_count;
use privehd_core::{
    BipolarHv, Encoder, EncoderConfig, HdModel, ObfuscateConfig, Prediction, QuantScheme,
};
use privehd_serve::{ClientEdge, ModelId, ServeConfig, ServeEngine, ShardedRegistry};

// Off a 64-bit word boundary so the masked keep-table and the popcount
// scorer both exercise tail-bit handling.
const DIM: usize = 300;
const FEATURES: usize = 6;
const MASKED: usize = 60;
const QUERIES: usize = 24;

#[test]
fn served_requests_build_no_permutations_and_probe_no_kernels() {
    // Edge side: constructing the edge builds the obfuscation
    // permutation (counted) and compiles the encode∘obfuscate plan.
    let edge = ClientEdge::new(
        EncoderConfig::new(FEATURES, DIM).with_seed(7),
        ObfuscateConfig::new(QuantScheme::Bipolar)
            .with_masked_dims(MASKED)
            .with_seed(3),
    )
    .unwrap();

    // Host side: train on the same basis and publish — publish compiles
    // the ModelPlan (one kernel probe, before the audited window).
    let mut model = HdModel::new(2, DIM).unwrap();
    for i in 0..6 {
        let t = i as f64 / 30.0;
        let a = vec![0.1 + t, 0.2, 0.15, 0.9 - t, 0.8, 0.85];
        let b = vec![0.9 - t, 0.8, 0.85, 0.1 + t, 0.2, 0.15];
        model
            .bundle(0, &edge.encoder().encode(&a).unwrap())
            .unwrap();
        model
            .bundle(1, &edge.encoder().encode(&b).unwrap())
            .unwrap();
    }
    let registry = Arc::new(ShardedRegistry::with_model(model, "plan-v1").unwrap());

    let config = ServeConfig {
        packed_fastpath: true,
        ..ServeConfig::default()
    };
    let engine = ServeEngine::start(Arc::clone(&registry), config).unwrap();
    let served_model = registry.get(&ModelId::default()).unwrap();

    // Inputs and their expected predictions, computed through the
    // generic paths BEFORE the window opens (generic predicts bump the
    // kernel-probe counter by design — that is what they cost).
    let inputs: Vec<Vec<f64>> = (0..QUERIES)
        .map(|i| {
            (0..FEATURES)
                .map(|k| ((5 * i + 3 * k) % 11) as f64 / 10.0)
                .collect()
        })
        .collect();
    let prepared: Vec<_> = inputs.iter().map(|x| edge.prepare(x).unwrap()).collect();
    let expected_dense: Vec<Prediction> = prepared
        .iter()
        .map(|q| served_model.model().predict(q).unwrap())
        .collect();
    let packed: Vec<BipolarHv> = (0..QUERIES)
        .map(|s| BipolarHv::random(DIM, 500 + s as u64))
        .collect();
    let expected_packed: Vec<Prediction> = packed
        .iter()
        .map(|q| served_model.model().predict_packed(q).unwrap())
        .collect();

    // ---- audited window opens ----
    let permutations = permutation_build_count();
    let probes = kernel_probe_count();

    for (x, want) in inputs.iter().zip(&expected_dense) {
        // Edge preparation runs the compiled EncodePlan: no permutation
        // rebuild per call.
        let q = edge.prepare(x).unwrap();
        let served = engine.predict(q).unwrap();
        assert_eq!(&served.prediction, want, "compiled plan drifted (dense)");
    }
    for (q, want) in packed.iter().zip(&expected_packed) {
        let served = engine.predict(q.clone()).unwrap();
        assert_eq!(&served.prediction, want, "compiled plan drifted (packed)");
    }

    assert_eq!(
        permutation_build_count(),
        permutations,
        "a served request rebuilt an obfuscation permutation"
    );
    assert_eq!(
        kernel_probe_count(),
        probes,
        "a served request re-probed kernel selection"
    );
    // ---- audited window closes ----

    // A republish recompiles exactly once, and the swapped-in plan
    // serves probe-free again.
    let mut model2 = HdModel::new(2, DIM).unwrap();
    model2
        .bundle(0, &edge.prepare(&inputs[0]).unwrap())
        .unwrap();
    model2
        .bundle(1, &edge.prepare(&inputs[1]).unwrap())
        .unwrap();
    registry
        .publish(&ModelId::default(), model2, "plan-v2")
        .unwrap();
    assert_eq!(
        kernel_probe_count(),
        probes + 1,
        "republish must compile (probe) exactly once"
    );
    let before = kernel_probe_count();
    engine.predict(edge.prepare(&inputs[2]).unwrap()).unwrap();
    assert_eq!(kernel_probe_count(), before, "post-swap serving re-probed");

    let report = engine.shutdown();
    assert_eq!(report.failed, 0);
}
