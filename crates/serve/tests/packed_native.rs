//! The packed-native contract, end to end: a bit-packed wire query must
//! reach the popcount predict kernel without a single dense conversion,
//! and its predictions must be identical to the dense submit path.
//!
//! The dense-conversion audit reads the process-global counter from
//! `privehd_core::hypervector::dense_conversion_count()`. Cargo runs
//! every `#[test]` in one binary as threads of one process, so this
//! file holds exactly one test: nothing else may touch `to_dense()` /
//! `from_signs()` inside the audited window.

use std::sync::Arc;

use privehd_core::hypervector::dense_conversion_count;
use privehd_core::{BipolarHv, HdModel, QuantScheme};
use privehd_serve::wire::{WireClient, WireConfig, WireServer};
use privehd_serve::{ModelId, ServeConfig, ServeEngine, ShardedRegistry};

// Off a 64-bit word boundary so the audited path also exercises
// tail-bit masking in the popcount scorer.
const DIM: usize = 300;
const CLASSES: usize = 4;
const QUERIES: usize = 32;

#[test]
fn packed_wire_round_trip_is_conversion_free_and_matches_dense() {
    // A non-trivial sign-only model: bundle a few random bipolar
    // vectors per class, then collapse to signs the way the paper's
    // bipolar class quantization does.
    let mut model = HdModel::new(CLASSES, DIM).unwrap();
    for class in 0..CLASSES {
        for round in 0..3 {
            let hv = BipolarHv::random(DIM, (class * 17 + round + 1) as u64);
            model.bundle(class, &hv.to_dense()).unwrap();
        }
    }
    model.quantize_classes(QuantScheme::Bipolar);
    let registry = Arc::new(ShardedRegistry::with_model(model, "packed-native").unwrap());

    let engine = ServeEngine::start(registry, ServeConfig::default()).unwrap();
    let server = WireServer::start("127.0.0.1:0", engine.handle(), WireConfig::default()).unwrap();
    let mut client = WireClient::connect(server.local_addr()).unwrap();

    let queries: Vec<BipolarHv> = (0..QUERIES)
        .map(|s| BipolarHv::random(DIM, 1_000 + s as u64))
        .collect();

    // Dense twins and their predictions come first — `to_dense()` is
    // exactly the call the audited window below must never see.
    let expected: Vec<usize> = queries
        .iter()
        .map(|q| engine.predict(q.to_dense()).unwrap().prediction.class)
        .collect();

    let baseline = dense_conversion_count();
    for (query, want) in queries.iter().zip(&expected) {
        let served = client.call_packed(&ModelId::default(), query).unwrap();
        assert_eq!(
            served.class as usize, *want,
            "packed/dense prediction drift"
        );
        assert!(served.score.is_finite());
    }
    assert_eq!(
        dense_conversion_count(),
        baseline,
        "the packed wire path performed a dense conversion"
    );

    drop(client);
    server.shutdown();
    let report = engine.shutdown();
    assert_eq!(report.completed, 2 * QUERIES as u64);
    assert_eq!(report.failed, 0);
}
