//! Tenant fairness under flood, end to end over the wire: a flooder
//! tenant saturating the ingress must not starve a well-behaved victim
//! tenant. The engine's per-tenant admission quotas bound how much of
//! the shared queue capacity the flooder can hold, and the
//! deficit-round-robin scheduler bounds how long a victim request can
//! wait behind flooder backlog. Also exercises the multi-reactor
//! ingress path (sharded accept, fd-hash pinning, cross-reactor
//! completion handoff) with many concurrent connections.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use privehd_core::{BipolarHv, HdModel, Hypervector};
use privehd_serve::wire::{WireClient, WireConfig, WireServer, WireStatus};
use privehd_serve::{ModelId, ServeConfig, ServeEngine, ShardedRegistry};

const DIM: usize = 256;

fn trained_model() -> HdModel {
    let mut model = HdModel::new(2, DIM).unwrap();
    model
        .bundle(0, &Hypervector::from_vec(vec![1.0; DIM]))
        .unwrap();
    model
        .bundle(1, &Hypervector::from_vec(vec![-1.0; DIM]))
        .unwrap();
    model
}

fn positive_query() -> BipolarHv {
    BipolarHv::from_signs(&vec![1.0; DIM])
}

/// p99 of a latency sample set, in nanoseconds.
fn p99_ns(samples: &mut [u128]) -> u128 {
    assert!(!samples.is_empty());
    samples.sort_unstable();
    samples[(0.99 * (samples.len() - 1) as f64).round() as usize]
}

/// Sequential closed-loop victim pass: `n` call_packed round trips,
/// returning per-request latencies. Panics on any fault — the victim
/// stays far under its own quota, so it must never see Busy.
fn victim_pass(addr: std::net::SocketAddr, victim: &ModelId, n: usize) -> Vec<u128> {
    let mut client = WireClient::connect(addr).unwrap();
    let query = positive_query();
    let mut latencies = Vec::with_capacity(n);
    for _ in 0..n {
        let start = Instant::now();
        let served = client.call_packed(victim, &query).expect("victim call");
        latencies.push(start.elapsed().as_nanos());
        assert_eq!(served.class, 0);
    }
    latencies
}

/// Two-tenant flood: eight flooder connections pipeline packed bursts
/// at one tenant while a single victim connection runs sequential
/// round trips at another. Asserts the ISSUE's fairness bounds:
/// every victim request completes (≥95% required; we get 100% because
/// the victim never exceeds its quota), victim p99 under load stays
/// within 3x of the unloaded p99 (with a floor for timer noise), and
/// the flooder provably hit Busy backpressure.
#[test]
fn wire_flood_bounds_victim_p99_and_completes() {
    let flood_id = ModelId::new("flood");
    let victim_id = ModelId::new("victim");
    let registry = Arc::new(ShardedRegistry::new());
    registry
        .publish(&flood_id, trained_model(), "flood-v1")
        .unwrap();
    registry
        .publish(&victim_id, trained_model(), "victim-v1")
        .unwrap();

    // One worker and a small per-tenant quota: the flooder can hold at
    // most `tenant_quota` slots of the shared queue, and DRR alternates
    // service between the two tenants' queues.
    let engine = ServeEngine::start(
        Arc::clone(&registry),
        ServeConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            workers: 1,
            queue_depth: 1024,
            tenant_quota: 32,
            drr_quantum: 8,
            packed_fastpath: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            reactors: 2,
            max_in_flight: 256,
            ..WireConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    // Unloaded baseline for the victim.
    let mut unloaded = victim_pass(addr, &victim_id, 50);
    let unloaded_p99 = p99_ns(&mut unloaded);

    // Flood: eight connections, each pipelining bursts without waiting
    // for responses, until told to stop. Count Busy faults.
    let stop = Arc::new(AtomicBool::new(false));
    let busy_seen = Arc::new(AtomicUsize::new(0));
    let flood_ok = Arc::new(AtomicUsize::new(0));
    let flooders: Vec<_> = (0..8)
        .map(|_| {
            let stop = Arc::clone(&stop);
            let busy_seen = Arc::clone(&busy_seen);
            let flood_ok = Arc::clone(&flood_ok);
            let flood_id = flood_id.clone();
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).unwrap();
                let query = positive_query();
                while !stop.load(Ordering::Relaxed) {
                    const BURST: usize = 32;
                    for _ in 0..BURST {
                        if client.send_packed(&flood_id, &query).is_err() {
                            return;
                        }
                    }
                    for _ in 0..BURST {
                        match client.recv() {
                            Ok(resp) => match resp.outcome {
                                Ok(_) => {
                                    flood_ok.fetch_add(1, Ordering::Relaxed);
                                }
                                Err(fault) => {
                                    assert_eq!(fault.status, WireStatus::Busy);
                                    busy_seen.fetch_add(1, Ordering::Relaxed);
                                }
                            },
                            Err(_) => return,
                        }
                    }
                }
            })
        })
        .collect();

    // Give the flood time to saturate the queue before measuring.
    let warmup = Instant::now();
    while busy_seen.load(Ordering::Relaxed) == 0 && warmup.elapsed() < Duration::from_secs(5) {
        std::thread::sleep(Duration::from_millis(5));
    }

    // Victim under load: all requests must complete (victim_pass
    // panics on any fault, so completion is 100% ≥ the 95% bar).
    let mut loaded = victim_pass(addr, &victim_id, 50);
    let loaded_p99 = p99_ns(&mut loaded);

    stop.store(true, Ordering::Relaxed);
    for f in flooders {
        f.join().unwrap();
    }

    // The flooder must have been pushed back, and some of its traffic
    // must still have been served (quota, not a blackhole).
    assert!(
        busy_seen.load(Ordering::Relaxed) > 0,
        "flooder never saw Busy — backpressure did not engage"
    );
    assert!(
        flood_ok.load(Ordering::Relaxed) > 0,
        "flooder fully starved — quota should throttle, not blackhole"
    );

    // Victim p99 bounded: ≤ 3x unloaded p99, with a 10 ms floor so the
    // assertion is about scheduling, not sub-millisecond timer noise.
    let bound = 3 * unloaded_p99.max(10_000_000);
    assert!(
        loaded_p99 <= bound,
        "victim p99 under load {loaded_p99}ns exceeds bound {bound}ns \
         (unloaded p99 {unloaded_p99}ns)"
    );

    server.shutdown();
    engine.shutdown();
}

/// Multi-reactor ingress correctness: with 3 reactors and a dozen
/// concurrent connections, every connection lands on some reactor via
/// the fd-hash handoff, every request completes with the right answer,
/// and shutdown drains cleanly (open-connection gauge back to zero).
#[test]
fn multi_reactor_ingress_serves_all_connections_and_drains() {
    let engine = ServeEngine::start(
        Arc::new(ShardedRegistry::with_model(trained_model(), "mr-v1").unwrap()),
        ServeConfig {
            max_batch: 16,
            max_delay: Duration::from_micros(100),
            packed_fastpath: true,
            ..ServeConfig::default()
        },
    )
    .unwrap();
    let server = WireServer::start(
        "127.0.0.1:0",
        engine.handle(),
        WireConfig {
            reactors: 3,
            ..WireConfig::default()
        },
    )
    .unwrap();
    let addr = server.local_addr();

    const CONNS: usize = 12;
    const PER_CONN: usize = 20;
    let workers: Vec<_> = (0..CONNS)
        .map(|_| {
            std::thread::spawn(move || {
                let mut client = WireClient::connect(addr).unwrap();
                let query = positive_query();
                for _ in 0..PER_CONN {
                    let served = client.call_packed(&ModelId::default(), &query).unwrap();
                    assert_eq!(served.class, 0);
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }

    let report = server.shutdown();
    assert_eq!(report.accepted, CONNS as u64);
    assert_eq!(report.open, 0, "all connections must be released on drain");
    assert!(report.responses_out >= (CONNS * PER_CONN) as u64);
    engine.shutdown();
}
