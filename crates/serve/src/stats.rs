//! Prometheus text-format rendering of the serving and transport
//! metrics: the body of the wire protocol's `Stats` reply frame.
//!
//! One function, [`prometheus_text`], merges a [`ServeReport`], an
//! optional [`WireReport`], and the slow-request trace ring into the
//! Prometheus exposition text format (version 0.0.4): `# HELP` /
//! `# TYPE` comments, counters with label sets, and summaries with
//! `quantile` labels plus `_count`/`_sum` series. Trace-ring events are
//! appended as `# slowtrace` comment lines — they are per-event, not
//! aggregates, so they ride along as comments any Prometheus scraper
//! ignores but a human (or `perfsuite`) can read.
//!
//! The schema is documented in `docs/OBSERVABILITY.md`. Two deliberate
//! bounds keep one scrape under the client's 1 MiB frame cap: per-model
//! rows expose counts and the p50 only (the full quantile spread stays
//! global and per-stage), and per-model-per-stage series are not
//! exposed at all.

use privehd_core::telemetry::SpanEvent;

use crate::metrics::{ServeReport, StageReport};
use crate::wire::WireReport;

/// Escapes a Prometheus label value: backslash, double quote, and
/// newline must be backslash-escaped inside the quoted value.
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            other => out.push(other),
        }
    }
    out
}

/// Seconds with enough precision for ns-scale latencies.
fn secs(d: std::time::Duration) -> String {
    format!("{:.9}", d.as_secs_f64())
}

fn push_stage_summary(out: &mut String, name: &str, stage: &StageReport) {
    let label = stage.stage.as_str();
    for (q, v) in [("0.5", stage.p50), ("0.95", stage.p95), ("0.99", stage.p99)] {
        out.push_str(&format!(
            "{name}{{stage=\"{label}\",quantile=\"{q}\"}} {}\n",
            secs(v)
        ));
    }
    out.push_str(&format!(
        "{name}_count{{stage=\"{label}\"}} {}\n",
        stage.count
    ));
    // The summary sum is reconstructed from the mean; when the
    // underlying nanosecond sum saturated this is a lower bound, and
    // the companion saturation gauge says so.
    let sum = stage.mean * u32::try_from(stage.count.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
    out.push_str(&format!("{name}_sum{{stage=\"{label}\"}} {}\n", secs(sum)));
}

/// Renders the merged metrics as Prometheus exposition text.
///
/// `serve` is the engine's report; `wire` adds the transport counters
/// when a [`crate::wire::WireServer`] fronts the engine; `trace` is the
/// slow/sampled span ring (typically
/// [`privehd_core::telemetry::Tracer::snapshot`]), appended as
/// `# slowtrace` comment lines.
pub fn prometheus_text(
    serve: &ServeReport,
    wire: Option<&WireReport>,
    trace: &[SpanEvent],
) -> String {
    let mut out = String::with_capacity(4096);

    out.push_str("# HELP privehd_serve_requests_total Requests by outcome.\n");
    out.push_str("# TYPE privehd_serve_requests_total counter\n");
    for (outcome, v) in [
        ("submitted", serve.submitted),
        ("rejected", serve.rejected),
        ("completed", serve.completed),
        ("failed", serve.failed),
    ] {
        out.push_str(&format!(
            "privehd_serve_requests_total{{outcome=\"{outcome}\"}} {v}\n"
        ));
    }

    out.push_str("# HELP privehd_serve_batches_total Batches dispatched to the worker pool.\n");
    out.push_str("# TYPE privehd_serve_batches_total counter\n");
    out.push_str(&format!("privehd_serve_batches_total {}\n", serve.batches));
    out.push_str("# TYPE privehd_serve_batch_size_mean gauge\n");
    out.push_str(&format!(
        "privehd_serve_batch_size_mean {:.3}\n",
        serve.mean_batch_size
    ));
    out.push_str("# TYPE privehd_serve_throughput_qps gauge\n");
    out.push_str(&format!(
        "privehd_serve_throughput_qps {:.3}\n",
        serve.throughput_qps
    ));

    out.push_str(
        "# HELP privehd_serve_latency_seconds End-to-end request latency \
         (quantiles are conservative upper bucket edges).\n",
    );
    out.push_str("# TYPE privehd_serve_latency_seconds summary\n");
    for (q, v) in [
        ("0.5", serve.p50_latency),
        ("0.95", serve.p95_latency),
        ("0.99", serve.p99_latency),
    ] {
        out.push_str(&format!(
            "privehd_serve_latency_seconds{{quantile=\"{q}\"}} {}\n",
            secs(v)
        ));
    }
    let done = serve.completed + serve.failed;
    out.push_str(&format!("privehd_serve_latency_seconds_count {done}\n"));
    let sum = serve.mean_latency * u32::try_from(done.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
    out.push_str(&format!(
        "privehd_serve_latency_seconds_sum {}\n",
        secs(sum)
    ));
    out.push_str(
        "# HELP privehd_serve_latency_sum_saturated 1 once the latency \
         nanosecond sum saturated (means are lower bounds).\n",
    );
    out.push_str("# TYPE privehd_serve_latency_sum_saturated gauge\n");
    out.push_str(&format!(
        "privehd_serve_latency_sum_saturated {}\n",
        u8::from(serve.latency_sum_saturated)
    ));

    out.push_str(
        "# HELP privehd_serve_stage_latency_seconds Per-stage latency \
         decomposition of the request path (see docs/OBSERVABILITY.md).\n",
    );
    out.push_str("# TYPE privehd_serve_stage_latency_seconds summary\n");
    for stage in &serve.stages {
        push_stage_summary(&mut out, "privehd_serve_stage_latency_seconds", stage);
    }

    out.push_str("# HELP privehd_serve_model_requests_total Per-model requests by outcome.\n");
    out.push_str("# TYPE privehd_serve_model_requests_total counter\n");
    out.push_str("# TYPE privehd_serve_model_latency_p50_seconds gauge\n");
    out.push_str(
        "# HELP privehd_serve_model_memory_bytes Served snapshot footprint by \
         representation: the dense f64 class matrix vs the bit-packed popcount \
         matrix (0 until the model serves a batch, or when its rows have no \
         exact packed form).\n",
    );
    out.push_str("# TYPE privehd_serve_model_memory_bytes gauge\n");
    for m in &serve.per_model {
        let model = escape_label(m.model.as_str());
        for (outcome, v) in [
            ("submitted", m.submitted),
            ("completed", m.completed),
            ("failed", m.failed),
        ] {
            out.push_str(&format!(
                "privehd_serve_model_requests_total{{model=\"{model}\",outcome=\"{outcome}\"}} {v}\n"
            ));
        }
        out.push_str(&format!(
            "privehd_serve_model_latency_p50_seconds{{model=\"{model}\"}} {}\n",
            secs(m.p50_latency)
        ));
        for (repr, v) in [
            ("dense", m.memory_dense_bytes),
            ("packed", m.memory_packed_bytes),
        ] {
            out.push_str(&format!(
                "privehd_serve_model_memory_bytes{{model=\"{model}\",repr=\"{repr}\"}} {v}\n"
            ));
        }
    }

    if let Some(w) = wire {
        out.push_str("# HELP privehd_wire_connections_total Connections by event.\n");
        out.push_str("# TYPE privehd_wire_connections_total counter\n");
        for (event, v) in [
            ("accepted", w.accepted),
            ("refused", w.refused),
            ("idle_closed", w.idle_closed),
        ] {
            out.push_str(&format!(
                "privehd_wire_connections_total{{event=\"{event}\"}} {v}\n"
            ));
        }
        out.push_str("# TYPE privehd_wire_open_connections gauge\n");
        out.push_str(&format!("privehd_wire_open_connections {}\n", w.open));
        out.push_str("# HELP privehd_wire_frames_total Frames by direction.\n");
        out.push_str("# TYPE privehd_wire_frames_total counter\n");
        out.push_str(&format!(
            "privehd_wire_frames_total{{direction=\"in\"}} {}\n",
            w.frames_in
        ));
        out.push_str(&format!(
            "privehd_wire_frames_total{{direction=\"out\"}} {}\n",
            w.responses_out
        ));
        for (name, v) in [
            ("privehd_wire_decode_errors_total", w.decode_errors),
            ("privehd_wire_busy_rejections_total", w.busy_rejections),
            ("privehd_wire_stats_served_total", w.stats_served),
        ] {
            out.push_str(&format!("# TYPE {name} counter\n{name} {v}\n"));
        }
    }

    if !trace.is_empty() {
        out.push_str(
            "# slowtrace: sampled/slow span ring, newest-wins; fields are \
             ns since the tracer epoch.\n",
        );
        for e in trace {
            out.push_str(&format!(
                "# slowtrace trace={} stage={} start_ns={} end_ns={} dur_ns={} slow={}\n",
                e.trace,
                e.stage,
                e.start_ns,
                e.end_ns,
                e.end_ns.saturating_sub(e.start_ns),
                e.slow
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use std::time::Duration;

    use privehd_core::telemetry::{Stage, TraceId};

    use super::*;
    use crate::metrics::ServeMetrics;
    use crate::registry::ModelId;

    fn sample_report() -> ServeReport {
        let m = ServeMetrics::new();
        let id = ModelId::new("tenant \"a\"\\x");
        for _ in 0..4 {
            m.on_submit(&id);
        }
        m.on_batch(4);
        let row = m.model_counters(&id);
        for _ in 0..3 {
            m.on_done(&row, true, Duration::from_micros(120));
        }
        m.on_done(&row, false, Duration::from_micros(900));
        m.on_stage_for(&row, Stage::QueueWait, Duration::from_micros(40));
        m.on_stage_for(&row, Stage::Predict, Duration::from_micros(70));
        m.set_model_memory(&row, 80_000, 1_250);
        m.report(Duration::from_secs(2))
    }

    #[test]
    fn renders_counters_summaries_and_stages() {
        let text = prometheus_text(&sample_report(), None, &[]);
        assert!(text.contains("privehd_serve_requests_total{outcome=\"submitted\"} 4"));
        assert!(text.contains("privehd_serve_requests_total{outcome=\"failed\"} 1"));
        assert!(text.contains("privehd_serve_latency_seconds{quantile=\"0.5\"}"));
        assert!(text.contains("privehd_serve_latency_seconds_count 4"));
        assert!(text.contains(
            "privehd_serve_stage_latency_seconds{stage=\"queue_wait\",quantile=\"0.5\"}"
        ));
        assert!(text.contains("privehd_serve_stage_latency_seconds_count{stage=\"predict\"} 1"));
        assert!(text.contains("privehd_serve_latency_sum_saturated 0"));
        // Snapshot footprint gauges: one line per representation.
        assert!(text.contains(",repr=\"dense\"} 80000"), "{text}");
        assert!(text.contains(",repr=\"packed\"} 1250"), "{text}");
        // No wire section without a wire report.
        assert!(!text.contains("privehd_wire_"));
        // Every non-comment line is `name{labels} value` or `name value`
        // with a parseable float — the shape a Prometheus scraper needs.
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            let (_, value) = line.rsplit_once(' ').expect("metric line has a value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("bad value in {line:?}"));
        }
    }

    #[test]
    fn escapes_label_values() {
        let text = prometheus_text(&sample_report(), None, &[]);
        // The model id `tenant "a"\x` must appear quote- and
        // backslash-escaped.
        assert!(
            text.contains("model=\"tenant \\\"a\\\"\\\\x\""),
            "unescaped label in:\n{text}"
        );
        assert_eq!(escape_label("a\nb"), "a\\nb");
    }

    #[test]
    fn wire_and_trace_sections_render() {
        let wire = WireReport {
            accepted: 3,
            refused: 0,
            open: 1,
            frames_in: 10,
            responses_out: 9,
            decode_errors: 1,
            busy_rejections: 2,
            idle_closed: 0,
            stats_served: 1,
        };
        let trace = vec![SpanEvent {
            trace: TraceId(7),
            stage: Stage::Predict,
            start_ns: 100,
            end_ns: 350,
            slow: true,
        }];
        let text = prometheus_text(&sample_report(), Some(&wire), &trace);
        assert!(text.contains("privehd_wire_frames_total{direction=\"in\"} 10"));
        assert!(text.contains("privehd_wire_stats_served_total 1"));
        assert!(
            text.contains(
                "# slowtrace trace=7 stage=predict start_ns=100 end_ns=350 dur_ns=250 slow=true"
            ),
            "{text}"
        );
    }
}
