//! Serving metrics: throughput, latency quantiles, batch-size
//! distribution.
//!
//! Recording happens on worker threads, so every counter is atomic and
//! the latency histogram uses fixed buckets of atomic counters — no
//! locks on the hot path. Quantiles are read back as the lower edge of
//! the bucket containing the requested rank, which is exact enough for
//! p50/p95/p99 reporting at the ~20% bucket granularity used here.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of latency buckets; the last bucket is the overflow
/// catch-all. 96 buckets at 1.2× growth from 1 µs span up to ~33 s, so
/// even deeply backed-up queues report honest tail quantiles.
const LATENCY_BUCKETS: usize = 96;
/// Lower edge of bucket 0 in nanoseconds (1 µs).
const LATENCY_BASE_NS: f64 = 1_000.0;
/// Geometric growth factor between bucket edges (~20%).
const LATENCY_GROWTH: f64 = 1.2;

/// Batch-size buckets: exact counts up to the bucket count, overflow in
/// the last (sizes are small integers, linear buckets fit them exactly).
const BATCH_BUCKETS: usize = 512;

/// Fixed-bucket latency histogram with atomic counters.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..LATENCY_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    fn bucket_for(ns: u64) -> usize {
        if (ns as f64) < LATENCY_BASE_NS {
            return 0;
        }
        let idx = ((ns as f64 / LATENCY_BASE_NS).ln() / LATENCY_GROWTH.ln()).floor() as usize;
        idx.min(LATENCY_BUCKETS - 1)
    }

    /// Lower edge of bucket `idx`, in nanoseconds.
    fn bucket_edge_ns(idx: usize) -> f64 {
        LATENCY_BASE_NS * LATENCY_GROWTH.powi(idx as i32)
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        self.buckets[Self::bucket_for(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero when empty.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / n)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the lower edge of the bucket
    /// holding that rank; zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                return Duration::from_nanos(Self::bucket_edge_ns(idx) as u64);
            }
        }
        Duration::from_nanos(Self::bucket_edge_ns(LATENCY_BUCKETS - 1) as u64)
    }
}

/// Live serving counters, shared between engine threads and callers.
#[derive(Debug, Default)]
pub struct ServeMetrics {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    batch_sizes: BatchSizeHistogram,
    latency: LatencyHistogram,
}

/// Linear histogram of dispatched batch sizes.
#[derive(Debug)]
pub struct BatchSizeHistogram {
    buckets: Vec<AtomicU64>,
}

impl Default for BatchSizeHistogram {
    fn default() -> Self {
        Self {
            buckets: (0..BATCH_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl BatchSizeHistogram {
    fn record(&self, size: usize) {
        self.buckets[size.min(BATCH_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// `(size, count)` pairs for every non-empty bucket.
    pub fn nonzero(&self) -> Vec<(usize, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(size, c)| {
                let n = c.load(Ordering::Relaxed);
                (n > 0).then_some((size, n))
            })
            .collect()
    }
}

impl ServeMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn on_submit(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_reject(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_batch(&self, size: usize) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries
            .fetch_add(size as u64, Ordering::Relaxed);
        self.batch_sizes.record(size);
    }

    pub(crate) fn on_done(&self, ok: bool, latency: Duration) {
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            self.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
    }

    /// The latency histogram (queue + execution time per request).
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// The batch-size distribution.
    pub fn batch_sizes(&self) -> &BatchSizeHistogram {
        &self.batch_sizes
    }

    /// Snapshot of every counter plus derived rates, over `elapsed` of
    /// wall-clock serving time.
    pub fn report(&self, elapsed: Duration) -> ServeReport {
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_queries.load(Ordering::Relaxed);
        ServeReport {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            throughput_qps: if elapsed.is_zero() {
                0.0
            } else {
                completed as f64 / elapsed.as_secs_f64()
            },
            mean_latency: self.latency.mean(),
            p50_latency: self.latency.quantile(0.50),
            p95_latency: self.latency.quantile(0.95),
            p99_latency: self.latency.quantile(0.99),
            batch_size_histogram: self.batch_sizes.nonzero(),
        }
    }
}

/// Point-in-time summary of serving behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests shed because the queue was full.
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Mean dispatched batch size.
    pub mean_batch_size: f64,
    /// Completed queries per second of wall-clock time.
    pub throughput_qps: f64,
    /// Mean end-to-end request latency.
    pub mean_latency: Duration,
    /// Median end-to-end request latency.
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end request latency.
    pub p95_latency: Duration,
    /// 99th-percentile end-to-end request latency.
    pub p99_latency: Duration,
    /// `(batch size, batches dispatched)` for every observed size.
    pub batch_size_histogram: Vec<(usize, u64)>,
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "served {}/{} requests ({} rejected, {} failed) in {} batches (mean size {:.1})",
            self.completed,
            self.submitted,
            self.rejected,
            self.failed,
            self.batches,
            self.mean_batch_size
        )?;
        writeln!(f, "throughput: {:.0} queries/s", self.throughput_qps)?;
        write!(
            f,
            "latency: mean {:?}  p50 {:?}  p95 {:?}  p99 {:?}",
            self.mean_latency, self.p50_latency, self.p95_latency, self.p99_latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn quantiles_are_ordered_and_bracket_the_data() {
        let h = LatencyHistogram::new();
        for us in 1..=1_000u64 {
            h.record(Duration::from_micros(us));
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        // Bucket edges are within one growth factor below the true value.
        assert!(p50 >= Duration::from_micros(350) && p50 <= Duration::from_micros(520));
        assert!(p99 >= Duration::from_micros(700));
        assert!(h.mean() >= Duration::from_micros(400));
    }

    #[test]
    fn overflow_observations_land_in_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(3_600));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > Duration::from_millis(1));
    }

    #[test]
    fn report_derives_rates() {
        let m = ServeMetrics::new();
        for _ in 0..10 {
            m.on_submit();
        }
        m.on_reject();
        m.on_batch(4);
        m.on_batch(6);
        for _ in 0..10 {
            m.on_done(true, Duration::from_micros(100));
        }
        let r = m.report(Duration::from_secs(2));
        assert_eq!(r.submitted, 10);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.completed, 10);
        assert_eq!(r.batches, 2);
        assert!((r.mean_batch_size - 5.0).abs() < 1e-12);
        assert!((r.throughput_qps - 5.0).abs() < 1e-12);
        assert_eq!(r.batch_size_histogram, vec![(4, 1), (6, 1)]);
        let text = r.to_string();
        assert!(text.contains("throughput"), "{text}");
    }
}
