//! Serving metrics: throughput, latency quantiles, batch-size
//! distribution — global and per model.
//!
//! Recording happens on worker threads, so every counter is atomic and
//! the latency histogram uses fixed buckets of atomic counters — no
//! locks on the hot path (the per-model table takes a brief read lock
//! to find a model's counters, and a write lock only the first time a
//! model is seen). Quantiles are read back as the *upper* edge of the
//! bucket containing the requested rank — a conservative bound that is
//! never below the true quantile — which is exact enough for
//! p50/p95/p99 reporting at the ~20% bucket granularity used here.
//!
//! Besides the end-to-end latency histogram, the metrics keep one
//! histogram per pipeline [`Stage`] (globally and per model), fed by
//! the engine's workers and the wire server's poll thread; see
//! `docs/OBSERVABILITY.md` for the stage taxonomy.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use privehd_core::telemetry::Stage;

use crate::registry::ModelId;

/// Number of latency buckets; the last bucket is the overflow
/// catch-all. 96 buckets at 1.2× growth from 1 µs span up to ~33 s, so
/// even deeply backed-up queues report honest tail quantiles.
const LATENCY_BUCKETS: usize = 96;
/// Lower edge of bucket 0 in nanoseconds (1 µs).
const LATENCY_BASE_NS: f64 = 1_000.0;
/// Geometric growth factor between bucket edges (~20%).
const LATENCY_GROWTH: f64 = 1.2;

/// Batch-size buckets: exact counts below the last bucket, which is the
/// `≥ BATCH_BUCKETS − 1` overflow (sizes are small integers, linear
/// buckets fit them exactly).
const BATCH_BUCKETS: usize = 512;

/// The shared integer bucket-edge table: `edges[i]` is the lower edge
/// of bucket `i` in nanoseconds. Both the write path
/// ([`LatencyHistogram::record`]) and the read path
/// ([`LatencyHistogram::quantile`]) index into this one table, so an
/// edge-exact sample always lands in the bucket whose reported lower
/// edge equals the sample — the former `ln()`-index / `powi()`-edge
/// pair could disagree by one bucket at edge values due to float
/// roundoff.
fn latency_edges() -> &'static [u64; LATENCY_BUCKETS] {
    static EDGES: OnceLock<[u64; LATENCY_BUCKETS]> = OnceLock::new();
    EDGES.get_or_init(|| {
        let mut edges = [0u64; LATENCY_BUCKETS];
        let mut edge = LATENCY_BASE_NS;
        for e in &mut edges {
            *e = edge.round() as u64;
            edge *= LATENCY_GROWTH;
        }
        edges
    })
}

/// Fixed-bucket latency histogram with atomic counters.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    /// Set once `sum_ns` would have wrapped `u64`; from then on the sum
    /// is pinned at `u64::MAX` and [`LatencyHistogram::mean`] is a
    /// lower bound. Without this, ~days of sustained ms-scale latencies
    /// silently wrapped the sum and corrupted the mean.
    sum_saturated: AtomicBool,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: (0..LATENCY_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            sum_saturated: AtomicBool::new(false),
        }
    }

    /// Bucket `i` covers `[edges[i], edges[i+1])`; samples below
    /// `edges[0]` share bucket 0, samples at or above the last edge
    /// share the overflow bucket.
    fn bucket_for(ns: u64) -> usize {
        latency_edges()
            .partition_point(|&edge| edge <= ns)
            .saturating_sub(1)
    }

    /// Lower edge of bucket `idx`, in nanoseconds — same table as
    /// [`LatencyHistogram::bucket_for`].
    fn bucket_edge_ns(idx: usize) -> u64 {
        latency_edges()[idx]
    }

    /// Records one observation.
    pub fn record(&self, latency: Duration) {
        let ns = latency.as_nanos().min(u128::from(u64::MAX)) as u64;
        // Relaxed throughout this histogram: independent statistics
        // counters; readers tolerate momentarily inconsistent cells.
        self.buckets[Self::bucket_for(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // Saturating accumulation: a wrapped sum would silently corrupt
        // the mean after ~days of sustained ms-scale traffic. The
        // fetch_add itself may wrap once; detecting it via the previous
        // value pins the sum at MAX and raises the flag, so the mean
        // degrades to an explicit lower bound instead of garbage.
        let prev = self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        if prev.checked_add(ns).is_none() {
            // Relaxed: the saturation pin and flag are advisory
            // statistics; no ordering with other memory is needed.
            self.sum_ns.store(u64::MAX, Ordering::Relaxed);
            self.sum_saturated.store(true, Ordering::Relaxed);
        }
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        // Relaxed: statistics read; tolerates in-flight updates.
        self.count.load(Ordering::Relaxed)
    }

    /// True once the nanosecond sum saturated; from then on
    /// [`LatencyHistogram::mean`] is a lower bound, not an exact mean.
    pub fn sum_saturated(&self) -> bool {
        // Relaxed: statistics read; tolerates in-flight updates.
        self.sum_saturated.load(Ordering::Relaxed)
    }

    /// Mean latency, or zero when empty. A lower bound once
    /// [`LatencyHistogram::sum_saturated`] is set.
    pub fn mean(&self) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        // Relaxed: statistics read; tolerates in-flight updates.
        Duration::from_nanos(self.sum_ns.load(Ordering::Relaxed) / n)
    }

    /// The `q`-quantile (`0.0..=1.0`) as the *upper* edge of the bucket
    /// holding that rank — a conservative bound: the reported value is
    /// never below the true quantile (the lower edge, reported before,
    /// under-reported by up to one bucket width, ~20% here). The
    /// overflow bucket has no upper edge; its lower edge is reported,
    /// making the top bucket the one place the bound can be exceeded.
    /// Zero when empty.
    pub fn quantile(&self, q: f64) -> Duration {
        let n = self.count();
        if n == 0 {
            return Duration::ZERO;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, bucket) in self.buckets.iter().enumerate() {
            // Relaxed: statistics read; a racing record() shifts the
            // quantile by at most one observation.
            seen += bucket.load(Ordering::Relaxed);
            if seen >= rank {
                // Upper edge of bucket `idx`; the overflow bucket keeps
                // its lower edge (it is unbounded above).
                let edge = (idx + 1).min(LATENCY_BUCKETS - 1);
                return Duration::from_nanos(Self::bucket_edge_ns(edge));
            }
        }
        Duration::from_nanos(Self::bucket_edge_ns(LATENCY_BUCKETS - 1))
    }
}

/// One entry of the batch-size distribution.
///
/// Sizes up to the histogram's resolution are reported exactly; larger
/// batches share one overflow bucket reported as [`BatchSizeBucket::AtLeast`]
/// — formerly they were indistinguishable from a literal size-511
/// batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum BatchSizeBucket {
    /// Batches of exactly this size.
    Exact(usize),
    /// The overflow bucket: batches of this size *or larger*.
    AtLeast(usize),
}

impl BatchSizeBucket {
    /// The bucket's size (exact, or the overflow threshold).
    pub fn size(&self) -> usize {
        match *self {
            BatchSizeBucket::Exact(n) | BatchSizeBucket::AtLeast(n) => n,
        }
    }

    /// True for the saturating overflow bucket.
    pub fn is_saturated(&self) -> bool {
        matches!(self, BatchSizeBucket::AtLeast(_))
    }
}

impl std::fmt::Display for BatchSizeBucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            BatchSizeBucket::Exact(n) => write!(f, "{n}"),
            BatchSizeBucket::AtLeast(n) => write!(f, "≥{n}"),
        }
    }
}

/// Linear histogram of dispatched batch sizes.
#[derive(Debug)]
pub struct BatchSizeHistogram {
    buckets: Vec<AtomicU64>,
}

impl Default for BatchSizeHistogram {
    fn default() -> Self {
        Self {
            buckets: (0..BATCH_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

impl BatchSizeHistogram {
    fn record(&self, size: usize) {
        // Relaxed: independent statistics counter.
        self.buckets[size.min(BATCH_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
    }

    /// `(bucket, count)` pairs for every non-empty bucket; the last
    /// bucket is [`BatchSizeBucket::AtLeast`] because it also absorbs
    /// every size past the end of the table.
    pub fn nonzero(&self) -> Vec<(BatchSizeBucket, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(size, c)| {
                // Relaxed: statistics read; tolerates racing records.
                let n = c.load(Ordering::Relaxed);
                let bucket = if size == BATCH_BUCKETS - 1 {
                    BatchSizeBucket::AtLeast(size)
                } else {
                    BatchSizeBucket::Exact(size)
                };
                (n > 0).then_some((bucket, n))
            })
            .collect()
    }
}

/// Cap on distinct per-model rows. Client-supplied [`ModelId`]s enter
/// the table on first submission — before any registry lookup — so a
/// client spraying unique (typoed, hostile) ids would otherwise grow
/// the table and every report without bound. Ids past the cap share
/// the [`MODEL_OVERFLOW_NAME`] row.
const MAX_MODEL_ROWS: usize = 1_024;

/// Reserved row name aggregating every id beyond [`MAX_MODEL_ROWS`]
/// (`~` sorts after ASCII letters, so the row lists last). The name is
/// reserved outright: a client-supplied id spelled `"~other"` records
/// into this shared row too, so it can never mint — or alias — a
/// regular table row.
const MODEL_OVERFLOW_NAME: &str = "~other";

/// One latency histogram per pipeline [`Stage`] (indexed by
/// [`Stage::index`]). [`Stage::EndToEnd`] deliberately has no slot —
/// the end-to-end histogram already exists as
/// [`ServeMetrics::latency`] / the per-model latency row.
#[derive(Debug)]
pub(crate) struct StageSet {
    histograms: Vec<LatencyHistogram>,
}

impl Default for StageSet {
    fn default() -> Self {
        Self {
            histograms: (0..Stage::COUNT).map(|_| LatencyHistogram::new()).collect(),
        }
    }
}

impl StageSet {
    fn get(&self, stage: Stage) -> &LatencyHistogram {
        &self.histograms[stage.index()]
    }

    /// One [`StageReport`] per stage that recorded at least once, in
    /// request-path order ([`Stage::ALL`]). `EndToEnd` never appears
    /// (it has no histogram here).
    fn report(&self) -> Vec<StageReport> {
        Stage::ALL
            .iter()
            .filter(|s| **s != Stage::EndToEnd)
            .filter_map(|&stage| {
                let h = self.get(stage);
                let count = h.count();
                (count > 0).then(|| StageReport {
                    stage,
                    count,
                    mean: h.mean(),
                    p50: h.quantile(0.50),
                    p95: h.quantile(0.95),
                    p99: h.quantile(0.99),
                    sum_saturated: h.sum_saturated(),
                })
            })
            .collect()
    }
}

/// Per-model counters: one row of the multi-tenant metrics table.
#[derive(Debug, Default)]
pub(crate) struct ModelCounters {
    submitted: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    latency: LatencyHistogram,
    stages: StageSet,
    /// Snapshot footprint gauges, refreshed by workers at batch
    /// dispatch: bytes held by the dense `ClassMatrix` and by the
    /// bit-packed `PackedClassMatrix` (0 while the model has no exactly
    /// packable representation). Gauges, not counters — each batch
    /// overwrites them with the currently served snapshot's sizes.
    memory_dense_bytes: AtomicU64,
    memory_packed_bytes: AtomicU64,
}

/// Live serving counters, shared between engine threads and callers.
#[derive(Debug)]
pub struct ServeMetrics {
    started: Instant,
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    failed: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    batch_sizes: BatchSizeHistogram,
    latency: LatencyHistogram,
    stages: StageSet,
    per_model: RwLock<HashMap<ModelId, Arc<ModelCounters>>>,
    /// The `~other` row, kept out of `per_model` (the name is reserved:
    /// a client id spelled `"~other"` also lands here rather than
    /// minting a table row), so past-cap ids resolve lock-free instead
    /// of hitting the write lock per submission.
    overflow_row: OnceLock<Arc<ModelCounters>>,
    /// The [`ModelId::DEFAULT_NAME`] row, kept out of `per_model` like
    /// the overflow row: the legacy single-model path records per
    /// request and never pays the `per_model` lock for the id it always
    /// uses — and the row cannot be displaced into `~other` by an id
    /// spray that fills the table before default traffic arrives.
    default_row: OnceLock<Arc<ModelCounters>>,
}

impl Default for ServeMetrics {
    fn default() -> Self {
        Self {
            started: Instant::now(),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            batch_sizes: BatchSizeHistogram::default(),
            latency: LatencyHistogram::new(),
            stages: StageSet::default(),
            per_model: RwLock::new(HashMap::new()),
            overflow_row: OnceLock::new(),
            default_row: OnceLock::new(),
        }
    }
}

impl ServeMetrics {
    /// Creates zeroed metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Wall-clock time since these metrics were created (the engine's
    /// start). The wire-side stats exposition derives its throughput
    /// window from this.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// The counters row for `model`, created on first sight — or the
    /// shared overflow row once [`MAX_MODEL_ROWS`] distinct ids exist
    /// (and for the reserved `"~other"` id itself). The default id has
    /// its own reserved lock-free row, exempt from the cap. Callers
    /// serving a whole batch fetch the row once and record through it,
    /// instead of paying the table lookup per request.
    pub(crate) fn model_counters(&self, model: &ModelId) -> Arc<ModelCounters> {
        if model.as_str() == ModelId::DEFAULT_NAME {
            return Arc::clone(self.default_row.get_or_init(Default::default));
        }
        if model.as_str() == MODEL_OVERFLOW_NAME {
            return Arc::clone(self.overflow_row.get_or_init(Default::default));
        }
        {
            let table = self.per_model.read().expect("metrics lock poisoned");
            if let Some(c) = table.get(model) {
                return Arc::clone(c);
            }
            // At the cap, unseen ids share the overflow row without
            // ever taking the write lock again.
            if table.len() >= MAX_MODEL_ROWS {
                return Arc::clone(self.overflow_row.get_or_init(Default::default));
            }
        }
        let mut table = self.per_model.write().expect("metrics lock poisoned");
        if table.len() >= MAX_MODEL_ROWS && !table.contains_key(model) {
            return Arc::clone(self.overflow_row.get_or_init(Default::default));
        }
        Arc::clone(table.entry(model.clone()).or_default())
    }

    pub(crate) fn on_submit(&self, model: &ModelId) {
        // Relaxed throughout these hooks: independent statistics
        // counters; report() reads them without cross-counter ordering
        // guarantees (see the comment there on read order).
        self.submitted.fetch_add(1, Ordering::Relaxed);
        self.model_counters(model)
            .submitted
            .fetch_add(1, Ordering::Relaxed); // Relaxed: as above.
    }

    pub(crate) fn on_reject(&self) {
        // Relaxed: independent statistics counter.
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_batch(&self, size: usize) {
        // Relaxed: independent statistics counters.
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries
            .fetch_add(size as u64, Ordering::Relaxed);
        self.batch_sizes.record(size);
    }

    /// Records one finished request against a pre-fetched per-model row
    /// (see [`ServeMetrics::model_counters`]).
    pub(crate) fn on_done(&self, counters: &ModelCounters, ok: bool, latency: Duration) {
        // Relaxed: independent statistics counters.
        if ok {
            self.completed.fetch_add(1, Ordering::Relaxed);
            counters.completed.fetch_add(1, Ordering::Relaxed);
        } else {
            // Relaxed: as above.
            self.failed.fetch_add(1, Ordering::Relaxed);
            counters.failed.fetch_add(1, Ordering::Relaxed);
        }
        self.latency.record(latency);
        counters.latency.record(latency);
    }

    /// Overwrites the snapshot-footprint gauges of a pre-fetched
    /// per-model row with the served snapshot's matrix sizes (dense
    /// `ClassMatrix` bytes, packed `PackedClassMatrix` bytes — 0 when
    /// the model has no packed representation).
    pub(crate) fn set_model_memory(&self, counters: &ModelCounters, dense: u64, packed: u64) {
        // Relaxed: last-writer-wins gauges; no other memory published.
        counters.memory_dense_bytes.store(dense, Ordering::Relaxed);
        counters
            .memory_packed_bytes
            .store(packed, Ordering::Relaxed); // Relaxed: as above.
    }

    /// Records one stage duration globally (wire-side stages, which
    /// happen before a model identity is trusted/resolved).
    pub(crate) fn on_stage(&self, stage: Stage, duration: Duration) {
        self.stages.get(stage).record(duration);
    }

    /// Records one stage duration globally *and* against a pre-fetched
    /// per-model row (engine-side stages).
    pub(crate) fn on_stage_for(&self, counters: &ModelCounters, stage: Stage, duration: Duration) {
        self.stages.get(stage).record(duration);
        counters.stages.get(stage).record(duration);
    }

    /// The latency histogram (queue + execution time per request),
    /// across all models.
    pub fn latency(&self) -> &LatencyHistogram {
        &self.latency
    }

    /// The global latency histogram for one pipeline stage.
    /// [`Stage::EndToEnd`] aliases [`ServeMetrics::latency`] (it has no
    /// separate stage slot).
    pub fn stage_latency(&self, stage: Stage) -> &LatencyHistogram {
        if stage == Stage::EndToEnd {
            &self.latency
        } else {
            self.stages.get(stage)
        }
    }

    /// The batch-size distribution.
    pub fn batch_sizes(&self) -> &BatchSizeHistogram {
        &self.batch_sizes
    }

    /// Snapshot of every counter plus derived rates, over `elapsed` of
    /// wall-clock serving time.
    pub fn report(&self, elapsed: Duration) -> ServeReport {
        // Read order against racing writers: each request records its
        // end-to-end outcome *first* and its stage durations *after*
        // (and each batch counts itself before its snapshot-resolve
        // stage), so snapshotting the stage histograms before loading
        // the completion/batch counters keeps every report coherent —
        // per-request stage counts never exceed the end-to-end count,
        // snapshot-resolve never exceeds the batch count. Reversed
        // reads would let a request that finished in between inflate a
        // stage past the already-loaded end-to-end value.
        let stages = self.stages.report();
        // Relaxed loads throughout the report: each counter is
        // independent; the coherence that matters is the *program
        // order* of these reads, explained above.
        let completed = self.completed.load(Ordering::Relaxed);
        let batches = self.batches.load(Ordering::Relaxed);
        let batched = self.batched_queries.load(Ordering::Relaxed);
        let model_row = |model: ModelId, c: &ModelCounters| {
            let stages = c.stages.report();
            ModelReport {
                model,
                // Relaxed: independent statistics reads.
                submitted: c.submitted.load(Ordering::Relaxed),
                completed: c.completed.load(Ordering::Relaxed),
                failed: c.failed.load(Ordering::Relaxed),
                p50_latency: c.latency.quantile(0.50),
                p95_latency: c.latency.quantile(0.95),
                p99_latency: c.latency.quantile(0.99),
                latency_sum_saturated: c.latency.sum_saturated(),
                // Relaxed: gauge reads; independent of the counters.
                memory_dense_bytes: c.memory_dense_bytes.load(Ordering::Relaxed),
                memory_packed_bytes: c.memory_packed_bytes.load(Ordering::Relaxed),
                stages,
            }
        };
        let mut per_model: Vec<ModelReport> = self
            .per_model
            .read()
            .expect("metrics lock poisoned")
            .iter()
            .map(|(model, c)| model_row(model.clone(), c))
            .collect();
        if let Some(c) = self.default_row.get() {
            per_model.push(model_row(ModelId::default(), c));
        }
        if let Some(c) = self.overflow_row.get() {
            per_model.push(model_row(ModelId::new(MODEL_OVERFLOW_NAME), c));
        }
        per_model.sort_by(|a, b| a.model.cmp(&b.model));
        ServeReport {
            // Relaxed: independent statistics reads (see above).
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            completed,
            // Relaxed: as above.
            failed: self.failed.load(Ordering::Relaxed),
            batches,
            mean_batch_size: if batches == 0 {
                0.0
            } else {
                batched as f64 / batches as f64
            },
            throughput_qps: if elapsed.is_zero() {
                0.0
            } else {
                completed as f64 / elapsed.as_secs_f64()
            },
            mean_latency: self.latency.mean(),
            p50_latency: self.latency.quantile(0.50),
            p95_latency: self.latency.quantile(0.95),
            p99_latency: self.latency.quantile(0.99),
            latency_sum_saturated: self.latency.sum_saturated(),
            stages,
            batch_size_histogram: self.batch_sizes.nonzero(),
            per_model,
        }
    }
}

/// Latency summary of one pipeline stage: one row of the stage-level
/// decomposition in a [`ServeReport`] or [`ModelReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// The pipeline stage this row summarizes.
    pub stage: Stage,
    /// Observations recorded for this stage.
    pub count: u64,
    /// Mean stage duration (a lower bound when `sum_saturated`).
    pub mean: Duration,
    /// Median stage duration (conservative upper bucket edge).
    pub p50: Duration,
    /// 95th-percentile stage duration.
    pub p95: Duration,
    /// 99th-percentile stage duration.
    pub p99: Duration,
    /// True once this stage's nanosecond sum saturated, making `mean` a
    /// lower bound.
    pub sum_saturated: bool,
}

impl std::fmt::Display for StageReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:>16}: n={:<8} mean {:?}  p50 {:?}  p95 {:?}  p99 {:?}{}",
            self.stage.as_str(),
            self.count,
            self.mean,
            self.p50,
            self.p95,
            self.p99,
            if self.sum_saturated {
                "  (sum saturated)"
            } else {
                ""
            }
        )
    }
}

/// Per-model slice of a [`ServeReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelReport {
    /// The model these counters belong to.
    pub model: ModelId,
    /// Requests accepted into the queue for this model.
    pub submitted: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Median end-to-end latency for this model's requests.
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end latency.
    pub p95_latency: Duration,
    /// 99th-percentile end-to-end latency.
    pub p99_latency: Duration,
    /// True once this model's latency sum saturated (its mean — not
    /// reported here — became a lower bound).
    pub latency_sum_saturated: bool,
    /// Bytes held by the served snapshot's dense scoring matrix
    /// (`privehd_core::ClassMatrix`), as of the last dispatched batch;
    /// 0 until this model serves its first batch.
    pub memory_dense_bytes: u64,
    /// Bytes held by the served snapshot's bit-packed scoring matrix
    /// (`privehd_core::PackedClassMatrix`); 0 when the model's rows do
    /// not factor exactly into packed signs × per-word scales (or until
    /// the first batch). For sign-only models this runs ~64× below
    /// [`ModelReport::memory_dense_bytes`] — the shrink the paper's
    /// 1-bit representation buys.
    pub memory_packed_bytes: u64,
    /// Per-stage latency decomposition for this model's requests, in
    /// request-path order; stages with no observations are omitted.
    pub stages: Vec<StageReport>,
}

/// Point-in-time summary of serving behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Requests shed because the queue was full.
    pub rejected: u64,
    /// Requests answered successfully.
    pub completed: u64,
    /// Requests answered with an error.
    pub failed: u64,
    /// Batches dispatched to the worker pool.
    pub batches: u64,
    /// Mean dispatched batch size.
    pub mean_batch_size: f64,
    /// Completed queries per second of wall-clock time.
    pub throughput_qps: f64,
    /// Mean end-to-end request latency.
    pub mean_latency: Duration,
    /// Median end-to-end request latency.
    pub p50_latency: Duration,
    /// 95th-percentile end-to-end request latency.
    pub p95_latency: Duration,
    /// 99th-percentile end-to-end request latency.
    pub p99_latency: Duration,
    /// True once the end-to-end latency sum saturated, making
    /// `mean_latency` a lower bound rather than an exact mean.
    pub latency_sum_saturated: bool,
    /// Per-stage latency decomposition across all models, in
    /// request-path order; stages with no observations are omitted.
    /// Wire-side stages (decode, admission, write) only populate when a
    /// `WireServer` fronts the engine.
    pub stages: Vec<StageReport>,
    /// `(batch size, batches dispatched)` for every observed size; the
    /// last bucket saturates and is reported as `≥size`.
    pub batch_size_histogram: Vec<(BatchSizeBucket, u64)>,
    /// Per-model counters and latency quantiles, sorted by [`ModelId`].
    /// One entry per model that received at least one submission, up to
    /// an internal cap on distinct ids — traffic for ids beyond the cap
    /// aggregates into one `"~other"` row, so hostile or typoed ids
    /// cannot grow the table (or this report) without bound.
    pub per_model: Vec<ModelReport>,
}

impl std::fmt::Display for ServeReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "served {}/{} requests ({} rejected, {} failed) in {} batches (mean size {:.1})",
            self.completed,
            self.submitted,
            self.rejected,
            self.failed,
            self.batches,
            self.mean_batch_size
        )?;
        writeln!(f, "throughput: {:.0} queries/s", self.throughput_qps)?;
        write!(
            f,
            "latency: mean {:?}  p50 {:?}  p95 {:?}  p99 {:?}{}",
            self.mean_latency,
            self.p50_latency,
            self.p95_latency,
            self.p99_latency,
            if self.latency_sum_saturated {
                "  (sum saturated)"
            } else {
                ""
            }
        )?;
        for s in &self.stages {
            write!(f, "\n{s}")?;
        }
        for m in &self.per_model {
            write!(
                f,
                "\nmodel {}: {}/{} ok, {} failed  p50 {:?}  p95 {:?}  p99 {:?}",
                m.model,
                m.completed,
                m.submitted,
                m.failed,
                m.p50_latency,
                m.p95_latency,
                m.p99_latency
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn quantiles_are_ordered_and_bracket_the_data() {
        let h = LatencyHistogram::new();
        for us in 1..=1_000u64 {
            h.record(Duration::from_micros(us));
        }
        let (p50, p95, p99) = (h.quantile(0.5), h.quantile(0.95), h.quantile(0.99));
        assert!(p50 <= p95 && p95 <= p99, "{p50:?} {p95:?} {p99:?}");
        // Upper-edge reporting: never below the true quantile, at most
        // one growth factor (~20%) above it.
        assert!(p50 > Duration::from_micros(500) && p50 <= Duration::from_micros(620));
        assert!(p99 >= Duration::from_micros(990));
        assert!(h.mean() >= Duration::from_micros(400));
        assert!(!h.sum_saturated());
    }

    #[test]
    fn quantile_reports_conservative_upper_edge() {
        // Regression for the lower-edge bug: with all mass in one
        // bucket, the reported quantile must be the bucket's *upper*
        // edge — i.e. ≥ every recorded sample — not the lower edge,
        // which under-reported by up to one bucket width. Pin the exact
        // values for a known distribution.
        let edges = latency_edges();
        let h = LatencyHistogram::new();
        // 100 samples inside bucket 10: [edges[10], edges[11]).
        let inside = (edges[10] + edges[11]) / 2;
        for _ in 0..100 {
            h.record(Duration::from_nanos(inside));
        }
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(
                h.quantile(q),
                Duration::from_nanos(edges[11]),
                "q={q}: all mass in bucket 10 must report its upper edge"
            );
            assert!(h.quantile(q) >= Duration::from_nanos(inside));
        }
        // A bimodal split pins which bucket each rank resolves to: 90
        // samples in bucket 10, 10 in bucket 20 → p50 is bucket 10's
        // upper edge, p95/p99 bucket 20's.
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record(Duration::from_nanos(edges[10]));
        }
        for _ in 0..10 {
            h.record(Duration::from_nanos(edges[20]));
        }
        assert_eq!(h.quantile(0.50), Duration::from_nanos(edges[11]));
        assert_eq!(h.quantile(0.90), Duration::from_nanos(edges[11]));
        assert_eq!(h.quantile(0.95), Duration::from_nanos(edges[21]));
        assert_eq!(h.quantile(0.99), Duration::from_nanos(edges[21]));
    }

    #[test]
    fn sum_saturates_instead_of_wrapping() {
        let h = LatencyHistogram::new();
        // u64::MAX is divisible by 3: three records sum to exactly MAX
        // (no overflow), the fourth must wrap.
        let big = Duration::from_nanos(u64::MAX / 3);
        for _ in 0..3 {
            h.record(big);
        }
        assert!(!h.sum_saturated(), "exactly at MAX is not yet overflow");
        h.record(big);
        // Fourth record would wrap; the sum must pin at MAX and flag.
        assert!(h.sum_saturated());
        // Mean is a lower bound, not wrapped-around garbage (a wrapped
        // sum would report a mean near zero here).
        assert!(h.mean() >= Duration::from_nanos(u64::MAX / 5));
        let m = ServeMetrics::new();
        let row = m.model_counters(&ModelId::default());
        for _ in 0..4 {
            m.on_done(&row, true, big);
        }
        let r = m.report(Duration::from_secs(1));
        assert!(r.latency_sum_saturated);
        assert!(r.per_model[0].latency_sum_saturated);
        assert!(r.to_string().contains("(sum saturated)"), "{r}");
    }

    #[test]
    fn edge_exact_samples_bucket_consistently() {
        // Regression: `bucket_for` used an `ln()`-derived index while
        // `bucket_edge_ns` recomputed edges with `powi()`; float
        // roundoff could place a sample recorded exactly at a bucket
        // edge one bucket off. With the shared integer table, a sample
        // at edge `i` lands in bucket `i` deterministically, so the
        // quantile reports exactly bucket `i`'s upper edge — the next
        // table entry (the overflow bucket, unbounded above, reports
        // its own lower edge).
        let edges = latency_edges();
        for (idx, &edge_ns) in edges.iter().enumerate() {
            let h = LatencyHistogram::new();
            h.record(Duration::from_nanos(edge_ns));
            let got = h.quantile(1.0);
            let want = edges[(idx + 1).min(LATENCY_BUCKETS - 1)];
            assert_eq!(
                got,
                Duration::from_nanos(want),
                "edge {idx} ({edge_ns} ns): quantile reported {got:?}"
            );
        }
    }

    #[test]
    fn stage_histograms_report_per_model_and_globally() {
        let m = ServeMetrics::new();
        let id = ModelId::new("traced");
        let row = m.model_counters(&id);
        m.on_stage(Stage::WireDecode, Duration::from_micros(5));
        m.on_stage_for(&row, Stage::QueueWait, Duration::from_micros(40));
        m.on_stage_for(&row, Stage::QueueWait, Duration::from_micros(60));
        m.on_stage_for(&row, Stage::Predict, Duration::from_micros(200));
        let r = m.report(Duration::from_secs(1));
        // Global rows: decode (wire-side, global only) + the two
        // engine stages, in request-path order, silent stages omitted.
        let stages: Vec<(Stage, u64)> = r.stages.iter().map(|s| (s.stage, s.count)).collect();
        assert_eq!(
            stages,
            vec![
                (Stage::WireDecode, 1),
                (Stage::QueueWait, 2),
                (Stage::Predict, 1)
            ]
        );
        for s in &r.stages {
            assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
            assert!(s.p99 > Duration::ZERO);
            assert!(!s.sum_saturated);
        }
        // The per-model row sees only the stages recorded through it.
        let per_model = &r.per_model[0].stages;
        let model_stages: Vec<(Stage, u64)> =
            per_model.iter().map(|s| (s.stage, s.count)).collect();
        assert_eq!(
            model_stages,
            vec![(Stage::QueueWait, 2), (Stage::Predict, 1)]
        );
        // EndToEnd aliases the e2e histogram and never gets a stage row.
        assert!(std::ptr::eq(m.stage_latency(Stage::EndToEnd), m.latency()));
        let text = r.to_string();
        assert!(text.contains("queue_wait"), "{text}");
    }

    #[test]
    fn edges_are_strictly_increasing() {
        let edges = latency_edges();
        assert_eq!(edges[0], LATENCY_BASE_NS as u64);
        for w in edges.windows(2) {
            assert!(w[0] < w[1], "{w:?}");
        }
    }

    #[test]
    fn overflow_observations_land_in_last_bucket() {
        let h = LatencyHistogram::new();
        h.record(Duration::from_secs(3_600));
        assert_eq!(h.count(), 1);
        assert!(h.quantile(1.0) > Duration::from_millis(1));
    }

    #[test]
    fn oversized_batches_report_as_saturated() {
        // Regression: sizes ≥ BATCH_BUCKETS were clamped into the last
        // bucket and then reported as a literal size-511 batch.
        let h = BatchSizeHistogram::default();
        h.record(4);
        h.record(BATCH_BUCKETS - 1);
        h.record(BATCH_BUCKETS + 100);
        h.record(10 * BATCH_BUCKETS);
        let entries = h.nonzero();
        assert_eq!(
            entries,
            vec![
                (BatchSizeBucket::Exact(4), 1),
                (BatchSizeBucket::AtLeast(BATCH_BUCKETS - 1), 3),
            ]
        );
        assert!(!entries[0].0.is_saturated());
        assert!(entries[1].0.is_saturated());
        assert_eq!(entries[1].0.to_string(), format!("≥{}", BATCH_BUCKETS - 1));
        assert_eq!(entries[0].0.to_string(), "4");
    }

    #[test]
    fn report_derives_rates() {
        let m = ServeMetrics::new();
        let id = ModelId::default();
        for _ in 0..10 {
            m.on_submit(&id);
        }
        m.on_reject();
        m.on_batch(4);
        m.on_batch(6);
        let row = m.model_counters(&id);
        for _ in 0..10 {
            m.on_done(&row, true, Duration::from_micros(100));
        }
        let r = m.report(Duration::from_secs(2));
        assert_eq!(r.submitted, 10);
        assert_eq!(r.rejected, 1);
        assert_eq!(r.completed, 10);
        assert_eq!(r.batches, 2);
        assert!((r.mean_batch_size - 5.0).abs() < 1e-12);
        assert!((r.throughput_qps - 5.0).abs() < 1e-12);
        assert_eq!(
            r.batch_size_histogram,
            vec![
                (BatchSizeBucket::Exact(4), 1),
                (BatchSizeBucket::Exact(6), 1)
            ]
        );
        let text = r.to_string();
        assert!(text.contains("throughput"), "{text}");
        assert!(text.contains("model default"), "{text}");
    }

    #[test]
    fn per_model_counters_are_isolated() {
        let m = ServeMetrics::new();
        let (a, b) = (ModelId::new("a"), ModelId::new("b"));
        m.on_submit(&a);
        m.on_submit(&a);
        m.on_submit(&b);
        let (row_a, row_b) = (m.model_counters(&a), m.model_counters(&b));
        m.on_done(&row_a, true, Duration::from_micros(50));
        m.on_done(&row_a, false, Duration::from_micros(60));
        m.on_done(&row_b, true, Duration::from_micros(70));
        let r = m.report(Duration::from_secs(1));
        assert_eq!(r.per_model.len(), 2);
        let (ra, rb) = (&r.per_model[0], &r.per_model[1]);
        assert_eq!(
            (ra.model.as_str(), ra.submitted, ra.completed, ra.failed),
            ("a", 2, 1, 1)
        );
        assert_eq!(
            (rb.model.as_str(), rb.submitted, rb.completed, rb.failed),
            ("b", 1, 1, 0)
        );
        // Global counters aggregate across models.
        assert_eq!((r.submitted, r.completed, r.failed), (3, 2, 1));
    }

    #[test]
    fn memory_gauges_overwrite_not_accumulate() {
        let m = ServeMetrics::new();
        let id = ModelId::new("gauged");
        let row = m.model_counters(&id);
        let r = m.report(Duration::from_secs(1));
        assert!(r.per_model.is_empty() || r.per_model[0].memory_dense_bytes == 0);
        m.set_model_memory(&row, 80_000, 1_250);
        m.set_model_memory(&row, 80_000, 1_250);
        m.on_submit(&id);
        let r = m.report(Duration::from_secs(1));
        let row_report = &r.per_model[0];
        // Two stores, one value: gauges overwrite rather than add.
        assert_eq!(row_report.memory_dense_bytes, 80_000);
        assert_eq!(row_report.memory_packed_bytes, 1_250);
        // A republish with a packed-incompatible model zeroes the gauge.
        m.set_model_memory(&row, 80_000, 0);
        let r = m.report(Duration::from_secs(1));
        assert_eq!(r.per_model[0].memory_packed_bytes, 0);
    }

    #[test]
    fn model_rows_are_capped_and_overflow_aggregates() {
        let m = ServeMetrics::new();
        // Far more distinct ids than the cap allows…
        for i in 0..MAX_MODEL_ROWS + 50 {
            m.on_submit(&ModelId::new(format!("id-{i}")));
        }
        let r = m.report(Duration::from_secs(1));
        // …but the table stops at the cap plus the shared overflow row,
        assert_eq!(r.per_model.len(), MAX_MODEL_ROWS + 1);
        assert_eq!(r.submitted as usize, MAX_MODEL_ROWS + 50);
        // which sorts last and carries everything past the cap.
        let overflow = r.per_model.last().unwrap();
        assert_eq!(overflow.model.as_str(), MODEL_OVERFLOW_NAME);
        assert_eq!(overflow.submitted, 50);
        // The overflow name is reserved: a client submitting under it
        // shares the overflow row instead of minting a table row.
        m.on_submit(&ModelId::new(MODEL_OVERFLOW_NAME));
        let r = m.report(Duration::from_secs(1));
        assert_eq!(r.per_model.len(), MAX_MODEL_ROWS + 1);
        assert_eq!(r.per_model.last().unwrap().submitted, 51);
        // The default id keeps its own (cap-exempt) row even when the
        // spray filled the table first.
        m.on_submit(&ModelId::default());
        let r = m.report(Duration::from_secs(1));
        assert_eq!(r.per_model.len(), MAX_MODEL_ROWS + 2);
        let default_row = r
            .per_model
            .iter()
            .find(|row| row.model == ModelId::default())
            .expect("default row present");
        assert_eq!(default_row.submitted, 1);
    }
}
