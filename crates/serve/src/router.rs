//! Per-model batch routing: keyed accumulation for the micro-batcher.
//!
//! The engine's batcher thread used to keep a single open batch; with
//! many tenants behind one submission queue the accumulation is keyed
//! by [`ModelId`] instead. [`BatchRouter`] owns the open batches — one
//! per model with traffic in flight, each with its own `max_delay`
//! window anchored at the batch's first request — and tells the batcher
//! when a batch is ready: immediately when a key reaches `max_batch`,
//! or at the earliest open deadline otherwise. A batch only ever holds
//! requests for one model, so a worker resolves exactly one registry
//! snapshot per batch.
//!
//! The router is intentionally free of channels and clocks (the caller
//! passes `Instant`s in), which keeps it deterministic under test.
//!
//! Deadlines live in a min-heap beside the key map, so the batcher's
//! per-message `next_deadline` is O(log n) in open batches rather than
//! a full map scan — n can reach the queue depth when hostile traffic
//! opens one batch per unique id. Heap entries for batches that already
//! flushed (on `max_batch`) are discarded lazily when they surface.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::time::{Duration, Instant};

use crate::registry::ModelId;

/// One model's open (not yet flushed) batch.
struct OpenBatch<T> {
    items: Vec<T>,
    /// Flush-by time, anchored at the first item's arrival.
    deadline: Instant,
}

/// Keyed micro-batch accumulator. `T` is the request payload (the
/// engine uses its `Request` struct; tests use plain values).
pub(crate) struct BatchRouter<T> {
    max_batch: usize,
    max_delay: Duration,
    open: HashMap<ModelId, OpenBatch<T>>,
    /// Min-heap of `(deadline, key)` for every batch ever opened; an
    /// entry is stale — and dropped when it reaches the top — once its
    /// key's open batch is gone or carries a different deadline.
    deadlines: BinaryHeap<Reverse<(Instant, ModelId)>>,
}

impl<T> BatchRouter<T> {
    pub(crate) fn new(max_batch: usize, max_delay: Duration) -> Self {
        Self {
            max_batch,
            max_delay,
            open: HashMap::new(),
            deadlines: BinaryHeap::new(),
        }
    }

    /// Adds one item under `model`. Returns the completed batch when
    /// this push fills it to `max_batch`; otherwise the item waits for
    /// its key's deadline.
    pub(crate) fn push(
        &mut self,
        model: ModelId,
        item: T,
        now: Instant,
    ) -> Option<(ModelId, Vec<T>)> {
        // No up-front `max_batch` reservation: with many models open at
        // once that would cost open-keys × max_batch slots even when
        // every batch holds one request; amortized growth is fine.
        let deadlines = &mut self.deadlines;
        let entry = self.open.entry(model.clone()).or_insert_with(|| {
            let deadline = now + self.max_delay;
            deadlines.push(Reverse((deadline, model.clone())));
            OpenBatch {
                items: Vec::new(),
                deadline,
            }
        });
        entry.items.push(item);
        if entry.items.len() >= self.max_batch {
            let batch = self.open.remove(&model).expect("key present").items;
            return Some((model, batch));
        }
        None
    }

    /// The earliest deadline among open batches, or `None` when idle.
    /// Prunes stale heap entries as a side effect.
    pub(crate) fn next_deadline(&mut self) -> Option<Instant> {
        while let Some(Reverse(top)) = self.deadlines.peek() {
            if self.open.get(&top.1).is_some_and(|b| b.deadline == top.0) {
                return Some(top.0);
            }
            self.deadlines.pop();
        }
        None
    }

    /// Removes and returns every batch whose deadline has passed.
    pub(crate) fn take_expired(&mut self, now: Instant) -> Vec<(ModelId, Vec<T>)> {
        let mut expired = Vec::new();
        while let Some(Reverse((deadline, _))) = self.deadlines.peek() {
            if *deadline > now {
                break;
            }
            let Reverse((deadline, key)) = self.deadlines.pop().expect("peeked entry");
            let live = self.open.get(&key).is_some_and(|b| b.deadline == deadline);
            if live {
                let batch = self.open.remove(&key).expect("key present").items;
                expired.push((key, batch));
            }
        }
        expired
    }

    /// Removes and returns every open batch (shutdown drain).
    pub(crate) fn drain(&mut self) -> Vec<(ModelId, Vec<T>)> {
        self.deadlines.clear();
        self.open.drain().map(|(k, b)| (k, b.items)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router(max_batch: usize, delay_ms: u64) -> BatchRouter<u32> {
        BatchRouter::new(max_batch, Duration::from_millis(delay_ms))
    }

    #[test]
    fn flushes_on_max_batch_per_key() {
        let mut r = router(3, 1_000);
        let (a, b) = (ModelId::new("a"), ModelId::new("b"));
        let t = Instant::now();
        assert!(r.push(a.clone(), 1, t).is_none());
        assert!(r.push(b.clone(), 10, t).is_none());
        assert!(r.push(a.clone(), 2, t).is_none());
        // Third push for `a` completes `a`'s batch only.
        let (key, batch) = r.push(a.clone(), 3, t).expect("full batch");
        assert_eq!(key, a);
        assert_eq!(batch, vec![1, 2, 3]);
        // `b`'s single item still waits on its own window.
        assert_eq!(r.next_deadline(), Some(t + Duration::from_millis(1_000)));
        assert!(r.take_expired(t).is_empty());
        let expired = r.take_expired(t + Duration::from_millis(1_000));
        assert_eq!(expired, vec![(b, vec![10])]);
        assert_eq!(r.next_deadline(), None);
    }

    #[test]
    fn each_key_gets_its_own_delay_window() {
        let mut r = router(100, 10);
        let (a, b) = (ModelId::new("a"), ModelId::new("b"));
        let t0 = Instant::now();
        let t1 = t0 + Duration::from_millis(4);
        r.push(a.clone(), 1, t0);
        r.push(b.clone(), 2, t1);
        // A later push to `a` does NOT extend `a`'s window.
        r.push(a.clone(), 3, t1);
        assert_eq!(r.next_deadline(), Some(t0 + Duration::from_millis(10)));
        let expired = r.take_expired(t0 + Duration::from_millis(10));
        assert_eq!(expired, vec![(a, vec![1, 3])]);
        // `b` expires on its own anchor.
        assert_eq!(r.next_deadline(), Some(t1 + Duration::from_millis(10)));
        let expired = r.take_expired(t1 + Duration::from_millis(10));
        assert_eq!(expired, vec![(b, vec![2])]);
    }

    #[test]
    fn drain_returns_everything_open() {
        let mut r = router(8, 50);
        let t = Instant::now();
        r.push(ModelId::new("a"), 1, t);
        r.push(ModelId::new("b"), 2, t);
        let mut drained = r.drain();
        drained.sort_by(|x, y| x.0.cmp(&y.0));
        assert_eq!(
            drained,
            vec![(ModelId::new("a"), vec![1]), (ModelId::new("b"), vec![2]),]
        );
        assert!(r.drain().is_empty());
        assert_eq!(r.next_deadline(), None);
    }

    #[test]
    fn max_batch_one_flushes_every_push() {
        let mut r = router(1, 50);
        let t = Instant::now();
        let id = ModelId::default();
        assert!(r.push(id.clone(), 7, t).is_some());
        assert_eq!(r.next_deadline(), None);
    }

    #[test]
    fn reopened_key_ignores_its_stale_heap_entry() {
        // Fill and flush `a`, then reopen it later: the flushed batch's
        // heap entry must not surface as a deadline, and the reopened
        // batch expires on its own (later) anchor.
        let mut r = router(2, 10);
        let a = ModelId::new("a");
        let t0 = Instant::now();
        r.push(a.clone(), 1, t0);
        assert!(r.push(a.clone(), 2, t0).is_some()); // flushed at max_batch
        let t1 = t0 + Duration::from_millis(5);
        r.push(a.clone(), 3, t1);
        assert_eq!(r.next_deadline(), Some(t1 + Duration::from_millis(10)));
        // The stale t0 deadline expires nothing.
        assert!(r.take_expired(t0 + Duration::from_millis(10)).is_empty());
        let expired = r.take_expired(t1 + Duration::from_millis(10));
        assert_eq!(expired, vec![(a, vec![3])]);
    }
}
