//! The versioned model registry with atomic hot swap:
//! [`ShardedRegistry`], serving one model per [`ModelId`].
//!
//! Retraining (or privacy recalibration) produces a new [`HdModel`];
//! publishing it must not pause inference. The registry keeps live
//! models behind an `RwLock<…Arc<…>>` — the Arc-swap pattern: readers
//! take the lock only long enough to clone an [`Arc`] (no contention
//! with inference itself, which runs entirely on the clone), and
//! `publish` swaps the pointer in one assignment. Batches that grabbed
//! the previous snapshot keep serving it to completion, so a swap never
//! drops or corrupts in-flight requests.
//!
//! Models — one per tenant, encoder basis, or privacy budget — are
//! spread over N shards by [`ModelId`] hash, each shard guarding its
//! own `HashMap<ModelId, …>` behind its own lock, so publishes and
//! lookups for different tenants contend only when their ids land on
//! the same shard. Single-model deployments simply publish under
//! [`ModelId::default()`] (see [`ShardedRegistry::with_model`]). The
//! historical single-slot `ModelRegistry` facade served its one
//! deprecation release and is gone.
//!
//! Publishing is also where the pipeline gets *compiled*: each slot
//! caches a [`ModelPlan`] next to the dense/packed snapshots, so kernel
//! selection (packed popcount vs tiled dense, AVX2 vs scalar, block
//! size) happens exactly once per publish and request workers dispatch
//! through the precompiled plan instead of re-probing per batch.
//!
//! ## Publish validation policy
//!
//! Since the kernel layer (PR 2), a zero-norm (never-trained) class
//! scores [`f64::NEG_INFINITY`] instead of failing the whole
//! prediction, which means a *partially* trained model serves quietly —
//! its untrained classes simply can never win. Publishing validates the
//! cached class norms directly (no probe prediction):
//!
//! * a model whose classes are **all** zero-norm is always rejected
//!   with [`HdError::ZeroNorm`] — it cannot answer a single query;
//! * `publish` also rejects a **partially** trained model (some
//!   zero-norm classes) with [`ServeError::UntrainedClasses`], because
//!   silently unreachable classes are almost always a training bug;
//! * `publish_partial` opts in to serving a partially trained model —
//!   for incremental deployments that grow the label set online — and
//!   returns the indices of the classes that cannot yet be predicted.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, RwLock};

use privehd_core::{HdError, HdModel, ModelPlan};

use crate::error::ServeError;

/// Identifies one served model (one tenant) within a
/// [`ShardedRegistry`] and routes its submissions through the engine.
///
/// Cheap to clone (`Arc<str>` underneath) — every request carries one.
/// The [`Default`] id (`"default"`) is what the single-model
/// [`crate::ServeEngine::submit_default`] API routes to.
///
/// # Examples
///
/// ```
/// use privehd_serve::ModelId;
///
/// let tenant = ModelId::new("tenant-a");
/// assert_eq!(tenant.as_str(), "tenant-a");
/// assert_eq!(ModelId::default().as_str(), "default");
/// assert_eq!(ModelId::from("tenant-a"), tenant);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ModelId(Arc<str>);

impl ModelId {
    /// Name of the [`Default`] id the single-model API routes to.
    pub const DEFAULT_NAME: &'static str = "default";

    /// Creates an id from any string-like name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Self(Arc::from(name.as_ref()))
    }

    /// The id as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }

    /// The shard index this id maps to among `shards` shards.
    pub(crate) fn shard_index(&self, shards: usize) -> usize {
        let mut h = DefaultHasher::new();
        self.0.hash(&mut h);
        (h.finish() % shards as u64) as usize
    }
}

impl Default for ModelId {
    /// Clones a process-wide cached id: the single-model submission
    /// path calls this per request, so it must not allocate.
    fn default() -> Self {
        static DEFAULT: std::sync::OnceLock<ModelId> = std::sync::OnceLock::new();
        DEFAULT
            .get_or_init(|| ModelId::new(ModelId::DEFAULT_NAME))
            .clone()
    }
}

impl std::fmt::Display for ModelId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for ModelId {
    fn from(name: &str) -> Self {
        Self::new(name)
    }
}

impl From<String> for ModelId {
    fn from(name: String) -> Self {
        Self::new(name)
    }
}

/// One published model: the weights plus the registry metadata the
/// serving layer reports back with every prediction.
#[derive(Debug)]
pub struct ServedModel {
    /// Monotonically increasing version, 1 for the first publish.
    pub version: u64,
    /// Human label supplied at publish time (e.g. `"isolet-retrain-3"`).
    pub label: String,
    model: HdModel,
    plan: ModelPlan,
}

impl ServedModel {
    /// The model weights.
    pub fn model(&self) -> &HdModel {
        &self.model
    }

    /// The scoring pipeline compiled for this snapshot at publish time.
    /// Kernel selection happened exactly once, here; request workers
    /// dispatch through this plan instead of re-probing per batch, and a
    /// hot-swap republish replaces the plan atomically with the snapshot
    /// (they live in the same [`Arc`]).
    pub fn plan(&self) -> &ModelPlan {
        &self.plan
    }

    /// Bytes held by this snapshot's dense scoring matrix
    /// ([`privehd_core::ClassMatrix`]). Publishing builds the matrix
    /// eagerly ([`privehd_core::HdModel::refresh_norms`]), so this only
    /// reads a cached size.
    pub fn dense_memory_bytes(&self) -> usize {
        self.model.class_matrix().memory_bytes()
    }

    /// Bytes held by this snapshot's bit-packed scoring matrix
    /// ([`privehd_core::PackedClassMatrix`]), or `None` when the class
    /// rows do not factor exactly into packed signs × per-word scales.
    /// Built eagerly at publish time alongside the dense matrix; for
    /// sign-only (bipolar quantized) models it runs ~64× smaller than
    /// [`ServedModel::dense_memory_bytes`].
    pub fn packed_memory_bytes(&self) -> Option<usize> {
        self.model.packed_class_matrix().map(|p| p.memory_bytes())
    }
}

/// Validates `model` for publishing against the cached class norms (no
/// probe prediction): all-zero models are always rejected; partially
/// trained models are rejected unless `allow_partial`. Returns the
/// zero-norm class indices (empty for a fully trained model).
fn validate_norms(model: &HdModel, allow_partial: bool) -> Result<Vec<usize>, ServeError> {
    let norms = model.class_matrix().norms();
    let untrained: Vec<usize> = norms
        .iter()
        .enumerate()
        .filter_map(|(class, &n)| (n == 0.0).then_some(class))
        .collect();
    if untrained.len() == norms.len() {
        // Not a single class can win: the model cannot serve any query.
        return Err(ServeError::Model(HdError::ZeroNorm));
    }
    if !untrained.is_empty() && !allow_partial {
        return Err(ServeError::UntrainedClasses(untrained));
    }
    Ok(untrained)
}

/// How many shards [`ShardedRegistry::new`] creates.
pub const DEFAULT_SHARDS: usize = 16;

/// One tenant's slot inside a shard: the live snapshot plus its private
/// version counter (which survives a withdraw, so a re-publish keeps
/// the tenant's version history monotonic).
#[derive(Debug, Default)]
struct TenantSlot {
    live: Option<Arc<ServedModel>>,
    next_version: u64,
}

/// Multi-tenant registry: many independently versioned models behind
/// per-shard locks, each model addressed by [`ModelId`].
///
/// Lock granularity is the shard, not the registry: a publish for one
/// tenant only blocks lookups whose ids hash to the same shard. Each
/// tenant has its own monotonic version sequence starting at 1.
///
/// # Examples
///
/// ```
/// use privehd_core::{HdModel, Hypervector};
/// use privehd_serve::{ModelId, ShardedRegistry};
///
/// # fn main() -> Result<(), privehd_serve::ServeError> {
/// let registry = ShardedRegistry::new();
/// let mut model = HdModel::new(2, 64)?;
/// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
/// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
///
/// let a = ModelId::new("tenant-a");
/// let b = ModelId::new("tenant-b");
/// registry.publish(&a, model.clone(), "a-v1")?;
/// registry.publish(&b, model.clone(), "b-v1")?;
/// assert_eq!(registry.publish(&b, model, "b-v2")?, 2);
/// assert_eq!(registry.version(&a), 1);
/// assert_eq!(registry.len(), 2);
///
/// registry.withdraw(&a);
/// assert!(registry.get(&a).is_none());
/// assert!(registry.get(&b).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ShardedRegistry {
    shards: Vec<RwLock<HashMap<ModelId, TenantSlot>>>,
}

impl Default for ShardedRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ShardedRegistry {
    /// Creates an empty registry with [`DEFAULT_SHARDS`] shards.
    pub fn new() -> Self {
        Self::with_shards(DEFAULT_SHARDS).expect("default shard count is non-zero")
    }

    /// Creates a registry with `model` already published as version 1
    /// under [`ModelId::default()`] — the one-liner for single-model
    /// deployments:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use privehd_core::{HdModel, Hypervector};
    /// use privehd_serve::{ModelId, ShardedRegistry};
    ///
    /// # fn main() -> Result<(), privehd_serve::ServeError> {
    /// let mut model = HdModel::new(2, 64)?;
    /// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
    /// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
    /// let registry = Arc::new(ShardedRegistry::with_model(model, "v1")?);
    /// assert_eq!(registry.version(&ModelId::default()), 1);
    /// # Ok(())
    /// # }
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates [`ShardedRegistry::publish`] validation errors.
    pub fn with_model(model: HdModel, label: &str) -> Result<Self, ServeError> {
        let registry = Self::new();
        registry.publish(&ModelId::default(), model, label)?;
        Ok(registry)
    }

    /// Creates an empty registry with an explicit shard count.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] when `shards` is zero.
    pub fn with_shards(shards: usize) -> Result<Self, ServeError> {
        if shards == 0 {
            return Err(ServeError::InvalidConfig("shards must be ≥ 1".into()));
        }
        Ok(Self {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
        })
    }

    /// Number of shards the id space is spread over.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard(&self, id: &ModelId) -> &RwLock<HashMap<ModelId, TenantSlot>> {
        &self.shards[id.shard_index(self.shards.len())]
    }

    /// Publishes `model` as `id`'s new live version and returns the
    /// tenant-local version number (1 for the tenant's first publish).
    ///
    /// # Errors
    ///
    /// Rejects untrained and (without `publish_partial`) partially
    /// trained models — see the [module-level policy](self).
    pub fn publish(&self, id: &ModelId, model: HdModel, label: &str) -> Result<u64, ServeError> {
        self.publish_inner(id, model, label, false).map(|(v, _)| v)
    }

    /// Like [`ShardedRegistry::publish`] but allows a partially trained
    /// model; returns `(version, zero-norm class indices)`.
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] wrapping [`HdError::ZeroNorm`] when *every*
    /// class is untrained.
    pub fn publish_partial(
        &self,
        id: &ModelId,
        model: HdModel,
        label: &str,
    ) -> Result<(u64, Vec<usize>), ServeError> {
        self.publish_inner(id, model, label, true)
    }

    fn publish_inner(
        &self,
        id: &ModelId,
        mut model: HdModel,
        label: &str,
        allow_partial: bool,
    ) -> Result<(u64, Vec<usize>), ServeError> {
        model.refresh_norms();
        let untrained = validate_norms(&model, allow_partial)?;
        // Compile outside the shard lock: plan compilation pins both
        // scoring snapshots and runs the one-time kernel selection.
        let plan = ModelPlan::compile(&model);
        let mut shard = self.shard(id).write().expect("shard lock poisoned");
        let slot = shard.entry(id.clone()).or_default();
        slot.next_version += 1;
        let version = slot.next_version;
        slot.live = Some(Arc::new(ServedModel {
            version,
            label: label.to_owned(),
            model,
            plan,
        }));
        Ok((version, untrained))
    }

    /// The live snapshot for `id`, or `None` when that tenant has never
    /// published (or has withdrawn). The [`Arc`] stays valid across
    /// later publishes.
    pub fn get(&self, id: &ModelId) -> Option<Arc<ServedModel>> {
        self.shard(id)
            .read()
            .expect("shard lock poisoned")
            .get(id)
            .and_then(|slot| slot.live.clone())
    }

    /// `id`'s live version number, or 0 when nothing is live.
    pub fn version(&self, id: &ModelId) -> u64 {
        self.get(id).map_or(0, |m| m.version)
    }

    /// Withdraws `id`'s live model, returning the snapshot that was
    /// live, if any. Other tenants are untouched; `id`'s version counter
    /// survives, so a later publish continues the sequence.
    pub fn withdraw(&self, id: &ModelId) -> Option<Arc<ServedModel>> {
        self.shard(id)
            .write()
            .expect("shard lock poisoned")
            .get_mut(id)
            .and_then(|slot| slot.live.take())
    }

    /// Number of tenants with a live model.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .expect("shard lock poisoned")
                    .values()
                    .filter(|slot| slot.live.is_some())
                    .count()
            })
            .sum()
    }

    /// True when no tenant has a live model.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Ids of every tenant with a live model, sorted for determinism.
    pub fn model_ids(&self) -> Vec<ModelId> {
        let mut ids: Vec<ModelId> = self
            .shards
            .iter()
            .flat_map(|s| {
                s.read()
                    .expect("shard lock poisoned")
                    .iter()
                    .filter(|(_, slot)| slot.live.is_some())
                    .map(|(id, _)| id.clone())
                    .collect::<Vec<_>>()
            })
            .collect();
        ids.sort_unstable();
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_core::Hypervector;

    fn trained(dim: usize, fill: f64) -> HdModel {
        let mut m = HdModel::new(2, dim).unwrap();
        m.bundle(0, &Hypervector::from_vec(vec![fill; dim]))
            .unwrap();
        m.bundle(1, &Hypervector::from_vec(vec![-fill; dim]))
            .unwrap();
        m
    }

    /// 3 classes, only class 0 trained.
    fn partially_trained(dim: usize) -> HdModel {
        let mut m = HdModel::new(3, dim).unwrap();
        m.bundle(0, &Hypervector::from_vec(vec![1.0; dim])).unwrap();
        m
    }

    /// The default id every single-model test publishes under.
    fn default_id() -> ModelId {
        ModelId::default()
    }

    #[test]
    fn versions_are_monotonic() {
        let r = ShardedRegistry::new();
        let id = default_id();
        assert_eq!(r.version(&id), 0);
        assert_eq!(r.publish(&id, trained(32, 1.0), "a").unwrap(), 1);
        assert_eq!(r.publish(&id, trained(32, 2.0), "b").unwrap(), 2);
        assert_eq!(r.version(&id), 2);
        assert_eq!(r.get(&id).unwrap().label, "b");
    }

    #[test]
    fn publish_builds_both_scoring_matrices_eagerly() {
        let r = ShardedRegistry::new();
        let id = default_id();
        // A ±1 (sign-only) model packs exactly; publishing must leave
        // both snapshots cached, with the packed one far smaller.
        r.publish(&id, trained(512, 1.0), "signed").unwrap();
        let served = r.get(&id).unwrap();
        let dense = served.dense_memory_bytes();
        let packed = served.packed_memory_bytes().expect("±1 rows pack exactly");
        assert!(dense > 0 && packed > 0);
        assert!(
            packed * 8 < dense,
            "packed snapshot ({packed} B) not substantially below dense ({dense} B)"
        );
        // A model whose rows mix magnitudes within a 64-dim block has
        // no exact packed form.
        let mut mixed = HdModel::new(2, 512).unwrap();
        let row: Vec<f64> = (0..512).map(|j| 1.0 + (j % 3) as f64).collect();
        mixed
            .bundle(0, &Hypervector::from_vec(row.clone()))
            .unwrap();
        mixed
            .bundle(1, &Hypervector::from_vec(row.iter().map(|v| -v).collect()))
            .unwrap();
        r.publish(&id, mixed, "mixed").unwrap();
        assert!(r.get(&id).unwrap().packed_memory_bytes().is_none());
    }

    #[test]
    fn untrained_models_are_rejected() {
        let r = ShardedRegistry::new();
        let id = default_id();
        let err = r
            .publish(&id, HdModel::new(2, 32).unwrap(), "zero")
            .unwrap_err();
        assert_eq!(err, ServeError::Model(HdError::ZeroNorm));
        assert!(r.get(&id).is_none());
    }

    #[test]
    fn partially_trained_models_are_rejected_by_default() {
        // Regression (PR 2 validation gap): some-zero-norm models used to
        // pass the probe-predict check and then serve NEG_INFINITY rows.
        let r = ShardedRegistry::new();
        let id = default_id();
        let err = r
            .publish(&id, partially_trained(32), "partial")
            .unwrap_err();
        assert_eq!(err, ServeError::UntrainedClasses(vec![1, 2]));
        assert!(r.get(&id).is_none());
    }

    #[test]
    fn publish_partial_allows_and_reports_untrained_classes() {
        let r = ShardedRegistry::new();
        let id = default_id();
        let (version, untrained) = r
            .publish_partial(&id, partially_trained(32), "partial")
            .unwrap();
        assert_eq!((version, untrained), (1, vec![1, 2]));
        // The published model serves; untrained classes can never win.
        let q = Hypervector::from_vec(vec![1.0; 32]);
        let p = r.get(&id).unwrap().model().predict(&q).unwrap();
        assert_eq!(p.class, 0);
        assert_eq!(p.scores[1], f64::NEG_INFINITY);
        // All-zero still refuses even via the partial path.
        let err = r
            .publish_partial(&id, HdModel::new(2, 32).unwrap(), "zero")
            .unwrap_err();
        assert_eq!(err, ServeError::Model(HdError::ZeroNorm));
    }

    #[test]
    fn old_snapshots_survive_a_swap() {
        let r = ShardedRegistry::with_model(trained(16, 1.0), "v1").unwrap();
        let id = default_id();
        let old = r.get(&id).unwrap();
        r.publish(&id, trained(16, 3.0), "v2").unwrap();
        // The old Arc is still fully usable.
        assert_eq!(old.version, 1);
        let q = Hypervector::from_vec(vec![1.0; 16]);
        assert_eq!(old.model().predict(&q).unwrap().class, 0);
        assert_eq!(r.get(&id).unwrap().version, 2);
    }

    #[test]
    fn withdraw_empties_the_registry() {
        let r = ShardedRegistry::with_model(trained(16, 1.0), "v1").unwrap();
        let id = default_id();
        let taken = r.withdraw(&id).unwrap();
        assert_eq!(taken.version, 1);
        assert!(r.get(&id).is_none());
        // A later publish still advances the version counter.
        assert_eq!(r.publish(&id, trained(16, 1.0), "v2").unwrap(), 2);
    }

    #[test]
    fn publish_compiles_a_plan_matching_the_snapshot() {
        use privehd_core::PlanKernel;
        let r = ShardedRegistry::new();
        let id = default_id();
        // ±1 rows pack exactly → the compiled kernel is the popcount one.
        r.publish(&id, trained(512, 1.0), "signed").unwrap();
        let served = r.get(&id).unwrap();
        assert_eq!(served.plan().dim(), 512);
        assert!(matches!(
            served.plan().kernel(),
            PlanKernel::PackedPopcount { hv_words: 8, .. }
        ));
        // Rows that do not factor into sign×scale compile to the dense
        // tiled kernel.
        let mut mixed = HdModel::new(2, 512).unwrap();
        let row: Vec<f64> = (0..512).map(|j| 1.0 + (j % 3) as f64).collect();
        mixed
            .bundle(0, &Hypervector::from_vec(row.clone()))
            .unwrap();
        mixed
            .bundle(1, &Hypervector::from_vec(row.iter().map(|v| -v).collect()))
            .unwrap();
        r.publish(&id, mixed, "mixed").unwrap();
        assert!(matches!(
            r.get(&id).unwrap().plan().kernel(),
            PlanKernel::DenseTiled { .. }
        ));
    }

    #[test]
    fn republish_swaps_plan_atomically_with_the_snapshot() {
        use privehd_core::PlanKernel;
        // Plan and snapshot live in the same Arc: a hot swap can never
        // pair the new model with the old plan or vice versa.
        let r = ShardedRegistry::with_model(trained(512, 1.0), "v1").unwrap();
        let id = default_id();
        let old = r.get(&id).unwrap();
        assert!(matches!(
            old.plan().kernel(),
            PlanKernel::PackedPopcount { .. }
        ));
        let mut mixed = HdModel::new(2, 512).unwrap();
        let row: Vec<f64> = (0..512).map(|j| 1.0 + (j % 3) as f64).collect();
        mixed
            .bundle(0, &Hypervector::from_vec(row.clone()))
            .unwrap();
        mixed
            .bundle(1, &Hypervector::from_vec(row.iter().map(|v| -v).collect()))
            .unwrap();
        r.publish(&id, mixed, "v2").unwrap();
        let new = r.get(&id).unwrap();
        // The retained old Arc still pairs its own model with its own
        // plan and keeps serving.
        assert!(matches!(
            old.plan().kernel(),
            PlanKernel::PackedPopcount { .. }
        ));
        let q = Hypervector::from_vec(vec![1.0; 512]);
        assert_eq!(
            old.plan().predict_dense(&q).unwrap(),
            old.model().predict(&q).unwrap()
        );
        // The new snapshot carries the freshly compiled plan.
        assert!(matches!(new.plan().kernel(), PlanKernel::DenseTiled { .. }));
        assert_eq!(
            new.plan().predict_dense(&q).unwrap(),
            new.model().predict(&q).unwrap()
        );
    }

    #[test]
    fn sharded_tenants_version_independently() {
        let r = ShardedRegistry::with_shards(4).unwrap();
        let (a, b) = (ModelId::new("a"), ModelId::new("b"));
        assert!(r.is_empty());
        assert_eq!(r.publish(&a, trained(16, 1.0), "a1").unwrap(), 1);
        assert_eq!(r.publish(&a, trained(16, 2.0), "a2").unwrap(), 2);
        assert_eq!(r.publish(&b, trained(16, 1.0), "b1").unwrap(), 1);
        assert_eq!(r.version(&a), 2);
        assert_eq!(r.version(&b), 1);
        assert_eq!(r.len(), 2);
        assert_eq!(r.model_ids(), vec![a.clone(), b.clone()]);
        assert!(r.get(&ModelId::new("missing")).is_none());
        assert_eq!(r.get(&a).unwrap().label, "a2");
    }

    #[test]
    fn sharded_withdraw_is_per_tenant_and_versions_survive() {
        let r = ShardedRegistry::new();
        let (a, b) = (ModelId::new("a"), ModelId::new("b"));
        r.publish(&a, trained(16, 1.0), "a1").unwrap();
        r.publish(&b, trained(16, 1.0), "b1").unwrap();
        let taken = r.withdraw(&a).unwrap();
        assert_eq!(taken.version, 1);
        assert!(r.get(&a).is_none());
        assert!(r.get(&b).is_some());
        assert_eq!(r.len(), 1);
        assert_eq!(r.model_ids(), vec![b]);
        // Withdrawing again is a no-op; the version counter continues.
        assert!(r.withdraw(&a).is_none());
        assert_eq!(r.publish(&a, trained(16, 1.0), "a2").unwrap(), 2);
    }

    #[test]
    fn sharded_validation_matches_single_registry() {
        let r = ShardedRegistry::new();
        let id = ModelId::new("t");
        assert_eq!(
            r.publish(&id, HdModel::new(2, 8).unwrap(), "zero")
                .unwrap_err(),
            ServeError::Model(HdError::ZeroNorm)
        );
        assert_eq!(
            r.publish(&id, partially_trained(8), "partial").unwrap_err(),
            ServeError::UntrainedClasses(vec![1, 2])
        );
        let (v, untrained) = r
            .publish_partial(&id, partially_trained(8), "partial")
            .unwrap();
        assert_eq!((v, untrained), (1, vec![1, 2]));
    }

    #[test]
    fn zero_shards_is_rejected() {
        assert!(matches!(
            ShardedRegistry::with_shards(0),
            Err(ServeError::InvalidConfig(_))
        ));
    }

    #[test]
    fn every_id_maps_to_a_valid_shard() {
        for shards in [1usize, 2, 7, 16] {
            for name in ["a", "tenant-b", "Δ-tenant", "x/y/z", ""] {
                assert!(ModelId::new(name).shard_index(shards) < shards);
            }
        }
    }

    #[test]
    fn old_sharded_snapshots_survive_a_swap() {
        let r = ShardedRegistry::new();
        let id = ModelId::new("t");
        r.publish(&id, trained(16, 1.0), "v1").unwrap();
        let old = r.get(&id).unwrap();
        r.publish(&id, trained(16, 3.0), "v2").unwrap();
        assert_eq!(old.version, 1);
        let q = Hypervector::from_vec(vec![1.0; 16]);
        assert_eq!(old.model().predict(&q).unwrap().class, 0);
        assert_eq!(r.get(&id).unwrap().version, 2);
    }
}
