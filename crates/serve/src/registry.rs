//! Versioned model registry with atomic hot swap.
//!
//! Retraining (or privacy recalibration) produces a new [`HdModel`];
//! publishing it must not pause inference. The registry keeps the live
//! model behind an `RwLock<Arc<…>>` — the Arc-swap pattern: readers
//! take the lock only long enough to clone an [`Arc`] (no contention
//! with inference itself, which runs entirely on the clone), and
//! [`ModelRegistry::publish`] swaps the pointer in one assignment.
//! Batches that grabbed the previous snapshot keep serving it to
//! completion, so a swap never drops or corrupts in-flight requests.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

use privehd_core::{HdError, HdModel};

use crate::error::ServeError;

/// One published model: the weights plus the registry metadata the
/// serving layer reports back with every prediction.
#[derive(Debug)]
pub struct ServedModel {
    /// Monotonically increasing version, 1 for the first publish.
    pub version: u64,
    /// Human label supplied at publish time (e.g. `"isolet-retrain-3"`).
    pub label: String,
    model: HdModel,
}

impl ServedModel {
    /// The model weights.
    pub fn model(&self) -> &HdModel {
        &self.model
    }
}

/// Registry holding the live model and its version history metadata.
///
/// # Examples
///
/// ```
/// use privehd_core::{HdModel, Hypervector};
/// use privehd_serve::ModelRegistry;
///
/// # fn main() -> Result<(), privehd_serve::ServeError> {
/// let registry = ModelRegistry::new();
/// assert!(registry.current().is_none());
///
/// let mut model = HdModel::new(2, 64)?;
/// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
/// let v1 = registry.publish(model.clone(), "v1")?;
/// let v2 = registry.publish(model, "v2")?;
/// assert_eq!((v1, v2), (1, 2));
/// assert_eq!(registry.current().unwrap().version, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ModelRegistry {
    live: RwLock<Option<Arc<ServedModel>>>,
    next_version: AtomicU64,
}

impl ModelRegistry {
    /// Creates an empty registry (no model published).
    pub fn new() -> Self {
        Self {
            live: RwLock::new(None),
            next_version: AtomicU64::new(1),
        }
    }

    /// Creates a registry with `model` already published as version 1.
    ///
    /// # Errors
    ///
    /// Propagates [`ModelRegistry::publish`] validation errors.
    pub fn with_model(model: HdModel, label: &str) -> Result<Self, ServeError> {
        let registry = Self::new();
        registry.publish(model, label)?;
        Ok(registry)
    }

    /// Publishes `model` as the new live version and returns its version
    /// number. Norms are refreshed once here so every worker thread
    /// reads the cached values instead of recomputing per prediction.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Model`] wrapping [`HdError::ZeroNorm`] if
    /// the model is untrained (all-zero classes) — publishing it would
    /// make every subsequent prediction fail.
    pub fn publish(&self, mut model: HdModel, label: &str) -> Result<u64, ServeError> {
        model.refresh_norms();
        // Reject models that cannot serve a single query.
        let probe = privehd_core::Hypervector::zeros(model.dim()).map_err(ServeError::Model)?;
        if let Err(HdError::ZeroNorm) = model.predict(&probe) {
            return Err(ServeError::Model(HdError::ZeroNorm));
        }
        // Allocate the version while holding the write lock: with the
        // counter bumped outside it, two racing publishes could install
        // the older version last and break monotonicity.
        let mut live = self.live.write().expect("registry lock poisoned");
        let version = self.next_version.fetch_add(1, Ordering::Relaxed);
        *live = Some(Arc::new(ServedModel {
            version,
            label: label.to_owned(),
            model,
        }));
        Ok(version)
    }

    /// The live model snapshot, or `None` before the first publish.
    ///
    /// The returned [`Arc`] stays valid across later publishes, which is
    /// what makes hot swapping safe for in-flight batches.
    pub fn current(&self) -> Option<Arc<ServedModel>> {
        self.live.read().expect("registry lock poisoned").clone()
    }

    /// The live version number, or 0 before the first publish.
    pub fn version(&self) -> u64 {
        self.current().map_or(0, |m| m.version)
    }

    /// Withdraws the live model (e.g. after discovering a bad publish).
    /// Returns the snapshot that was live, if any. In-flight batches
    /// holding that snapshot still complete.
    pub fn withdraw(&self) -> Option<Arc<ServedModel>> {
        self.live.write().expect("registry lock poisoned").take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_core::Hypervector;

    fn trained(dim: usize, fill: f64) -> HdModel {
        let mut m = HdModel::new(2, dim).unwrap();
        m.bundle(0, &Hypervector::from_vec(vec![fill; dim]))
            .unwrap();
        m.bundle(1, &Hypervector::from_vec(vec![-fill; dim]))
            .unwrap();
        m
    }

    #[test]
    fn versions_are_monotonic() {
        let r = ModelRegistry::new();
        assert_eq!(r.version(), 0);
        assert_eq!(r.publish(trained(32, 1.0), "a").unwrap(), 1);
        assert_eq!(r.publish(trained(32, 2.0), "b").unwrap(), 2);
        assert_eq!(r.version(), 2);
        assert_eq!(r.current().unwrap().label, "b");
    }

    #[test]
    fn untrained_models_are_rejected() {
        let r = ModelRegistry::new();
        let err = r.publish(HdModel::new(2, 32).unwrap(), "zero").unwrap_err();
        assert_eq!(err, ServeError::Model(HdError::ZeroNorm));
        assert!(r.current().is_none());
    }

    #[test]
    fn old_snapshots_survive_a_swap() {
        let r = ModelRegistry::with_model(trained(16, 1.0), "v1").unwrap();
        let old = r.current().unwrap();
        r.publish(trained(16, 3.0), "v2").unwrap();
        // The old Arc is still fully usable.
        assert_eq!(old.version, 1);
        let q = Hypervector::from_vec(vec![1.0; 16]);
        assert_eq!(old.model().predict(&q).unwrap().class, 0);
        assert_eq!(r.current().unwrap().version, 2);
    }

    #[test]
    fn withdraw_empties_the_registry() {
        let r = ModelRegistry::with_model(trained(16, 1.0), "v1").unwrap();
        let taken = r.withdraw().unwrap();
        assert_eq!(taken.version, 1);
        assert!(r.current().is_none());
        // A later publish still advances the version counter.
        assert_eq!(r.publish(trained(16, 1.0), "v2").unwrap(), 2);
    }
}
