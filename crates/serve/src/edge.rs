//! The client-side (edge) pipeline: encode locally, obfuscate, offload.
//!
//! Prive-HD's threat model (§III-C of the paper) keeps raw features and
//! full-precision encodings on the device; the untrusted host only ever
//! receives a quantized, dimension-masked hypervector. [`ClientEdge`]
//! packages that contract: it owns a [`ScalarEncoder`] and an
//! [`Obfuscator`] built for the same dimensionality, and queries leave
//! it only through [`ClientEdge::prepare`] (dense, any obfuscation) or
//! [`ClientEdge::prepare_packed`] (bit-packed, bipolar-unmasked
//! obfuscation — the 1-bit/dim wire representation).

use privehd_core::kernels::{scalar_encode_packed, scalar_encode_packed_batch};
use privehd_core::{
    BipolarHv, EncodePlan, Encoder, EncoderConfig, HdError, Hypervector, ObfuscateConfig,
    Obfuscator, QuantScheme, ScalarEncoder,
};

use crate::error::ServeError;

/// Edge-device query preparation: `ScalarEncoder` ∘ `Obfuscator`.
///
/// # Examples
///
/// ```
/// use privehd_core::{EncoderConfig, ObfuscateConfig, QuantScheme};
/// use privehd_serve::ClientEdge;
///
/// # fn main() -> Result<(), privehd_serve::ServeError> {
/// let edge = ClientEdge::new(
///     EncoderConfig::new(8, 1_024).with_seed(5),
///     ObfuscateConfig::new(QuantScheme::Bipolar).with_masked_dims(256),
/// )?;
/// let sent = edge.prepare(&[0.1, 0.9, 0.4, 0.2, 0.8, 0.3, 0.6, 0.5])?;
/// // Only ±1 and masked-out zeros ever leave the device.
/// assert!(sent.as_slice().iter().all(|v| v.abs() <= 1.0));
/// assert_eq!(sent.count_zeros(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClientEdge {
    encoder: ScalarEncoder,
    obfuscator: Obfuscator,
    /// The encode∘obfuscate transform compiled once at construction
    /// ([`EncodePlan::from_obfuscator`], so the permutation built for
    /// `obfuscator` is reused, not re-materialized): [`ClientEdge::prepare`]
    /// is a single table-driven pass, bit-identical to the generic
    /// composition.
    plan: EncodePlan,
}

impl ClientEdge {
    /// Builds the edge pipeline; the obfuscator is sized to the
    /// encoder's output dimensionality, and the encode∘obfuscate plan is
    /// compiled here, once — per-query preparation never rebuilds the
    /// permutation.
    ///
    /// # Errors
    ///
    /// Propagates encoder/obfuscator construction errors as
    /// [`ServeError::Model`].
    pub fn new(
        encoder_config: EncoderConfig,
        obfuscate_config: ObfuscateConfig,
    ) -> Result<Self, ServeError> {
        let encoder = ScalarEncoder::new(encoder_config)?;
        let obfuscator = Obfuscator::new(encoder.dim(), obfuscate_config)?;
        let plan = EncodePlan::from_obfuscator(&obfuscator);
        Ok(Self {
            encoder,
            obfuscator,
            plan,
        })
    }

    /// Encodes raw features and obfuscates the encoding — the exact
    /// hypervector an edge device would put on the wire.
    ///
    /// Runs the [`EncodePlan`] compiled at construction: one
    /// table-driven pass (for bipolar obfuscation, masked dimensions are
    /// never even accumulated), bit-identical to
    /// `obfuscator().obfuscate(&encoder().encode(features)?)`.
    ///
    /// # Errors
    ///
    /// Propagates feature-count/dimension errors as [`ServeError::Model`].
    pub fn prepare(&self, features: &[f64]) -> Result<Hypervector, ServeError> {
        Ok(self.plan.apply(&self.encoder, features)?)
    }

    /// Prepares a batch of feature vectors: the whole batch is encoded
    /// through [`Encoder::encode_batch`] (which fans out over the
    /// persistent `privehd_core` worker pool), then obfuscated.
    ///
    /// # Errors
    ///
    /// Propagates the first *encoding* error (in input order), then the
    /// first *obfuscation* error — the two phases run batch-wide, not
    /// interleaved per input. (For a constructed `ClientEdge` the
    /// obfuscator is sized to the encoder, so in practice only encoding
    /// errors occur.)
    pub fn prepare_batch(&self, inputs: &[Vec<f64>]) -> Result<Vec<Hypervector>, ServeError> {
        let encoded = self.encoder.encode_batch(inputs)?;
        encoded
            .iter()
            .map(|h| Ok(self.obfuscator.obfuscate(h)?))
            .collect()
    }

    /// Encodes raw features straight into the bit-packed bipolar wire
    /// representation — 1 bit/dim, never materializing the dense
    /// encoding or its `f64` quantization.
    ///
    /// The fused kernel ([`scalar_encode_packed`]) resolves each
    /// dimension's sign with integer popcount arithmetic, so the result
    /// equals `prepare(features)` bipolar-quantized, bit for bit — but
    /// at a fraction of the encode cost and 1/64th the payload.
    ///
    /// Only edges configured with [`QuantScheme::Bipolar`] and **zero
    /// masked dimensions** can prepare packed queries: a masked
    /// dimension is an exact `0.0`, which one bit cannot carry. Masked
    /// edges must keep using [`ClientEdge::prepare`].
    ///
    /// # Errors
    ///
    /// [`ServeError::Model`] for a non-bipolar or masked obfuscation
    /// configuration, a wrong feature count, or a NaN feature value
    /// (the packed grid quantization has no NaN it could propagate).
    pub fn prepare_packed(&self, features: &[f64]) -> Result<BipolarHv, ServeError> {
        self.require_packable()?;
        self.require_feature_count(features)?;
        scalar_encode_packed(
            self.encoder.item_memory_transposed(),
            features,
            self.encoder.config().levels,
        )
        .ok_or_else(nan_feature_error)
    }

    /// Batch form of [`ClientEdge::prepare_packed`]: amortizes the
    /// item-memory traffic across the whole batch (each transposed row
    /// streams once per batch instead of once per query).
    ///
    /// # Errors
    ///
    /// Same contract as [`ClientEdge::prepare_packed`]; a NaN anywhere
    /// in the batch fails the whole call (batch-wide, like
    /// [`ClientEdge::prepare_batch`]'s phases).
    pub fn prepare_batch_packed(&self, inputs: &[Vec<f64>]) -> Result<Vec<BipolarHv>, ServeError> {
        self.require_packable()?;
        for x in inputs {
            self.require_feature_count(x)?;
        }
        let slices: Vec<&[f64]> = inputs.iter().map(Vec::as_slice).collect();
        scalar_encode_packed_batch(
            self.encoder.item_memory_transposed(),
            &slices,
            self.encoder.config().levels,
        )
        .ok_or_else(nan_feature_error)
    }

    fn require_packable(&self) -> Result<(), ServeError> {
        let cfg = self.obfuscator.config();
        if cfg.scheme != QuantScheme::Bipolar || cfg.masked_dims != 0 {
            return Err(ServeError::Model(HdError::InvalidConfig(
                "packed preparation needs a bipolar, unmasked obfuscation \
                 (1 bit/dim cannot carry masked-out zeros)"
                    .to_owned(),
            )));
        }
        Ok(())
    }

    fn require_feature_count(&self, features: &[f64]) -> Result<(), ServeError> {
        if features.len() != self.encoder.features() {
            return Err(ServeError::Model(HdError::FeatureCountMismatch {
                expected: self.encoder.features(),
                actual: features.len(),
            }));
        }
        Ok(())
    }

    /// Number of input features the edge expects.
    pub fn features(&self) -> usize {
        self.encoder.features()
    }

    /// Hypervector dimensionality of prepared queries.
    pub fn dim(&self) -> usize {
        self.encoder.dim()
    }

    /// Bits on the wire per prepared query (the §III-C transfer saving).
    pub fn payload_bits(&self) -> usize {
        self.obfuscator.payload_bits()
    }

    /// The underlying encoder (the server needs the same basis to train
    /// the model the obfuscated queries are matched against).
    pub fn encoder(&self) -> &ScalarEncoder {
        &self.encoder
    }

    /// The underlying obfuscator.
    pub fn obfuscator(&self) -> &Obfuscator {
        &self.obfuscator
    }

    /// The encode∘obfuscate plan compiled at construction — the
    /// transform [`ClientEdge::prepare`] actually runs.
    pub fn plan(&self) -> &EncodePlan {
        &self.plan
    }
}

fn nan_feature_error() -> ServeError {
    ServeError::Model(HdError::InvalidConfig(
        "packed preparation rejects NaN feature values".to_owned(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(masked: usize) -> ClientEdge {
        ClientEdge::new(
            EncoderConfig::new(6, 512).with_seed(9),
            ObfuscateConfig::new(QuantScheme::Bipolar)
                .with_masked_dims(masked)
                .with_seed(3),
        )
        .unwrap()
    }

    #[test]
    fn prepare_matches_manual_composition() {
        let e = edge(128);
        let x = [0.1, 0.4, 0.9, 0.2, 0.7, 0.5];
        let manual = e
            .obfuscator()
            .obfuscate(&e.encoder().encode(&x).unwrap())
            .unwrap();
        assert_eq!(e.prepare(&x).unwrap(), manual);
    }

    #[test]
    fn prepared_queries_are_obfuscated() {
        let e = edge(100);
        let sent = e.prepare(&[0.3, 0.9, 0.1, 0.6, 0.2, 0.8]).unwrap();
        assert_eq!(sent.dim(), 512);
        assert_eq!(sent.count_zeros(), 100);
        for &v in sent.as_slice() {
            assert!(v == 0.0 || v == 1.0 || v == -1.0, "leaked value {v}");
        }
        assert_eq!(e.payload_bits(), 412);
    }

    #[test]
    fn feature_count_is_enforced() {
        let e = edge(0);
        assert!(e.prepare(&[0.5; 4]).is_err());
        assert_eq!(e.features(), 6);
    }

    #[test]
    fn batch_preparation_agrees_with_single() {
        let e = edge(32);
        let inputs: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..6).map(|k| ((i + k) % 7) as f64 / 6.0).collect())
            .collect();
        let batch = e.prepare_batch(&inputs).unwrap();
        for (x, b) in inputs.iter().zip(&batch) {
            assert_eq!(&e.prepare(x).unwrap(), b);
        }
    }

    #[test]
    fn packed_preparation_matches_dense_prepare() {
        // Unmasked bipolar edge: the fused packed encode must equal the
        // dense encode ∘ obfuscate path sign for sign.
        let e = edge(0);
        let inputs: Vec<Vec<f64>> = (0..8)
            .map(|i| (0..6).map(|k| ((3 * i + k) % 11) as f64 / 10.0).collect())
            .collect();
        let batch = e.prepare_batch_packed(&inputs).unwrap();
        for (x, p) in inputs.iter().zip(&batch) {
            assert_eq!(&e.prepare_packed(x).unwrap(), p, "single == batch");
            assert_eq!(p.to_dense(), e.prepare(x).unwrap(), "packed == dense");
        }
    }

    #[test]
    fn packed_preparation_requires_unmasked_bipolar() {
        // Masked dims are exact zeros — not representable in 1 bit.
        assert!(edge(100).prepare_packed(&[0.5; 6]).is_err());
        let ternary = ClientEdge::new(
            EncoderConfig::new(6, 512).with_seed(9),
            ObfuscateConfig::new(QuantScheme::Ternary),
        )
        .unwrap();
        assert!(ternary.prepare_packed(&[0.5; 6]).is_err());
        assert!(ternary.prepare_batch_packed(&[vec![0.5; 6]]).is_err());
    }

    #[test]
    fn packed_preparation_rejects_nan_and_bad_arity() {
        let e = edge(0);
        assert!(e.prepare_packed(&[0.5; 4]).is_err(), "feature count");
        let mut x = vec![0.5; 6];
        x[3] = f64::NAN;
        assert!(e.prepare_packed(&x).is_err(), "NaN feature");
        assert!(
            e.prepare_batch_packed(&[vec![0.5; 6], x]).is_err(),
            "NaN fails the whole batch"
        );
    }
}
