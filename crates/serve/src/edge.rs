//! The client-side (edge) pipeline: encode locally, obfuscate, offload.
//!
//! Prive-HD's threat model (§III-C of the paper) keeps raw features and
//! full-precision encodings on the device; the untrusted host only ever
//! receives a quantized, dimension-masked hypervector. [`ClientEdge`]
//! packages that contract: it owns a [`ScalarEncoder`] and an
//! [`Obfuscator`] built for the same dimensionality, and its
//! [`ClientEdge::prepare`] is the *only* way it exposes a query.

use privehd_core::{
    Encoder, EncoderConfig, Hypervector, ObfuscateConfig, Obfuscator, ScalarEncoder,
};

use crate::error::ServeError;

/// Edge-device query preparation: `ScalarEncoder` ∘ `Obfuscator`.
///
/// # Examples
///
/// ```
/// use privehd_core::{EncoderConfig, ObfuscateConfig, QuantScheme};
/// use privehd_serve::ClientEdge;
///
/// # fn main() -> Result<(), privehd_serve::ServeError> {
/// let edge = ClientEdge::new(
///     EncoderConfig::new(8, 1_024).with_seed(5),
///     ObfuscateConfig::new(QuantScheme::Bipolar).with_masked_dims(256),
/// )?;
/// let sent = edge.prepare(&[0.1, 0.9, 0.4, 0.2, 0.8, 0.3, 0.6, 0.5])?;
/// // Only ±1 and masked-out zeros ever leave the device.
/// assert!(sent.as_slice().iter().all(|v| v.abs() <= 1.0));
/// assert_eq!(sent.count_zeros(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ClientEdge {
    encoder: ScalarEncoder,
    obfuscator: Obfuscator,
}

impl ClientEdge {
    /// Builds the edge pipeline; the obfuscator is sized to the
    /// encoder's output dimensionality.
    ///
    /// # Errors
    ///
    /// Propagates encoder/obfuscator construction errors as
    /// [`ServeError::Model`].
    pub fn new(
        encoder_config: EncoderConfig,
        obfuscate_config: ObfuscateConfig,
    ) -> Result<Self, ServeError> {
        let encoder = ScalarEncoder::new(encoder_config)?;
        let obfuscator = Obfuscator::new(encoder.dim(), obfuscate_config)?;
        Ok(Self {
            encoder,
            obfuscator,
        })
    }

    /// Encodes raw features and obfuscates the encoding — the exact
    /// hypervector an edge device would put on the wire.
    ///
    /// # Errors
    ///
    /// Propagates feature-count/dimension errors as [`ServeError::Model`].
    pub fn prepare(&self, features: &[f64]) -> Result<Hypervector, ServeError> {
        let encoded = self.encoder.encode(features)?;
        Ok(self.obfuscator.obfuscate(&encoded)?)
    }

    /// Prepares a batch of feature vectors: the whole batch is encoded
    /// through [`Encoder::encode_batch`] (which fans out over the
    /// persistent `privehd_core` worker pool), then obfuscated.
    ///
    /// # Errors
    ///
    /// Propagates the first *encoding* error (in input order), then the
    /// first *obfuscation* error — the two phases run batch-wide, not
    /// interleaved per input. (For a constructed `ClientEdge` the
    /// obfuscator is sized to the encoder, so in practice only encoding
    /// errors occur.)
    pub fn prepare_batch(&self, inputs: &[Vec<f64>]) -> Result<Vec<Hypervector>, ServeError> {
        let encoded = self.encoder.encode_batch(inputs)?;
        encoded
            .iter()
            .map(|h| Ok(self.obfuscator.obfuscate(h)?))
            .collect()
    }

    /// Number of input features the edge expects.
    pub fn features(&self) -> usize {
        self.encoder.features()
    }

    /// Hypervector dimensionality of prepared queries.
    pub fn dim(&self) -> usize {
        self.encoder.dim()
    }

    /// Bits on the wire per prepared query (the §III-C transfer saving).
    pub fn payload_bits(&self) -> usize {
        self.obfuscator.payload_bits()
    }

    /// The underlying encoder (the server needs the same basis to train
    /// the model the obfuscated queries are matched against).
    pub fn encoder(&self) -> &ScalarEncoder {
        &self.encoder
    }

    /// The underlying obfuscator.
    pub fn obfuscator(&self) -> &Obfuscator {
        &self.obfuscator
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_core::QuantScheme;

    fn edge(masked: usize) -> ClientEdge {
        ClientEdge::new(
            EncoderConfig::new(6, 512).with_seed(9),
            ObfuscateConfig::new(QuantScheme::Bipolar)
                .with_masked_dims(masked)
                .with_seed(3),
        )
        .unwrap()
    }

    #[test]
    fn prepare_matches_manual_composition() {
        let e = edge(128);
        let x = [0.1, 0.4, 0.9, 0.2, 0.7, 0.5];
        let manual = e
            .obfuscator()
            .obfuscate(&e.encoder().encode(&x).unwrap())
            .unwrap();
        assert_eq!(e.prepare(&x).unwrap(), manual);
    }

    #[test]
    fn prepared_queries_are_obfuscated() {
        let e = edge(100);
        let sent = e.prepare(&[0.3, 0.9, 0.1, 0.6, 0.2, 0.8]).unwrap();
        assert_eq!(sent.dim(), 512);
        assert_eq!(sent.count_zeros(), 100);
        for &v in sent.as_slice() {
            assert!(v == 0.0 || v == 1.0 || v == -1.0, "leaked value {v}");
        }
        assert_eq!(e.payload_bits(), 412);
    }

    #[test]
    fn feature_count_is_enforced() {
        let e = edge(0);
        assert!(e.prepare(&[0.5; 4]).is_err());
        assert_eq!(e.features(), 6);
    }

    #[test]
    fn batch_preparation_agrees_with_single() {
        let e = edge(32);
        let inputs: Vec<Vec<f64>> = (0..10)
            .map(|i| (0..6).map(|k| ((i + k) % 7) as f64 / 6.0).collect())
            .collect();
        let batch = e.prepare_batch(&inputs).unwrap();
        for (x, b) in inputs.iter().zip(&batch) {
            assert_eq!(&e.prepare(x).unwrap(), b);
        }
    }
}
