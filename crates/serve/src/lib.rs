//! # privehd-serve
//!
//! Concurrent, batched inference serving for the Prive-HD reproduction —
//! the cloud half of the paper's threat model turned into a
//! service-shaped engine.
//!
//! Prive-HD (*Khaleghi, Imani, Rosing — DAC 2020*) assumes an edge
//! device that encodes and obfuscates queries locally, and an untrusted
//! host that runs the associative search over the class hypervectors.
//! `privehd-core` supplies every algorithmic piece; this crate supplies
//! the serving machinery around them:
//!
//! * [`ShardedRegistry`] / [`ModelId`] — *the* model registry: many
//!   independently versioned models (per tenant, encoder basis, or
//!   privacy budget) spread over per-shard locks, each behind an atomic
//!   hot-swap (`Arc`-swap pattern) so retraining publishes a new
//!   version without pausing inference, and in-flight batches finish on
//!   the snapshot they started with. Publishing also compiles the
//!   snapshot's [`privehd_core::ModelPlan`] — the one-time kernel
//!   selection workers dispatch through. Single-model deployments
//!   publish under [`ModelId::default`] with
//!   [`ShardedRegistry::with_model`].
//! * [`ServeEngine`] — per-tenant admission queues with quotas, a
//!   deficit-round-robin scheduler, an adaptive micro-batcher (flushes
//!   on [`ServeConfig::max_batch`] or [`ServeConfig::max_delay`],
//!   accumulated *per model*) and a worker pool executing single-model
//!   batches. One submit surface for every representation: queries
//!   submitted bit-packed ([`QueryVec::Packed`]) stay packed end to end
//!   and are scored by the compiled plan's `XOR`+`POPCNT` kernel
//!   ([`privehd_core::ModelPlan::predict_packed`]); dense submissions
//!   can opt into the same kernel via [`ServeConfig::packed_fastpath`].
//! * [`ClientEdge`] — the device-side `ScalarEncoder` ∘ `Obfuscator`
//!   composition, guaranteeing the server only ever sees obfuscated
//!   queries.
//! * [`ServeMetrics`] / [`ServeReport`] — throughput, p50/p95/p99
//!   latency from a fixed-bucket histogram, the batch-size
//!   distribution, per-model counters ([`ModelReport`]), and the
//!   stage-level latency decomposition ([`StageReport`]) fed by the
//!   engine's and wire front-end's instrumentation.
//! * [`stats`] — the Prometheus text-format exposition of all of the
//!   above, served over the wire as the `Stats` frame and fetched with
//!   [`wire::WireClient::stats`].
//!
//! See `docs/SERVE.md` in the repository for the multi-tenant API
//! walkthrough, the fairness model, and the shutdown contract. (The
//! pre-unification shims — `submit_to` / `submit_packed` /
//! `ModelRegistry` — served their one deprecation release and are
//! removed; everything submits through `submit(model, query)`.)
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use privehd_core::prelude::*;
//! use privehd_serve::{ClientEdge, ServeConfig, ServeEngine, ShardedRegistry};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Edge side: encode + obfuscate with a shared basis (seed 7).
//! let edge = ClientEdge::new(
//!     EncoderConfig::new(6, 1_024).with_seed(7),
//!     ObfuscateConfig::new(QuantScheme::Bipolar).with_masked_dims(128),
//! )?;
//!
//! // Host side: train on the same basis, publish, serve.
//! let mut model = HdModel::new(2, 1_024)?;
//! for (x, y) in [
//!     (vec![0.9, 0.8, 0.9, 0.1, 0.2, 0.1], 0usize),
//!     (vec![0.1, 0.2, 0.1, 0.9, 0.8, 0.9], 1),
//! ] {
//!     model.bundle(y, &edge.encoder().encode(&x)?)?;
//! }
//! let registry = Arc::new(ShardedRegistry::with_model(model, "demo-v1")?);
//! let engine = ServeEngine::start(registry, ServeConfig::default())?;
//!
//! let served = engine
//!     .submit_default(edge.prepare(&[0.85, 0.75, 0.9, 0.1, 0.15, 0.2])?)?
//!     .wait()?;
//! assert_eq!(served.prediction.class, 0);
//!
//! let report = engine.shutdown();
//! assert_eq!(report.completed, 1);
//! # Ok(())
//! # }
//! ```

// No unsafe: every unsafe site in the workspace lives in privehd-core
// and the vendored readiness layer, under the analyze unsafe-audit
// ledger (see docs/ANALYSIS.md).
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod edge;
pub mod engine;
pub mod error;
pub mod metrics;
pub mod registry;
mod router;
pub mod stats;
pub mod wire;

pub use edge::ClientEdge;
pub use engine::{
    PendingPrediction, QueryVec, ServeConfig, ServeConfigBuilder, ServeEngine, ServedPrediction,
    SubmitHandle,
};
pub use error::ServeError;
pub use metrics::{
    BatchSizeBucket, LatencyHistogram, ModelReport, ServeMetrics, ServeReport, StageReport,
};
pub use registry::{ModelId, ServedModel, ShardedRegistry};
pub use stats::prometheus_text;
pub use wire::{WireClient, WireConfig, WireConfigBuilder, WireServer, WireStatus};

/// Commonly used items, importable with a single `use`.
pub mod prelude {
    pub use crate::edge::ClientEdge;
    pub use crate::engine::{
        PendingPrediction, QueryVec, ServeConfig, ServeConfigBuilder, ServeEngine,
        ServedPrediction, SubmitHandle,
    };
    pub use crate::error::ServeError;
    pub use crate::metrics::{
        BatchSizeBucket, LatencyHistogram, ModelReport, ServeMetrics, ServeReport, StageReport,
    };
    pub use crate::registry::{ModelId, ServedModel, ShardedRegistry};
    pub use crate::stats::prometheus_text;
    pub use crate::wire::{
        WireClient, WireClientError, WireConfig, WireConfigBuilder, WireFault, WirePrediction,
        WireReport, WireServer, WireStatus,
    };
}
