//! The versioned, length-prefixed, CRC-checked binary frame codec.
//!
//! Every message on a Prive-HD serving connection — in either
//! direction — is one frame:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"PVHD"
//! 4       1     protocol version (currently 1)
//! 5       1     frame kind
//! 6       8     request id (u64 LE, client-chosen, echoed in responses)
//! 14      4     body length (u32 LE, bytes of body only)
//! 18      n     body (layout depends on kind)
//! 18+n    4     CRC-32 (IEEE) over bytes [0, 18+n)
//! ```
//!
//! The 18-byte header layout (through the body-length field) is frozen
//! across protocol versions, so a server can always salvage the request
//! id and answer a version it does not speak with a typed error frame.
//!
//! Request bodies carry a [`ModelId`] plus one of two payload kinds
//! ([`QueryPayload`]): a bit-packed bipolar query — the paper's
//! obfuscated hypervector, 1 bit per dimension on the wire — or raw
//! feature scalars for deployments that delegate encode ∘ obfuscate to
//! a server-side [`crate::ClientEdge`]. Response bodies are either a
//! [`WirePrediction`] or a [`WireFault`] with a typed [`WireStatus`].
//!
//! [`Frame::decode`] is incremental: fed the front of a receive buffer
//! it returns `Ok(None)` while a frame is still truncated, the decoded
//! frame plus its consumed length once whole, or a typed [`FrameError`]
//! for malformed input. Length and structure are validated *before*
//! any payload-sized allocation, so a hostile length field cannot blow
//! up memory.

use std::time::Duration;

use privehd_core::BipolarHv;

use crate::registry::ModelId;
use crate::wire::crc::crc32;

// analyze: wire-freeze — the constants through the frame-kind table
// below define the on-wire layout; any edit must bump WIRE_VERSION and
// regenerate analysis/wire_frozen.toml (see docs/ANALYSIS.md).
/// Frame magic: the first four bytes of every frame.
pub const MAGIC: [u8; 4] = *b"PVHD";
/// Protocol version this build speaks.
pub const WIRE_VERSION: u8 = 1;
/// Fixed header length (magic + version + kind + request id + body
/// length).
pub const HEADER_LEN: usize = 18;
/// Trailer length (the CRC-32).
pub const TRAILER_LEN: usize = 4;
/// Default cap on the body length a peer will accept (1 MiB — a
/// 64k-dimension packed query is 8 KiB, so this is generous).
pub const DEFAULT_MAX_BODY: usize = 1 << 20;

const KIND_REQ_PACKED: u8 = 0x01;
const KIND_REQ_RAW: u8 = 0x02;
const KIND_REQ_STATS: u8 = 0x03;
const KIND_RESP_OK: u8 = 0x81;
const KIND_RESP_ERR: u8 = 0x82;
const KIND_RESP_STATS: u8 = 0x83;
// analyze: end-wire-freeze

/// Typed decode/encode failures. Any decode error is grounds for
/// closing the connection: after malformed bytes the stream cannot be
/// re-synchronized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic,
    /// The peer speaks a protocol version this build does not.
    UnsupportedVersion(u8),
    /// The frame kind byte is not one this build knows.
    UnknownKind(u8),
    /// The declared body length exceeds the configured cap.
    Oversized {
        /// Declared body length in bytes.
        len: usize,
        /// The cap it exceeded.
        max: usize,
    },
    /// The CRC-32 trailer did not match the frame bytes.
    BadCrc {
        /// CRC computed over the received bytes.
        computed: u32,
        /// CRC carried in the trailer.
        received: u32,
    },
    /// The body did not parse under its declared kind (truncated
    /// fields, trailing bytes, field/length mismatch, non-UTF-8 model
    /// id, …).
    BadBody(&'static str),
    /// An error-response frame carried an unknown status code.
    BadStatus(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "bad frame magic"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            FrameError::UnknownKind(k) => write!(f, "unknown frame kind {k:#04x}"),
            FrameError::Oversized { len, max } => {
                write!(f, "declared body length {len} exceeds cap {max}")
            }
            FrameError::BadCrc { computed, received } => {
                write!(
                    f,
                    "CRC mismatch (computed {computed:#010x}, received {received:#010x})"
                )
            }
            FrameError::BadBody(why) => write!(f, "malformed frame body: {why}"),
            FrameError::BadStatus(code) => write!(f, "unknown wire status code {code}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Typed status of an error-response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireStatus {
    /// Backpressure: the engine queue is full or the connection is at
    /// its in-flight cap. Retry with backoff.
    Busy,
    /// The engine is shut down (or shutting down); no retry will help
    /// on this server.
    Closed,
    /// No model is published under the requested id.
    NoModel,
    /// The HD computation rejected the query (dimension mismatch, …).
    ModelError,
    /// A raw-features request arrived for a model with no server-side
    /// edge registered.
    UnsupportedPayload,
    /// The peer sent bytes that did not parse as a frame; the
    /// connection is closed after this response.
    BadFrame,
    /// The peer declared a body length over the server's cap; the
    /// connection is closed after this response.
    TooLarge,
    /// The peer speaks a protocol version this server does not; the
    /// connection is closed after this response.
    UnsupportedVersion,
}

impl WireStatus {
    /// The on-wire status code.
    pub fn code(self) -> u8 {
        match self {
            WireStatus::Busy => 1,
            WireStatus::Closed => 2,
            WireStatus::NoModel => 3,
            WireStatus::ModelError => 4,
            WireStatus::UnsupportedPayload => 5,
            WireStatus::BadFrame => 6,
            WireStatus::TooLarge => 7,
            WireStatus::UnsupportedVersion => 8,
        }
    }

    /// Decodes an on-wire status code.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadStatus`] for a code this build does not know.
    pub fn from_code(code: u8) -> Result<Self, FrameError> {
        Ok(match code {
            1 => WireStatus::Busy,
            2 => WireStatus::Closed,
            3 => WireStatus::NoModel,
            4 => WireStatus::ModelError,
            5 => WireStatus::UnsupportedPayload,
            6 => WireStatus::BadFrame,
            7 => WireStatus::TooLarge,
            8 => WireStatus::UnsupportedVersion,
            other => return Err(FrameError::BadStatus(other)),
        })
    }

    /// True for statuses a client may retry after backing off
    /// (transient backpressure, as opposed to protocol or model
    /// errors).
    pub fn is_retryable(self) -> bool {
        matches!(self, WireStatus::Busy)
    }
}

impl std::fmt::Display for WireStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let name = match self {
            WireStatus::Busy => "busy",
            WireStatus::Closed => "closed",
            WireStatus::NoModel => "no-model",
            WireStatus::ModelError => "model-error",
            WireStatus::UnsupportedPayload => "unsupported-payload",
            WireStatus::BadFrame => "bad-frame",
            WireStatus::TooLarge => "too-large",
            WireStatus::UnsupportedVersion => "unsupported-version",
        };
        f.write_str(name)
    }
}

/// The error half of a response frame: a typed status plus a
/// human-readable detail string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFault {
    /// Typed status the client can branch on.
    pub status: WireStatus,
    /// Free-form detail (e.g. the model error text). May be empty.
    pub detail: String,
}

impl WireFault {
    /// Builds a fault with a detail message.
    pub fn new(status: WireStatus, detail: impl Into<String>) -> Self {
        Self {
            status,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for WireFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.detail.is_empty() {
            write!(f, "{}", self.status)
        } else {
            write!(f, "{}: {}", self.status, self.detail)
        }
    }
}

/// A request's query payload.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryPayload {
    /// A bit-packed bipolar (obfuscated) hypervector — 1 bit per
    /// dimension on the wire, the paper's §III-C transfer saving.
    Packed(BipolarHv),
    /// Raw feature scalars; the server runs encode ∘ obfuscate through
    /// a registered [`crate::ClientEdge`]. For trusted-path or legacy
    /// clients that cannot encode locally.
    Raw(Vec<f64>),
}

/// One client→server request frame.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Client-chosen id, echoed verbatim in the response.
    pub request_id: u64,
    /// The model (tenant) this query routes to.
    pub model: ModelId,
    /// The query itself.
    pub payload: QueryPayload,
}

/// The success half of a response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct WirePrediction {
    /// The model that served the request.
    pub model: ModelId,
    /// Winning class label.
    pub class: u32,
    /// Winning (normalized) similarity score.
    pub score: f64,
    /// Registry version of the model snapshot that answered.
    pub model_version: u64,
    /// Size of the batch the request rode in.
    pub batch_size: u32,
    /// Server-side end-to-end latency (submission to prediction).
    pub latency: Duration,
}

/// One server→client response frame.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// Echo of the request's id (0 when the request id could not be
    /// recovered from a malformed frame).
    pub request_id: u64,
    /// The served prediction, or a typed fault.
    pub outcome: Result<WirePrediction, WireFault>,
}

/// A client→server stats-scrape request (kind `0x03`, empty body).
/// Answered with a [`StatsReplyFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StatsRequestFrame {
    /// Client-chosen id, echoed in the reply.
    pub request_id: u64,
}

/// A server→client stats response (kind `0x83`): the body is the
/// server's metrics rendered as Prometheus text-format UTF-8 — serve
/// counters, wire counters, per-stage latency decomposition, and the
/// slow-request trace ring (see `docs/OBSERVABILITY.md` for the
/// schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsReplyFrame {
    /// Echo of the request's id.
    pub request_id: u64,
    /// The Prometheus text exposition.
    pub text: String,
}

/// Any frame of the protocol, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// Client→server.
    Request(RequestFrame),
    /// Server→client.
    Response(ResponseFrame),
    /// Client→server stats scrape.
    StatsRequest(StatsRequestFrame),
    /// Server→client stats text.
    StatsReply(StatsReplyFrame),
}

/// Sequential reader over a frame body with typed truncation errors.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or(FrameError::BadBody("field runs past body end"))?;
        // analyze::allow(no-panic-path): `end <= buf.len()` was just
        // checked (checked_add + filter) and `pos <= end` by induction.
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, FrameError> {
        // analyze::allow(no-panic-path): take(2) returns exactly 2
        // bytes or errors, so the array conversion is infallible.
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("len 2")))
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        // analyze::allow(no-panic-path): take(4) returns exactly 4
        // bytes or errors, so the array conversion is infallible.
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("len 4")))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        // analyze::allow(no-panic-path): take(8) returns exactly 8
        // bytes or errors, so the array conversion is infallible.
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("len 8")))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn finish(self) -> Result<(), FrameError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(FrameError::BadBody("trailing bytes after body fields"))
        }
    }
}

fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_model_id(buf: &mut Vec<u8>, model: &ModelId) -> Result<(), FrameError> {
    let bytes = model.as_str().as_bytes();
    let len =
        u16::try_from(bytes.len()).map_err(|_| FrameError::BadBody("model id over 64 KiB"))?;
    put_u16(buf, len);
    buf.extend_from_slice(bytes);
    Ok(())
}

fn read_model_id(r: &mut Reader<'_>) -> Result<ModelId, FrameError> {
    let len = r.u16()? as usize;
    let bytes = r.take(len)?;
    let name =
        std::str::from_utf8(bytes).map_err(|_| FrameError::BadBody("model id is not UTF-8"))?;
    Ok(ModelId::new(name))
}

/// Borrowed view of a request payload, so senders can frame a query
/// without cloning it first (the client hot path).
pub(crate) enum PayloadRef<'a> {
    /// A borrowed bit-packed bipolar query.
    Packed(&'a BipolarHv),
    /// Borrowed raw feature scalars.
    Raw(&'a [f64]),
}

impl<'a> From<&'a QueryPayload> for PayloadRef<'a> {
    fn from(payload: &'a QueryPayload) -> Self {
        match payload {
            QueryPayload::Packed(hv) => PayloadRef::Packed(hv),
            QueryPayload::Raw(features) => PayloadRef::Raw(features),
        }
    }
}

/// Appends the fixed header (with a zero body-length placeholder);
/// returns `(start, len_at)` for [`finish_frame`].
fn begin_frame(out: &mut Vec<u8>, kind: u8, request_id: u64) -> (usize, usize) {
    let start = out.len();
    out.extend_from_slice(&MAGIC);
    out.push(WIRE_VERSION);
    out.push(kind);
    put_u64(out, request_id);
    let len_at = out.len();
    put_u32(out, 0); // patched by finish_frame
    (start, len_at)
}

/// Patches the body length and appends the CRC trailer.
fn finish_frame(out: &mut Vec<u8>, start: usize, len_at: usize) -> Result<(), FrameError> {
    let body_len = u32::try_from(out.len() - (len_at + 4))
        .map_err(|_| FrameError::BadBody("body over u32 bytes"))?;
    // analyze::allow(no-panic-path): begin_frame wrote 4 length bytes
    // at `len_at` and `start <= len_at`; both ranges are in bounds.
    out[len_at..len_at + 4].copy_from_slice(&body_len.to_le_bytes());
    let crc = crc32(&out[start..]);
    put_u32(out, crc);
    Ok(())
}

/// Encodes a request frame from borrowed parts — no payload clone.
///
/// # Errors
///
/// [`FrameError::BadBody`] when a field exceeds its on-wire width.
pub(crate) fn encode_request_into(
    request_id: u64,
    model: &ModelId,
    payload: PayloadRef<'_>,
    out: &mut Vec<u8>,
) -> Result<(), FrameError> {
    let kind = match payload {
        PayloadRef::Packed(_) => KIND_REQ_PACKED,
        PayloadRef::Raw(_) => KIND_REQ_RAW,
    };
    let (start, len_at) = begin_frame(out, kind, request_id);
    put_model_id(out, model)?;
    match payload {
        PayloadRef::Packed(hv) => {
            let dim =
                u32::try_from(hv.dim()).map_err(|_| FrameError::BadBody("dimension over u32"))?;
            put_u32(out, dim);
            for &w in hv.words() {
                put_u64(out, w);
            }
        }
        PayloadRef::Raw(features) => {
            let count = u32::try_from(features.len())
                .map_err(|_| FrameError::BadBody("feature count over u32"))?;
            put_u32(out, count);
            for &x in features {
                put_u64(out, x.to_bits());
            }
        }
    }
    finish_frame(out, start, len_at)
}

impl Frame {
    /// Encodes the frame, appending magic/header/body/CRC to `out`.
    ///
    /// # Errors
    ///
    /// [`FrameError::BadBody`] when a field exceeds its on-wire width
    /// (a model id over 64 KiB, a payload over `u32` elements).
    pub fn encode_into(&self, out: &mut Vec<u8>) -> Result<(), FrameError> {
        let resp = match self {
            Frame::Request(req) => {
                return encode_request_into(req.request_id, &req.model, (&req.payload).into(), out)
            }
            Frame::StatsRequest(req) => {
                let (start, len_at) = begin_frame(out, KIND_REQ_STATS, req.request_id);
                return finish_frame(out, start, len_at);
            }
            Frame::StatsReply(reply) => {
                let (start, len_at) = begin_frame(out, KIND_RESP_STATS, reply.request_id);
                out.extend_from_slice(reply.text.as_bytes());
                return finish_frame(out, start, len_at);
            }
            Frame::Response(resp) => resp,
        };
        let kind = match resp.outcome {
            Ok(_) => KIND_RESP_OK,
            Err(_) => KIND_RESP_ERR,
        };
        let (start, len_at) = begin_frame(out, kind, resp.request_id);
        match &resp.outcome {
            Ok(p) => {
                put_model_id(out, &p.model)?;
                put_u32(out, p.class);
                put_u64(out, p.score.to_bits());
                put_u64(out, p.model_version);
                put_u32(out, p.batch_size);
                let ns = u64::try_from(p.latency.as_nanos()).unwrap_or(u64::MAX);
                put_u64(out, ns);
            }
            Err(fault) => {
                out.push(fault.status.code());
                // Detail is advisory; truncate rather than fail.
                let detail = fault.detail.as_bytes();
                let take = floor_char_boundary(&fault.detail, detail.len().min(1024));
                put_u16(out, take as u16);
                // analyze::allow(no-panic-path): `take <= detail.len()`
                // by the min() above.
                out.extend_from_slice(&detail[..take]);
            }
        }
        finish_frame(out, start, len_at)
    }

    /// Encodes the frame into a fresh buffer.
    ///
    /// # Errors
    ///
    /// Same as [`Frame::encode_into`].
    pub fn encode(&self) -> Result<Vec<u8>, FrameError> {
        let mut out = Vec::new();
        self.encode_into(&mut out)?;
        Ok(out)
    }

    /// Tries to decode one frame from the front of `buf`.
    ///
    /// Returns `Ok(None)` while the frame is incomplete (read more
    /// bytes and retry), or `Ok(Some((frame, consumed)))` — the caller
    /// must discard `consumed` bytes. Structural validation (magic,
    /// version, kind, the `max_body` length cap) happens on the header
    /// alone, *before* waiting for — or allocating — any body bytes.
    ///
    /// # Errors
    ///
    /// A typed [`FrameError`]; the stream cannot be re-synchronized
    /// afterwards and the connection should be closed.
    pub fn decode(buf: &[u8], max_body: usize) -> Result<Option<(Frame, usize)>, FrameError> {
        if buf.len() < HEADER_LEN {
            // Reject garbage as early as its first bytes disagree.
            // analyze::allow(no-panic-path): range end is min-clamped
            // to buf.len().
            if !MAGIC.starts_with(&buf[..buf.len().min(4)]) {
                return Err(FrameError::BadMagic);
            }
            return Ok(None);
        }
        // analyze::allow(no-panic-path): `buf.len() >= HEADER_LEN (18)`
        // past the early return, covering every fixed header range
        // below (..4, [4], [5], 6..14, 14..18).
        if buf[..4] != MAGIC {
            return Err(FrameError::BadMagic);
        }
        // analyze::allow(no-panic-path): see the HEADER_LEN bound above.
        let version = buf[4];
        if version != WIRE_VERSION {
            return Err(FrameError::UnsupportedVersion(version));
        }
        // analyze::allow(no-panic-path): see the HEADER_LEN bound above.
        let kind = buf[5];
        if !matches!(
            kind,
            KIND_REQ_PACKED
                | KIND_REQ_RAW
                | KIND_REQ_STATS
                | KIND_RESP_OK
                | KIND_RESP_ERR
                | KIND_RESP_STATS
        ) {
            return Err(FrameError::UnknownKind(kind));
        }
        // analyze::allow(no-panic-path): fixed header ranges, in
        // bounds per the HEADER_LEN check; 8- and 4-byte slices make
        // the array conversions infallible.
        let request_id = u64::from_le_bytes(buf[6..14].try_into().expect("len 8"));
        let body_len = u32::from_le_bytes(buf[14..18].try_into().expect("len 4")) as usize;
        if body_len > max_body {
            return Err(FrameError::Oversized {
                len: body_len,
                max: max_body,
            });
        }
        let total = HEADER_LEN + body_len + TRAILER_LEN;
        if buf.len() < total {
            return Ok(None);
        }
        let crc_at = HEADER_LEN + body_len;
        // analyze::allow(no-panic-path): `buf.len() >= total` past the
        // incomplete-frame return and `crc_at = total - TRAILER_LEN`,
        // so all three ranges are in bounds and the trailer slice is
        // exactly 4 bytes.
        let computed = crc32(&buf[..crc_at]);
        let received = u32::from_le_bytes(buf[crc_at..total].try_into().expect("len 4"));
        if computed != received {
            return Err(FrameError::BadCrc { computed, received });
        }
        // analyze::allow(no-panic-path): same bound as above.
        let mut r = Reader::new(&buf[HEADER_LEN..crc_at]);
        let frame = match kind {
            KIND_REQ_PACKED => {
                let model = read_model_id(&mut r)?;
                let dim = r.u32()? as usize;
                if dim == 0 {
                    return Err(FrameError::BadBody("zero-dimension query"));
                }
                let word_count = dim.div_ceil(64);
                // Validate the declared length against the actual body
                // before allocating: the words vector below is exactly
                // the size of the received bytes — no dense (8×)
                // expansion happens at decode time, so a hostile `dim`
                // cannot amplify memory here. (Tail bits beyond `dim`
                // are masked by `from_words`, so a frame that sets them
                // decodes to the normalized hypervector.)
                if word_count.checked_mul(8) != Some(r.remaining()) {
                    return Err(FrameError::BadBody("packed words disagree with dimension"));
                }
                let mut words = Vec::with_capacity(word_count);
                for _ in 0..word_count {
                    words.push(r.u64()?);
                }
                Frame::Request(RequestFrame {
                    request_id,
                    model,
                    payload: QueryPayload::Packed(BipolarHv::from_words(dim, words)),
                })
            }
            KIND_REQ_RAW => {
                let model = read_model_id(&mut r)?;
                let count = r.u32()? as usize;
                // checked_mul: on 32-bit targets a hostile count could
                // wrap `count * 8` around to match the body size and
                // drive a huge allocation below.
                if count.checked_mul(8) != Some(r.remaining()) {
                    return Err(FrameError::BadBody("feature bytes disagree with count"));
                }
                let mut features = Vec::with_capacity(count);
                for _ in 0..count {
                    features.push(r.f64()?);
                }
                Frame::Request(RequestFrame {
                    request_id,
                    model,
                    payload: QueryPayload::Raw(features),
                })
            }
            KIND_RESP_OK => {
                let model = read_model_id(&mut r)?;
                let class = r.u32()?;
                let score = r.f64()?;
                let model_version = r.u64()?;
                let batch_size = r.u32()?;
                let latency = Duration::from_nanos(r.u64()?);
                Frame::Response(ResponseFrame {
                    request_id,
                    outcome: Ok(WirePrediction {
                        model,
                        class,
                        score,
                        model_version,
                        batch_size,
                        latency,
                    }),
                })
            }
            KIND_RESP_ERR => {
                let status = WireStatus::from_code(r.u8()?)?;
                let len = r.u16()? as usize;
                let bytes = r.take(len)?;
                let detail = std::str::from_utf8(bytes)
                    .map_err(|_| FrameError::BadBody("fault detail is not UTF-8"))?
                    .to_owned();
                Frame::Response(ResponseFrame {
                    request_id,
                    outcome: Err(WireFault { status, detail }),
                })
            }
            KIND_REQ_STATS => Frame::StatsRequest(StatsRequestFrame { request_id }),
            _ => {
                // KIND_RESP_STATS — the allowlist above admits nothing else.
                let bytes = r.take(r.remaining())?;
                let text = std::str::from_utf8(bytes)
                    .map_err(|_| FrameError::BadBody("stats text is not UTF-8"))?
                    .to_owned();
                Frame::StatsReply(StatsReplyFrame { request_id, text })
            }
        };
        r.finish()?;
        Ok(Some((frame, total)))
    }
}

/// Best-effort recovery of the request id from the front of a buffer
/// whose frame failed (or will fail) to decode, so the error response
/// can still be correlated. Requires intact magic and the id field;
/// the header layout is frozen across versions, so this also works for
/// versions this build does not speak.
pub fn salvage_request_id(buf: &[u8]) -> Option<u64> {
    // analyze::allow(no-panic-path): `..4` is in bounds once the
    // length guard holds; `&&` short-circuits before the index.
    if buf.len() >= 14 && buf[..4] == MAGIC {
        // analyze::allow(no-panic-path): guarded by `buf.len() >= 14`;
        // the 8-byte slice makes the conversion infallible.
        Some(u64::from_le_bytes(buf[6..14].try_into().expect("len 8")))
    } else {
        None
    }
}

/// Largest `n' <= n` that is a char boundary of `s`.
fn floor_char_boundary(s: &str, n: usize) -> usize {
    let mut n = n.min(s.len());
    while n > 0 && !s.is_char_boundary(n) {
        n -= 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn packed_request(dim: usize, seed: u64) -> Frame {
        Frame::Request(RequestFrame {
            request_id: 42,
            model: ModelId::new("tenant-a"),
            payload: QueryPayload::Packed(BipolarHv::random(dim, seed)),
        })
    }

    #[test]
    fn packed_request_roundtrips() {
        for dim in [1usize, 63, 64, 65, 1000, 4096] {
            let frame = packed_request(dim, dim as u64);
            let bytes = frame.encode().unwrap();
            let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
            assert_eq!(consumed, bytes.len());
            assert_eq!(decoded, frame, "dim {dim}");
        }
    }

    #[test]
    fn raw_request_roundtrips() {
        let frame = Frame::Request(RequestFrame {
            request_id: u64::MAX,
            model: ModelId::new("Δ-tenant"),
            payload: QueryPayload::Raw(vec![0.25, -1.5, 0.0, f64::MAX, -0.0]),
        });
        let bytes = frame.encode().unwrap();
        let (decoded, _) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
        assert_eq!(decoded, frame);
    }

    #[test]
    fn responses_roundtrip() {
        let ok = Frame::Response(ResponseFrame {
            request_id: 7,
            outcome: Ok(WirePrediction {
                model: ModelId::new("m"),
                class: 3,
                score: 0.875,
                model_version: 12,
                batch_size: 64,
                latency: Duration::from_micros(1234),
            }),
        });
        let err = Frame::Response(ResponseFrame {
            request_id: 8,
            outcome: Err(WireFault::new(WireStatus::Busy, "queue full")),
        });
        for frame in [ok, err] {
            let bytes = frame.encode().unwrap();
            let (decoded, _) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
            assert_eq!(decoded, frame);
        }
    }

    #[test]
    fn two_frames_decode_back_to_back() {
        let a = packed_request(64, 1);
        let b = Frame::Response(ResponseFrame {
            request_id: 9,
            outcome: Err(WireFault::new(WireStatus::NoModel, "")),
        });
        let mut bytes = a.encode().unwrap();
        let split = bytes.len();
        b.encode_into(&mut bytes).unwrap();
        let (first, consumed) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
        assert_eq!((first, consumed), (a, split));
        let (second, rest) = Frame::decode(&bytes[split..], DEFAULT_MAX_BODY)
            .unwrap()
            .unwrap();
        assert_eq!((second, rest), (b, bytes.len() - split));
    }

    #[test]
    fn stats_frames_roundtrip() {
        let req = Frame::StatsRequest(StatsRequestFrame { request_id: 77 });
        let bytes = req.encode().unwrap();
        // Empty body: header + trailer only.
        assert_eq!(bytes.len(), HEADER_LEN + TRAILER_LEN);
        let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
        assert_eq!((decoded, consumed), (req, bytes.len()));

        for text in [
            "",
            "privehd_serve_completed 12\n",
            "π ≈ 3.14159 — non-ASCII\n",
        ] {
            let reply = Frame::StatsReply(StatsReplyFrame {
                request_id: 78,
                text: text.to_owned(),
            });
            let bytes = reply.encode().unwrap();
            let (decoded, consumed) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
            assert_eq!((decoded, consumed), (reply, bytes.len()));
        }
    }

    #[test]
    fn stats_request_with_body_is_rejected() {
        // The stats request is defined body-free; stray bytes are a
        // structural error, not silently ignored.
        let mut bytes = Frame::StatsRequest(StatsRequestFrame { request_id: 5 })
            .encode()
            .unwrap();
        bytes.truncate(HEADER_LEN); // drop trailer
        bytes.push(0xAB); // stray body byte
        bytes[14..18].copy_from_slice(&1u32.to_le_bytes());
        let crc = crate::wire::crc::crc32(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            Frame::decode(&bytes, DEFAULT_MAX_BODY),
            Err(FrameError::BadBody("trailing bytes after body fields"))
        );
    }

    #[test]
    fn status_codes_roundtrip() {
        for status in [
            WireStatus::Busy,
            WireStatus::Closed,
            WireStatus::NoModel,
            WireStatus::ModelError,
            WireStatus::UnsupportedPayload,
            WireStatus::BadFrame,
            WireStatus::TooLarge,
            WireStatus::UnsupportedVersion,
        ] {
            assert_eq!(WireStatus::from_code(status.code()).unwrap(), status);
        }
        assert_eq!(WireStatus::from_code(0), Err(FrameError::BadStatus(0)));
        assert!(WireStatus::Busy.is_retryable());
        assert!(!WireStatus::Closed.is_retryable());
    }

    #[test]
    fn salvages_request_id_from_partial_frames() {
        let bytes = packed_request(64, 3).encode().unwrap();
        assert_eq!(salvage_request_id(&bytes[..14]), Some(42));
        assert_eq!(salvage_request_id(&bytes[..13]), None);
        assert_eq!(salvage_request_id(b"JUNKJUNKJUNKJUNK"), None);
        // Works even for a future version this build rejects.
        let mut future = bytes;
        future[4] = 9;
        assert_eq!(salvage_request_id(&future), Some(42));
    }

    #[test]
    fn detail_truncation_respects_char_boundaries() {
        let long = "é".repeat(2_000); // 2 bytes per char, 4000 bytes total
        let frame = Frame::Response(ResponseFrame {
            request_id: 1,
            outcome: Err(WireFault::new(WireStatus::ModelError, long)),
        });
        let bytes = frame.encode().unwrap();
        let (decoded, _) = Frame::decode(&bytes, DEFAULT_MAX_BODY).unwrap().unwrap();
        let Frame::Response(ResponseFrame {
            outcome: Err(fault),
            ..
        }) = decoded
        else {
            panic!("expected error response");
        };
        assert_eq!(fault.detail.len(), 1024);
        assert!(fault.detail.chars().all(|c| c == 'é'));
    }
}
