//! The wire-protocol transport front-end: Prive-HD serving across a
//! real socket.
//!
//! The paper's whole premise is that clients ship *obfuscated*
//! hypervectors to an untrusted server, which implies a wire format
//! for `(ModelId, obfuscated query)` and a server loop. This module
//! supplies both halves plus the codec between them:
//!
//! * [`frame`] — the versioned, length-prefixed, CRC-checked binary
//!   frame codec ([`Frame`], [`WireStatus`], [`FrameError`]). Packed
//!   bipolar queries cost 1 bit per dimension on the wire (the paper's
//!   §III-C transfer saving).
//! * [`WireServer`] — [`WireConfig::reactors`] epoll-backed readiness
//!   loops (the vendored `polling` layer; nonblocking `std::net`)
//!   sharing one listener, pinning each connection to `fd % reactors`,
//!   decoding request frames into the engine's unified
//!   [`crate::SubmitHandle::submit`] surface and streaming response
//!   frames back as completions arrive. Queue backpressure — global
//!   ([`WireStatus::Busy`] for a full engine queue) and per-tenant
//!   (quota rejections from the weighted-fair scheduler) — maps to an
//!   explicit `Busy` frame, never a stalled socket; buffers are
//!   bounded per connection; malformed frames answer typed faults and
//!   close.
//! * [`WireClient`] — the blocking client used by `examples/serving.rs`
//!   and the loopback integration tests.
//!
//! A `Stats` frame pair ([`StatsRequestFrame`] / [`StatsReplyFrame`],
//! fetched with [`WireClient::stats`]) exposes the merged serving and
//! transport metrics as Prometheus text, including the stage-level
//! latency decomposition — see `docs/OBSERVABILITY.md`.
//!
//! See `docs/WIRE.md` in the repository for the frame layout table,
//! status codes, backpressure semantics, and the version policy.

mod client;
mod crc;
pub mod frame;
mod metrics;
mod server;

pub use client::{WireClient, WireClientError};
pub use crc::crc32;
pub use frame::{
    salvage_request_id, Frame, FrameError, QueryPayload, RequestFrame, ResponseFrame,
    StatsReplyFrame, StatsRequestFrame, WireFault, WirePrediction, WireStatus,
};
pub use metrics::{WireMetrics, WireReport};
pub use server::{WireConfig, WireConfigBuilder, WireServer};
