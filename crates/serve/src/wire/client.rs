//! The blocking wire client: the edge-device half of the transport.
//!
//! [`WireClient`] is a thin synchronous client over one [`TcpStream`]:
//! it frames requests, assigns request ids, and decodes response
//! frames. Use [`WireClient::call_packed`] / [`WireClient::call_raw`]
//! for one-request-at-a-time RPC, or the split
//! [`WireClient::send_packed`] / [`WireClient::recv`] pair to pipeline
//! several requests on one connection (responses may arrive out of
//! request order — correlate by request id).
//!
//! One client drives one connection and is not `Sync`; concurrent
//! client threads each open their own connection, as the integration
//! tests do.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use privehd_core::BipolarHv;

use crate::registry::ModelId;
use crate::wire::frame::{
    encode_request_into, Frame, FrameError, PayloadRef, ResponseFrame, StatsRequestFrame,
    WireFault, WirePrediction, DEFAULT_MAX_BODY,
};

/// Everything that can go wrong on the client side of the wire.
#[derive(Debug)]
pub enum WireClientError {
    /// A socket operation failed (includes read timeouts).
    Io(std::io::Error),
    /// The server's bytes did not decode as a frame.
    Frame(FrameError),
    /// The server answered with a typed error frame.
    Fault(WireFault),
    /// A call's response carried a different request id than the call
    /// sent (only possible when mixing `call_*` with pipelined sends).
    Mismatched {
        /// The id the call sent.
        expected: u64,
        /// The id the response carried.
        got: u64,
    },
    /// The server closed the connection mid-response.
    ServerClosed,
    /// The server sent a request frame (protocol violation).
    Protocol(&'static str),
}

impl std::fmt::Display for WireClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireClientError::Io(e) => write!(f, "wire I/O error: {e}"),
            WireClientError::Frame(e) => write!(f, "wire frame error: {e}"),
            WireClientError::Fault(fault) => write!(f, "server fault: {fault}"),
            WireClientError::Mismatched { expected, got } => {
                write!(f, "response id {got} does not match request id {expected}")
            }
            WireClientError::ServerClosed => write!(f, "server closed the connection"),
            WireClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for WireClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WireClientError::Io(e) => Some(e),
            WireClientError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for WireClientError {
    fn from(e: std::io::Error) -> Self {
        WireClientError::Io(e)
    }
}

impl From<FrameError> for WireClientError {
    fn from(e: FrameError) -> Self {
        WireClientError::Frame(e)
    }
}

/// A blocking client over one wire connection.
#[derive(Debug)]
pub struct WireClient {
    stream: TcpStream,
    read_buf: Vec<u8>,
    next_id: u64,
    max_body: usize,
}

impl WireClient {
    /// Connects to a [`crate::wire::WireServer`] and applies a default
    /// 30 s read timeout (so a hung server surfaces as an
    /// [`WireClientError::Io`] timeout instead of blocking forever;
    /// adjust with [`WireClient::set_read_timeout`]).
    ///
    /// # Errors
    ///
    /// Propagates connect/configure I/O errors.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        stream.set_read_timeout(Some(Duration::from_secs(30)))?;
        Ok(Self {
            stream,
            read_buf: Vec::new(),
            next_id: 1,
            max_body: DEFAULT_MAX_BODY,
        })
    }

    /// The local socket address of this connection.
    ///
    /// # Errors
    ///
    /// Propagates the socket query error.
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.stream.local_addr()
    }

    /// Sets (or clears) the read timeout used by [`WireClient::recv`].
    ///
    /// # Errors
    ///
    /// Propagates the socket configuration error.
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// Sends a bit-packed (obfuscated bipolar) query for `model`;
    /// returns the request id to correlate the pipelined response.
    ///
    /// # Errors
    ///
    /// Encoding or socket errors; the request is not in flight on error.
    pub fn send_packed(
        &mut self,
        model: &ModelId,
        query: &BipolarHv,
    ) -> Result<u64, WireClientError> {
        self.send_payload(model, PayloadRef::Packed(query))
    }

    /// Sends raw features for server-side encode ∘ obfuscate; returns
    /// the request id.
    ///
    /// # Errors
    ///
    /// Encoding or socket errors; the request is not in flight on error.
    pub fn send_raw(&mut self, model: &ModelId, features: &[f64]) -> Result<u64, WireClientError> {
        self.send_payload(model, PayloadRef::Raw(features))
    }

    fn send_payload(
        &mut self,
        model: &ModelId,
        payload: PayloadRef<'_>,
    ) -> Result<u64, WireClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        // Frame straight from the borrowed query — the hot path never
        // clones the payload just to encode-and-drop it.
        let mut bytes = Vec::new();
        encode_request_into(request_id, model, payload, &mut bytes)?;
        self.stream.write_all(&bytes)?;
        Ok(request_id)
    }

    /// Blocks until one response frame arrives (in server-completion
    /// order, which under batching may differ from request order).
    ///
    /// # Errors
    ///
    /// [`WireClientError::ServerClosed`] on EOF, I/O errors (including
    /// the read timeout), or a frame decode error. A fault frame is
    /// *not* an error here — it is returned as the
    /// [`ResponseFrame::outcome`] so pipelined callers can correlate
    /// faults by id.
    pub fn recv(&mut self) -> Result<ResponseFrame, WireClientError> {
        loop {
            if let Some((frame, used)) = Frame::decode(&self.read_buf, self.max_body)? {
                self.read_buf.drain(..used);
                return match frame {
                    Frame::Response(resp) => Ok(resp),
                    Frame::Request(_) | Frame::StatsRequest(_) => {
                        Err(WireClientError::Protocol("request frame from server"))
                    }
                    // Stats replies belong to `stats()`; one arriving
                    // here means the caller interleaved a stats scrape
                    // with pipelined prediction receives.
                    Frame::StatsReply(_) => Err(WireClientError::Protocol(
                        "stats reply while expecting a prediction response",
                    )),
                };
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(WireClientError::ServerClosed),
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// One synchronous round trip for the server's metrics exposition:
    /// sends a `Stats` request frame and blocks for the Prometheus-text
    /// reply (serve report + transport counters + slow-span trace ring;
    /// schema in `docs/OBSERVABILITY.md`).
    ///
    /// Call it between pipelined bursts, not inside one: responses to
    /// in-flight predictions arrive in completion order, and one of
    /// them surfacing here is a [`WireClientError::Protocol`] error.
    ///
    /// # Errors
    ///
    /// Send/receive errors, [`WireClientError::Mismatched`] when the
    /// reply's id is not the request's, or
    /// [`WireClientError::Protocol`] when a prediction response arrives
    /// instead of the stats reply.
    pub fn stats(&mut self) -> Result<String, WireClientError> {
        let request_id = self.next_id;
        self.next_id += 1;
        let mut bytes = Vec::new();
        Frame::StatsRequest(StatsRequestFrame { request_id }).encode_into(&mut bytes)?;
        self.stream.write_all(&bytes)?;
        loop {
            if let Some((frame, used)) = Frame::decode(&self.read_buf, self.max_body)? {
                self.read_buf.drain(..used);
                return match frame {
                    Frame::StatsReply(reply) if reply.request_id == request_id => Ok(reply.text),
                    Frame::StatsReply(reply) => Err(WireClientError::Mismatched {
                        expected: request_id,
                        got: reply.request_id,
                    }),
                    Frame::Response(_) => Err(WireClientError::Protocol(
                        "prediction response while expecting a stats reply",
                    )),
                    Frame::Request(_) | Frame::StatsRequest(_) => {
                        Err(WireClientError::Protocol("request frame from server"))
                    }
                };
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => return Err(WireClientError::ServerClosed),
                Ok(n) => self.read_buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e.into()),
            }
        }
    }

    /// One synchronous round trip with a packed query: send, then block
    /// for the matching response.
    ///
    /// # Errors
    ///
    /// Send/receive errors, [`WireClientError::Fault`] when the server
    /// answered with an error status, or
    /// [`WireClientError::Mismatched`] if an unrelated pipelined
    /// response arrived instead.
    pub fn call_packed(
        &mut self,
        model: &ModelId,
        query: &BipolarHv,
    ) -> Result<WirePrediction, WireClientError> {
        let id = self.send_packed(model, query)?;
        self.finish_call(id)
    }

    /// One synchronous round trip with raw features; see
    /// [`WireClient::call_packed`].
    ///
    /// # Errors
    ///
    /// Same as [`WireClient::call_packed`].
    pub fn call_raw(
        &mut self,
        model: &ModelId,
        features: &[f64],
    ) -> Result<WirePrediction, WireClientError> {
        let id = self.send_raw(model, features)?;
        self.finish_call(id)
    }

    fn finish_call(&mut self, id: u64) -> Result<WirePrediction, WireClientError> {
        let resp = self.recv()?;
        if resp.request_id != id {
            return Err(WireClientError::Mismatched {
                expected: id,
                got: resp.request_id,
            });
        }
        resp.outcome.map_err(WireClientError::Fault)
    }
}
