//! CRC-32 (IEEE 802.3, reflected) for frame integrity checking.
//!
//! Implemented in-repo because the offline build has no `crc` crate;
//! the table is built at compile time, and the polynomial/reflection
//! match the ubiquitous zlib/Ethernet CRC-32 so captures can be checked
//! against standard tooling.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, one byte of input per step.
static TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 == 1 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

/// CRC-32 of `bytes` (initial value `!0`, final complement — the
/// standard zlib convention).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check value for "123456789" under CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        let mut corrupted = data.to_vec();
        for byte in 0..corrupted.len() {
            for bit in 0..8 {
                corrupted[byte] ^= 1 << bit;
                assert_ne!(crc32(&corrupted), base, "flip at {byte}:{bit} undetected");
                corrupted[byte] ^= 1 << bit;
            }
        }
    }
}
