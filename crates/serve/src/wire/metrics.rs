//! Connection-level counters for the wire front-end.
//!
//! These extend [`crate::ServeMetrics`] (which counts *requests* inside
//! the engine) with what only the transport can see: connections,
//! frames, decode failures, and wire-level backpressure. All counters
//! are atomic — the reactor threads and readers never contend on a
//! lock, and the open-connection gauge is maintained as paired
//! increments/decrements so it stays exact across reactors.

use std::sync::atomic::{AtomicU64, Ordering};

/// Live transport counters, shared between the server's reactor
/// threads and callers holding the [`crate::wire::WireServer`].
#[derive(Debug, Default)]
pub struct WireMetrics {
    accepted: AtomicU64,
    refused: AtomicU64,
    open: AtomicU64,
    frames_in: AtomicU64,
    responses_out: AtomicU64,
    decode_errors: AtomicU64,
    busy_rejections: AtomicU64,
    idle_closed: AtomicU64,
    stats_served: AtomicU64,
}

impl WireMetrics {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    pub(crate) fn on_accept(&self) {
        // Relaxed: independent advisory counter.
        self.accepted.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_refuse(&self) {
        // Relaxed: independent advisory counter.
        self.refused.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_conn_open(&self) {
        // Relaxed: gauge increment; multiple reactors update it, every
        // increment is paired with exactly one decrement.
        self.open.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_conn_close(&self) {
        // Relaxed: see on_conn_open — paired decrement.
        self.open.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn on_frame_in(&self) {
        // Relaxed: independent advisory counter.
        self.frames_in.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_response_out(&self) {
        // Relaxed: independent advisory counter.
        self.responses_out.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_decode_error(&self) {
        // Relaxed: independent advisory counter.
        self.decode_errors.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_busy(&self) {
        // Relaxed: independent advisory counter.
        self.busy_rejections.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_idle_close(&self) {
        // Relaxed: independent advisory counter.
        self.idle_closed.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn on_stats_served(&self) {
        // Relaxed: independent advisory counter.
        self.stats_served.fetch_add(1, Ordering::Relaxed);
    }

    /// Point-in-time snapshot of every counter.
    pub fn report(&self) -> WireReport {
        WireReport {
            // Relaxed: independent statistics reads; a racing update
            // skews one cell by at most one.
            accepted: self.accepted.load(Ordering::Relaxed),
            refused: self.refused.load(Ordering::Relaxed),
            open: self.open.load(Ordering::Relaxed),
            // Relaxed: as above.
            frames_in: self.frames_in.load(Ordering::Relaxed),
            responses_out: self.responses_out.load(Ordering::Relaxed),
            decode_errors: self.decode_errors.load(Ordering::Relaxed),
            // Relaxed: as above.
            busy_rejections: self.busy_rejections.load(Ordering::Relaxed),
            idle_closed: self.idle_closed.load(Ordering::Relaxed),
            stats_served: self.stats_served.load(Ordering::Relaxed),
        }
    }
}

/// Snapshot of the transport counters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReport {
    /// Connections accepted over the server's lifetime.
    pub accepted: u64,
    /// Connections refused because the server was at its connection cap.
    pub refused: u64,
    /// Connections open at snapshot time.
    pub open: u64,
    /// Request frames successfully decoded.
    pub frames_in: u64,
    /// Response frames written back (predictions and faults).
    pub responses_out: u64,
    /// Malformed/oversized/unsupported-version frames (each also closes
    /// its connection).
    pub decode_errors: u64,
    /// Requests answered `Busy` at the wire: per-connection in-flight
    /// cap or engine queue backpressure.
    pub busy_rejections: u64,
    /// Connections closed by the idle timeout.
    pub idle_closed: u64,
    /// Stats frames answered. Stats traffic is metadata, not serving
    /// load, so it is counted here and **not** in
    /// [`WireReport::frames_in`] / [`WireReport::responses_out`].
    pub stats_served: u64,
}

impl std::fmt::Display for WireReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "wire: {} conns accepted ({} refused, {} open, {} idle-closed), \
             {} frames in, {} responses out, {} decode errors, {} busy rejections, \
             {} stats served",
            self.accepted,
            self.refused,
            self.open,
            self.idle_closed,
            self.frames_in,
            self.responses_out,
            self.decode_errors,
            self.busy_rejections,
            self.stats_served
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_snapshots_counters() {
        let m = WireMetrics::new();
        m.on_accept();
        m.on_accept();
        m.on_refuse();
        m.on_conn_open();
        m.on_conn_open();
        m.on_conn_open();
        m.on_conn_close();
        m.on_frame_in();
        m.on_response_out();
        m.on_decode_error();
        m.on_busy();
        m.on_idle_close();
        m.on_stats_served();
        let r = m.report();
        assert_eq!(
            r,
            WireReport {
                accepted: 2,
                refused: 1,
                open: 2,
                frames_in: 1,
                responses_out: 1,
                decode_errors: 1,
                busy_rejections: 1,
                idle_closed: 1,
                stats_served: 1,
            }
        );
        let text = r.to_string();
        assert!(text.contains("2 conns accepted"), "{text}");
        assert!(text.contains("1 busy rejections"), "{text}");
    }
}
