//! The TCP front-end: a poll-style connection loop feeding the engine.
//!
//! [`WireServer`] listens on a TCP socket, decodes request frames into
//! [`SubmitHandle::submit_to`], and streams response frames back as
//! each request's [`crate::PendingPrediction`] resolves. There is no
//! async runtime in this workspace (the offline `vendor/` set carries
//! none), so the server runs one dedicated thread with every socket in
//! nonblocking mode — a classic readiness loop. The heavy work
//! (batching, classification) happens on the engine's worker pool; for
//! *packed* frames the wire thread only shovels and frames bytes, so
//! one poll thread keeps up with many connections. Raw-features
//! frames are the exception: their server-side encode ∘ obfuscate
//! ([`WireConfig::edges`]) currently runs on the poll thread, so heavy
//! raw traffic adds latency for every connection — treat the raw path
//! as a convenience for trusted/legacy clients and packed frames as
//! the performance path (offloading the edge onto the worker pool is a
//! roadmap item).
//!
//! ## Backpressure and hygiene
//!
//! * Engine queue pressure ([`ServeError::QueueFull`]) and the
//!   per-connection in-flight cap ([`WireConfig::max_in_flight`]) are
//!   answered with an explicit [`WireStatus::Busy`] error frame — the
//!   socket never stalls as a side channel of queue state.
//! * Per-connection read and write buffers are bounded (one maximal
//!   frame inbound; a fixed multiple outbound — a peer that stops
//!   reading its responses is disconnected rather than buffered
//!   without bound).
//! * Malformed, oversized, or wrong-version frames get a typed error
//!   frame (with the request id salvaged from the broken frame when
//!   possible), then the connection closes: a byte stream cannot be
//!   re-synchronized after framing is lost.
//! * Idle connections (no traffic, nothing in flight) close after
//!   [`WireConfig::idle_timeout`].
//! * [`WireServer::shutdown`] drains gracefully: it stops accepting
//!   and reading, finishes every in-flight request, flushes response
//!   buffers, then closes. If the engine shuts down first, in-flight
//!   requests resolve to [`WireStatus::Closed`] faults and the drain
//!   still completes.
//!
//! ## Observability
//!
//! The poll loop stamps the wire-side stages of the request path —
//! [`Stage::WireDecode`], [`Stage::Admission`], [`Stage::Encode`] (raw
//! frames only) and [`Stage::WireWrite`] — into the engine's
//! [`crate::ServeMetrics`] and its sampled trace ring, using one
//! [`TraceCtx`] per request so a trace id spans the transport and the
//! engine. A `Stats` request frame answers with the merged
//! Prometheus-text exposition ([`crate::stats::prometheus_text`]) of
//! the serve report, the transport counters, and the slow-span ring;
//! stats traffic is counted in [`WireReport::stats_served`] only, not
//! in the frame/response counters. See `docs/OBSERVABILITY.md`.

use std::collections::HashMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::edge::ClientEdge;
use crate::engine::{PendingPrediction, QueryVec, ServedPrediction, SubmitHandle};
use crate::error::ServeError;
use crate::registry::ModelId;
use crate::wire::frame::{
    salvage_request_id, Frame, FrameError, QueryPayload, RequestFrame, ResponseFrame,
    StatsReplyFrame, WireFault, WirePrediction, WireStatus, DEFAULT_MAX_BODY, HEADER_LEN,
    TRAILER_LEN,
};
use crate::wire::metrics::{WireMetrics, WireReport};
use privehd_core::telemetry::{Stage, TraceCtx};

/// Tuning knobs of the wire front-end.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Most simultaneous connections; further accepts are refused
    /// (closed immediately).
    pub max_connections: usize,
    /// Cap on a frame's declared body length; larger frames answer
    /// [`WireStatus::TooLarge`] and close the connection.
    pub max_body_bytes: usize,
    /// Per-connection admission cap: requests in flight beyond this
    /// answer [`WireStatus::Busy`] instead of entering the engine — a
    /// flooding connection is throttled at its own edge before it can
    /// monopolize the shared submission queue.
    pub max_in_flight: usize,
    /// Cap on the *bytes a query holds in the engine queue*, expressed
    /// as a dense dimensionality: a raw-features frame may declare at
    /// most `max_query_dim` features (its edge-encoded query occupies
    /// one `f64` per dimension), while a packed frame — which now rides
    /// the queue packed-native at 1 bit/dim, with no dense expansion
    /// anywhere on its path — may declare up to `64 × max_query_dim`
    /// dimensions, the same memory held. Decoding never allocates more
    /// than the frame's own size; this cap bounds what admitted queries
    /// pin in the queue, since frames within
    /// [`WireConfig::max_body_bytes`] could otherwise declare millions
    /// of dimensions. Over-cap queries answer a
    /// [`WireStatus::ModelError`] fault. Set it near your largest
    /// served model's dimensionality.
    pub max_query_dim: usize,
    /// A connection with no traffic and nothing in flight closes after
    /// this long.
    pub idle_timeout: Duration,
    /// How long [`WireServer::shutdown`] waits for in-flight requests
    /// to finish before closing connections anyway.
    pub drain_timeout: Duration,
    /// Sleep between poll iterations when nothing made progress.
    pub poll_interval: Duration,
    /// Server-side edge pipelines for [`QueryPayload::Raw`] frames,
    /// keyed by model id: raw features for `id` run encode ∘ obfuscate
    /// through `edges[id]` before submission. Models without an entry
    /// answer [`WireStatus::UnsupportedPayload`] to raw frames.
    pub edges: HashMap<ModelId, ClientEdge>,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            max_body_bytes: DEFAULT_MAX_BODY,
            max_in_flight: 32,
            max_query_dim: 65_536,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_micros(500),
            edges: HashMap::new(),
        }
    }
}

impl WireConfig {
    /// Registers a server-side edge for `model`'s raw-features frames
    /// (builder style).
    #[must_use]
    pub fn with_edge(mut self, model: ModelId, edge: ClientEdge) -> Self {
        self.edges.insert(model, edge);
        self
    }

    fn validate(&self) -> Result<(), ServeError> {
        if self.max_connections == 0 {
            return Err(ServeError::InvalidConfig(
                "max_connections must be ≥ 1".into(),
            ));
        }
        if self.max_body_bytes < 64 {
            return Err(ServeError::InvalidConfig(
                "max_body_bytes must be ≥ 64".into(),
            ));
        }
        if self.max_in_flight == 0 {
            return Err(ServeError::InvalidConfig(
                "max_in_flight must be ≥ 1".into(),
            ));
        }
        if self.max_query_dim == 0 {
            return Err(ServeError::InvalidConfig(
                "max_query_dim must be ≥ 1".into(),
            ));
        }
        Ok(())
    }
}

/// The running TCP front-end; dropping (or [`WireServer::shutdown`])
/// stops it.
#[derive(Debug)]
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<WireMetrics>,
    thread: Option<JoinHandle<()>>,
}

impl WireServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and spawns
    /// the poll thread serving requests into `handle`'s engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for zero-valued knobs,
    /// [`ServeError::Transport`] when the bind fails.
    ///
    /// # Examples
    ///
    /// A full loopback round trip:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use privehd_core::{BipolarHv, HdModel, Hypervector};
    /// use privehd_serve::wire::{WireClient, WireConfig, WireServer};
    /// use privehd_serve::{ModelId, ModelRegistry, ServeConfig, ServeEngine};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut model = HdModel::new(2, 64)?;
    /// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
    /// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
    /// let registry = Arc::new(ModelRegistry::with_model(model, "demo")?);
    /// let engine = ServeEngine::start(registry, ServeConfig::default())?;
    ///
    /// let server = WireServer::start("127.0.0.1:0", engine.handle(), WireConfig::default())?;
    /// let mut client = WireClient::connect(server.local_addr())?;
    /// let query = BipolarHv::from_signs(&vec![1.0; 64]);
    /// let served = client.call_packed(&ModelId::default(), &query)?;
    /// assert_eq!(served.class, 0);
    ///
    /// let report = server.shutdown();
    /// assert_eq!(report.responses_out, 1);
    /// engine.shutdown();
    /// # Ok(())
    /// # }
    /// ```
    pub fn start(
        addr: impl ToSocketAddrs,
        handle: SubmitHandle,
        config: WireConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Transport(format!("bind failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Transport(format!("set_nonblocking failed: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Transport(format!("local_addr failed: {e}")))?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(WireMetrics::new());
        let thread = {
            let stop = Arc::clone(&stop);
            let metrics = Arc::clone(&metrics);
            std::thread::Builder::new()
                .name("privehd-wire".into())
                .spawn(move || run_loop(&listener, &handle, &config, &metrics, &stop))
                .map_err(|e| ServeError::Transport(format!("spawn failed: {e}")))?
        };
        Ok(Self {
            addr: local,
            stop,
            metrics,
            thread: Some(thread),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live transport counters.
    pub fn metrics(&self) -> &WireMetrics {
        &self.metrics
    }

    /// Snapshot of the transport counters.
    pub fn report(&self) -> WireReport {
        self.metrics.report()
    }

    /// Stops accepting, drains in-flight requests (bounded by
    /// [`WireConfig::drain_timeout`]), closes every connection, joins
    /// the poll thread, and returns the final transport report.
    pub fn shutdown(mut self) -> WireReport {
        self.join();
        self.metrics.report()
    }

    fn join(&mut self) {
        // Release: pairs with the poll loop's Acquire load of `stop`;
        // config/metrics writes before shutdown are visible to it.
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.thread.take() {
            // analyze::allow(no-panic-path): re-raising a poll-thread
            // panic at shutdown is deliberate — it fires only on an
            // internal bug, never on peer input, and must not be
            // swallowed into a clean-looking report.
            t.join().expect("wire poll thread panicked");
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.join();
    }
}

/// One live connection's state inside the poll loop.
struct Conn {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    in_flight: Vec<(u64, TraceCtx, PendingPrediction)>,
    last_activity: Instant,
    /// Peer half-closed its send side; serve what's in flight, then go.
    eof: bool,
    /// Framing was lost (or the peer must go): close once the write
    /// buffer flushes.
    close_after_flush: bool,
    /// Set once the fault frame is flushed and the write side is shut
    /// down: keep *reading and discarding* the peer's in-flight bytes
    /// until EOF or this deadline, so closing with unread data in the
    /// kernel buffer does not RST away the fault frame we just sent.
    linger_until: Option<Instant>,
    dead: bool,
}

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// How long a poisoned connection lingers discarding the peer's
/// in-flight bytes after its fault frame is flushed.
const CLOSE_LINGER: Duration = Duration::from_secs(1);

// analyze: nonblocking-region — every Conn method runs on the single
// poll thread; one blocking call here stalls every connected peer.
impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            in_flight: Vec::new(),
            last_activity: Instant::now(),
            eof: false,
            close_after_flush: false,
            linger_until: None,
            dead: false,
        }
    }

    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.written
    }

    /// One service round: read, parse/submit, poll in-flight, write,
    /// lifecycle. Returns true when any progress was made. `draining`
    /// suppresses reading/parsing so shutdown only finishes what was
    /// already accepted.
    fn pump(
        &mut self,
        handle: &SubmitHandle,
        config: &WireConfig,
        metrics: &WireMetrics,
        draining: bool,
    ) -> bool {
        if let Some(deadline) = self.linger_until {
            return self.linger_discard(deadline);
        }
        let mut progress = false;
        if !draining && !self.close_after_flush {
            progress |= self.fill_read_buf(config);
            progress |= self.parse_and_submit(handle, config, metrics);
        }
        progress |= self.poll_in_flight(handle, metrics);
        progress |= self.flush(config);
        self.update_lifecycle(config, metrics);
        progress
    }

    /// Post-fault lingering: the write side is already shut down (FIN
    /// sent, fault frame flushed); read and discard whatever the peer
    /// had in flight so the close never turns into an RST that
    /// destroys the fault frame on the peer's side.
    fn linger_discard(&mut self, deadline: Instant) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        let mut progress = false;
        loop {
            if Instant::now() >= deadline {
                self.dead = true;
                return true;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    return true;
                }
                Ok(_) => progress = true,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
    }

    /// Reads whatever the socket has, up to the bounded buffer size
    /// (header + one maximal body + trailer): a peer streaming faster
    /// than we parse backs up into TCP flow control, not into memory.
    fn fill_read_buf(&mut self, config: &WireConfig) -> bool {
        let cap = HEADER_LEN + config.max_body_bytes + TRAILER_LEN;
        let mut progress = false;
        let mut chunk = [0u8; READ_CHUNK];
        while self.read_buf.len() < cap && !self.eof && !self.dead {
            let want = READ_CHUNK.min(cap - self.read_buf.len());
            // analyze::allow(no-panic-path): `want` is clamped to
            // READ_CHUNK above and `n <= want` per the read contract.
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    // analyze::allow(no-panic-path): `n <= want <= READ_CHUNK`.
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
        progress
    }

    /// Decodes every complete frame in the read buffer, answering or
    /// submitting each. A decode error answers a typed fault (request
    /// id salvaged when possible) and poisons the connection.
    fn parse_and_submit(
        &mut self,
        handle: &SubmitHandle,
        config: &WireConfig,
        metrics: &WireMetrics,
    ) -> bool {
        let mut consumed = 0usize;
        let mut progress = false;
        loop {
            let decode_start = Instant::now();
            // analyze::allow(no-panic-path): `consumed` only grows by
            // the decoded length of complete frames, so it never
            // exceeds `read_buf.len()`.
            match Frame::decode(&self.read_buf[consumed..], config.max_body_bytes) {
                Ok(None) => break,
                Ok(Some((frame, used))) => {
                    let decoded_at = Instant::now();
                    consumed += used;
                    progress = true;
                    self.last_activity = Instant::now();
                    match frame {
                        Frame::Request(req) => {
                            metrics.on_frame_in();
                            // One trace context per request, begun here
                            // so its id spans the wire stages and the
                            // engine's.
                            let ctx = handle.tracer().begin();
                            let decode = decoded_at.saturating_duration_since(decode_start);
                            handle.serve_metrics().on_stage(Stage::WireDecode, decode);
                            handle.tracer().record(
                                ctx,
                                Stage::WireDecode,
                                decode_start,
                                decoded_at,
                            );
                            self.handle_request(req, ctx, handle, config, metrics);
                        }
                        Frame::StatsRequest(req) => {
                            // Metadata, not serving load: answered
                            // inline from counter snapshots, counted
                            // only in `stats_served` (before the
                            // snapshot, so a scrape sees itself).
                            metrics.on_stats_served();
                            let serve = handle.serve_metrics();
                            let report = serve.report(serve.uptime());
                            let wire = metrics.report();
                            let trace = handle.tracer().snapshot();
                            let text = crate::stats::prometheus_text(&report, Some(&wire), &trace);
                            self.queue_frame(Frame::StatsReply(StatsReplyFrame {
                                request_id: req.request_id,
                                text,
                            }));
                        }
                        Frame::Response(resp) => {
                            // Clients must not send response frames.
                            metrics.on_decode_error();
                            self.queue_fault(
                                resp.request_id,
                                WireFault::new(
                                    WireStatus::BadFrame,
                                    "response frame on the request direction",
                                ),
                                metrics,
                            );
                            self.close_after_flush = true;
                            break;
                        }
                        Frame::StatsReply(resp) => {
                            metrics.on_decode_error();
                            self.queue_fault(
                                resp.request_id,
                                WireFault::new(
                                    WireStatus::BadFrame,
                                    "stats reply frame on the request direction",
                                ),
                                metrics,
                            );
                            self.close_after_flush = true;
                            break;
                        }
                    }
                }
                Err(err) => {
                    metrics.on_decode_error();
                    // analyze::allow(no-panic-path): same bound as the
                    // decode call above; salvage_request_id is total.
                    let id = salvage_request_id(&self.read_buf[consumed..]).unwrap_or(0);
                    let status = match err {
                        FrameError::Oversized { .. } => WireStatus::TooLarge,
                        FrameError::UnsupportedVersion(_) => WireStatus::UnsupportedVersion,
                        _ => WireStatus::BadFrame,
                    };
                    self.queue_fault(id, WireFault::new(status, err.to_string()), metrics);
                    self.close_after_flush = true;
                    progress = true;
                    break;
                }
            }
        }
        if self.close_after_flush {
            // Framing is lost (or the peer is leaving): drop the rest.
            self.read_buf.clear();
        } else if consumed > 0 {
            self.read_buf.drain(..consumed);
        }
        progress
    }

    /// Admission, payload preparation, and submission for one request.
    ///
    /// On successful submission this stamps [`Stage::Admission`] (the
    /// whole span from frame-decoded to engine-accepted, which on the
    /// raw path *contains* the [`Stage::Encode`] span recorded around
    /// the server-side edge). Rejected requests stamp nothing — the
    /// stage histograms decompose served traffic.
    fn handle_request(
        &mut self,
        req: RequestFrame,
        ctx: TraceCtx,
        handle: &SubmitHandle,
        config: &WireConfig,
        metrics: &WireMetrics,
    ) {
        let admit_start = Instant::now();
        let RequestFrame {
            request_id,
            model,
            payload,
        } = req;
        if self.in_flight.len() >= config.max_in_flight {
            metrics.on_busy();
            self.queue_fault(
                request_id,
                WireFault::new(WireStatus::Busy, "connection in-flight cap reached"),
                metrics,
            );
            return;
        }
        // Admission accounts for bytes *held* after submission, not a
        // frame's declared dimensionality: a packed query stays packed
        // (1 bit/dim) through the queue, so it may carry 64× the
        // dimensions of a raw frame (whose edge-encoded query occupies
        // one f64 per dimension) for the same queue memory.
        let (query_dim, dim_cap) = match &payload {
            QueryPayload::Packed(hv) => (hv.dim(), config.max_query_dim.saturating_mul(64)),
            QueryPayload::Raw(features) => (features.len(), config.max_query_dim),
        };
        if query_dim > dim_cap {
            self.queue_fault(
                request_id,
                WireFault::new(
                    WireStatus::ModelError,
                    format!("query dimensionality {query_dim} exceeds the server cap {dim_cap}"),
                ),
                metrics,
            );
            return;
        }
        let query = match payload {
            // Packed-native: the frame's bit-packed words are handed to
            // the engine as-is — no to_dense() on this path, by
            // contract (a conversion-count test pins it).
            QueryPayload::Packed(hv) => QueryVec::Packed(hv),
            QueryPayload::Raw(features) => match config.edges.get(&model) {
                None => {
                    self.queue_fault(
                        request_id,
                        WireFault::new(
                            WireStatus::UnsupportedPayload,
                            "no server-side edge registered for this model",
                        ),
                        metrics,
                    );
                    return;
                }
                Some(edge) => {
                    let encode_start = Instant::now();
                    match edge.prepare(&features) {
                        Ok(q) => {
                            let encode_end = Instant::now();
                            handle.serve_metrics().on_stage(
                                Stage::Encode,
                                encode_end.saturating_duration_since(encode_start),
                            );
                            handle
                                .tracer()
                                .record(ctx, Stage::Encode, encode_start, encode_end);
                            QueryVec::Dense(q)
                        }
                        Err(e) => {
                            self.queue_fault(request_id, fault_for(&e), metrics);
                            return;
                        }
                    }
                }
            },
        };
        match handle.submit_traced(&model, query, ctx) {
            Ok(pending) => {
                let admitted_at = Instant::now();
                handle.serve_metrics().on_stage(
                    Stage::Admission,
                    admitted_at.saturating_duration_since(admit_start),
                );
                handle
                    .tracer()
                    .record(ctx, Stage::Admission, admit_start, admitted_at);
                self.in_flight.push((request_id, ctx, pending));
            }
            Err(e) => {
                if e == ServeError::QueueFull {
                    metrics.on_busy();
                }
                self.queue_fault(request_id, fault_for(&e), metrics);
            }
        }
    }

    /// Sends a response frame for every in-flight request whose
    /// prediction has resolved, stamping [`Stage::WireWrite`] (response
    /// framing into the write buffer — the socket write itself is
    /// batched across requests and not attributable to one).
    fn poll_in_flight(&mut self, handle: &SubmitHandle, metrics: &WireMetrics) -> bool {
        let mut progress = false;
        let mut i = 0;
        while i < self.in_flight.len() {
            // analyze::allow(no-panic-path): `i < in_flight.len()` is
            // the loop guard; swap_remove below keeps it in range.
            let Some(outcome) = self.in_flight[i].2.try_wait() else {
                i += 1;
                continue;
            };
            let (request_id, ctx, _) = self.in_flight.swap_remove(i);
            progress = true;
            let outcome = match outcome {
                Ok(served) => Ok(wire_prediction(served)),
                Err(e) => Err(fault_for(&e)),
            };
            let write_start = Instant::now();
            self.queue_response(ResponseFrame {
                request_id,
                outcome,
            });
            let write_end = Instant::now();
            handle.serve_metrics().on_stage(
                Stage::WireWrite,
                write_end.saturating_duration_since(write_start),
            );
            handle
                .tracer()
                .record(ctx, Stage::WireWrite, write_start, write_end);
            metrics.on_response_out();
        }
        progress
    }

    fn queue_fault(&mut self, request_id: u64, fault: WireFault, metrics: &WireMetrics) {
        self.queue_response(ResponseFrame {
            request_id,
            outcome: Err(fault),
        });
        metrics.on_response_out();
    }

    fn queue_response(&mut self, resp: ResponseFrame) {
        self.queue_frame(Frame::Response(resp));
    }

    fn queue_frame(&mut self, frame: Frame) {
        // Server-built frames have bounded fields, so encoding cannot
        // fail unless the builder itself is buggy; poison just this
        // connection instead of panicking the poll thread.
        if frame.encode_into(&mut self.write_buf).is_err() {
            self.dead = true;
            return;
        }
        self.last_activity = Instant::now();
    }

    /// Writes as much of the pending response bytes as the socket
    /// accepts; disconnects peers that stopped reading (bounded write
    /// buffer).
    fn flush(&mut self, config: &WireConfig) -> bool {
        let mut progress = false;
        while self.pending_write() > 0 && !self.dead {
            // analyze::allow(no-panic-path): `written` only advances by
            // bytes the socket accepted, never past `write_buf.len()`.
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => self.dead = true,
                Ok(n) => {
                    self.written += n;
                    self.last_activity = Instant::now();
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
        if self.written > 0 && self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        } else if self.written > 64 * 1024 {
            self.write_buf.drain(..self.written);
            self.written = 0;
        }
        // A peer that neither reads responses nor slows down would grow
        // the write buffer without bound; cut it off instead.
        if self.pending_write() > config.max_body_bytes.max(64 * 1024) * 2 {
            self.dead = true;
        }
        progress
    }

    fn update_lifecycle(&mut self, config: &WireConfig, metrics: &WireMetrics) {
        if self.dead {
            return;
        }
        let settled = self.in_flight.is_empty() && self.pending_write() == 0;
        if settled && self.close_after_flush {
            // Fault frame flushed: half-close and linger-discard the
            // peer's in-flight bytes instead of dropping the socket
            // (which would RST away the fault we just sent).
            let _ = self.stream.shutdown(Shutdown::Write);
            self.linger_until = Some(Instant::now() + CLOSE_LINGER);
        } else if settled && self.eof {
            self.dead = true;
        } else if settled && self.last_activity.elapsed() > config.idle_timeout {
            // Covers both silent peers and peers stalled mid-frame
            // (read_buf non-empty but no bytes arriving): either way
            // the slot is reclaimed, so half-open connections cannot
            // pin the accept cap forever.
            metrics.on_idle_close();
            self.dead = true;
        }
    }
}

/// Maps an engine-side error onto the wire status vocabulary.
fn fault_for(e: &ServeError) -> WireFault {
    match e {
        ServeError::QueueFull => WireFault::new(WireStatus::Busy, "engine queue full"),
        ServeError::Closed => WireFault::new(WireStatus::Closed, "engine shut down"),
        ServeError::NoModel => WireFault::new(WireStatus::NoModel, "no model published"),
        other => WireFault::new(WireStatus::ModelError, other.to_string()),
    }
}

fn wire_prediction(served: ServedPrediction) -> WirePrediction {
    WirePrediction {
        model: served.model,
        class: u32::try_from(served.prediction.class).unwrap_or(u32::MAX),
        score: served.prediction.score,
        model_version: served.model_version,
        batch_size: u32::try_from(served.batch_size).unwrap_or(u32::MAX),
        latency: served.latency,
    }
}

// analyze: end-nonblocking-region

/// The poll loop: accept, pump every connection, reap the dead, drain
/// on stop.
// analyze: nonblocking-region — the loop body multiplexes all peers;
// only the explicitly allowed idle backoff below may block.
fn run_loop(
    listener: &TcpListener,
    handle: &SubmitHandle,
    config: &WireConfig,
    metrics: &WireMetrics,
    stop: &AtomicBool,
) {
    let mut conns: Vec<Conn> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;
    loop {
        // Acquire: pairs with the Release store in `join`.
        let draining = stop.load(Ordering::Acquire);
        if draining && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + config.drain_timeout);
        }
        let mut progress = false;
        if !draining {
            progress |= accept_new(listener, &mut conns, config, metrics);
        }
        for conn in &mut conns {
            progress |= conn.pump(handle, config, metrics, draining);
        }
        let before = conns.len();
        conns.retain(|c| !c.dead);
        progress |= conns.len() != before;
        metrics.set_open(conns.len());
        if draining {
            let settled = conns
                .iter()
                .all(|c| c.in_flight.is_empty() && c.pending_write() == 0);
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if settled || expired {
                break;
            }
        }
        if !progress {
            // analyze::allow(nonblocking-region): deliberate idle
            // backoff, bounded by poll_interval and taken only when no
            // connection made progress this pass.
            std::thread::sleep(config.poll_interval);
        }
    }
    metrics.set_open(0);
}
// analyze: end-nonblocking-region

fn accept_new(
    listener: &TcpListener,
    conns: &mut Vec<Conn>,
    config: &WireConfig,
    metrics: &WireMetrics,
) -> bool {
    let mut progress = false;
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                progress = true;
                if conns.len() >= config.max_connections {
                    metrics.on_refuse();
                    drop(stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    continue;
                }
                metrics.on_accept();
                conns.push(Conn::new(stream));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    progress
}
