//! The TCP front-end: N readiness reactors feeding the engine.
//!
//! [`WireServer`] listens on a TCP socket and runs
//! [`WireConfig::reactors`] reactor threads, each driving its own
//! epoll-backed [`polling::Poller`] (the vendored readiness layer —
//! there is no async runtime in this workspace). Every reactor
//! registers the shared listener, so accepts are sharded: whichever
//! reactor wakes first wins the `accept` race, and the new connection
//! is pinned to reactor `fd % reactors` (handed off through that
//! reactor's inbox when another reactor accepted it). A connection
//! lives on one reactor for its whole life — no cross-thread state
//! beyond the handoff and completion inboxes.
//!
//! The heavy work never runs on a reactor. Packed frames are submitted
//! to the engine with a completion callback that posts the finished
//! prediction into the owning reactor's inbox (and wakes its poller) —
//! the reactor only shovels and frames bytes. Raw-features frames,
//! whose server-side encode ∘ obfuscate ([`WireConfig::edges`]) is
//! real CPU work, are offloaded onto the shared
//! [`privehd_core::pool`] worker pool: the pool job encodes, submits,
//! and its completion flows back through the same inbox. A raw flood
//! therefore costs pool throughput, not reactor latency.
//!
//! Because completions arrive per request (not per connection pass),
//! pipelined responses on one connection may be written in completion
//! order, not submission order — clients correlate by `request_id`
//! ([`crate::wire::WireClient`] documents the same contract).
//!
//! ## Backpressure and hygiene
//!
//! * Engine queue pressure ([`ServeError::QueueFull`]), a tenant over
//!   its fair-share quota ([`ServeError::TenantOverQuota`]) and the
//!   per-connection in-flight cap ([`WireConfig::max_in_flight`]) are
//!   answered with an explicit [`WireStatus::Busy`] error frame — the
//!   socket never stalls as a side channel of queue state.
//! * Per-connection read and write buffers are bounded (one maximal
//!   frame inbound; a fixed multiple outbound — a peer that stops
//!   reading its responses is disconnected rather than buffered
//!   without bound).
//! * Malformed, oversized, or wrong-version frames get a typed error
//!   frame (with the request id salvaged from the broken frame when
//!   possible), then the connection closes: a byte stream cannot be
//!   re-synchronized after framing is lost.
//! * Idle connections (no traffic, nothing in flight) close after
//!   [`WireConfig::idle_timeout`].
//! * [`WireServer::shutdown`] drains gracefully: every reactor stops
//!   accepting and reading, finishes its in-flight requests, flushes
//!   response buffers, then closes. If the engine shuts down first,
//!   in-flight requests resolve to [`WireStatus::Closed`] faults and
//!   the drain still completes.
//!
//! ## Observability
//!
//! The reactors stamp the wire-side stages of the request path —
//! [`Stage::WireDecode`], [`Stage::Admission`], [`Stage::Encode`] (raw
//! frames, stamped on the pool thread that ran the edge) and
//! [`Stage::WireWrite`] — into the engine's [`crate::ServeMetrics`]
//! and its sampled trace ring, using one [`TraceCtx`] per request so a
//! trace id spans the transport and the engine. A `Stats` request
//! frame answers with the merged Prometheus-text exposition
//! ([`crate::stats::prometheus_text`]) of the serve report, the
//! transport counters, and the slow-span ring; stats traffic is
//! counted in [`WireReport::stats_served`] only, not in the
//! frame/response counters. See `docs/OBSERVABILITY.md`.

use std::collections::HashMap;
use std::fmt;
use std::io::{ErrorKind, Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::edge::ClientEdge;
use crate::engine::{QueryVec, ServedPrediction, SubmitHandle};
use crate::error::ServeError;
use crate::registry::ModelId;
use crate::wire::frame::{
    salvage_request_id, Frame, FrameError, QueryPayload, RequestFrame, ResponseFrame,
    StatsReplyFrame, WireFault, WirePrediction, WireStatus, DEFAULT_MAX_BODY, HEADER_LEN,
    TRAILER_LEN,
};
use crate::wire::metrics::{WireMetrics, WireReport};
use polling::{Event, Poller};
use privehd_core::telemetry::{Stage, TraceCtx};

/// Tuning knobs of the wire front-end.
#[derive(Debug, Clone)]
pub struct WireConfig {
    /// Reactor (readiness loop) threads. Each runs its own poller;
    /// connections are pinned to `fd % reactors`. Defaults to the
    /// machine's available parallelism, capped at 4 — wire reactors
    /// shovel bytes and should leave cores for the engine's workers.
    pub reactors: usize,
    /// Most simultaneous connections across all reactors; further
    /// accepts are refused (closed immediately).
    pub max_connections: usize,
    /// Cap on a frame's declared body length; larger frames answer
    /// [`WireStatus::TooLarge`] and close the connection.
    pub max_body_bytes: usize,
    /// Per-connection admission cap: requests in flight beyond this
    /// answer [`WireStatus::Busy`] instead of entering the engine — a
    /// flooding connection is throttled at its own edge before it can
    /// monopolize the shared submission queues.
    pub max_in_flight: usize,
    /// Cap on the *bytes a query holds in the engine queue*, expressed
    /// as a dense dimensionality: a raw-features frame may declare at
    /// most `max_query_dim` features (its edge-encoded query occupies
    /// one `f64` per dimension), while a packed frame — which rides
    /// the queue packed-native at 1 bit/dim, with no dense expansion
    /// anywhere on its path — may declare up to `64 × max_query_dim`
    /// dimensions, the same memory held. Decoding never allocates more
    /// than the frame's own size; this cap bounds what admitted queries
    /// pin in the queue, since frames within
    /// [`WireConfig::max_body_bytes`] could otherwise declare millions
    /// of dimensions. Over-cap queries answer a
    /// [`WireStatus::ModelError`] fault. Set it near your largest
    /// served model's dimensionality.
    pub max_query_dim: usize,
    /// A connection with no traffic and nothing in flight closes after
    /// this long.
    pub idle_timeout: Duration,
    /// How long [`WireServer::shutdown`] waits for in-flight requests
    /// to finish before closing connections anyway.
    pub drain_timeout: Duration,
    /// Upper bound on how long a reactor sleeps in `Poller::wait` with
    /// no readiness events; doubles as the timer tick for idle, linger
    /// and drain deadlines.
    pub poll_interval: Duration,
    /// Server-side edge pipelines for [`QueryPayload::Raw`] frames,
    /// keyed by model id: raw features for `id` run encode ∘ obfuscate
    /// through `edges[id]` (on the worker pool, off the reactor)
    /// before submission. Models without an entry answer
    /// [`WireStatus::UnsupportedPayload`] to raw frames.
    pub edges: HashMap<ModelId, ClientEdge>,
}

impl Default for WireConfig {
    fn default() -> Self {
        Self {
            reactors: default_reactors(),
            max_connections: 64,
            max_body_bytes: DEFAULT_MAX_BODY,
            max_in_flight: 32,
            max_query_dim: 65_536,
            idle_timeout: Duration::from_secs(30),
            drain_timeout: Duration::from_secs(5),
            poll_interval: Duration::from_millis(10),
            edges: HashMap::new(),
        }
    }
}

/// Default reactor count: available parallelism capped at 4.
fn default_reactors() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().min(4))
        .unwrap_or(1)
}

impl WireConfig {
    /// A builder over the defaults, validating at
    /// [`WireConfigBuilder::build`].
    #[must_use]
    pub fn builder() -> WireConfigBuilder {
        WireConfigBuilder::default()
    }

    /// Registers a server-side edge for `model`'s raw-features frames
    /// (builder style).
    #[must_use]
    pub fn with_edge(mut self, model: ModelId, edge: ClientEdge) -> Self {
        self.edges.insert(model, edge);
        self
    }

    fn validate(&self) -> Result<(), ServeError> {
        if self.reactors == 0 {
            return Err(ServeError::InvalidConfig("reactors must be ≥ 1".into()));
        }
        if self.max_connections == 0 {
            return Err(ServeError::InvalidConfig(
                "max_connections must be ≥ 1".into(),
            ));
        }
        if self.max_body_bytes < 64 {
            return Err(ServeError::InvalidConfig(
                "max_body_bytes must be ≥ 64".into(),
            ));
        }
        if self.max_in_flight == 0 {
            return Err(ServeError::InvalidConfig(
                "max_in_flight must be ≥ 1".into(),
            ));
        }
        if self.max_query_dim == 0 {
            return Err(ServeError::InvalidConfig(
                "max_query_dim must be ≥ 1".into(),
            ));
        }
        Ok(())
    }
}

/// Builder for [`WireConfig`] with build-time validation — invalid
/// knob combinations surface as [`ServeError::InvalidConfig`] at
/// [`WireConfigBuilder::build`], before a socket is ever bound.
///
/// # Examples
///
/// ```
/// use privehd_serve::wire::WireConfig;
///
/// let config = WireConfig::builder()
///     .reactors(2)
///     .max_in_flight(8)
///     .build()
///     .unwrap();
/// assert_eq!(config.reactors, 2);
/// assert!(WireConfig::builder().reactors(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WireConfigBuilder {
    config: WireConfig,
}

impl WireConfigBuilder {
    /// Sets [`WireConfig::reactors`].
    #[must_use]
    pub fn reactors(mut self, n: usize) -> Self {
        self.config.reactors = n;
        self
    }

    /// Sets [`WireConfig::max_connections`].
    #[must_use]
    pub fn max_connections(mut self, n: usize) -> Self {
        self.config.max_connections = n;
        self
    }

    /// Sets [`WireConfig::max_body_bytes`].
    #[must_use]
    pub fn max_body_bytes(mut self, n: usize) -> Self {
        self.config.max_body_bytes = n;
        self
    }

    /// Sets [`WireConfig::max_in_flight`].
    #[must_use]
    pub fn max_in_flight(mut self, n: usize) -> Self {
        self.config.max_in_flight = n;
        self
    }

    /// Sets [`WireConfig::max_query_dim`].
    #[must_use]
    pub fn max_query_dim(mut self, n: usize) -> Self {
        self.config.max_query_dim = n;
        self
    }

    /// Sets [`WireConfig::idle_timeout`].
    #[must_use]
    pub fn idle_timeout(mut self, d: Duration) -> Self {
        self.config.idle_timeout = d;
        self
    }

    /// Sets [`WireConfig::drain_timeout`].
    #[must_use]
    pub fn drain_timeout(mut self, d: Duration) -> Self {
        self.config.drain_timeout = d;
        self
    }

    /// Sets [`WireConfig::poll_interval`].
    #[must_use]
    pub fn poll_interval(mut self, d: Duration) -> Self {
        self.config.poll_interval = d;
        self
    }

    /// Registers a server-side edge for `model`'s raw-features frames
    /// (see [`WireConfig::edges`]).
    #[must_use]
    pub fn edge(mut self, model: ModelId, edge: ClientEdge) -> Self {
        self.config.edges.insert(model, edge);
        self
    }

    /// Validates and returns the finished [`WireConfig`].
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] naming the offending knob.
    pub fn build(self) -> Result<WireConfig, ServeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// The poller key every reactor registers the shared listener under.
/// Connection keys start at 1, so 0 is never ambiguous.
const LISTEN_KEY: usize = 0;

/// A finished request on its way back to the connection that issued
/// it: posted by an engine worker (packed path) or a pool job (raw
/// path) into the owning reactor's inbox.
struct Completion {
    /// The connection's poller key on its owning reactor.
    key: usize,
    request_id: u64,
    ctx: TraceCtx,
    outcome: Result<ServedPrediction, ServeError>,
}

/// A reactor's mailbox for work arriving from other threads: sockets
/// handed off by the accepting reactor, and completions posted by
/// engine workers / pool jobs. Paired with a `Poller::notify` wake.
#[derive(Default)]
struct Inbox {
    conns: Vec<TcpStream>,
    completions: Vec<Completion>,
}

/// Another reactor, as seen from the accepting one: enough to hand a
/// socket over and wake it.
struct ReactorPeer {
    poller: Arc<Poller>,
    inbox: Arc<Mutex<Inbox>>,
}

/// Everything one reactor thread needs, bundled so helpers take one
/// argument (and so no per-reactor `Vec` indexing is ever needed —
/// `peers.get(target)` is total).
struct ReactorCtx {
    index: usize,
    listener: Arc<TcpListener>,
    handle: SubmitHandle,
    config: Arc<WireConfig>,
    metrics: Arc<WireMetrics>,
    conn_count: Arc<AtomicUsize>,
    poller: Arc<Poller>,
    inbox: Arc<Mutex<Inbox>>,
    peers: Vec<ReactorPeer>,
}

/// Locks a reactor inbox, recovering from poisoning: an inbox holds
/// plain `Vec`s whose partial state is safe to continue with, and a
/// poisoned inbox must not wedge every completion behind it.
fn lock_inbox(inbox: &Mutex<Inbox>) -> MutexGuard<'_, Inbox> {
    inbox.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Posts a completion into `inbox` and wakes its reactor.
fn push_completion(inbox: &Mutex<Inbox>, poller: &Poller, completion: Completion) {
    lock_inbox(inbox).completions.push(completion);
    let _ = poller.notify();
}

/// The `Event` expressing interest `want` (readable, writable) for
/// poller key `key`.
fn event_for(key: usize, want: (bool, bool)) -> Event {
    match want {
        (true, true) => Event::all(key),
        (true, false) => Event::readable(key),
        (false, true) => Event::writable(key),
        (false, false) => Event::none(key),
    }
}

/// The running TCP front-end; dropping (or [`WireServer::shutdown`])
/// stops it.
pub struct WireServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<WireMetrics>,
    conn_count: Arc<AtomicUsize>,
    pollers: Vec<Arc<Poller>>,
    inboxes: Vec<Arc<Mutex<Inbox>>>,
    threads: Vec<JoinHandle<()>>,
}

impl fmt::Debug for WireServer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("WireServer")
            .field("addr", &self.addr)
            .field("reactors", &self.pollers.len())
            .finish_non_exhaustive()
    }
}

impl WireServer {
    /// Binds `addr` (use port 0 for an OS-assigned port) and spawns
    /// [`WireConfig::reactors`] reactor threads serving requests into
    /// `handle`'s engine.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for zero-valued knobs,
    /// [`ServeError::Transport`] when the bind (or poller setup)
    /// fails.
    ///
    /// # Examples
    ///
    /// A full loopback round trip:
    ///
    /// ```
    /// use std::sync::Arc;
    /// use privehd_core::{BipolarHv, HdModel, Hypervector};
    /// use privehd_serve::wire::{WireClient, WireConfig, WireServer};
    /// use privehd_serve::{ModelId, ServeConfig, ServeEngine, ShardedRegistry};
    ///
    /// # fn main() -> Result<(), Box<dyn std::error::Error>> {
    /// let mut model = HdModel::new(2, 64)?;
    /// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
    /// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
    /// let registry = Arc::new(ShardedRegistry::with_model(model, "demo")?);
    /// let engine = ServeEngine::start(registry, ServeConfig::default())?;
    ///
    /// let server = WireServer::start("127.0.0.1:0", engine.handle(), WireConfig::default())?;
    /// let mut client = WireClient::connect(server.local_addr())?;
    /// let query = BipolarHv::from_signs(&vec![1.0; 64]);
    /// let served = client.call_packed(&ModelId::default(), &query)?;
    /// assert_eq!(served.class, 0);
    ///
    /// let report = server.shutdown();
    /// assert_eq!(report.responses_out, 1);
    /// engine.shutdown();
    /// # Ok(())
    /// # }
    /// ```
    pub fn start(
        addr: impl ToSocketAddrs,
        handle: SubmitHandle,
        config: WireConfig,
    ) -> Result<Self, ServeError> {
        config.validate()?;
        let listener = TcpListener::bind(addr)
            .map_err(|e| ServeError::Transport(format!("bind failed: {e}")))?;
        listener
            .set_nonblocking(true)
            .map_err(|e| ServeError::Transport(format!("set_nonblocking failed: {e}")))?;
        let local = listener
            .local_addr()
            .map_err(|e| ServeError::Transport(format!("local_addr failed: {e}")))?;
        let listener = Arc::new(listener);
        let config = Arc::new(config);
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(WireMetrics::new());
        let conn_count = Arc::new(AtomicUsize::new(0));
        let n = config.reactors;
        let mut pollers = Vec::with_capacity(n);
        let mut inboxes = Vec::with_capacity(n);
        for _ in 0..n {
            let poller = Poller::new()
                .map_err(|e| ServeError::Transport(format!("poller setup failed: {e}")))?;
            pollers.push(Arc::new(poller));
            inboxes.push(Arc::new(Mutex::new(Inbox::default())));
        }
        let mut threads = Vec::with_capacity(n);
        for (index, (poller, inbox)) in pollers.iter().zip(&inboxes).enumerate() {
            let peers = pollers
                .iter()
                .zip(&inboxes)
                .map(|(p, i)| ReactorPeer {
                    poller: Arc::clone(p),
                    inbox: Arc::clone(i),
                })
                .collect();
            let rctx = ReactorCtx {
                index,
                listener: Arc::clone(&listener),
                handle: handle.clone(),
                config: Arc::clone(&config),
                metrics: Arc::clone(&metrics),
                conn_count: Arc::clone(&conn_count),
                poller: Arc::clone(poller),
                inbox: Arc::clone(inbox),
                peers,
            };
            let stop_flag = Arc::clone(&stop);
            let spawned = std::thread::Builder::new()
                .name(format!("privehd-wire-{index}"))
                .spawn(move || run_reactor(rctx, &stop_flag));
            match spawned {
                Ok(t) => threads.push(t),
                Err(e) => {
                    // Release: pairs with the reactors' Acquire loads;
                    // makes this stop visible before they are woken.
                    stop.store(true, Ordering::Release);
                    for p in &pollers {
                        let _ = p.notify();
                    }
                    for t in threads {
                        let _ = t.join();
                    }
                    return Err(ServeError::Transport(format!("spawn failed: {e}")));
                }
            }
        }
        Ok(Self {
            addr: local,
            stop,
            metrics,
            conn_count,
            pollers,
            inboxes,
            threads,
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live transport counters.
    pub fn metrics(&self) -> &WireMetrics {
        &self.metrics
    }

    /// Snapshot of the transport counters.
    pub fn report(&self) -> WireReport {
        self.metrics.report()
    }

    /// Stops accepting, drains in-flight requests (bounded by
    /// [`WireConfig::drain_timeout`]), closes every connection, joins
    /// the reactor threads, and returns the final transport report.
    pub fn shutdown(mut self) -> WireReport {
        self.join();
        self.metrics.report()
    }

    fn join(&mut self) {
        // Release: pairs with the reactors' Acquire load of `stop`;
        // writes before shutdown are visible to them.
        self.stop.store(true, Ordering::Release);
        for p in &self.pollers {
            let _ = p.notify();
        }
        for t in self.threads.drain(..) {
            // analyze::allow(no-panic-path): re-raising a reactor
            // panic at shutdown is deliberate — it fires only on an
            // internal bug, never on peer input, and must not be
            // swallowed into a clean-looking report.
            t.join().expect("wire reactor thread panicked");
        }
        // A socket accepted on reactor A and handed to reactor B can
        // land in B's inbox after B exited its loop: release those
        // slots here so the open-connection gauge ends at zero.
        for inbox in &self.inboxes {
            let mut guard = lock_inbox(inbox);
            for stream in guard.conns.drain(..) {
                drop(stream);
                // Relaxed: plain admission counter; no data is
                // published through it.
                self.conn_count.fetch_sub(1, Ordering::Relaxed);
                self.metrics.on_conn_close();
            }
            guard.completions.clear();
        }
    }
}

impl Drop for WireServer {
    fn drop(&mut self) {
        self.join();
    }
}

/// One live connection's state inside its owning reactor.
struct Conn {
    stream: TcpStream,
    /// This connection's poller key on its owning reactor (unique for
    /// the reactor's lifetime; never reused, so a stale completion for
    /// a dead connection cannot alias a live one).
    key: usize,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    written: usize,
    /// Requests submitted (or offloaded to the pool) and not yet
    /// answered; their results arrive as [`Completion`]s.
    in_flight: usize,
    /// The (readable, writable) interest currently registered with the
    /// poller; updated on transitions only.
    interest: (bool, bool),
    last_activity: Instant,
    /// Peer half-closed its send side; serve what's in flight, then go.
    eof: bool,
    /// Framing was lost (or the peer must go): close once the write
    /// buffer flushes.
    close_after_flush: bool,
    /// Set once the fault frame is flushed and the write side is shut
    /// down: keep *reading and discarding* the peer's in-flight bytes
    /// until EOF or this deadline, so closing with unread data in the
    /// kernel buffer does not RST away the fault frame we just sent.
    linger_until: Option<Instant>,
    dead: bool,
}

/// Read chunk size per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// How long a poisoned connection lingers discarding the peer's
/// in-flight bytes after its fault frame is flushed.
const CLOSE_LINGER: Duration = Duration::from_secs(1);

// analyze: nonblocking-region — every Conn method runs on a reactor
// thread; one blocking call here stalls every peer pinned to it.
impl Conn {
    fn new(stream: TcpStream, key: usize) -> Self {
        Self {
            stream,
            key,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            in_flight: 0,
            interest: (false, false),
            last_activity: Instant::now(),
            eof: false,
            close_after_flush: false,
            linger_until: None,
            dead: false,
        }
    }

    fn pending_write(&self) -> usize {
        self.write_buf.len() - self.written
    }

    fn settled(&self) -> bool {
        self.in_flight == 0 && self.pending_write() == 0
    }

    /// The (readable, writable) interest this connection wants
    /// registered, given its lifecycle state. Reading stops while
    /// poisoned or draining; writing is wanted only with bytes queued.
    fn desired_interest(&self, draining: bool) -> (bool, bool) {
        let want_read =
            self.linger_until.is_some() || (!draining && !self.close_after_flush && !self.eof);
        (want_read, self.pending_write() > 0)
    }

    /// One service round: read, parse/submit, write, lifecycle.
    /// Returns true when any progress was made. `draining` suppresses
    /// reading/parsing so shutdown only finishes what was already
    /// accepted. Completions are applied separately (see
    /// [`Conn::complete`]) as they arrive in the reactor inbox.
    fn pump(&mut self, rctx: &ReactorCtx, draining: bool) -> bool {
        if let Some(deadline) = self.linger_until {
            return self.linger_discard(deadline);
        }
        let mut progress = false;
        if !draining && !self.close_after_flush {
            progress |= self.fill_read_buf(&rctx.config);
            progress |= self.parse_and_submit(rctx);
        }
        progress |= self.flush(&rctx.config);
        self.update_lifecycle(&rctx.config, &rctx.metrics);
        progress
    }

    /// Post-fault lingering: the write side is already shut down (FIN
    /// sent, fault frame flushed); read and discard whatever the peer
    /// had in flight so the close never turns into an RST that
    /// destroys the fault frame on the peer's side.
    fn linger_discard(&mut self, deadline: Instant) -> bool {
        let mut chunk = [0u8; READ_CHUNK];
        let mut progress = false;
        loop {
            if Instant::now() >= deadline {
                self.dead = true;
                return true;
            }
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.dead = true;
                    return true;
                }
                Ok(_) => progress = true,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return progress,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return true;
                }
            }
        }
    }

    /// Reads whatever the socket has, up to the bounded buffer size
    /// (header + one maximal body + trailer): a peer streaming faster
    /// than we parse backs up into TCP flow control, not into memory.
    fn fill_read_buf(&mut self, config: &WireConfig) -> bool {
        let cap = HEADER_LEN + config.max_body_bytes + TRAILER_LEN;
        let mut progress = false;
        let mut chunk = [0u8; READ_CHUNK];
        while self.read_buf.len() < cap && !self.eof && !self.dead {
            let want = READ_CHUNK.min(cap - self.read_buf.len());
            // analyze::allow(no-panic-path): `want` is clamped to
            // READ_CHUNK above and `n <= want` per the read contract.
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => self.eof = true,
                Ok(n) => {
                    // analyze::allow(no-panic-path): `n <= want <= READ_CHUNK`.
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    self.last_activity = Instant::now();
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
        progress
    }

    /// Decodes every complete frame in the read buffer, answering or
    /// submitting each. A decode error answers a typed fault (request
    /// id salvaged when possible) and poisons the connection.
    fn parse_and_submit(&mut self, rctx: &ReactorCtx) -> bool {
        let handle = &rctx.handle;
        let config = &rctx.config;
        let metrics = &rctx.metrics;
        let mut consumed = 0usize;
        let mut progress = false;
        loop {
            let decode_start = Instant::now();
            // analyze::allow(no-panic-path): `consumed` only grows by
            // the decoded length of complete frames, so it never
            // exceeds `read_buf.len()`.
            match Frame::decode(&self.read_buf[consumed..], config.max_body_bytes) {
                Ok(None) => break,
                Ok(Some((frame, used))) => {
                    let decoded_at = Instant::now();
                    consumed += used;
                    progress = true;
                    self.last_activity = Instant::now();
                    match frame {
                        Frame::Request(req) => {
                            metrics.on_frame_in();
                            // One trace context per request, begun here
                            // so its id spans the wire stages and the
                            // engine's.
                            let ctx = handle.tracer().begin();
                            let decode = decoded_at.saturating_duration_since(decode_start);
                            handle.serve_metrics().on_stage(Stage::WireDecode, decode);
                            handle.tracer().record(
                                ctx,
                                Stage::WireDecode,
                                decode_start,
                                decoded_at,
                            );
                            self.handle_request(req, ctx, rctx);
                        }
                        Frame::StatsRequest(req) => {
                            // Metadata, not serving load: answered
                            // inline from counter snapshots, counted
                            // only in `stats_served` (before the
                            // snapshot, so a scrape sees itself).
                            metrics.on_stats_served();
                            let serve = handle.serve_metrics();
                            let report = serve.report(serve.uptime());
                            let wire = metrics.report();
                            let trace = handle.tracer().snapshot();
                            let text = crate::stats::prometheus_text(&report, Some(&wire), &trace);
                            self.queue_frame(Frame::StatsReply(StatsReplyFrame {
                                request_id: req.request_id,
                                text,
                            }));
                        }
                        Frame::Response(resp) => {
                            // Clients must not send response frames.
                            metrics.on_decode_error();
                            self.queue_fault(
                                resp.request_id,
                                WireFault::new(
                                    WireStatus::BadFrame,
                                    "response frame on the request direction",
                                ),
                                metrics,
                            );
                            self.close_after_flush = true;
                            break;
                        }
                        Frame::StatsReply(resp) => {
                            metrics.on_decode_error();
                            self.queue_fault(
                                resp.request_id,
                                WireFault::new(
                                    WireStatus::BadFrame,
                                    "stats reply frame on the request direction",
                                ),
                                metrics,
                            );
                            self.close_after_flush = true;
                            break;
                        }
                    }
                }
                Err(err) => {
                    metrics.on_decode_error();
                    // analyze::allow(no-panic-path): same bound as the
                    // decode call above; salvage_request_id is total.
                    let id = salvage_request_id(&self.read_buf[consumed..]).unwrap_or(0);
                    let status = match err {
                        FrameError::Oversized { .. } => WireStatus::TooLarge,
                        FrameError::UnsupportedVersion(_) => WireStatus::UnsupportedVersion,
                        _ => WireStatus::BadFrame,
                    };
                    self.queue_fault(id, WireFault::new(status, err.to_string()), metrics);
                    self.close_after_flush = true;
                    progress = true;
                    break;
                }
            }
        }
        if self.close_after_flush {
            // Framing is lost (or the peer is leaving): drop the rest.
            self.read_buf.clear();
        } else if consumed > 0 {
            self.read_buf.drain(..consumed);
        }
        progress
    }

    /// Admission, payload preparation, and submission for one request.
    ///
    /// Packed frames submit from the reactor with a completion
    /// callback pointing at this reactor's inbox; raw frames are
    /// offloaded to the worker pool (edge encode ∘ obfuscate, then the
    /// same submit-with-callback), so the reactor never runs encode
    /// CPU work. On successful submission the engine worker path
    /// stamps [`Stage::Admission`] (the whole span from frame-decoded
    /// to engine-accepted, which on the raw path *contains* the
    /// [`Stage::Encode`] span recorded around the server-side edge).
    /// Rejected requests stamp nothing — the stage histograms
    /// decompose served traffic.
    fn handle_request(&mut self, req: RequestFrame, ctx: TraceCtx, rctx: &ReactorCtx) {
        let admit_start = Instant::now();
        let handle = &rctx.handle;
        let config = &rctx.config;
        let metrics = &rctx.metrics;
        let RequestFrame {
            request_id,
            model,
            payload,
        } = req;
        if self.in_flight >= config.max_in_flight {
            metrics.on_busy();
            self.queue_fault(
                request_id,
                WireFault::new(WireStatus::Busy, "connection in-flight cap reached"),
                metrics,
            );
            return;
        }
        // Admission accounts for bytes *held* after submission, not a
        // frame's declared dimensionality: a packed query stays packed
        // (1 bit/dim) through the queue, so it may carry 64× the
        // dimensions of a raw frame (whose edge-encoded query occupies
        // one f64 per dimension) for the same queue memory.
        let (query_dim, dim_cap) = match &payload {
            QueryPayload::Packed(hv) => (hv.dim(), config.max_query_dim.saturating_mul(64)),
            QueryPayload::Raw(features) => (features.len(), config.max_query_dim),
        };
        if query_dim > dim_cap {
            self.queue_fault(
                request_id,
                WireFault::new(
                    WireStatus::ModelError,
                    format!("query dimensionality {query_dim} exceeds the server cap {dim_cap}"),
                ),
                metrics,
            );
            return;
        }
        match payload {
            // Packed-native: the frame's bit-packed words are handed to
            // the engine as-is — no to_dense() on this path, by
            // contract (a conversion-count test pins it).
            QueryPayload::Packed(hv) => {
                let on_done = completion_callback(rctx, self.key, request_id, ctx);
                match handle.submit_with(&model, QueryVec::Packed(hv), ctx, on_done) {
                    Ok(()) => {
                        self.in_flight += 1;
                        let admitted_at = Instant::now();
                        handle.serve_metrics().on_stage(
                            Stage::Admission,
                            admitted_at.saturating_duration_since(admit_start),
                        );
                        handle
                            .tracer()
                            .record(ctx, Stage::Admission, admit_start, admitted_at);
                    }
                    Err(e) => {
                        if matches!(e, ServeError::QueueFull | ServeError::TenantOverQuota) {
                            metrics.on_busy();
                        }
                        self.queue_fault(request_id, fault_for(&e), metrics);
                    }
                }
            }
            QueryPayload::Raw(features) => {
                if !config.edges.contains_key(&model) {
                    self.queue_fault(
                        request_id,
                        WireFault::new(
                            WireStatus::UnsupportedPayload,
                            "no server-side edge registered for this model",
                        ),
                        metrics,
                    );
                    return;
                }
                // Offload the edge onto the worker pool: encode is the
                // one CPU-heavy wire stage, and running it here would
                // add its latency to every peer on this reactor. The
                // job posts exactly one completion (success or error),
                // so `in_flight` always comes back down.
                self.in_flight += 1;
                let key = self.key;
                let handle = handle.clone();
                let config = Arc::clone(&rctx.config);
                let inbox = Arc::clone(&rctx.inbox);
                let poller = Arc::clone(&rctx.poller);
                privehd_core::pool::global().spawn(move || {
                    encode_and_submit(
                        &handle,
                        &config,
                        &inbox,
                        &poller,
                        key,
                        request_id,
                        ctx,
                        admit_start,
                        model,
                        features,
                    );
                });
            }
        }
    }

    /// Applies one finished request to this connection: frames the
    /// response (stamping [`Stage::WireWrite`] — response framing into
    /// the write buffer; the socket write itself is batched across
    /// requests and not attributable to one) and releases its
    /// in-flight slot.
    fn complete(&mut self, completion: Completion, handle: &SubmitHandle, metrics: &WireMetrics) {
        let Completion {
            request_id,
            ctx,
            outcome,
            ..
        } = completion;
        self.in_flight = self.in_flight.saturating_sub(1);
        if matches!(
            outcome,
            Err(ServeError::QueueFull | ServeError::TenantOverQuota)
        ) {
            // Raw-path submissions reject on the pool thread and flow
            // back here; count them as Busy exactly once.
            metrics.on_busy();
        }
        let outcome = match outcome {
            Ok(served) => Ok(wire_prediction(served)),
            Err(e) => Err(fault_for(&e)),
        };
        let write_start = Instant::now();
        self.queue_response(ResponseFrame {
            request_id,
            outcome,
        });
        let write_end = Instant::now();
        handle.serve_metrics().on_stage(
            Stage::WireWrite,
            write_end.saturating_duration_since(write_start),
        );
        handle
            .tracer()
            .record(ctx, Stage::WireWrite, write_start, write_end);
        metrics.on_response_out();
    }

    fn queue_fault(&mut self, request_id: u64, fault: WireFault, metrics: &WireMetrics) {
        self.queue_response(ResponseFrame {
            request_id,
            outcome: Err(fault),
        });
        metrics.on_response_out();
    }

    fn queue_response(&mut self, resp: ResponseFrame) {
        self.queue_frame(Frame::Response(resp));
    }

    fn queue_frame(&mut self, frame: Frame) {
        // Server-built frames have bounded fields, so encoding cannot
        // fail unless the builder itself is buggy; poison just this
        // connection instead of panicking the reactor.
        if frame.encode_into(&mut self.write_buf).is_err() {
            self.dead = true;
            return;
        }
        self.last_activity = Instant::now();
    }

    /// Writes as much of the pending response bytes as the socket
    /// accepts; disconnects peers that stopped reading (bounded write
    /// buffer).
    fn flush(&mut self, config: &WireConfig) -> bool {
        let mut progress = false;
        while self.pending_write() > 0 && !self.dead {
            // analyze::allow(no-panic-path): `written` only advances by
            // bytes the socket accepted, never past `write_buf.len()`.
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => self.dead = true,
                Ok(n) => {
                    self.written += n;
                    self.last_activity = Instant::now();
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => self.dead = true,
            }
        }
        if self.written > 0 && self.written == self.write_buf.len() {
            self.write_buf.clear();
            self.written = 0;
        } else if self.written > 64 * 1024 {
            self.write_buf.drain(..self.written);
            self.written = 0;
        }
        // A peer that neither reads responses nor slows down would grow
        // the write buffer without bound; cut it off instead.
        if self.pending_write() > config.max_body_bytes.max(64 * 1024) * 2 {
            self.dead = true;
        }
        progress
    }

    fn update_lifecycle(&mut self, config: &WireConfig, metrics: &WireMetrics) {
        if self.dead {
            return;
        }
        let settled = self.settled();
        if settled && self.close_after_flush {
            // Fault frame flushed: half-close and linger-discard the
            // peer's in-flight bytes instead of dropping the socket
            // (which would RST away the fault we just sent).
            let _ = self.stream.shutdown(Shutdown::Write);
            self.linger_until = Some(Instant::now() + CLOSE_LINGER);
        } else if settled && self.eof {
            self.dead = true;
        } else if settled && self.last_activity.elapsed() > config.idle_timeout {
            // Covers both silent peers and peers stalled mid-frame
            // (read_buf non-empty but no bytes arriving): either way
            // the slot is reclaimed, so half-open connections cannot
            // pin the accept cap forever.
            metrics.on_idle_close();
            self.dead = true;
        }
    }
}
// analyze: end-nonblocking-region

/// Builds the completion callback a submission hands to the engine:
/// it posts the outcome into the owning reactor's inbox under the
/// connection's key and wakes that reactor's poller. Runs on an engine
/// worker thread.
fn completion_callback(
    rctx: &ReactorCtx,
    key: usize,
    request_id: u64,
    ctx: TraceCtx,
) -> Box<dyn Fn(Result<ServedPrediction, ServeError>) + Send + Sync> {
    let inbox = Arc::clone(&rctx.inbox);
    let poller = Arc::clone(&rctx.poller);
    Box::new(move |outcome| {
        push_completion(
            &inbox,
            &poller,
            Completion {
                key,
                request_id,
                ctx,
                outcome,
            },
        );
    })
}

/// The raw-frame pool job: server-side edge (encode ∘ obfuscate), then
/// submit with a completion callback. Runs on a worker-pool thread;
/// every path posts exactly one completion so the connection's
/// in-flight count always settles.
#[allow(clippy::too_many_arguments)]
fn encode_and_submit(
    handle: &SubmitHandle,
    config: &WireConfig,
    inbox: &Arc<Mutex<Inbox>>,
    poller: &Arc<Poller>,
    key: usize,
    request_id: u64,
    ctx: TraceCtx,
    admit_start: Instant,
    model: ModelId,
    features: Vec<f64>,
) {
    let fail = |outcome: Result<ServedPrediction, ServeError>| {
        push_completion(
            inbox,
            poller,
            Completion {
                key,
                request_id,
                ctx,
                outcome,
            },
        );
    };
    // The reactor verified this entry exists before offloading; the
    // config Arc is immutable, so a miss here means a bug — answer it
    // as a fault rather than unwrapping on a pool thread.
    let Some(edge) = config.edges.get(&model) else {
        fail(Err(ServeError::NoModel));
        return;
    };
    let encode_start = Instant::now();
    let query = match edge.prepare(&features) {
        Ok(q) => q,
        Err(e) => {
            fail(Err(e));
            return;
        }
    };
    let encode_end = Instant::now();
    handle.serve_metrics().on_stage(
        Stage::Encode,
        encode_end.saturating_duration_since(encode_start),
    );
    handle
        .tracer()
        .record(ctx, Stage::Encode, encode_start, encode_end);
    let on_done = {
        let inbox = Arc::clone(inbox);
        let poller = Arc::clone(poller);
        Box::new(move |outcome| {
            push_completion(
                &inbox,
                &poller,
                Completion {
                    key,
                    request_id,
                    ctx,
                    outcome,
                },
            );
        })
    };
    match handle.submit_with(&model, QueryVec::Dense(query), ctx, on_done) {
        Ok(()) => {
            let admitted_at = Instant::now();
            handle.serve_metrics().on_stage(
                Stage::Admission,
                admitted_at.saturating_duration_since(admit_start),
            );
            handle
                .tracer()
                .record(ctx, Stage::Admission, admit_start, admitted_at);
        }
        Err(e) => fail(Err(e)),
    }
}

/// Maps an engine-side error onto the wire status vocabulary.
fn fault_for(e: &ServeError) -> WireFault {
    match e {
        ServeError::QueueFull => WireFault::new(WireStatus::Busy, "engine queue full"),
        ServeError::TenantOverQuota => {
            WireFault::new(WireStatus::Busy, "per-tenant quota full — back off")
        }
        ServeError::Closed => WireFault::new(WireStatus::Closed, "engine shut down"),
        ServeError::NoModel => WireFault::new(WireStatus::NoModel, "no model published"),
        other => WireFault::new(WireStatus::ModelError, other.to_string()),
    }
}

fn wire_prediction(served: ServedPrediction) -> WirePrediction {
    WirePrediction {
        model: served.model,
        class: u32::try_from(served.prediction.class).unwrap_or(u32::MAX),
        score: served.prediction.score,
        model_version: served.model_version,
        batch_size: u32::try_from(served.batch_size).unwrap_or(u32::MAX),
        latency: served.latency,
    }
}

/// One reactor's readiness loop: wait, accept (shared listener race),
/// absorb handoffs and completions from the inbox, pump every pinned
/// connection, reap the dead, drain on stop.
// analyze: nonblocking-region — the loop body multiplexes all peers
// pinned to this reactor; only the poller wait below may block.
fn run_reactor(rctx: ReactorCtx, stop: &AtomicBool) {
    let mut conns: HashMap<usize, Conn> = HashMap::new();
    let mut next_key: usize = LISTEN_KEY + 1;
    let mut events: Vec<Event> = Vec::new();
    let mut drain_deadline: Option<Instant> = None;
    // Every reactor registers the shared nonblocking listener: accept
    // readiness wakes them all, the accept() winner takes the socket,
    // the losers see WouldBlock (level-triggered, so nothing is lost).
    let _ = rctx
        .poller
        .add(&*rctx.listener, Event::readable(LISTEN_KEY));
    loop {
        // Acquire: pairs with the Release store in `WireServer::join`.
        let draining = stop.load(Ordering::Acquire);
        if draining && drain_deadline.is_none() {
            drain_deadline = Some(Instant::now() + rctx.config.drain_timeout);
        }
        // analyze::allow(nonblocking-region): the poller wait IS the
        // loop's single intended blocking point — bounded by
        // poll_interval (the timer tick for idle/linger/drain
        // deadlines) and woken early by readiness or `notify`.
        let timeout = Some(rctx.config.poll_interval);
        let _ = rctx.poller.wait(&mut events, timeout);
        if !draining {
            accept_new(&mut conns, &mut next_key, &rctx);
        }
        // Absorb the inbox: sockets handed off by other reactors, and
        // completions posted by engine workers / pool jobs.
        let (handed_off, completions) = {
            let mut guard = lock_inbox(&rctx.inbox);
            (
                std::mem::take(&mut guard.conns),
                std::mem::take(&mut guard.completions),
            )
        };
        for stream in handed_off {
            if draining {
                // Accepted before the stop, handed off after: close it
                // instead of starting work we are draining away.
                drop(stream);
                release_conn_slot(&rctx);
                continue;
            }
            register_conn(stream, &mut conns, &mut next_key, &rctx);
        }
        for completion in completions {
            // A completion for a connection that died while its
            // request was in flight has nowhere to go; drop it (keys
            // are never reused, so it cannot alias a live peer).
            if let Some(conn) = conns.get_mut(&completion.key) {
                conn.complete(completion, &rctx.handle, &rctx.metrics);
            }
        }
        // Pump every connection each wake: events are wake reasons,
        // not work assignments — level-triggered readiness plus the
        // interest bookkeeping in reap_and_update prevents spinning.
        for conn in conns.values_mut() {
            conn.pump(&rctx, draining);
        }
        reap_and_update(&mut conns, &rctx, draining);
        if draining {
            let settled = conns.values().all(Conn::settled);
            let expired = drain_deadline.is_some_and(|d| Instant::now() >= d);
            if settled || expired {
                break;
            }
        }
    }
    let _ = rctx.poller.delete(&*rctx.listener);
    for (_, conn) in conns.drain() {
        let _ = rctx.poller.delete(&conn.stream);
        release_conn_slot(&rctx);
    }
}

/// Accepts every pending connection on the shared listener: claim a
/// slot from the global cap, pin by `fd % reactors`, hand off to the
/// owning reactor (or register locally).
fn accept_new(conns: &mut HashMap<usize, Conn>, next_key: &mut usize, rctx: &ReactorCtx) {
    loop {
        match rctx.listener.accept() {
            Ok((stream, _peer)) => {
                // Claim a connection slot optimistically; undo on
                // refusal. Relaxed: plain admission counter racing
                // only against itself — no data is published through
                // it, and a transient over-claim just refuses one
                // accept early.
                let prev = rctx.conn_count.fetch_add(1, Ordering::Relaxed);
                if prev >= rctx.config.max_connections {
                    // Relaxed: see the claim above.
                    rctx.conn_count.fetch_sub(1, Ordering::Relaxed);
                    rctx.metrics.on_refuse();
                    drop(stream);
                    continue;
                }
                let _ = stream.set_nodelay(true);
                if stream.set_nonblocking(true).is_err() {
                    // Relaxed: see the claim above.
                    rctx.conn_count.fetch_sub(1, Ordering::Relaxed);
                    drop(stream);
                    continue;
                }
                rctx.metrics.on_accept();
                rctx.metrics.on_conn_open();
                let target = stream.as_raw_fd() as usize % rctx.peers.len();
                if target == rctx.index {
                    register_conn(stream, conns, next_key, rctx);
                } else if let Some(peer) = rctx.peers.get(target) {
                    lock_inbox(&peer.inbox).conns.push(stream);
                    let _ = peer.poller.notify();
                } else {
                    // Unreachable (target < peers.len() by the modulo)
                    // but total: keep the connection here.
                    register_conn(stream, conns, next_key, rctx);
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

/// Registers a freshly pinned connection with this reactor's poller
/// under the next never-reused key.
fn register_conn(
    stream: TcpStream,
    conns: &mut HashMap<usize, Conn>,
    next_key: &mut usize,
    rctx: &ReactorCtx,
) {
    let key = *next_key;
    *next_key += 1;
    let mut conn = Conn::new(stream, key);
    if rctx.poller.add(&conn.stream, Event::readable(key)).is_err() {
        release_conn_slot(rctx);
        return;
    }
    conn.interest = (true, false);
    conns.insert(key, conn);
}

/// Removes dead connections (deregistering and releasing their slot)
/// and re-registers interest for live ones whose wanted readiness
/// changed.
fn reap_and_update(conns: &mut HashMap<usize, Conn>, rctx: &ReactorCtx, draining: bool) {
    conns.retain(|_, conn| {
        if conn.dead {
            let _ = rctx.poller.delete(&conn.stream);
            release_conn_slot(rctx);
            return false;
        }
        let want = conn.desired_interest(draining);
        if want != conn.interest {
            let event = event_for(conn.key, want);
            if rctx.poller.modify(&conn.stream, event).is_err() {
                // The poller lost track of this socket; it can never
                // wake us again, so reclaim the slot.
                let _ = rctx.poller.delete(&conn.stream);
                release_conn_slot(rctx);
                return false;
            }
            conn.interest = want;
        }
        true
    });
}

/// Releases one claimed connection slot and decrements the open gauge;
/// paired one-to-one with every `on_conn_open`.
fn release_conn_slot(rctx: &ReactorCtx) {
    // Relaxed: plain admission counter; no data is published through
    // it.
    rctx.conn_count.fetch_sub(1, Ordering::Relaxed);
    rctx.metrics.on_conn_close();
}
// analyze: end-nonblocking-region
