//! The serving engine: per-tenant admission queues, a deficit-round-
//! robin scheduler feeding an adaptive per-model micro-batcher, and a
//! worker pool.
//!
//! ```text
//!  clients ──submit──▶ [per-ModelId queue] [per-ModelId queue] …
//!            (ModelId,       │ quota-bounded     │
//!             query)         ▼                   ▼
//!                      deficit-round-robin scheduler thread
//!                        │  per-model batches, flush on max_batch
//!                        │  or max_delay per key
//!                        ▼
//!                   [batch channel]   (one ModelId per batch)
//!                     │    │    │   worker pool (shared receiver)
//!                     ▼    ▼    ▼
//!                   predict over the batch's model snapshot
//!                     │
//!                     ▼  per-request reply slot
//!                   ServedPrediction / ServeError
//! ```
//!
//! ## Admission and fairness
//!
//! Every tenant ([`ModelId`]) owns its own bounded queue. A submission
//! is refused with [`ServeError::TenantOverQuota`] once its tenant
//! already has [`ServeConfig::tenant_quota`] requests waiting, and with
//! [`ServeError::QueueFull`] once the engine-wide total reaches
//! [`ServeConfig::queue_depth`] — so one tenant's flood sheds *that
//! tenant's* load while everyone else keeps being admitted.
//!
//! The scheduler drains the queues with deficit round-robin: each
//! tenant with waiting requests sits in an active ring, and each turn
//! grants it [`ServeConfig::drr_quantum`] units of credit, serving at
//! most that many requests before the next tenant's turn. A flooding
//! tenant therefore gets at most a quantum ahead of a victim per round
//! regardless of how deep its backlog is.
//!
//! ## Batching
//!
//! Batching is *adaptive*: requests already queued accumulate into
//! batches with zero added latency (so a saturated queue forms full
//! batches), and a partially filled batch waits at most
//! [`ServeConfig::max_delay`], anchored at its first request.
//! Accumulation is keyed per [`ModelId`]: each model gets its own delay
//! window and its own `max_batch` cutoff, and every dispatched batch
//! holds requests for exactly one model, resolved against one registry
//! snapshot at dispatch time. A hot swap ([`ShardedRegistry::publish`])
//! never drops or corrupts in-flight requests — they complete on the
//! version that was live when their batch started.
//!
//! ## Shutdown contract
//!
//! [`ServeEngine::shutdown`] (and `Drop`) first marks the engine
//! closed — subsequent [`SubmitHandle::submit`] calls return
//! [`ServeError::Closed`] — then wakes the scheduler, which drains
//! every queued request through the batcher and exits; workers finish
//! the remaining batches and exit. Shutdown therefore completes even
//! while clones of [`SubmitHandle`] are still alive on other threads.
//! A request that loses the race with shutdown is answered with
//! [`ServeError::Closed`] through its [`PendingPrediction`].

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, SyncSender, TryRecvError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use privehd_core::telemetry::{Stage, TelemetryConfig, TraceCtx, Tracer};
use privehd_core::{BipolarHv, Hypervector, Prediction};

use crate::error::ServeError;
use crate::metrics::{ServeMetrics, ServeReport};
use crate::registry::{ModelId, ServedModel, ShardedRegistry};
use crate::router::BatchRouter;

/// Tuning knobs of the serving engine.
///
/// Construct with struct-update syntax over [`ServeConfig::default`],
/// or with [`ServeConfig::builder`] for build-time validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest batch dispatched to a worker; reaching it flushes that
    /// model's batch immediately.
    pub max_batch: usize,
    /// Longest a queued request waits for co-batched company (of its
    /// own model) before the batcher flushes anyway, anchored at the
    /// batch's first request.
    pub max_delay: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Engine-wide cap on waiting requests across every tenant; at the
    /// cap the engine sheds load with [`ServeError::QueueFull`] instead
    /// of buffering unboundedly.
    pub queue_depth: usize,
    /// Per-tenant cap on waiting requests: one [`ModelId`]'s queue
    /// refuses further submissions with [`ServeError::TenantOverQuota`]
    /// at this depth, while other tenants keep being admitted. The wire
    /// front-end reports it as `Busy`.
    pub tenant_quota: usize,
    /// Deficit-round-robin quantum: how many requests one tenant may
    /// dequeue per scheduler turn before the next tenant's turn.
    /// Smaller values interleave tenants more finely (fairer under
    /// flood), larger values favor per-tenant batch density.
    pub drr_quantum: usize,
    /// When set, queries whose components are all exactly `±1` (i.e.
    /// bipolar-obfuscated queries) are bit-packed and classified through
    /// the compiled plan's popcount kernel
    /// ([`privehd_core::ModelPlan::predict_dense_auto`]). Scores then
    /// differ from the dense path only in floating-point summation
    /// order. Leave unset when bit-identical results to the dense path
    /// ([`privehd_core::ModelPlan::predict_dense`]) are required.
    pub packed_fastpath: bool,
    /// Request-tracing configuration: 1-in-N span sampling plus
    /// always-capture for slow requests. Stage *histograms* record
    /// regardless (they are counters); this only controls the trace
    /// ring. [`TelemetryConfig::disabled`] turns span capture off
    /// entirely — the overhead-measurement baseline.
    pub telemetry: TelemetryConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(500),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: 1_024,
            tenant_quota: 256,
            drr_quantum: 32,
            packed_fastpath: false,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServeConfig {
    /// A builder over the defaults; [`ServeConfigBuilder::build`]
    /// validates the combination before any thread spawns.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder::new()
    }

    fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be ≥ 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be ≥ 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig("queue_depth must be ≥ 1".into()));
        }
        if self.tenant_quota == 0 {
            return Err(ServeError::InvalidConfig("tenant_quota must be ≥ 1".into()));
        }
        if self.drr_quantum == 0 {
            return Err(ServeError::InvalidConfig("drr_quantum must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// Builder for [`ServeConfig`] with build-time validation.
///
/// # Examples
///
/// ```
/// use privehd_serve::ServeConfig;
///
/// let config = ServeConfig::builder()
///     .max_batch(32)
///     .tenant_quota(64)
///     .drr_quantum(8)
///     .build()
///     .unwrap();
/// assert_eq!(config.max_batch, 32);
///
/// // Invalid knobs fail at build(), before any thread spawns.
/// assert!(ServeConfig::builder().drr_quantum(0).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Starts from [`ServeConfig::default`].
    pub fn new() -> Self {
        Self {
            config: ServeConfig::default(),
        }
    }

    /// Sets [`ServeConfig::max_batch`].
    pub fn max_batch(mut self, v: usize) -> Self {
        self.config.max_batch = v;
        self
    }

    /// Sets [`ServeConfig::max_delay`].
    pub fn max_delay(mut self, v: Duration) -> Self {
        self.config.max_delay = v;
        self
    }

    /// Sets [`ServeConfig::workers`].
    pub fn workers(mut self, v: usize) -> Self {
        self.config.workers = v;
        self
    }

    /// Sets [`ServeConfig::queue_depth`].
    pub fn queue_depth(mut self, v: usize) -> Self {
        self.config.queue_depth = v;
        self
    }

    /// Sets [`ServeConfig::tenant_quota`].
    pub fn tenant_quota(mut self, v: usize) -> Self {
        self.config.tenant_quota = v;
        self
    }

    /// Sets [`ServeConfig::drr_quantum`].
    pub fn drr_quantum(mut self, v: usize) -> Self {
        self.config.drr_quantum = v;
        self
    }

    /// Sets [`ServeConfig::packed_fastpath`].
    pub fn packed_fastpath(mut self, v: bool) -> Self {
        self.config.packed_fastpath = v;
        self
    }

    /// Sets [`ServeConfig::telemetry`].
    pub fn telemetry(mut self, v: TelemetryConfig) -> Self {
        self.config.telemetry = v;
        self
    }

    /// Validates and returns the finished config.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidConfig`] for zero-valued knobs.
    pub fn build(self) -> Result<ServeConfig, ServeError> {
        self.config.validate()?;
        Ok(self.config)
    }
}

/// A query in whichever representation the client submitted: dense
/// `f64`-per-dimension, or bit-packed bipolar (1 bit/dim).
///
/// The packed variant flows through the queue, the scheduler and the
/// workers as-is and is scored by the compiled plan's popcount kernel
/// ([`privehd_core::ModelPlan::predict_packed`]) — never densified. That
/// is the packed-native serving contract: a 10k-dim packed query costs
/// ~1.25 KiB on the queue instead of ~78 KiB dense, and classification
/// runs on `XOR`+`POPCNT` words instead of `f64` lanes.
///
/// Both [`Hypervector`] and [`BipolarHv`] convert with `From`/`Into`,
/// so [`ServeEngine::submit`] accepts either directly.
#[derive(Debug, Clone)]
pub enum QueryVec {
    /// Dense real-valued query (one `f64` per dimension).
    Dense(Hypervector),
    /// Bit-packed bipolar query (one bit per dimension).
    Packed(BipolarHv),
}

impl QueryVec {
    /// Dimensionality of the query in either representation.
    pub fn dim(&self) -> usize {
        match self {
            QueryVec::Dense(q) => q.dim(),
            QueryVec::Packed(q) => q.dim(),
        }
    }
}

impl From<Hypervector> for QueryVec {
    fn from(q: Hypervector) -> Self {
        QueryVec::Dense(q)
    }
}

impl From<BipolarHv> for QueryVec {
    fn from(q: BipolarHv) -> Self {
        QueryVec::Packed(q)
    }
}

/// A completed prediction plus its serving context.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedPrediction {
    /// The classification result.
    pub prediction: Prediction,
    /// The model this request was routed to.
    pub model: ModelId,
    /// Registry version of the model that served this request.
    pub model_version: u64,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
    /// End-to-end latency: submission to response.
    pub latency: Duration,
}

/// Where a finished request's outcome is delivered: a oneshot channel
/// behind a [`PendingPrediction`], or an in-process callback (the wire
/// front-end's completion pipeline). Delivered exactly once per
/// request by the worker that classified it.
enum ReplySlot {
    Oneshot(SyncSender<Result<ServedPrediction, ServeError>>),
    Callback(Box<dyn Fn(Result<ServedPrediction, ServeError>) + Send + Sync>),
}

impl ReplySlot {
    fn deliver(&self, outcome: Result<ServedPrediction, ServeError>) {
        match self {
            // A submitter that dropped its PendingPrediction is not an
            // engine error; ignore the closed reply channel. Capacity 1
            // and a single delivery mean try_send never reports Full.
            ReplySlot::Oneshot(tx) => {
                let _ = tx.try_send(outcome);
            }
            ReplySlot::Callback(f) => f(outcome),
        }
    }
}

/// One queued request: the target model, the query, and its reply slot.
struct Request {
    model: ModelId,
    query: QueryVec,
    trace: TraceCtx,
    submitted_at: Instant,
    /// Stamped by the scheduler the moment it routes the request into
    /// its model's open batch; `submitted_at..routed_at` is the
    /// queue-wait stage, `routed_at..execution` the batch-window wait.
    routed_at: Option<Instant>,
    reply: ReplySlot,
}

/// One dispatched batch: requests for exactly one model.
struct ModelBatch {
    model: ModelId,
    requests: Vec<Request>,
}

/// One tenant's waiting requests plus its deficit-round-robin state.
#[derive(Default)]
struct TenantQueue {
    items: VecDeque<Request>,
    /// Unspent scheduling credit. With unit-cost requests this is
    /// always zero between turns (a turn either spends the whole
    /// quantum or empties the queue and the entry is removed); kept in
    /// deficit form so weighted request costs stay a local change.
    deficit: usize,
    /// Whether this tenant currently sits in the active ring (guards
    /// against double insertion when submissions race a turn).
    in_active: bool,
}

/// The scheduler's shared state: every tenant's queue plus the active
/// ring the deficit-round-robin walks.
#[derive(Default)]
struct SchedState {
    queues: HashMap<ModelId, TenantQueue>,
    /// Tenants with waiting requests, in turn order.
    active: VecDeque<ModelId>,
    /// Waiting requests across every tenant (the `queue_depth` gauge).
    queued_total: usize,
    stopped: bool,
}

/// The submission side's shared handle: per-tenant queues behind one
/// mutex, a condvar waking the scheduler, and the admission limits.
struct SharedQueue {
    state: Mutex<SchedState>,
    ready: Condvar,
    queue_depth: usize,
    tenant_quota: usize,
}

impl SharedQueue {
    /// Locks the scheduler state, recovering from a poisoned mutex: the
    /// queue data is a plain container that stays structurally valid
    /// even if a panicking thread held the lock, and refusing service
    /// forever would turn one request's panic into a full outage.
    fn lock_state(&self) -> MutexGuard<'_, SchedState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

impl fmt::Debug for SharedQueue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SharedQueue")
            .field("queue_depth", &self.queue_depth)
            .field("tenant_quota", &self.tenant_quota)
            .finish_non_exhaustive()
    }
}

/// Admission: checks closed/stopped, then the tenant's quota, then the
/// global depth, and only then enqueues and wakes the scheduler.
///
/// Quota is checked before depth deliberately: a flooding tenant that
/// fills the global queue still reads `TenantOverQuota` (back off —
/// *you* are the problem) rather than `QueueFull` (everyone is).
fn submit_slot(
    shared: &SharedQueue,
    metrics: &ServeMetrics,
    closed: &AtomicBool,
    model: &ModelId,
    query: QueryVec,
    trace: TraceCtx,
    reply: ReplySlot,
) -> Result<(), ServeError> {
    // Acquire: pairs with the Release store in `join_threads` so a
    // submitter that observes `closed` also observes the stop flag the
    // scheduler is draining under.
    if closed.load(Ordering::Acquire) {
        return Err(ServeError::Closed);
    }
    let request = Request {
        model: model.clone(),
        query,
        trace,
        submitted_at: Instant::now(),
        routed_at: None,
        reply,
    };
    let mut st = shared.lock_state();
    if st.stopped {
        return Err(ServeError::Closed);
    }
    let tenant_len = st.queues.get(model).map_or(0, |q| q.items.len());
    if tenant_len >= shared.tenant_quota {
        drop(st);
        metrics.on_reject();
        return Err(ServeError::TenantOverQuota);
    }
    if st.queued_total >= shared.queue_depth {
        drop(st);
        metrics.on_reject();
        return Err(ServeError::QueueFull);
    }
    let newly_active = {
        let tq = st.queues.entry(model.clone()).or_default();
        tq.items.push_back(request);
        if tq.in_active {
            false
        } else {
            tq.in_active = true;
            true
        }
    };
    if newly_active {
        st.active.push_back(model.clone());
    }
    st.queued_total += 1;
    drop(st);
    metrics.on_submit(model);
    shared.ready.notify_one();
    Ok(())
}

/// One deficit-round-robin turn: the tenant at the head of the active
/// ring earns `quantum` credit, dequeues at most that many requests
/// into `out`, and either rejoins the ring (backlog left) or leaves the
/// map entirely (emptied — which also resets its deficit, the classic
/// DRR rule that an idle flow keeps no credit).
fn drr_round(st: &mut SchedState, quantum: usize, out: &mut Vec<Request>) {
    let Some(id) = st.active.pop_front() else {
        return;
    };
    let (take, now_empty) = {
        let Some(tq) = st.queues.get_mut(&id) else {
            return;
        };
        tq.deficit += quantum;
        let take = tq.deficit.min(tq.items.len());
        for _ in 0..take {
            if let Some(r) = tq.items.pop_front() {
                out.push(r);
            }
        }
        tq.deficit -= take;
        (take, tq.items.is_empty())
    };
    st.queued_total -= take;
    if now_empty {
        st.queues.remove(&id);
    } else {
        st.active.push_back(id);
    }
}

/// A submitted request's future result.
///
/// Obtained from [`ServeEngine::submit`] / [`SubmitHandle::submit`];
/// resolve it with [`PendingPrediction::wait`].
#[derive(Debug)]
pub struct PendingPrediction {
    rx: Receiver<Result<ServedPrediction, ServeError>>,
}

impl PendingPrediction {
    /// Blocks until the prediction is ready.
    ///
    /// # Errors
    ///
    /// Returns the serving-side error for this request, or
    /// [`ServeError::Closed`] if the engine shut down before answering.
    pub fn wait(self) -> Result<ServedPrediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Non-blocking poll: `None` while the prediction is still in
    /// flight, `Some(outcome)` once it resolved (or once the engine
    /// dropped the request's reply channel, which reads as
    /// [`ServeError::Closed`]).
    pub fn try_wait(&self) -> Option<Result<ServedPrediction, ServeError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

/// A cloneable, `Send` submission handle for multi-threaded clients.
///
/// Handles stay valid across [`ServeEngine::shutdown`]: submissions
/// after shutdown simply return [`ServeError::Closed`] (they no longer
/// block shutdown itself).
#[derive(Debug, Clone)]
pub struct SubmitHandle {
    shared: Arc<SharedQueue>,
    metrics: Arc<ServeMetrics>,
    tracer: Arc<Tracer>,
    closed: Arc<AtomicBool>,
}

impl SubmitHandle {
    /// Submits a query routed to `model`; see [`ServeEngine::submit`].
    ///
    /// # Errors
    ///
    /// [`ServeError::TenantOverQuota`] when this tenant's queue is at
    /// its quota, [`ServeError::QueueFull`] when the engine-wide queue
    /// is at capacity, [`ServeError::Closed`] when the engine has shut
    /// down.
    pub fn submit(
        &self,
        model: &ModelId,
        query: impl Into<QueryVec>,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_traced(model, query.into(), self.tracer.begin())
    }

    /// Submits a query to the default model
    /// ([`ModelId::default`]); see [`ServeEngine::submit_default`].
    ///
    /// # Errors
    ///
    /// Same contract as [`SubmitHandle::submit`].
    pub fn submit_default(
        &self,
        query: impl Into<QueryVec>,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit(&ModelId::default(), query)
    }

    /// Submits with a caller-provided trace context, so a front-end
    /// that began the trace earlier (e.g. at wire decode) keeps one id
    /// across its spans and the engine's.
    pub(crate) fn submit_traced(
        &self,
        model: &ModelId,
        query: QueryVec,
        trace: TraceCtx,
    ) -> Result<PendingPrediction, ServeError> {
        let (reply, rx) = mpsc::sync_channel(1);
        submit_slot(
            &self.shared,
            &self.metrics,
            &self.closed,
            model,
            query,
            trace,
            ReplySlot::Oneshot(reply),
        )?;
        Ok(PendingPrediction { rx })
    }

    /// Submits with an in-process completion callback instead of a
    /// [`PendingPrediction`]: the wire front-end's reactors use this to
    /// route finished predictions straight back to their connection's
    /// completion inbox without a polling hop. The callback runs on a
    /// worker (or pool) thread and is invoked exactly once.
    pub(crate) fn submit_with(
        &self,
        model: &ModelId,
        query: QueryVec,
        trace: TraceCtx,
        on_done: Box<dyn Fn(Result<ServedPrediction, ServeError>) + Send + Sync>,
    ) -> Result<(), ServeError> {
        submit_slot(
            &self.shared,
            &self.metrics,
            &self.closed,
            model,
            query,
            trace,
            ReplySlot::Callback(on_done),
        )
    }

    /// The engine's live metrics (the wire front-end records its stages
    /// and builds the stats exposition through this).
    pub(crate) fn serve_metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The engine's tracer.
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

/// The running serving engine. See the [module docs](self) for the
/// pipeline layout, the fairness model and the shutdown contract.
///
/// # Examples
///
/// Single model — publish under the default id and use
/// [`ServeEngine::submit_default`]:
///
/// ```
/// use std::sync::Arc;
/// use privehd_core::{HdModel, Hypervector};
/// use privehd_serve::{ServeConfig, ServeEngine, ShardedRegistry};
///
/// # fn main() -> Result<(), privehd_serve::ServeError> {
/// let mut model = HdModel::new(2, 64)?;
/// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
/// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
/// let registry = Arc::new(ShardedRegistry::with_model(model, "demo")?);
///
/// let engine = ServeEngine::start(registry, ServeConfig::default())?;
/// let served = engine
///     .submit_default(Hypervector::from_vec(vec![1.0; 64]))?
///     .wait()?;
/// assert_eq!(served.prediction.class, 0);
/// assert_eq!(served.model_version, 1);
/// let report = engine.shutdown();
/// assert_eq!(report.completed, 1);
/// # Ok(())
/// # }
/// ```
///
/// Many models behind one engine, routed per submission:
///
/// ```
/// use std::sync::Arc;
/// use privehd_core::{HdModel, Hypervector};
/// use privehd_serve::{ModelId, ServeConfig, ServeEngine, ShardedRegistry};
///
/// # fn main() -> Result<(), privehd_serve::ServeError> {
/// let mut model = HdModel::new(2, 64)?;
/// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
/// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
///
/// let registry = Arc::new(ShardedRegistry::new());
/// let tenant = ModelId::new("tenant-a");
/// registry.publish(&tenant, model, "a-v1")?;
///
/// let config = ServeConfig::builder().tenant_quota(64).build()?;
/// let engine = ServeEngine::start(registry, config)?;
/// let served = engine
///     .submit(&tenant, Hypervector::from_vec(vec![-1.0; 64]))?
///     .wait()?;
/// assert_eq!(served.prediction.class, 1);
/// assert_eq!(served.model, tenant);
/// let report = engine.shutdown();
/// assert_eq!(report.per_model.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    shared: Arc<SharedQueue>,
    closed: Arc<AtomicBool>,
    registry: Arc<ShardedRegistry>,
    metrics: Arc<ServeMetrics>,
    tracer: Arc<Tracer>,
    started_at: Instant,
    scheduler: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Spawns the scheduler and worker threads serving every model of
    /// `registry`. Single-model deployments publish under
    /// [`ModelId::default`] (see [`ShardedRegistry::with_model`]) and
    /// use [`ServeEngine::submit_default`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero-valued knobs.
    pub fn start(registry: Arc<ShardedRegistry>, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let metrics = Arc::new(ServeMetrics::new());
        let tracer = Arc::new(Tracer::new(config.telemetry.clone()));
        let closed = Arc::new(AtomicBool::new(false));
        let shared = Arc::new(SharedQueue {
            state: Mutex::new(SchedState::default()),
            ready: Condvar::new(),
            queue_depth: config.queue_depth,
            tenant_quota: config.tenant_quota,
        });
        let (batch_tx, batch_rx) = mpsc::sync_channel::<ModelBatch>(config.workers * 2);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let sched_shared = Arc::clone(&shared);
        let sched_cfg = config.clone();
        let scheduler = std::thread::Builder::new()
            .name("privehd-scheduler".into())
            .spawn(move || run_scheduler(&sched_shared, &batch_tx, &sched_cfg))
            .map_err(|e| ServeError::Transport(format!("failed to spawn scheduler thread: {e}")))?;

        let workers = (0..config.workers)
            .map(|i| {
                let rx = Arc::clone(&batch_rx);
                let registry = Arc::clone(&registry);
                let metrics = Arc::clone(&metrics);
                let tracer = Arc::clone(&tracer);
                let packed = config.packed_fastpath;
                std::thread::Builder::new()
                    .name(format!("privehd-worker-{i}"))
                    .spawn(move || run_worker(&rx, &registry, &metrics, &tracer, packed))
                    .map_err(|e| {
                        ServeError::Transport(format!("failed to spawn worker thread: {e}"))
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(Self {
            shared,
            closed,
            registry,
            metrics,
            tracer,
            started_at: Instant::now(),
            scheduler: Some(scheduler),
            workers,
        })
    }

    /// Submits one query routed to `model` for batched classification.
    /// Accepts dense ([`Hypervector`]) and bit-packed ([`BipolarHv`])
    /// queries alike; packed queries stay packed end to end and are
    /// scored through the published snapshot's compiled plan
    /// ([`privehd_core::ModelPlan::predict_packed`] — the popcount
    /// path) with no dense conversion anywhere.
    ///
    /// Requests for different models accumulate in separate batches; a
    /// model nobody published answers with [`ServeError::NoModel`]
    /// through the [`PendingPrediction`].
    ///
    /// # Errors
    ///
    /// [`ServeError::TenantOverQuota`] when `model`'s queue is at its
    /// per-tenant quota (this tenant should back off; others keep being
    /// served), [`ServeError::QueueFull`] when the engine-wide queue is
    /// at capacity (shed load, retry with backoff),
    /// [`ServeError::Closed`] after shutdown.
    pub fn submit(
        &self,
        model: &ModelId,
        query: impl Into<QueryVec>,
    ) -> Result<PendingPrediction, ServeError> {
        let (reply, rx) = mpsc::sync_channel(1);
        submit_slot(
            &self.shared,
            &self.metrics,
            &self.closed,
            model,
            query.into(),
            self.tracer.begin(),
            ReplySlot::Oneshot(reply),
        )?;
        Ok(PendingPrediction { rx })
    }

    /// Submits one query to the default model ([`ModelId::default`]) —
    /// the single-model convenience over [`ServeEngine::submit`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ServeEngine::submit`].
    pub fn submit_default(
        &self,
        query: impl Into<QueryVec>,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit(&ModelId::default(), query)
    }

    /// Convenience: submit to the default model and block for the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeEngine::submit`] and
    /// [`PendingPrediction::wait`] errors.
    pub fn predict(&self, query: impl Into<QueryVec>) -> Result<ServedPrediction, ServeError> {
        self.submit_default(query)?.wait()
    }

    /// Convenience: submit to `model` and block for the result.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeEngine::submit`] and
    /// [`PendingPrediction::wait`] errors.
    pub fn predict_for(
        &self,
        model: &ModelId,
        query: impl Into<QueryVec>,
    ) -> Result<ServedPrediction, ServeError> {
        self.submit(model, query)?.wait()
    }

    /// A cloneable submission handle for client threads.
    pub fn handle(&self) -> SubmitHandle {
        SubmitHandle {
            shared: Arc::clone(&self.shared),
            metrics: Arc::clone(&self.metrics),
            tracer: Arc::clone(&self.tracer),
            closed: Arc::clone(&self.closed),
        }
    }

    /// The registry this engine serves from.
    pub fn registry(&self) -> &Arc<ShardedRegistry> {
        &self.registry
    }

    /// Live serving counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The engine's request tracer: sampling decisions plus the
    /// slow-request span ring ([`Tracer::snapshot`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Metrics snapshot over the engine's lifetime so far.
    pub fn report(&self) -> ServeReport {
        self.metrics.report(self.started_at.elapsed())
    }

    /// Stops accepting submissions, drains the queued requests, joins
    /// all threads and returns the final report.
    ///
    /// Completes even while cloned [`SubmitHandle`]s are still alive;
    /// their later submissions return [`ServeError::Closed`].
    pub fn shutdown(mut self) -> ServeReport {
        self.join_threads();
        self.metrics.report(self.started_at.elapsed())
    }

    fn join_threads(&mut self) {
        // Release: pairs with the Acquire load in `submit_slot`;
        // everything sequenced before shutdown is visible to any
        // submitter that sees the flag.
        self.closed.store(true, Ordering::Release);
        {
            let mut st = self.shared.lock_state();
            st.stopped = true;
        }
        self.shared.ready.notify_all();
        if let Some(s) = self.scheduler.take() {
            // analyze::allow(no-panic-path): re-raising a scheduler
            // panic at shutdown is deliberate — it fires only on an
            // internal bug and must not vanish into a clean report.
            s.join().expect("scheduler thread panicked");
        }
        for w in self.workers.drain(..) {
            // analyze::allow(no-panic-path): same policy as the
            // scheduler join above — propagate internal bugs, never
            // hide them.
            w.join().expect("worker thread panicked");
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.join_threads();
    }
}

/// Scheduler loop: wait until requests are queued (or a batch window
/// expires), take one deficit-round-robin turn, route the taken
/// requests into per-model batches, and dispatch full or expired
/// batches to the workers. On stop it drains every queue — requests
/// accepted before shutdown are answered with real results — then
/// flushes the open batches and exits (dropping `batch_tx`, which in
/// turn lets the workers drain and exit).
fn run_scheduler(shared: &SharedQueue, batch_tx: &SyncSender<ModelBatch>, config: &ServeConfig) {
    let mut router: BatchRouter<Request> = BatchRouter::new(config.max_batch, config.max_delay);
    loop {
        let mut taken: Vec<Request> = Vec::new();
        let mut stopping = false;
        {
            let mut st = shared.lock_state();
            loop {
                if st.queued_total > 0 {
                    break;
                }
                if st.stopped {
                    stopping = true;
                    break;
                }
                match router.next_deadline() {
                    // Idle: sleep until a submission wakes us.
                    None => {
                        st = shared
                            .ready
                            .wait(st)
                            .unwrap_or_else(PoisonError::into_inner);
                    }
                    // Batches open: sleep at most until the earliest
                    // per-model flush deadline.
                    Some(deadline) => {
                        let now = Instant::now();
                        if now >= deadline {
                            break;
                        }
                        let (guard, timeout) = shared
                            .ready
                            .wait_timeout(st, deadline - now)
                            .unwrap_or_else(PoisonError::into_inner);
                        st = guard;
                        if timeout.timed_out() {
                            break;
                        }
                    }
                }
            }
            if stopping {
                // Drain everything still queued in one go; submissions
                // are already refused (stopped), so this terminates.
                while st.queued_total > 0 {
                    drr_round(&mut st, config.drr_quantum, &mut taken);
                }
            } else {
                drr_round(&mut st, config.drr_quantum, &mut taken);
            }
        }
        // Route and dispatch outside the lock: batch_tx.send blocks
        // when workers fall behind, and submissions must keep being
        // admitted (or shed) meanwhile.
        for mut request in taken {
            let now = Instant::now();
            // End of the queue-wait stage, start of the batch window.
            request.routed_at = Some(now);
            let model = request.model.clone();
            if let Some((model, requests)) = router.push(model, request, now) {
                if batch_tx.send(ModelBatch { model, requests }).is_err() {
                    return; // workers are gone; nothing more to do
                }
            }
        }
        for (model, requests) in router.take_expired(Instant::now()) {
            if batch_tx.send(ModelBatch { model, requests }).is_err() {
                return;
            }
        }
        if stopping {
            break;
        }
    }
    // Flush every still-open batch before exiting.
    for (model, requests) in router.drain() {
        if batch_tx.send(ModelBatch { model, requests }).is_err() {
            return;
        }
    }
}

/// Worker loop: pull one batch at a time off the shared channel and
/// execute it against its model's current snapshot.
fn run_worker(
    batch_rx: &Arc<Mutex<Receiver<ModelBatch>>>,
    registry: &ShardedRegistry,
    metrics: &ServeMetrics,
    tracer: &Tracer,
    packed_fastpath: bool,
) {
    loop {
        // Hold the lock only while waiting for the next batch; release
        // it before executing so other workers receive concurrently.
        let batch = {
            // analyze::allow(no-panic-path): the lock is poisoned only
            // if a sibling worker panicked mid-recv; spreading the
            // panic tears the pool down instead of serving half-alive.
            let rx = batch_rx.lock().expect("batch receiver lock poisoned");
            match rx.recv() {
                Ok(b) => b,
                Err(_) => return,
            }
        };
        execute_batch(batch, registry, metrics, tracer, packed_fastpath);
    }
}

/// Batches at least this large additionally fan their per-request
/// classification out over the persistent `privehd_core` worker pool.
const POOL_FANOUT_MIN: usize = 16;

fn execute_batch(
    batch: ModelBatch,
    registry: &ShardedRegistry,
    metrics: &ServeMetrics,
    tracer: &Tracer,
    packed_fastpath: bool,
) {
    let ModelBatch { model, requests } = batch;
    let size = requests.len();
    metrics.on_batch(size);
    // One snapshot per batch: a concurrent publish (or withdraw) of
    // this model affects later batches, never this one, and other
    // models' batches resolve their own snapshots independently. The
    // per-model metrics row is likewise fetched once per batch.
    let resolve_start = Instant::now();
    let snapshot: Option<Arc<ServedModel>> = registry.get(&model);
    let resolve_end = Instant::now();
    let model_counters = metrics.model_counters(&model);
    if let Some(served) = &snapshot {
        // Snapshot footprint gauges: both matrices were built eagerly
        // at publish time (`refresh_norms`), so these accessors only
        // read cached sizes — no work on the serving path.
        metrics.set_model_memory(
            &model_counters,
            served.dense_memory_bytes() as u64,
            served.packed_memory_bytes().unwrap_or(0) as u64,
        );
    }

    // Classification stays per-request (so one bad query fails only its
    // own reply), and each reply is delivered — and its latency
    // measured — the moment its own classification finishes, whether
    // that happens on this worker or on a pool lane.
    let serve_one = |request: &Request| {
        let work_start = Instant::now();
        let predict_start = work_start;
        let outcome: Result<Prediction, ServeError> = match &snapshot {
            None => Err(ServeError::NoModel),
            Some(served) => {
                // Dispatch through the plan compiled at publish time:
                // kernel selection (packed vs dense snapshot, SIMD arm,
                // block size) happened exactly once, in
                // `ModelPlan::compile` — nothing is re-probed here.
                let plan = served.plan();
                match &request.query {
                    // Packed-native path: the query arrived bit-packed
                    // and is scored by the popcount kernels without
                    // ever materializing a dense form.
                    QueryVec::Packed(hv) => plan.predict_packed(hv).map_err(ServeError::Model),
                    QueryVec::Dense(q) => {
                        if packed_fastpath {
                            // The auto bridge repacks strictly-bipolar
                            // dense queries onto the popcount kernel.
                            plan.predict_dense_auto(q).map_err(ServeError::Model)
                        } else {
                            plan.predict_dense(q).map_err(ServeError::Model)
                        }
                    }
                }
            }
        };
        let done_at = Instant::now();
        let latency = done_at.saturating_duration_since(request.submitted_at);
        // End-to-end first, stage rows after: a reader snapshotting
        // mid-request then always observes per-stage counts ≤ the
        // end-to-end count — the invariant the consistency test pins.
        metrics.on_done(&model_counters, outcome.is_ok(), latency);
        let routed_at = request.routed_at.unwrap_or(work_start);
        let queue_wait = routed_at.saturating_duration_since(request.submitted_at);
        let batch_wait = work_start.saturating_duration_since(routed_at);
        metrics.on_stage_for(&model_counters, Stage::QueueWait, queue_wait);
        metrics.on_stage_for(&model_counters, Stage::BatchWait, batch_wait);
        metrics.on_stage_for(&model_counters, Stage::Predict, done_at - predict_start);
        let ctx = request.trace;
        tracer.record(ctx, Stage::QueueWait, request.submitted_at, routed_at);
        tracer.record(ctx, Stage::BatchWait, routed_at, work_start);
        tracer.record(ctx, Stage::Predict, predict_start, done_at);
        tracer.record(ctx, Stage::EndToEnd, request.submitted_at, done_at);
        let reply = outcome.map(|prediction| ServedPrediction {
            prediction,
            model: model.clone(),
            model_version: snapshot.as_ref().map_or(0, |s| s.version),
            batch_size: size,
            latency,
        });
        request.reply.deliver(reply);
    };

    let pool = privehd_core::pool::global();
    if size >= POOL_FANOUT_MIN && pool.threads() > 0 {
        // analyze::allow(no-panic-path): the pool invokes the closure
        // with `i < size == requests.len()` by contract.
        pool.run(size, |i| serve_one(&requests[i]));
    } else {
        for request in &requests {
            serve_one(request);
        }
    }
    // Recorded after the batch is served, so the stage's count stays ≤
    // the end-to-end count at any snapshot (one resolve per batch, and
    // batches ≤ requests).
    let resolve = resolve_end.saturating_duration_since(resolve_start);
    metrics.on_stage_for(&model_counters, Stage::SnapshotResolve, resolve);
    if let Some(first) = requests.first() {
        tracer.record(
            first.trace,
            Stage::SnapshotResolve,
            resolve_start,
            resolve_end,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_core::HdModel;

    fn trained_model(dim: usize) -> HdModel {
        let mut model = HdModel::new(2, dim).unwrap();
        let up: Vec<f64> = (0..dim)
            .map(|j| if j % 2 == 0 { 2.0 } else { 1.0 })
            .collect();
        let down: Vec<f64> = up.iter().map(|v| -v).collect();
        model.bundle(0, &Hypervector::from_vec(up)).unwrap();
        model.bundle(1, &Hypervector::from_vec(down)).unwrap();
        model
    }

    fn registry(dim: usize) -> Arc<ShardedRegistry> {
        Arc::new(ShardedRegistry::with_model(trained_model(dim), "test").unwrap())
    }

    /// A 2-class model: an all-positive query resolves to class
    /// `positive_class`, so tenants with different layouts are
    /// distinguishable by their answers.
    fn oriented_model(dim: usize, positive_class: usize) -> HdModel {
        let mut model = HdModel::new(2, dim).unwrap();
        model
            .bundle(positive_class, &Hypervector::from_vec(vec![1.0; dim]))
            .unwrap();
        model
            .bundle(1 - positive_class, &Hypervector::from_vec(vec![-1.0; dim]))
            .unwrap();
        model
    }

    fn query(dim: usize, sign: f64) -> Hypervector {
        Hypervector::from_vec(vec![sign; dim])
    }

    /// A throwaway request for scheduler-state unit tests.
    fn test_request(model: &ModelId) -> Request {
        let (reply, _rx) = mpsc::sync_channel(1);
        Request {
            model: model.clone(),
            query: QueryVec::Dense(query(8, 1.0)),
            trace: Tracer::new(TelemetryConfig::default()).begin(),
            submitted_at: Instant::now(),
            routed_at: None,
            reply: ReplySlot::Oneshot(reply),
        }
    }

    #[test]
    fn config_validation_rejects_zeros() {
        let reg = registry(32);
        for bad in [
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_depth: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                tenant_quota: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                drr_quantum: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(
                ServeEngine::start(Arc::clone(&reg), bad),
                Err(ServeError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn config_builder_validates_at_build_time() {
        let cfg = ServeConfig::builder()
            .max_batch(8)
            .max_delay(Duration::from_millis(2))
            .workers(3)
            .queue_depth(128)
            .tenant_quota(16)
            .drr_quantum(4)
            .packed_fastpath(true)
            .build()
            .unwrap();
        assert_eq!(cfg.max_batch, 8);
        assert_eq!(cfg.max_delay, Duration::from_millis(2));
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.queue_depth, 128);
        assert_eq!(cfg.tenant_quota, 16);
        assert_eq!(cfg.drr_quantum, 4);
        assert!(cfg.packed_fastpath);

        assert!(ServeConfig::builder().max_batch(0).build().is_err());
        assert!(ServeConfig::builder().workers(0).build().is_err());
        assert!(ServeConfig::builder().queue_depth(0).build().is_err());
        assert!(ServeConfig::builder().tenant_quota(0).build().is_err());
        assert!(ServeConfig::builder().drr_quantum(0).build().is_err());
    }

    #[test]
    fn drr_rounds_account_quantum_across_uneven_queues() {
        // Tenants a/b/c with 10/3/1 waiting requests and quantum 4:
        // turn order must be a:4, b:3 (emptied — leaves the map,
        // deficit reset), c:1, a:4, a:2.
        let (a, b, c) = (ModelId::new("a"), ModelId::new("b"), ModelId::new("c"));
        let mut st = SchedState::default();
        for (id, n) in [(&a, 10usize), (&b, 3), (&c, 1)] {
            let tq = st.queues.entry(id.clone()).or_default();
            for _ in 0..n {
                tq.items.push_back(test_request(id));
            }
            tq.in_active = true;
            st.active.push_back(id.clone());
            st.queued_total += n;
        }

        let quantum = 4;
        let mut out = Vec::new();

        drr_round(&mut st, quantum, &mut out);
        assert_eq!(out.len(), 4);
        assert!(out.iter().all(|r| r.model == a), "first turn is a's");
        assert_eq!(st.queued_total, 10);

        out.clear();
        drr_round(&mut st, quantum, &mut out);
        assert_eq!(out.len(), 3, "b takes only its backlog, not the quantum");
        assert!(out.iter().all(|r| r.model == b));
        assert!(
            !st.queues.contains_key(&b),
            "an emptied tenant leaves the map (deficit reset)"
        );

        out.clear();
        drr_round(&mut st, quantum, &mut out);
        assert_eq!(out.len(), 1);
        assert!(out.iter().all(|r| r.model == c));

        out.clear();
        drr_round(&mut st, quantum, &mut out);
        assert_eq!(out.len(), 4, "a's second turn earns a fresh quantum");
        out.clear();
        drr_round(&mut st, quantum, &mut out);
        assert_eq!(out.len(), 2, "a's remainder");

        assert_eq!(st.queued_total, 0);
        assert!(st.queues.is_empty());
        assert!(st.active.is_empty());

        // A further round on empty state is a no-op.
        out.clear();
        drr_round(&mut st, quantum, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn tenant_quota_is_checked_before_global_depth() {
        let shared = SharedQueue {
            state: Mutex::new(SchedState::default()),
            ready: Condvar::new(),
            queue_depth: 4,
            tenant_quota: 2,
        };
        let metrics = ServeMetrics::new();
        let closed = AtomicBool::new(false);
        let tracer = Tracer::new(TelemetryConfig::default());
        let (a, b, c) = (ModelId::new("a"), ModelId::new("b"), ModelId::new("c"));
        let submit = |id: &ModelId| {
            let (reply, _rx) = mpsc::sync_channel(1);
            submit_slot(
                &shared,
                &metrics,
                &closed,
                id,
                QueryVec::Dense(query(8, 1.0)),
                tracer.begin(),
                ReplySlot::Oneshot(reply),
            )
        };

        assert!(submit(&a).is_ok());
        assert!(submit(&a).is_ok());
        assert_eq!(submit(&a).unwrap_err(), ServeError::TenantOverQuota);
        assert!(submit(&b).is_ok());
        assert!(submit(&b).is_ok());
        // Queue is now globally full AND a is over quota: the flooding
        // tenant still reads TenantOverQuota (quota checked first)…
        assert_eq!(submit(&a).unwrap_err(), ServeError::TenantOverQuota);
        // …while an under-quota tenant reads the global condition.
        assert_eq!(submit(&c).unwrap_err(), ServeError::QueueFull);

        let report = metrics.report(Duration::from_secs(1));
        assert_eq!(report.submitted, 4);
        assert_eq!(report.rejected, 3);

        // Stopped state refuses everything (and does not count as a
        // shed: the engine is going away, not overloaded).
        shared.lock_state().stopped = true;
        assert_eq!(submit(&c).unwrap_err(), ServeError::Closed);
    }

    #[test]
    fn serves_simple_queries() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let a = engine.predict(query(64, 1.0)).unwrap();
        let b = engine.predict(query(64, -1.0)).unwrap();
        assert_eq!(a.prediction.class, 0);
        assert_eq!(b.prediction.class, 1);
        assert_eq!(a.model_version, 1);
        assert_eq!(a.model, ModelId::default());
        assert!(a.batch_size >= 1);
        let report = engine.shutdown();
        assert_eq!(report.completed, 2);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn empty_registry_yields_no_model() {
        let reg = Arc::new(ShardedRegistry::new());
        let engine = ServeEngine::start(reg, ServeConfig::default()).unwrap();
        assert_eq!(
            engine.predict(query(16, 1.0)).unwrap_err(),
            ServeError::NoModel
        );
        let report = engine.shutdown();
        assert_eq!(report.failed, 1);
    }

    #[test]
    fn wrong_dimension_is_reported_per_request() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let err = engine.predict(query(32, 1.0)).unwrap_err();
        assert!(matches!(err, ServeError::Model(_)), "{err}");
        // The engine keeps serving afterwards.
        assert_eq!(engine.predict(query(64, 1.0)).unwrap().prediction.class, 0);
        engine.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_load() {
        // One worker, tiny queue, and a batch window long enough that
        // floods back up into the queue. tenant_quota exceeds
        // queue_depth so the global limit is what trips.
        let config = ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(50),
            workers: 1,
            queue_depth: 2,
            packed_fastpath: false,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(registry(64), config).unwrap();
        let mut pending = Vec::new();
        let mut saw_full = false;
        for _ in 0..200 {
            match engine.submit_default(query(64, 1.0)) {
                Ok(p) => pending.push(p),
                Err(ServeError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_full, "queue never filled");
        for p in pending {
            assert!(p.wait().is_ok());
        }
        let report = engine.shutdown();
        assert!(report.rejected >= 1);
    }

    #[test]
    fn tenant_flood_hits_its_quota_before_the_global_queue() {
        // Quota far below the global depth: a single flooding tenant
        // reads TenantOverQuota while the engine-wide queue still has
        // room for everyone else.
        let config = ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(50),
            workers: 1,
            queue_depth: 1_024,
            tenant_quota: 4,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(registry(64), config).unwrap();
        let mut pending = Vec::new();
        let mut saw_quota = false;
        for _ in 0..400 {
            match engine.submit_default(query(64, 1.0)) {
                Ok(p) => pending.push(p),
                Err(ServeError::TenantOverQuota) => {
                    saw_quota = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_quota, "tenant quota never tripped");
        // A different tenant is still admitted (NoModel is a serving
        // answer, not an admission refusal).
        assert_eq!(
            engine
                .predict_for(&ModelId::new("other"), query(64, 1.0))
                .unwrap_err(),
            ServeError::NoModel
        );
        for p in pending {
            assert!(p.wait().is_ok());
        }
        let report = engine.shutdown();
        assert!(report.rejected >= 1);
    }

    #[test]
    fn batches_fill_under_load() {
        let config = ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
            workers: 2,
            queue_depth: 256,
            packed_fastpath: false,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(registry(256), config).unwrap();
        let pending: Vec<_> = (0..64)
            .map(|i| {
                engine
                    .submit_default(query(256, if i % 2 == 0 { 1.0 } else { -1.0 }))
                    .unwrap()
            })
            .collect();
        let mut max_batch_seen = 0;
        for (i, p) in pending.into_iter().enumerate() {
            let served = p.wait().unwrap();
            assert_eq!(served.prediction.class, i % 2);
            max_batch_seen = max_batch_seen.max(served.batch_size);
        }
        assert!(
            max_batch_seen > 1,
            "64 concurrent queries never co-batched (max batch {max_batch_seen})"
        );
        let report = engine.shutdown();
        assert_eq!(report.completed, 64);
        assert!(report.mean_batch_size > 1.0, "{report}");
    }

    #[test]
    fn packed_fastpath_agrees_with_dense_path() {
        let config = ServeConfig {
            packed_fastpath: true,
            ..ServeConfig::default()
        };
        let reg = registry(128);
        let engine = ServeEngine::start(Arc::clone(&reg), config).unwrap();
        let model = reg.get(&ModelId::default()).unwrap();
        for seed in 0..20u64 {
            let packed = BipolarHv::random(128, seed);
            let q = packed.to_dense();
            let served = engine.predict(q.clone()).unwrap();
            let direct = model.model().predict(&q).unwrap();
            assert_eq!(served.prediction.class, direct.class, "seed {seed}");
        }
        engine.shutdown();
    }

    #[test]
    fn packed_submit_matches_dense_submit() {
        // A bipolar-quantized (sign-only) model: packed-native scoring
        // is bit-identical to the dense path, so the predictions must
        // agree query for query.
        let mut model = trained_model(128);
        model.quantize_classes(privehd_core::QuantScheme::Bipolar);
        let reg = Arc::new(ShardedRegistry::with_model(model, "signed").unwrap());
        let engine = ServeEngine::start(Arc::clone(&reg), ServeConfig::default()).unwrap();
        let handle = engine.handle();
        for seed in 0..20u64 {
            let packed = BipolarHv::random(128, seed);
            let dense = engine.predict(packed.to_dense()).unwrap();
            let native = engine
                .submit_default(packed.clone())
                .unwrap()
                .wait()
                .unwrap();
            let via_handle = handle.submit_default(packed).unwrap().wait().unwrap();
            assert_eq!(
                native.prediction.class, dense.prediction.class,
                "seed {seed}"
            );
            assert_eq!(native.prediction.class, via_handle.prediction.class);
            assert_eq!(native.model_version, 1);
        }
        let report = engine.shutdown();
        assert_eq!(report.completed, 60);
    }

    #[test]
    fn packed_submit_reports_dimension_mismatch_per_request() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let err = engine
            .submit_default(BipolarHv::random(32, 1))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, ServeError::Model(_)), "{err}");
        // The engine keeps serving afterwards.
        assert_eq!(engine.predict(query(64, 1.0)).unwrap().prediction.class, 0);
        engine.shutdown();
    }

    #[test]
    fn handles_submit_from_other_threads() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = engine.handle();
            joins.push(std::thread::spawn(move || {
                (0..25)
                    .map(|i| {
                        let sign = if (t + i) % 2 == 0 { 1.0 } else { -1.0 };
                        let served = h.submit_default(query(64, sign)).unwrap().wait().unwrap();
                        (served.prediction.class, (t + i) % 2)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for j in joins {
            for (got, want) in j.join().unwrap() {
                assert_eq!(got, want);
            }
        }
        let report = engine.shutdown();
        assert_eq!(report.completed, 100);
    }

    #[test]
    fn shutdown_completes_with_a_live_handle() {
        // Regression: shutdown used to join the batcher, which only
        // exited when every cloned SubmitHandle was dropped — a live
        // handle on another thread blocked shutdown forever.
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let leaked = engine.handle();
        assert_eq!(engine.predict(query(64, 1.0)).unwrap().prediction.class, 0);

        let (done_tx, done_rx) = mpsc::channel();
        std::thread::spawn(move || {
            let report = engine.shutdown();
            done_tx.send(report).unwrap();
        });
        let report = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("shutdown deadlocked while a SubmitHandle was alive");
        assert_eq!(report.completed, 1);

        // The leaked handle observes the closure instead of hanging.
        assert_eq!(
            leaked.submit_default(query(64, 1.0)).unwrap_err(),
            ServeError::Closed
        );
    }

    #[test]
    fn requests_accepted_before_shutdown_are_answered() {
        // Stop drains the queues: everything accepted before shutdown
        // resolves (successfully — not with Closed).
        let config = ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(100),
            workers: 1,
            queue_depth: 64,
            packed_fastpath: false,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(registry(64), config).unwrap();
        let _live_handle = engine.handle();
        let pending: Vec<_> = (0..16)
            .map(|_| engine.submit_default(query(64, 1.0)).unwrap())
            .collect();
        let report = engine.shutdown();
        assert_eq!(report.completed, 16);
        for p in pending {
            assert_eq!(p.wait().unwrap().prediction.class, 0);
        }
    }

    #[test]
    fn sharded_engine_routes_per_model() {
        let reg = Arc::new(ShardedRegistry::new());
        let (a, b) = (ModelId::new("tenant-a"), ModelId::new("tenant-b"));
        reg.publish(&a, oriented_model(64, 0), "a1").unwrap();
        reg.publish(&b, oriented_model(64, 1), "b1").unwrap();
        let engine = ServeEngine::start(Arc::clone(&reg), ServeConfig::default()).unwrap();

        // The tenants' class layouts are opposite, so each answer proves
        // which tenant's weights served it.
        let served_a = engine.predict_for(&a, query(64, 1.0)).unwrap();
        let served_b = engine.predict_for(&b, query(64, 1.0)).unwrap();
        assert_eq!(served_a.model, a);
        assert_eq!(served_b.model, b);
        assert_eq!(served_a.prediction.class, 0);
        assert_eq!(served_b.prediction.class, 1);

        // An unpublished id fails only its own request.
        assert_eq!(
            engine
                .predict_for(&ModelId::new("ghost"), query(64, 1.0))
                .unwrap_err(),
            ServeError::NoModel
        );

        let report = engine.shutdown();
        assert_eq!(report.per_model.len(), 3);
        let ids: Vec<&str> = report.per_model.iter().map(|m| m.model.as_str()).collect();
        assert_eq!(ids, vec!["ghost", "tenant-a", "tenant-b"]);
        assert_eq!(report.per_model[1].completed, 1);
        assert_eq!(report.per_model[0].failed, 1);
    }

    #[test]
    fn sharded_engine_batches_per_model() {
        // One flush window, two models: requests must split into
        // single-model batches even though they interleave in the queue.
        let reg = Arc::new(ShardedRegistry::new());
        let (a, b) = (ModelId::new("a"), ModelId::new("b"));
        reg.publish(&a, oriented_model(64, 0), "a1").unwrap();
        reg.publish(&b, oriented_model(64, 1), "b1").unwrap();
        let config = ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(20),
            workers: 2,
            queue_depth: 256,
            packed_fastpath: false,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(reg, config).unwrap();
        let pending: Vec<_> = (0..32)
            .map(|i| {
                let id = if i % 2 == 0 { &a } else { &b };
                (i, engine.submit(id, query(64, 1.0)).unwrap())
            })
            .collect();
        for (i, p) in pending {
            let served = p.wait().unwrap();
            let want = if i % 2 == 0 { &a } else { &b };
            assert_eq!(&served.model, want, "request {i} answered by wrong model");
            // The opposite class layouts prove the right weights ran.
            assert_eq!(served.prediction.class, i % 2, "request {i} cross-served");
            // A batch never mixes models, so no batch exceeds one
            // model's share of the traffic.
            assert!(served.batch_size <= 16, "batch mixed models");
        }
        engine.shutdown();
    }

    #[test]
    fn unpublished_ids_fail_without_poisoning_the_engine() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        assert_eq!(
            engine
                .predict_for(&ModelId::new("other"), query(64, 1.0))
                .unwrap_err(),
            ServeError::NoModel
        );
        assert_eq!(engine.predict(query(64, 1.0)).unwrap().prediction.class, 0);
        engine.shutdown();
    }

    #[test]
    fn registry_accessor_returns_the_backing_registry() {
        let reg = registry(32);
        let engine = ServeEngine::start(Arc::clone(&reg), ServeConfig::default()).unwrap();
        assert!(Arc::ptr_eq(engine.registry(), &reg));
        engine.shutdown();
    }

    #[test]
    fn submit_with_invokes_the_callback_exactly_once() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let handle = engine.handle();
        let (tx, rx) = mpsc::channel();
        handle
            .submit_with(
                &ModelId::default(),
                QueryVec::Dense(query(64, 1.0)),
                handle.tracer().begin(),
                Box::new(move |outcome| {
                    tx.send(outcome).unwrap();
                }),
            )
            .unwrap();
        let outcome = rx
            .recv_timeout(Duration::from_secs(10))
            .expect("callback never ran");
        assert_eq!(outcome.unwrap().prediction.class, 0);
        assert!(
            rx.recv_timeout(Duration::from_millis(100)).is_err(),
            "callback ran more than once"
        );
        engine.shutdown();
    }
}
