//! The serving engine: bounded submission queue, adaptive micro-batcher,
//! worker pool.
//!
//! ```text
//!  clients ──try_send──▶ [bounded MPSC queue]
//!                              │  batcher thread: flush on max_batch
//!                              ▼                  or max_delay
//!                         [batch channel]
//!                          │    │    │   worker pool (shared receiver)
//!                          ▼    ▼    ▼
//!                        predict over the registry's live snapshot
//!                          │
//!                          ▼  per-request oneshot channel
//!                        ServedPrediction / ServeError
//! ```
//!
//! Batching is *adaptive*: the batcher first drains whatever is already
//! queued (so a saturated queue forms full batches with zero added
//! latency), and only waits — up to [`ServeConfig::max_delay`], anchored
//! at the batch's first request — when the queue runs dry. Under light
//! load batches stay small and latency stays near the single-query
//! cost; under heavy load batches grow to [`ServeConfig::max_batch`]
//! and throughput dominates.
//!
//! Every batch executes against one registry snapshot taken at dispatch
//! time, so a hot swap ([`ModelRegistry::publish`]) never drops or
//! corrupts in-flight requests — they complete on the version that was
//! live when their batch started.

use std::sync::mpsc::{self, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use privehd_core::{BipolarHv, Hypervector, Prediction};

use crate::error::ServeError;
use crate::metrics::{ServeMetrics, ServeReport};
use crate::registry::ModelRegistry;

/// Tuning knobs of the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest batch dispatched to a worker; reaching it flushes
    /// immediately.
    pub max_batch: usize,
    /// Longest a queued request waits for co-batched company before the
    /// batcher flushes anyway (anchored at the batch's first request).
    pub max_delay: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Capacity of the bounded submission queue; a full queue sheds
    /// load with [`ServeError::QueueFull`] instead of buffering
    /// unboundedly.
    pub queue_depth: usize,
    /// When set, queries whose components are all exactly `±1` (i.e.
    /// bipolar-obfuscated queries) are bit-packed and classified through
    /// [`privehd_core::HdModel::predict_packed`] — the popcount fast
    /// path. Scores then differ from the dense path only in
    /// floating-point summation order. Leave unset when bit-identical
    /// results to [`privehd_core::HdModel::predict`] are required.
    pub packed_fastpath: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(500),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: 1_024,
            packed_fastpath: false,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be ≥ 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be ≥ 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig("queue_depth must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// A completed prediction plus its serving context.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedPrediction {
    /// The classification result.
    pub prediction: Prediction,
    /// Registry version of the model that served this request.
    pub model_version: u64,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
    /// End-to-end latency: submission to response.
    pub latency: Duration,
}

/// One queued request: the query plus its response channel.
struct Request {
    query: Hypervector,
    submitted_at: Instant,
    reply: SyncSender<Result<ServedPrediction, ServeError>>,
}

/// A submitted request's future result.
///
/// Obtained from [`ServeEngine::submit`] / [`SubmitHandle::submit`];
/// resolve it with [`PendingPrediction::wait`].
#[derive(Debug)]
pub struct PendingPrediction {
    rx: Receiver<Result<ServedPrediction, ServeError>>,
}

impl PendingPrediction {
    /// Blocks until the prediction is ready.
    ///
    /// # Errors
    ///
    /// Returns the serving-side error for this request, or
    /// [`ServeError::Closed`] if the engine shut down before answering.
    pub fn wait(self) -> Result<ServedPrediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

/// A cloneable, `Send` submission handle for multi-threaded clients.
///
/// The engine's batcher runs as long as any handle (or the engine
/// itself) is alive; drop all handles before expecting
/// [`ServeEngine::shutdown`] to complete.
#[derive(Debug, Clone)]
pub struct SubmitHandle {
    tx: SyncSender<Request>,
    metrics: Arc<ServeMetrics>,
}

impl SubmitHandle {
    /// Submits a query; see [`ServeEngine::submit`].
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity,
    /// [`ServeError::Closed`] when the engine has shut down.
    pub fn submit(&self, query: Hypervector) -> Result<PendingPrediction, ServeError> {
        submit_via(&self.tx, &self.metrics, query)
    }
}

fn submit_via(
    tx: &SyncSender<Request>,
    metrics: &ServeMetrics,
    query: Hypervector,
) -> Result<PendingPrediction, ServeError> {
    let (reply, rx) = mpsc::sync_channel(1);
    let request = Request {
        query,
        submitted_at: Instant::now(),
        reply,
    };
    match tx.try_send(request) {
        Ok(()) => {
            metrics.on_submit();
            Ok(PendingPrediction { rx })
        }
        Err(TrySendError::Full(_)) => {
            metrics.on_reject();
            Err(ServeError::QueueFull)
        }
        Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
    }
}

/// The running serving engine. See the [module docs](self) for the
/// pipeline layout.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use privehd_core::{HdModel, Hypervector};
/// use privehd_serve::{ModelRegistry, ServeConfig, ServeEngine};
///
/// # fn main() -> Result<(), privehd_serve::ServeError> {
/// let mut model = HdModel::new(2, 64)?;
/// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
/// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
/// let registry = Arc::new(ModelRegistry::with_model(model, "demo")?);
///
/// let engine = ServeEngine::start(registry, ServeConfig::default())?;
/// let served = engine.submit(Hypervector::from_vec(vec![1.0; 64]))?.wait()?;
/// assert_eq!(served.prediction.class, 0);
/// assert_eq!(served.model_version, 1);
/// let report = engine.shutdown();
/// assert_eq!(report.completed, 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    tx: Option<SyncSender<Request>>,
    registry: Arc<ModelRegistry>,
    metrics: Arc<ServeMetrics>,
    started_at: Instant,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Spawns the batcher and worker threads and starts accepting
    /// submissions.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero-valued knobs.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let metrics = Arc::new(ServeMetrics::new());
        let (tx, submit_rx) = mpsc::sync_channel::<Request>(config.queue_depth);
        let (batch_tx, batch_rx) = mpsc::sync_channel::<Vec<Request>>(config.workers * 2);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let batcher_cfg = config.clone();
        let batcher = std::thread::Builder::new()
            .name("privehd-batcher".into())
            .spawn(move || run_batcher(&submit_rx, &batch_tx, &batcher_cfg))
            .expect("failed to spawn batcher thread");

        let workers = (0..config.workers)
            .map(|i| {
                let rx = Arc::clone(&batch_rx);
                let registry = Arc::clone(&registry);
                let metrics = Arc::clone(&metrics);
                let packed = config.packed_fastpath;
                std::thread::Builder::new()
                    .name(format!("privehd-worker-{i}"))
                    .spawn(move || run_worker(&rx, &registry, &metrics, packed))
                    .expect("failed to spawn worker thread")
            })
            .collect();

        Ok(Self {
            tx: Some(tx),
            registry,
            metrics,
            started_at: Instant::now(),
            batcher: Some(batcher),
            workers,
        })
    }

    /// Submits one query for batched classification.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (shed load, retry with backoff), [`ServeError::Closed`] after
    /// shutdown.
    pub fn submit(&self, query: Hypervector) -> Result<PendingPrediction, ServeError> {
        let tx = self.tx.as_ref().ok_or(ServeError::Closed)?;
        submit_via(tx, &self.metrics, query)
    }

    /// Convenience: submit and block for the result.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeEngine::submit`] and
    /// [`PendingPrediction::wait`] errors.
    pub fn predict(&self, query: Hypervector) -> Result<ServedPrediction, ServeError> {
        self.submit(query)?.wait()
    }

    /// A cloneable submission handle for client threads.
    pub fn handle(&self) -> SubmitHandle {
        SubmitHandle {
            tx: self
                .tx
                .clone()
                .expect("engine not shut down while handles are being created"),
            metrics: Arc::clone(&self.metrics),
        }
    }

    /// The model registry this engine serves from.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Live serving counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// Metrics snapshot over the engine's lifetime so far.
    pub fn report(&self) -> ServeReport {
        self.metrics.report(self.started_at.elapsed())
    }

    /// Stops accepting submissions, drains every queued request, joins
    /// all threads and returns the final report.
    ///
    /// Outstanding [`SubmitHandle`]s keep the batcher alive until they
    /// are dropped; this call blocks until then.
    pub fn shutdown(mut self) -> ServeReport {
        self.join_threads();
        self.metrics.report(self.started_at.elapsed())
    }

    fn join_threads(&mut self) {
        drop(self.tx.take());
        if let Some(b) = self.batcher.take() {
            b.join().expect("batcher thread panicked");
        }
        for w in self.workers.drain(..) {
            w.join().expect("worker thread panicked");
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.join_threads();
    }
}

/// Batcher loop: accumulate up to `max_batch` requests, flushing early
/// once `max_delay` has passed since the batch's first request.
fn run_batcher(
    submit_rx: &Receiver<Request>,
    batch_tx: &SyncSender<Vec<Request>>,
    config: &ServeConfig,
) {
    loop {
        // Block for the request that opens the next batch.
        let first = match submit_rx.recv() {
            Ok(r) => r,
            Err(_) => return, // every submitter is gone
        };
        let deadline = Instant::now() + config.max_delay;
        let mut batch = Vec::with_capacity(config.max_batch);
        batch.push(first);
        let mut disconnected = false;

        // Adaptive fill: drain what is already queued for free, then
        // wait out the remaining delay budget only if there is room.
        while batch.len() < config.max_batch {
            match submit_rx.try_recv() {
                Ok(r) => batch.push(r),
                Err(mpsc::TryRecvError::Empty) => {
                    let now = Instant::now();
                    if now >= deadline {
                        break;
                    }
                    match submit_rx.recv_timeout(deadline - now) {
                        Ok(r) => batch.push(r),
                        Err(mpsc::RecvTimeoutError::Timeout) => break,
                        Err(mpsc::RecvTimeoutError::Disconnected) => {
                            disconnected = true;
                            break;
                        }
                    }
                }
                Err(mpsc::TryRecvError::Disconnected) => {
                    disconnected = true;
                    break;
                }
            }
        }

        if batch_tx.send(batch).is_err() {
            return; // workers are gone; nothing more to do
        }
        if disconnected {
            return;
        }
    }
}

/// Worker loop: pull one batch at a time off the shared channel and
/// execute it against the current registry snapshot.
fn run_worker(
    batch_rx: &Arc<Mutex<Receiver<Vec<Request>>>>,
    registry: &ModelRegistry,
    metrics: &ServeMetrics,
    packed_fastpath: bool,
) {
    loop {
        // Hold the lock only while waiting for the next batch; release
        // it before executing so other workers receive concurrently.
        let batch = {
            let rx = batch_rx.lock().expect("batch receiver lock poisoned");
            match rx.recv() {
                Ok(b) => b,
                Err(_) => return,
            }
        };
        execute_batch(batch, registry, metrics, packed_fastpath);
    }
}

/// Batches at least this large additionally fan their per-request
/// classification out over the persistent `privehd_core` worker pool.
const POOL_FANOUT_MIN: usize = 16;

fn execute_batch(
    batch: Vec<Request>,
    registry: &ModelRegistry,
    metrics: &ServeMetrics,
    packed_fastpath: bool,
) {
    let size = batch.len();
    metrics.on_batch(size);
    // One snapshot per batch: a concurrent publish affects later
    // batches, never this one.
    let snapshot = registry.current();

    // Classification stays per-request (so one bad query fails only its
    // own reply), and each reply is sent — and its latency measured —
    // the moment its own classification finishes, whether that happens
    // on this worker or on a pool lane.
    let serve_one = |request: &Request| {
        let outcome: Result<Prediction, ServeError> = match &snapshot {
            None => Err(ServeError::NoModel),
            Some(served) => {
                let model = served.model();
                if packed_fastpath && is_strictly_bipolar(&request.query) {
                    model
                        .predict_packed(&BipolarHv::from_signs(request.query.as_slice()))
                        .map_err(ServeError::Model)
                } else {
                    model.predict(&request.query).map_err(ServeError::Model)
                }
            }
        };
        let latency = request.submitted_at.elapsed();
        metrics.on_done(outcome.is_ok(), latency);
        let reply = outcome.map(|prediction| ServedPrediction {
            prediction,
            model_version: snapshot.as_ref().map_or(0, |s| s.version),
            batch_size: size,
            latency,
        });
        // A submitter that dropped its PendingPrediction is not an
        // engine error; ignore the closed reply channel.
        let _ = request.reply.send(reply);
    };

    let pool = privehd_core::pool::global();
    if size >= POOL_FANOUT_MIN && pool.threads() > 0 {
        pool.run(size, |i| serve_one(&batch[i]));
    } else {
        for request in &batch {
            serve_one(request);
        }
    }
}

/// True when every component is exactly `+1` or `−1`, i.e. the query can
/// be bit-packed losslessly.
fn is_strictly_bipolar(query: &Hypervector) -> bool {
    query.as_slice().iter().all(|&v| v == 1.0 || v == -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_core::HdModel;

    fn registry(dim: usize) -> Arc<ModelRegistry> {
        let mut model = HdModel::new(2, dim).unwrap();
        let up: Vec<f64> = (0..dim)
            .map(|j| if j % 2 == 0 { 2.0 } else { 1.0 })
            .collect();
        let down: Vec<f64> = up.iter().map(|v| -v).collect();
        model.bundle(0, &Hypervector::from_vec(up)).unwrap();
        model.bundle(1, &Hypervector::from_vec(down)).unwrap();
        Arc::new(ModelRegistry::with_model(model, "test").unwrap())
    }

    fn query(dim: usize, sign: f64) -> Hypervector {
        Hypervector::from_vec(vec![sign; dim])
    }

    #[test]
    fn config_validation_rejects_zeros() {
        let reg = registry(32);
        for bad in [
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_depth: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(
                ServeEngine::start(Arc::clone(&reg), bad),
                Err(ServeError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn serves_simple_queries() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let a = engine.predict(query(64, 1.0)).unwrap();
        let b = engine.predict(query(64, -1.0)).unwrap();
        assert_eq!(a.prediction.class, 0);
        assert_eq!(b.prediction.class, 1);
        assert_eq!(a.model_version, 1);
        assert!(a.batch_size >= 1);
        let report = engine.shutdown();
        assert_eq!(report.completed, 2);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn empty_registry_yields_no_model() {
        let reg = Arc::new(ModelRegistry::new());
        let engine = ServeEngine::start(reg, ServeConfig::default()).unwrap();
        assert_eq!(
            engine.predict(query(16, 1.0)).unwrap_err(),
            ServeError::NoModel
        );
        let report = engine.shutdown();
        assert_eq!(report.failed, 1);
    }

    #[test]
    fn wrong_dimension_is_reported_per_request() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let err = engine.predict(query(32, 1.0)).unwrap_err();
        assert!(matches!(err, ServeError::Model(_)), "{err}");
        // The engine keeps serving afterwards.
        assert_eq!(engine.predict(query(64, 1.0)).unwrap().prediction.class, 0);
        engine.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_load() {
        // One worker, tiny queue, and a batcher window long enough that
        // floods back up into the queue.
        let config = ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(50),
            workers: 1,
            queue_depth: 2,
            packed_fastpath: false,
        };
        let engine = ServeEngine::start(registry(64), config).unwrap();
        let mut pending = Vec::new();
        let mut saw_full = false;
        for _ in 0..200 {
            match engine.submit(query(64, 1.0)) {
                Ok(p) => pending.push(p),
                Err(ServeError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_full, "queue never filled");
        for p in pending {
            assert!(p.wait().is_ok());
        }
        let report = engine.shutdown();
        assert!(report.rejected >= 1);
    }

    #[test]
    fn batches_fill_under_load() {
        let config = ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
            workers: 2,
            queue_depth: 256,
            packed_fastpath: false,
        };
        let engine = ServeEngine::start(registry(256), config).unwrap();
        let pending: Vec<_> = (0..64)
            .map(|i| {
                engine
                    .submit(query(256, if i % 2 == 0 { 1.0 } else { -1.0 }))
                    .unwrap()
            })
            .collect();
        let mut max_batch_seen = 0;
        for (i, p) in pending.into_iter().enumerate() {
            let served = p.wait().unwrap();
            assert_eq!(served.prediction.class, i % 2);
            max_batch_seen = max_batch_seen.max(served.batch_size);
        }
        assert!(
            max_batch_seen > 1,
            "64 concurrent queries never co-batched (max batch {max_batch_seen})"
        );
        let report = engine.shutdown();
        assert_eq!(report.completed, 64);
        assert!(report.mean_batch_size > 1.0, "{report}");
    }

    #[test]
    fn packed_fastpath_agrees_with_dense_path() {
        let config = ServeConfig {
            packed_fastpath: true,
            ..ServeConfig::default()
        };
        let reg = registry(128);
        let engine = ServeEngine::start(Arc::clone(&reg), config).unwrap();
        let model = reg.current().unwrap();
        for seed in 0..20u64 {
            let packed = BipolarHv::random(128, seed);
            let q = packed.to_dense();
            let served = engine.predict(q.clone()).unwrap();
            let direct = model.model().predict(&q).unwrap();
            assert_eq!(served.prediction.class, direct.class, "seed {seed}");
        }
        engine.shutdown();
    }

    #[test]
    fn handles_submit_from_other_threads() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = engine.handle();
            joins.push(std::thread::spawn(move || {
                (0..25)
                    .map(|i| {
                        let sign = if (t + i) % 2 == 0 { 1.0 } else { -1.0 };
                        let served = h.submit(query(64, sign)).unwrap().wait().unwrap();
                        (served.prediction.class, (t + i) % 2)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for j in joins {
            for (got, want) in j.join().unwrap() {
                assert_eq!(got, want);
            }
        }
        let report = engine.shutdown();
        assert_eq!(report.completed, 100);
    }
}
