//! The serving engine: bounded submission queue, adaptive per-model
//! micro-batcher, worker pool.
//!
//! ```text
//!  clients ──try_send──▶ [bounded MPSC queue]
//!            (ModelId,        │  batcher thread: per-model batches,
//!             query)          │  flush on max_batch or max_delay per key
//!                             ▼
//!                        [batch channel]   (one ModelId per batch)
//!                          │    │    │   worker pool (shared receiver)
//!                          ▼    ▼    ▼
//!                        predict over the batch's model snapshot
//!                          │
//!                          ▼  per-request oneshot channel
//!                        ServedPrediction / ServeError
//! ```
//!
//! Batching is *adaptive*: requests already queued accumulate into
//! batches with zero added latency (so a saturated queue forms full
//! batches), and a partially filled batch waits at most
//! [`ServeConfig::max_delay`], anchored at its first request. With many
//! models behind one engine ([`ServeEngine::start_sharded`]),
//! accumulation is keyed per [`ModelId`]: each model gets its own
//! delay window and its own `max_batch` cutoff, and every dispatched
//! batch holds requests for exactly one model, resolved against one
//! registry snapshot at dispatch time. A hot swap
//! ([`ModelRegistry::publish`] / [`ShardedRegistry::publish`]) never
//! drops or corrupts in-flight requests — they complete on the version
//! that was live when their batch started.
//!
//! ## Shutdown contract
//!
//! [`ServeEngine::shutdown`] (and `Drop`) first marks the engine
//! closed — subsequent [`SubmitHandle::submit`] calls return
//! [`ServeError::Closed`] — then sends the batcher an explicit stop
//! signal. The batcher drains whatever was accepted before the stop,
//! flushes every open batch, and exits; workers finish the remaining
//! batches and exit. Shutdown therefore completes even while clones of
//! [`SubmitHandle`] are still alive on other threads (they used to keep
//! the batcher blocked on its channel forever). A request that loses
//! the race with shutdown is answered with [`ServeError::Closed`]
//! through its [`PendingPrediction`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError, SyncSender, TryRecvError, TrySendError};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use privehd_core::telemetry::{Stage, TelemetryConfig, TraceCtx, Tracer};
use privehd_core::{BipolarHv, Hypervector, Prediction};

use crate::error::ServeError;
use crate::metrics::{ServeMetrics, ServeReport};
use crate::registry::{ModelId, ModelRegistry, ServedModel, ShardedRegistry};
use crate::router::BatchRouter;

/// Tuning knobs of the serving engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Largest batch dispatched to a worker; reaching it flushes that
    /// model's batch immediately.
    pub max_batch: usize,
    /// Longest a queued request waits for co-batched company (of its
    /// own model) before the batcher flushes anyway, anchored at the
    /// batch's first request.
    pub max_delay: Duration,
    /// Worker threads executing batches.
    pub workers: usize,
    /// Capacity of the bounded submission queue; a full queue sheds
    /// load with [`ServeError::QueueFull`] instead of buffering
    /// unboundedly.
    pub queue_depth: usize,
    /// When set, queries whose components are all exactly `±1` (i.e.
    /// bipolar-obfuscated queries) are bit-packed and classified through
    /// [`privehd_core::HdModel::predict_packed`] — the popcount fast
    /// path. Scores then differ from the dense path only in
    /// floating-point summation order. Leave unset when bit-identical
    /// results to [`privehd_core::HdModel::predict`] are required.
    pub packed_fastpath: bool,
    /// Request-tracing configuration: 1-in-N span sampling plus
    /// always-capture for slow requests. Stage *histograms* record
    /// regardless (they are counters); this only controls the trace
    /// ring. [`TelemetryConfig::disabled`] turns span capture off
    /// entirely — the overhead-measurement baseline.
    pub telemetry: TelemetryConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            max_delay: Duration::from_micros(500),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_depth: 1_024,
            packed_fastpath: false,
            telemetry: TelemetryConfig::default(),
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        if self.max_batch == 0 {
            return Err(ServeError::InvalidConfig("max_batch must be ≥ 1".into()));
        }
        if self.workers == 0 {
            return Err(ServeError::InvalidConfig("workers must be ≥ 1".into()));
        }
        if self.queue_depth == 0 {
            return Err(ServeError::InvalidConfig("queue_depth must be ≥ 1".into()));
        }
        Ok(())
    }
}

/// A query in whichever representation the client submitted: dense
/// `f64`-per-dimension, or bit-packed bipolar (1 bit/dim).
///
/// The packed variant flows through the queue, the batcher and the
/// workers as-is and is scored by
/// [`privehd_core::HdModel::predict_packed`] — never densified. That
/// is the packed-native serving contract: a 10k-dim packed query costs
/// ~1.25 KiB on the queue instead of ~78 KiB dense, and classification
/// runs on `XOR`+`POPCNT` words instead of `f64` lanes.
#[derive(Debug, Clone)]
pub enum QueryVec {
    /// Dense real-valued query (one `f64` per dimension).
    Dense(Hypervector),
    /// Bit-packed bipolar query (one bit per dimension).
    Packed(BipolarHv),
}

impl QueryVec {
    /// Dimensionality of the query in either representation.
    pub fn dim(&self) -> usize {
        match self {
            QueryVec::Dense(q) => q.dim(),
            QueryVec::Packed(q) => q.dim(),
        }
    }
}

/// A completed prediction plus its serving context.
#[derive(Debug, Clone, PartialEq)]
pub struct ServedPrediction {
    /// The classification result.
    pub prediction: Prediction,
    /// The model this request was routed to.
    pub model: ModelId,
    /// Registry version of the model that served this request.
    pub model_version: u64,
    /// Size of the batch this request rode in.
    pub batch_size: usize,
    /// End-to-end latency: submission to response.
    pub latency: Duration,
}

/// One queued request: the target model, the query, and its response
/// channel.
struct Request {
    model: ModelId,
    query: QueryVec,
    trace: TraceCtx,
    submitted_at: Instant,
    /// Stamped by the batcher the moment it routes the request into its
    /// model's open batch; `submitted_at..routed_at` is the queue-wait
    /// stage, `routed_at..execution` the batch-window wait.
    routed_at: Option<Instant>,
    reply: SyncSender<Result<ServedPrediction, ServeError>>,
}

/// What flows through the submission queue: requests, or the engine's
/// shutdown signal (which lets the batcher exit even while cloned
/// [`SubmitHandle`]s keep their channel ends alive).
enum Msg {
    Request(Request),
    Stop,
}

/// One dispatched batch: requests for exactly one model.
struct ModelBatch {
    model: ModelId,
    requests: Vec<Request>,
}

/// Where workers resolve a batch's model snapshot.
#[derive(Debug, Clone)]
enum Backend {
    /// The legacy single-model registry; only [`ModelId::default`]
    /// resolves.
    Single(Arc<ModelRegistry>),
    /// The multi-tenant sharded registry; any published id resolves.
    Sharded(Arc<ShardedRegistry>),
}

impl Backend {
    fn resolve(&self, model: &ModelId) -> Option<Arc<ServedModel>> {
        match self {
            Backend::Single(r) => (model.as_str() == ModelId::DEFAULT_NAME)
                .then(|| r.current())
                .flatten(),
            Backend::Sharded(s) => s.get(model),
        }
    }
}

/// A submitted request's future result.
///
/// Obtained from [`ServeEngine::submit`] / [`SubmitHandle::submit`];
/// resolve it with [`PendingPrediction::wait`].
#[derive(Debug)]
pub struct PendingPrediction {
    rx: Receiver<Result<ServedPrediction, ServeError>>,
}

impl PendingPrediction {
    /// Blocks until the prediction is ready.
    ///
    /// # Errors
    ///
    /// Returns the serving-side error for this request, or
    /// [`ServeError::Closed`] if the engine shut down before answering.
    pub fn wait(self) -> Result<ServedPrediction, ServeError> {
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }

    /// Non-blocking poll: `None` while the prediction is still in
    /// flight, `Some(outcome)` once it resolved (or once the engine
    /// dropped the request's reply channel, which reads as
    /// [`ServeError::Closed`]). The wire front-end's poll loop uses
    /// this to multiplex many pending requests on one thread.
    pub fn try_wait(&self) -> Option<Result<ServedPrediction, ServeError>> {
        match self.rx.try_recv() {
            Ok(outcome) => Some(outcome),
            Err(TryRecvError::Empty) => None,
            Err(TryRecvError::Disconnected) => Some(Err(ServeError::Closed)),
        }
    }
}

/// A cloneable, `Send` submission handle for multi-threaded clients.
///
/// Handles stay valid across [`ServeEngine::shutdown`]: submissions
/// after shutdown simply return [`ServeError::Closed`] (they no longer
/// block shutdown itself).
#[derive(Debug, Clone)]
pub struct SubmitHandle {
    tx: SyncSender<Msg>,
    metrics: Arc<ServeMetrics>,
    tracer: Arc<Tracer>,
    closed: Arc<AtomicBool>,
}

impl SubmitHandle {
    /// Submits a query to the default model; see [`ServeEngine::submit`].
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity,
    /// [`ServeError::Closed`] when the engine has shut down.
    pub fn submit(&self, query: Hypervector) -> Result<PendingPrediction, ServeError> {
        self.submit_to(&ModelId::default(), query)
    }

    /// Submits a query routed to `model`; see
    /// [`ServeEngine::submit_to`].
    ///
    /// # Errors
    ///
    /// Same contract as [`SubmitHandle::submit`].
    pub fn submit_to(
        &self,
        model: &ModelId,
        query: Hypervector,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_traced(model, QueryVec::Dense(query), self.tracer.begin())
    }

    /// Submits a bit-packed bipolar query to the default model; see
    /// [`ServeEngine::submit_packed`].
    ///
    /// # Errors
    ///
    /// Same contract as [`SubmitHandle::submit`].
    pub fn submit_packed(&self, query: BipolarHv) -> Result<PendingPrediction, ServeError> {
        self.submit_packed_to(&ModelId::default(), query)
    }

    /// Submits a bit-packed bipolar query routed to `model`; see
    /// [`ServeEngine::submit_packed_to`].
    ///
    /// # Errors
    ///
    /// Same contract as [`SubmitHandle::submit`].
    pub fn submit_packed_to(
        &self,
        model: &ModelId,
        query: BipolarHv,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_traced(model, QueryVec::Packed(query), self.tracer.begin())
    }

    /// Submits with a caller-provided trace context, so a front-end
    /// that began the trace earlier (e.g. at wire decode) keeps one id
    /// across its spans and the engine's.
    pub(crate) fn submit_traced(
        &self,
        model: &ModelId,
        query: QueryVec,
        trace: TraceCtx,
    ) -> Result<PendingPrediction, ServeError> {
        submit_via(&self.tx, &self.metrics, &self.closed, model, query, trace)
    }

    /// The engine's live metrics (the wire front-end records its stages
    /// and builds the stats exposition through this).
    pub(crate) fn serve_metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The engine's tracer.
    pub(crate) fn tracer(&self) -> &Tracer {
        &self.tracer
    }
}

fn submit_via(
    tx: &SyncSender<Msg>,
    metrics: &ServeMetrics,
    closed: &AtomicBool,
    model: &ModelId,
    query: QueryVec,
    trace: TraceCtx,
) -> Result<PendingPrediction, ServeError> {
    // Acquire: pairs with the Release store in `join_threads` so a
    // submitter that observes `closed` also observes the Stop already
    // queued, rather than racing a send into a draining channel.
    if closed.load(Ordering::Acquire) {
        return Err(ServeError::Closed);
    }
    let (reply, rx) = mpsc::sync_channel(1);
    let request = Request {
        model: model.clone(),
        query,
        trace,
        submitted_at: Instant::now(),
        routed_at: None,
        reply,
    };
    match tx.try_send(Msg::Request(request)) {
        Ok(()) => {
            metrics.on_submit(model);
            Ok(PendingPrediction { rx })
        }
        Err(TrySendError::Full(_)) => {
            metrics.on_reject();
            Err(ServeError::QueueFull)
        }
        Err(TrySendError::Disconnected(_)) => Err(ServeError::Closed),
    }
}

/// The running serving engine. See the [module docs](self) for the
/// pipeline layout and the shutdown contract.
///
/// # Examples
///
/// Single model (the legacy API — routes to [`ModelId::default`]):
///
/// ```
/// use std::sync::Arc;
/// use privehd_core::{HdModel, Hypervector};
/// use privehd_serve::{ModelRegistry, ServeConfig, ServeEngine};
///
/// # fn main() -> Result<(), privehd_serve::ServeError> {
/// let mut model = HdModel::new(2, 64)?;
/// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
/// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
/// let registry = Arc::new(ModelRegistry::with_model(model, "demo")?);
///
/// let engine = ServeEngine::start(registry, ServeConfig::default())?;
/// let served = engine.submit(Hypervector::from_vec(vec![1.0; 64]))?.wait()?;
/// assert_eq!(served.prediction.class, 0);
/// assert_eq!(served.model_version, 1);
/// let report = engine.shutdown();
/// assert_eq!(report.completed, 1);
/// # Ok(())
/// # }
/// ```
///
/// Many models behind one engine, routed per submission:
///
/// ```
/// use std::sync::Arc;
/// use privehd_core::{HdModel, Hypervector};
/// use privehd_serve::{ModelId, ServeConfig, ServeEngine, ShardedRegistry};
///
/// # fn main() -> Result<(), privehd_serve::ServeError> {
/// let mut model = HdModel::new(2, 64)?;
/// model.bundle(0, &Hypervector::from_vec(vec![1.0; 64]))?;
/// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 64]))?;
///
/// let registry = Arc::new(ShardedRegistry::new());
/// let tenant = ModelId::new("tenant-a");
/// registry.publish(&tenant, model, "a-v1")?;
///
/// let engine = ServeEngine::start_sharded(registry, ServeConfig::default())?;
/// let served = engine
///     .submit_to(&tenant, Hypervector::from_vec(vec![-1.0; 64]))?
///     .wait()?;
/// assert_eq!(served.prediction.class, 1);
/// assert_eq!(served.model, tenant);
/// let report = engine.shutdown();
/// assert_eq!(report.per_model.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct ServeEngine {
    tx: Option<SyncSender<Msg>>,
    closed: Arc<AtomicBool>,
    backend: Backend,
    metrics: Arc<ServeMetrics>,
    tracer: Arc<Tracer>,
    started_at: Instant,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl ServeEngine {
    /// Spawns the batcher and worker threads serving the single-model
    /// `registry`; submissions route to [`ModelId::default`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero-valued knobs.
    pub fn start(registry: Arc<ModelRegistry>, config: ServeConfig) -> Result<Self, ServeError> {
        Self::start_backend(Backend::Single(registry), config)
    }

    /// Spawns the batcher and worker threads serving every model of a
    /// multi-tenant [`ShardedRegistry`]; route submissions with
    /// [`ServeEngine::submit_to`].
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidConfig`] for zero-valued knobs.
    pub fn start_sharded(
        registry: Arc<ShardedRegistry>,
        config: ServeConfig,
    ) -> Result<Self, ServeError> {
        Self::start_backend(Backend::Sharded(registry), config)
    }

    fn start_backend(backend: Backend, config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let metrics = Arc::new(ServeMetrics::new());
        let tracer = Arc::new(Tracer::new(config.telemetry.clone()));
        let closed = Arc::new(AtomicBool::new(false));
        let (tx, submit_rx) = mpsc::sync_channel::<Msg>(config.queue_depth);
        let (batch_tx, batch_rx) = mpsc::sync_channel::<ModelBatch>(config.workers * 2);
        let batch_rx = Arc::new(Mutex::new(batch_rx));

        let batcher_cfg = config.clone();
        let batcher = std::thread::Builder::new()
            .name("privehd-batcher".into())
            .spawn(move || run_batcher(&submit_rx, &batch_tx, &batcher_cfg))
            .map_err(|e| ServeError::Transport(format!("failed to spawn batcher thread: {e}")))?;

        let workers = (0..config.workers)
            .map(|i| {
                let rx = Arc::clone(&batch_rx);
                let backend = backend.clone();
                let metrics = Arc::clone(&metrics);
                let tracer = Arc::clone(&tracer);
                let packed = config.packed_fastpath;
                std::thread::Builder::new()
                    .name(format!("privehd-worker-{i}"))
                    .spawn(move || run_worker(&rx, &backend, &metrics, &tracer, packed))
                    .map_err(|e| {
                        ServeError::Transport(format!("failed to spawn worker thread: {e}"))
                    })
            })
            .collect::<Result<Vec<_>, _>>()?;

        Ok(Self {
            tx: Some(tx),
            closed,
            backend,
            metrics,
            tracer,
            started_at: Instant::now(),
            batcher: Some(batcher),
            workers,
        })
    }

    /// Submits one query for batched classification by the default
    /// model.
    ///
    /// # Errors
    ///
    /// [`ServeError::QueueFull`] when the bounded queue is at capacity
    /// (shed load, retry with backoff), [`ServeError::Closed`] after
    /// shutdown.
    pub fn submit(&self, query: Hypervector) -> Result<PendingPrediction, ServeError> {
        self.submit_to(&ModelId::default(), query)
    }

    /// Submits one query routed to `model`. Requests for different
    /// models accumulate in separate batches; a model nobody published
    /// answers with [`ServeError::NoModel`] through the
    /// [`PendingPrediction`].
    ///
    /// On an engine started with [`ServeEngine::start`] only
    /// [`ModelId::default`] resolves; every other id reports
    /// [`ServeError::NoModel`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ServeEngine::submit`].
    pub fn submit_to(
        &self,
        model: &ModelId,
        query: Hypervector,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_query_to(model, QueryVec::Dense(query))
    }

    /// Submits one bit-packed bipolar query to the default model.
    ///
    /// The query stays packed end to end: it rides the queue at 1
    /// bit/dim and is classified through
    /// [`privehd_core::HdModel::predict_packed`] — the popcount path —
    /// with no dense conversion anywhere. For sign-only (bipolar
    /// quantized) models the scores are bit-identical to densifying and
    /// calling [`ServeEngine::submit`]; see
    /// [`privehd_core::PackedClassMatrix`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ServeEngine::submit`].
    pub fn submit_packed(&self, query: BipolarHv) -> Result<PendingPrediction, ServeError> {
        self.submit_packed_to(&ModelId::default(), query)
    }

    /// Submits one bit-packed bipolar query routed to `model`; the
    /// packed-native counterpart of [`ServeEngine::submit_to`].
    ///
    /// # Errors
    ///
    /// Same contract as [`ServeEngine::submit`].
    pub fn submit_packed_to(
        &self,
        model: &ModelId,
        query: BipolarHv,
    ) -> Result<PendingPrediction, ServeError> {
        self.submit_query_to(model, QueryVec::Packed(query))
    }

    fn submit_query_to(
        &self,
        model: &ModelId,
        query: QueryVec,
    ) -> Result<PendingPrediction, ServeError> {
        let tx = self.tx.as_ref().ok_or(ServeError::Closed)?;
        submit_via(
            tx,
            &self.metrics,
            &self.closed,
            model,
            query,
            self.tracer.begin(),
        )
    }

    /// Convenience: submit to the default model and block for the
    /// result.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeEngine::submit`] and
    /// [`PendingPrediction::wait`] errors.
    pub fn predict(&self, query: Hypervector) -> Result<ServedPrediction, ServeError> {
        self.submit(query)?.wait()
    }

    /// Convenience: submit to `model` and block for the result.
    ///
    /// # Errors
    ///
    /// Propagates [`ServeEngine::submit_to`] and
    /// [`PendingPrediction::wait`] errors.
    pub fn predict_for(
        &self,
        model: &ModelId,
        query: Hypervector,
    ) -> Result<ServedPrediction, ServeError> {
        self.submit_to(model, query)?.wait()
    }

    /// A cloneable submission handle for client threads.
    pub fn handle(&self) -> SubmitHandle {
        SubmitHandle {
            // analyze::allow(no-panic-path): `tx` is only taken in
            // `join_threads`, which consumes or exclusively borrows the
            // engine — no handle can be created afterwards.
            tx: self.tx.clone().expect("engine not shut down"),
            metrics: Arc::clone(&self.metrics),
            tracer: Arc::clone(&self.tracer),
            closed: Arc::clone(&self.closed),
        }
    }

    /// The single-model registry this engine serves from, or `None`
    /// when it was started with [`ServeEngine::start_sharded`].
    pub fn registry(&self) -> Option<&Arc<ModelRegistry>> {
        match &self.backend {
            Backend::Single(r) => Some(r),
            Backend::Sharded(_) => None,
        }
    }

    /// The sharded registry this engine serves from, or `None` when it
    /// was started with [`ServeEngine::start`].
    pub fn sharded_registry(&self) -> Option<&Arc<ShardedRegistry>> {
        match &self.backend {
            Backend::Single(_) => None,
            Backend::Sharded(s) => Some(s),
        }
    }

    /// Live serving counters.
    pub fn metrics(&self) -> &ServeMetrics {
        &self.metrics
    }

    /// The engine's request tracer: sampling decisions plus the
    /// slow-request span ring ([`Tracer::snapshot`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Metrics snapshot over the engine's lifetime so far.
    pub fn report(&self) -> ServeReport {
        self.metrics.report(self.started_at.elapsed())
    }

    /// Stops accepting submissions, drains the queued requests, joins
    /// all threads and returns the final report.
    ///
    /// Completes even while cloned [`SubmitHandle`]s are still alive;
    /// their later submissions return [`ServeError::Closed`]. A submit
    /// racing this call may be accepted yet land after the drain; such
    /// a request is answered [`ServeError::Closed`] through its
    /// [`PendingPrediction`] and counts as submitted but neither
    /// completed nor failed in the report.
    pub fn shutdown(mut self) -> ServeReport {
        self.join_threads();
        self.metrics.report(self.started_at.elapsed())
    }

    fn join_threads(&mut self) {
        // Release: pairs with the Acquire load in `submit_via`;
        // everything sequenced before shutdown is visible to any
        // submitter that sees the flag.
        self.closed.store(true, Ordering::Release);
        if let Some(tx) = self.tx.take() {
            // Explicit stop signal: the batcher exits on it even while
            // cloned SubmitHandles keep the channel's sender side open.
            // `send` (not `try_send`) so a full queue delays the signal
            // instead of dropping it; the batcher is draining on the
            // other end. An Err means the batcher is already gone.
            let _ = tx.send(Msg::Stop);
        }
        if let Some(b) = self.batcher.take() {
            // analyze::allow(no-panic-path): re-raising a batcher panic
            // at shutdown is deliberate — it fires only on an internal
            // bug and must not vanish into a clean-looking report.
            b.join().expect("batcher thread panicked");
        }
        for w in self.workers.drain(..) {
            // analyze::allow(no-panic-path): same policy as the batcher
            // join above — propagate internal bugs, never hide them.
            w.join().expect("worker thread panicked");
        }
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        self.join_threads();
    }
}

/// Batcher loop: accumulate per-model batches, flushing a model's batch
/// once it holds `max_batch` requests or `max_delay` has passed since
/// its first request. Exits on [`Msg::Stop`] (after draining what was
/// already queued) or when every sender is gone.
fn run_batcher(submit_rx: &Receiver<Msg>, batch_tx: &SyncSender<ModelBatch>, config: &ServeConfig) {
    let mut router: BatchRouter<Request> = BatchRouter::new(config.max_batch, config.max_delay);

    let route = |router: &mut BatchRouter<Request>, mut request: Request| -> Option<ModelBatch> {
        let model = request.model.clone();
        let now = Instant::now();
        // End of the queue-wait stage, start of the batch-window wait.
        request.routed_at = Some(now);
        router
            .push(model, request, now)
            .map(|(model, requests)| ModelBatch { model, requests })
    };

    loop {
        // Idle: block indefinitely. Batches open: block until the
        // earliest per-model deadline.
        let msg = match router.next_deadline() {
            None => match submit_rx.recv() {
                Ok(m) => Some(m),
                Err(_) => break, // engine and every handle dropped
            },
            Some(deadline) => {
                let now = Instant::now();
                if now >= deadline {
                    None
                } else {
                    match submit_rx.recv_timeout(deadline - now) {
                        Ok(m) => Some(m),
                        Err(RecvTimeoutError::Timeout) => None,
                        Err(RecvTimeoutError::Disconnected) => break,
                    }
                }
            }
        };
        match msg {
            Some(Msg::Request(request)) => {
                if let Some(batch) = route(&mut router, request) {
                    if batch_tx.send(batch).is_err() {
                        return; // workers are gone; nothing more to do
                    }
                }
            }
            Some(Msg::Stop) => {
                // Shutdown: drain requests accepted before the stop,
                // then exit. Anything submitted after the batcher is
                // gone is answered Closed (its reply channel drops with
                // the queue).
                while let Ok(m) = submit_rx.try_recv() {
                    if let Msg::Request(request) = m {
                        if let Some(batch) = route(&mut router, request) {
                            if batch_tx.send(batch).is_err() {
                                return;
                            }
                        }
                    }
                }
                break;
            }
            None => {
                for (model, requests) in router.take_expired(Instant::now()) {
                    if batch_tx.send(ModelBatch { model, requests }).is_err() {
                        return;
                    }
                }
            }
        }
    }
    // Flush every still-open batch before exiting.
    for (model, requests) in router.drain() {
        if batch_tx.send(ModelBatch { model, requests }).is_err() {
            return;
        }
    }
}

/// Worker loop: pull one batch at a time off the shared channel and
/// execute it against its model's current snapshot.
fn run_worker(
    batch_rx: &Arc<Mutex<Receiver<ModelBatch>>>,
    backend: &Backend,
    metrics: &ServeMetrics,
    tracer: &Tracer,
    packed_fastpath: bool,
) {
    loop {
        // Hold the lock only while waiting for the next batch; release
        // it before executing so other workers receive concurrently.
        let batch = {
            // analyze::allow(no-panic-path): the lock is poisoned only
            // if a sibling worker panicked mid-recv; spreading the
            // panic tears the pool down instead of serving half-alive.
            let rx = batch_rx.lock().expect("batch receiver lock poisoned");
            match rx.recv() {
                Ok(b) => b,
                Err(_) => return,
            }
        };
        execute_batch(batch, backend, metrics, tracer, packed_fastpath);
    }
}

/// Batches at least this large additionally fan their per-request
/// classification out over the persistent `privehd_core` worker pool.
const POOL_FANOUT_MIN: usize = 16;

fn execute_batch(
    batch: ModelBatch,
    backend: &Backend,
    metrics: &ServeMetrics,
    tracer: &Tracer,
    packed_fastpath: bool,
) {
    let ModelBatch { model, requests } = batch;
    let size = requests.len();
    metrics.on_batch(size);
    // One snapshot per batch: a concurrent publish (or withdraw) of
    // this model affects later batches, never this one, and other
    // models' batches resolve their own snapshots independently. The
    // per-model metrics row is likewise fetched once per batch.
    let resolve_start = Instant::now();
    let snapshot = backend.resolve(&model);
    let resolve_end = Instant::now();
    let model_counters = metrics.model_counters(&model);
    if let Some(served) = &snapshot {
        // Snapshot footprint gauges: both matrices were built eagerly
        // at publish time (`refresh_norms`), so these accessors only
        // read cached sizes — no work on the serving path.
        metrics.set_model_memory(
            &model_counters,
            served.dense_memory_bytes() as u64,
            served.packed_memory_bytes().unwrap_or(0) as u64,
        );
    }

    // Classification stays per-request (so one bad query fails only its
    // own reply), and each reply is sent — and its latency measured —
    // the moment its own classification finishes, whether that happens
    // on this worker or on a pool lane.
    let serve_one = |request: &Request| {
        let work_start = Instant::now();
        let predict_start = work_start;
        let outcome: Result<Prediction, ServeError> = match &snapshot {
            None => Err(ServeError::NoModel),
            Some(served) => {
                let m = served.model();
                match &request.query {
                    // Packed-native path: the query arrived bit-packed
                    // and is scored by the popcount kernels without
                    // ever materializing a dense form.
                    QueryVec::Packed(hv) => m.predict_packed(hv).map_err(ServeError::Model),
                    QueryVec::Dense(q) => {
                        if packed_fastpath && is_strictly_bipolar(q) {
                            m.predict_packed(&BipolarHv::from_signs(q.as_slice()))
                                .map_err(ServeError::Model)
                        } else {
                            m.predict(q).map_err(ServeError::Model)
                        }
                    }
                }
            }
        };
        let done_at = Instant::now();
        let latency = done_at.saturating_duration_since(request.submitted_at);
        // End-to-end first, stage rows after: a reader snapshotting
        // mid-request then always observes per-stage counts ≤ the
        // end-to-end count — the invariant the consistency test pins.
        metrics.on_done(&model_counters, outcome.is_ok(), latency);
        let routed_at = request.routed_at.unwrap_or(work_start);
        let queue_wait = routed_at.saturating_duration_since(request.submitted_at);
        let batch_wait = work_start.saturating_duration_since(routed_at);
        metrics.on_stage_for(&model_counters, Stage::QueueWait, queue_wait);
        metrics.on_stage_for(&model_counters, Stage::BatchWait, batch_wait);
        metrics.on_stage_for(&model_counters, Stage::Predict, done_at - predict_start);
        let ctx = request.trace;
        tracer.record(ctx, Stage::QueueWait, request.submitted_at, routed_at);
        tracer.record(ctx, Stage::BatchWait, routed_at, work_start);
        tracer.record(ctx, Stage::Predict, predict_start, done_at);
        tracer.record(ctx, Stage::EndToEnd, request.submitted_at, done_at);
        let reply = outcome.map(|prediction| ServedPrediction {
            prediction,
            model: model.clone(),
            model_version: snapshot.as_ref().map_or(0, |s| s.version),
            batch_size: size,
            latency,
        });
        // A submitter that dropped its PendingPrediction is not an
        // engine error; ignore the closed reply channel.
        let _ = request.reply.send(reply);
    };

    let pool = privehd_core::pool::global();
    if size >= POOL_FANOUT_MIN && pool.threads() > 0 {
        // analyze::allow(no-panic-path): the pool invokes the closure
        // with `i < size == requests.len()` by contract.
        pool.run(size, |i| serve_one(&requests[i]));
    } else {
        for request in &requests {
            serve_one(request);
        }
    }
    // Recorded after the batch is served, so the stage's count stays ≤
    // the end-to-end count at any snapshot (one resolve per batch, and
    // batches ≤ requests).
    let resolve = resolve_end.saturating_duration_since(resolve_start);
    metrics.on_stage_for(&model_counters, Stage::SnapshotResolve, resolve);
    if let Some(first) = requests.first() {
        tracer.record(
            first.trace,
            Stage::SnapshotResolve,
            resolve_start,
            resolve_end,
        );
    }
}

/// True when every component is exactly `+1` or `−1`, i.e. the query can
/// be bit-packed losslessly.
fn is_strictly_bipolar(query: &Hypervector) -> bool {
    query.as_slice().iter().all(|&v| v == 1.0 || v == -1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_core::HdModel;

    fn trained_model(dim: usize) -> HdModel {
        let mut model = HdModel::new(2, dim).unwrap();
        let up: Vec<f64> = (0..dim)
            .map(|j| if j % 2 == 0 { 2.0 } else { 1.0 })
            .collect();
        let down: Vec<f64> = up.iter().map(|v| -v).collect();
        model.bundle(0, &Hypervector::from_vec(up)).unwrap();
        model.bundle(1, &Hypervector::from_vec(down)).unwrap();
        model
    }

    fn registry(dim: usize) -> Arc<ModelRegistry> {
        Arc::new(ModelRegistry::with_model(trained_model(dim), "test").unwrap())
    }

    /// A 2-class model: an all-positive query resolves to class
    /// `positive_class`, so tenants with different layouts are
    /// distinguishable by their answers.
    fn oriented_model(dim: usize, positive_class: usize) -> HdModel {
        let mut model = HdModel::new(2, dim).unwrap();
        model
            .bundle(positive_class, &Hypervector::from_vec(vec![1.0; dim]))
            .unwrap();
        model
            .bundle(1 - positive_class, &Hypervector::from_vec(vec![-1.0; dim]))
            .unwrap();
        model
    }

    fn query(dim: usize, sign: f64) -> Hypervector {
        Hypervector::from_vec(vec![sign; dim])
    }

    #[test]
    fn config_validation_rejects_zeros() {
        let reg = registry(32);
        for bad in [
            ServeConfig {
                max_batch: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                workers: 0,
                ..ServeConfig::default()
            },
            ServeConfig {
                queue_depth: 0,
                ..ServeConfig::default()
            },
        ] {
            assert!(matches!(
                ServeEngine::start(Arc::clone(&reg), bad),
                Err(ServeError::InvalidConfig(_))
            ));
        }
    }

    #[test]
    fn serves_simple_queries() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let a = engine.predict(query(64, 1.0)).unwrap();
        let b = engine.predict(query(64, -1.0)).unwrap();
        assert_eq!(a.prediction.class, 0);
        assert_eq!(b.prediction.class, 1);
        assert_eq!(a.model_version, 1);
        assert_eq!(a.model, ModelId::default());
        assert!(a.batch_size >= 1);
        let report = engine.shutdown();
        assert_eq!(report.completed, 2);
        assert_eq!(report.failed, 0);
    }

    #[test]
    fn empty_registry_yields_no_model() {
        let reg = Arc::new(ModelRegistry::new());
        let engine = ServeEngine::start(reg, ServeConfig::default()).unwrap();
        assert_eq!(
            engine.predict(query(16, 1.0)).unwrap_err(),
            ServeError::NoModel
        );
        let report = engine.shutdown();
        assert_eq!(report.failed, 1);
    }

    #[test]
    fn wrong_dimension_is_reported_per_request() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let err = engine.predict(query(32, 1.0)).unwrap_err();
        assert!(matches!(err, ServeError::Model(_)), "{err}");
        // The engine keeps serving afterwards.
        assert_eq!(engine.predict(query(64, 1.0)).unwrap().prediction.class, 0);
        engine.shutdown();
    }

    #[test]
    fn queue_overflow_sheds_load() {
        // One worker, tiny queue, and a batcher window long enough that
        // floods back up into the queue.
        let config = ServeConfig {
            max_batch: 2,
            max_delay: Duration::from_millis(50),
            workers: 1,
            queue_depth: 2,
            packed_fastpath: false,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(registry(64), config).unwrap();
        let mut pending = Vec::new();
        let mut saw_full = false;
        for _ in 0..200 {
            match engine.submit(query(64, 1.0)) {
                Ok(p) => pending.push(p),
                Err(ServeError::QueueFull) => {
                    saw_full = true;
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_full, "queue never filled");
        for p in pending {
            assert!(p.wait().is_ok());
        }
        let report = engine.shutdown();
        assert!(report.rejected >= 1);
    }

    #[test]
    fn batches_fill_under_load() {
        let config = ServeConfig {
            max_batch: 8,
            max_delay: Duration::from_millis(20),
            workers: 2,
            queue_depth: 256,
            packed_fastpath: false,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(registry(256), config).unwrap();
        let pending: Vec<_> = (0..64)
            .map(|i| {
                engine
                    .submit(query(256, if i % 2 == 0 { 1.0 } else { -1.0 }))
                    .unwrap()
            })
            .collect();
        let mut max_batch_seen = 0;
        for (i, p) in pending.into_iter().enumerate() {
            let served = p.wait().unwrap();
            assert_eq!(served.prediction.class, i % 2);
            max_batch_seen = max_batch_seen.max(served.batch_size);
        }
        assert!(
            max_batch_seen > 1,
            "64 concurrent queries never co-batched (max batch {max_batch_seen})"
        );
        let report = engine.shutdown();
        assert_eq!(report.completed, 64);
        assert!(report.mean_batch_size > 1.0, "{report}");
    }

    #[test]
    fn packed_fastpath_agrees_with_dense_path() {
        let config = ServeConfig {
            packed_fastpath: true,
            ..ServeConfig::default()
        };
        let reg = registry(128);
        let engine = ServeEngine::start(Arc::clone(&reg), config).unwrap();
        let model = reg.current().unwrap();
        for seed in 0..20u64 {
            let packed = BipolarHv::random(128, seed);
            let q = packed.to_dense();
            let served = engine.predict(q.clone()).unwrap();
            let direct = model.model().predict(&q).unwrap();
            assert_eq!(served.prediction.class, direct.class, "seed {seed}");
        }
        engine.shutdown();
    }

    #[test]
    fn packed_submit_matches_dense_submit() {
        // A bipolar-quantized (sign-only) model: packed-native scoring
        // is bit-identical to the dense path, so the predictions must
        // agree query for query.
        let mut model = trained_model(128);
        model.quantize_classes(privehd_core::QuantScheme::Bipolar);
        let reg = Arc::new(ModelRegistry::with_model(model, "signed").unwrap());
        let engine = ServeEngine::start(Arc::clone(&reg), ServeConfig::default()).unwrap();
        let handle = engine.handle();
        for seed in 0..20u64 {
            let packed = BipolarHv::random(128, seed);
            let dense = engine.predict(packed.to_dense()).unwrap();
            let native = engine
                .submit_packed(packed.clone())
                .unwrap()
                .wait()
                .unwrap();
            let via_handle = handle.submit_packed(packed).unwrap().wait().unwrap();
            assert_eq!(
                native.prediction.class, dense.prediction.class,
                "seed {seed}"
            );
            assert_eq!(native.prediction.class, via_handle.prediction.class);
            assert_eq!(native.model_version, 1);
        }
        let report = engine.shutdown();
        assert_eq!(report.completed, 60);
    }

    #[test]
    fn packed_submit_reports_dimension_mismatch_per_request() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let err = engine
            .submit_packed(BipolarHv::random(32, 1))
            .unwrap()
            .wait()
            .unwrap_err();
        assert!(matches!(err, ServeError::Model(_)), "{err}");
        // The engine keeps serving afterwards.
        assert_eq!(engine.predict(query(64, 1.0)).unwrap().prediction.class, 0);
        engine.shutdown();
    }

    #[test]
    fn handles_submit_from_other_threads() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let mut joins = Vec::new();
        for t in 0..4 {
            let h = engine.handle();
            joins.push(std::thread::spawn(move || {
                (0..25)
                    .map(|i| {
                        let sign = if (t + i) % 2 == 0 { 1.0 } else { -1.0 };
                        let served = h.submit(query(64, sign)).unwrap().wait().unwrap();
                        (served.prediction.class, (t + i) % 2)
                    })
                    .collect::<Vec<_>>()
            }));
        }
        for j in joins {
            for (got, want) in j.join().unwrap() {
                assert_eq!(got, want);
            }
        }
        let report = engine.shutdown();
        assert_eq!(report.completed, 100);
    }

    #[test]
    fn shutdown_completes_with_a_live_handle() {
        // Regression: shutdown used to join the batcher, which only
        // exited when every cloned SubmitHandle was dropped — a live
        // handle on another thread blocked shutdown forever.
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        let leaked = engine.handle();
        assert_eq!(engine.predict(query(64, 1.0)).unwrap().prediction.class, 0);

        let (done_tx, done_rx) = mpsc::channel();
        std::thread::spawn(move || {
            let report = engine.shutdown();
            done_tx.send(report).unwrap();
        });
        let report = done_rx
            .recv_timeout(Duration::from_secs(10))
            .expect("shutdown deadlocked while a SubmitHandle was alive");
        assert_eq!(report.completed, 1);

        // The leaked handle observes the closure instead of hanging.
        assert_eq!(
            leaked.submit(query(64, 1.0)).unwrap_err(),
            ServeError::Closed
        );
    }

    #[test]
    fn requests_accepted_before_shutdown_are_answered() {
        // Stop drains the queue: everything accepted before shutdown
        // resolves (successfully — not with Closed).
        let config = ServeConfig {
            max_batch: 4,
            max_delay: Duration::from_millis(100),
            workers: 1,
            queue_depth: 64,
            packed_fastpath: false,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start(registry(64), config).unwrap();
        let _live_handle = engine.handle();
        let pending: Vec<_> = (0..16)
            .map(|_| engine.submit(query(64, 1.0)).unwrap())
            .collect();
        let report = engine.shutdown();
        assert_eq!(report.completed, 16);
        for p in pending {
            assert_eq!(p.wait().unwrap().prediction.class, 0);
        }
    }

    #[test]
    fn sharded_engine_routes_per_model() {
        let reg = Arc::new(ShardedRegistry::new());
        let (a, b) = (ModelId::new("tenant-a"), ModelId::new("tenant-b"));
        reg.publish(&a, oriented_model(64, 0), "a1").unwrap();
        reg.publish(&b, oriented_model(64, 1), "b1").unwrap();
        let engine = ServeEngine::start_sharded(Arc::clone(&reg), ServeConfig::default()).unwrap();

        // The tenants' class layouts are opposite, so each answer proves
        // which tenant's weights served it.
        let served_a = engine.predict_for(&a, query(64, 1.0)).unwrap();
        let served_b = engine.predict_for(&b, query(64, 1.0)).unwrap();
        assert_eq!(served_a.model, a);
        assert_eq!(served_b.model, b);
        assert_eq!(served_a.prediction.class, 0);
        assert_eq!(served_b.prediction.class, 1);

        // An unpublished id fails only its own request.
        assert_eq!(
            engine
                .predict_for(&ModelId::new("ghost"), query(64, 1.0))
                .unwrap_err(),
            ServeError::NoModel
        );

        let report = engine.shutdown();
        assert_eq!(report.per_model.len(), 3);
        let ids: Vec<&str> = report.per_model.iter().map(|m| m.model.as_str()).collect();
        assert_eq!(ids, vec!["ghost", "tenant-a", "tenant-b"]);
        assert_eq!(report.per_model[1].completed, 1);
        assert_eq!(report.per_model[0].failed, 1);
    }

    #[test]
    fn sharded_engine_batches_per_model() {
        // One flush window, two models: requests must split into
        // single-model batches even though they interleave in the queue.
        let reg = Arc::new(ShardedRegistry::new());
        let (a, b) = (ModelId::new("a"), ModelId::new("b"));
        reg.publish(&a, oriented_model(64, 0), "a1").unwrap();
        reg.publish(&b, oriented_model(64, 1), "b1").unwrap();
        let config = ServeConfig {
            max_batch: 64,
            max_delay: Duration::from_millis(20),
            workers: 2,
            queue_depth: 256,
            packed_fastpath: false,
            ..ServeConfig::default()
        };
        let engine = ServeEngine::start_sharded(reg, config).unwrap();
        let pending: Vec<_> = (0..32)
            .map(|i| {
                let id = if i % 2 == 0 { &a } else { &b };
                (i, engine.submit_to(id, query(64, 1.0)).unwrap())
            })
            .collect();
        for (i, p) in pending {
            let served = p.wait().unwrap();
            let want = if i % 2 == 0 { &a } else { &b };
            assert_eq!(&served.model, want, "request {i} answered by wrong model");
            // The opposite class layouts prove the right weights ran.
            assert_eq!(served.prediction.class, i % 2, "request {i} cross-served");
            // A batch never mixes models, so no batch exceeds one
            // model's share of the traffic.
            assert!(served.batch_size <= 16, "batch mixed models");
        }
        engine.shutdown();
    }

    #[test]
    fn single_model_engine_rejects_foreign_ids() {
        let engine = ServeEngine::start(registry(64), ServeConfig::default()).unwrap();
        assert_eq!(
            engine
                .predict_for(&ModelId::new("other"), query(64, 1.0))
                .unwrap_err(),
            ServeError::NoModel
        );
        assert_eq!(engine.predict(query(64, 1.0)).unwrap().prediction.class, 0);
        engine.shutdown();
    }

    #[test]
    fn registry_accessors_match_backend() {
        let single = ServeEngine::start(registry(32), ServeConfig::default()).unwrap();
        assert!(single.registry().is_some());
        assert!(single.sharded_registry().is_none());
        single.shutdown();

        let sharded =
            ServeEngine::start_sharded(Arc::new(ShardedRegistry::new()), ServeConfig::default())
                .unwrap();
        assert!(sharded.registry().is_none());
        assert!(sharded.sharded_registry().is_some());
        sharded.shutdown();
    }
}
