//! Error type of the serving subsystem.

use std::fmt;

use privehd_core::HdError;

/// Everything that can go wrong between submitting a query and reading
/// its prediction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The server is shutting down (or has shut down); the request was
    /// not accepted.
    Closed,
    /// The bounded submission queue is full; the caller should back off
    /// and retry (the serving layer sheds load instead of buffering
    /// unboundedly).
    QueueFull,
    /// This tenant's per-[`crate::ModelId`] queue quota is full; the
    /// tenant should back off while other tenants keep being served
    /// (the weighted-fair scheduler sheds one tenant's flood without
    /// crowding the rest). The wire front-end reports it as `Busy`.
    TenantOverQuota,
    /// No model has been published to the registry yet.
    NoModel,
    /// The underlying HD computation failed (dimension mismatch, zero
    /// norms, …).
    Model(HdError),
    /// A publish was refused because the model is only partially
    /// trained: the listed class indices have zero-norm (never-bundled)
    /// weights and could never be predicted. Use
    /// [`crate::ShardedRegistry::publish_partial`] to serve such a
    /// model deliberately.
    UntrainedClasses(Vec<usize>),
    /// An invalid serving configuration was supplied.
    InvalidConfig(String),
    /// A transport-level (socket) operation of the wire front-end
    /// failed; the message carries the underlying I/O error text.
    Transport(String),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Closed => write!(f, "serving engine is shut down"),
            ServeError::QueueFull => write!(f, "submission queue is full"),
            ServeError::TenantOverQuota => {
                write!(f, "per-tenant submission quota is full")
            }
            ServeError::NoModel => write!(f, "no model published in the registry"),
            ServeError::Model(e) => write!(f, "model error: {e}"),
            ServeError::UntrainedClasses(classes) => write!(
                f,
                "model is partially trained: classes {classes:?} have zero-norm weights \
                 (publish_partial serves them anyway)"
            ),
            ServeError::InvalidConfig(msg) => write!(f, "invalid serve config: {msg}"),
            ServeError::Transport(msg) => write!(f, "wire transport error: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Model(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HdError> for ServeError {
    fn from(e: HdError) -> Self {
        ServeError::Model(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ServeError::Closed.to_string().contains("shut down"));
        assert!(ServeError::QueueFull.to_string().contains("queue"));
        assert!(ServeError::TenantOverQuota.to_string().contains("tenant"));
        assert!(ServeError::NoModel.to_string().contains("registry"));
        assert!(ServeError::Model(HdError::ZeroNorm)
            .to_string()
            .contains("model error"));
    }

    #[test]
    fn hd_errors_convert() {
        let e: ServeError = HdError::EmptyDimension.into();
        assert_eq!(e, ServeError::Model(HdError::EmptyDimension));
    }
}
