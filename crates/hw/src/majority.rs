//! The approximate majority circuit for bipolar quantization (Fig. 7a).
//!
//! Each output dimension of the Eq. (2b) encoding is the sum of `d_iv`
//! bits (representing `{−1,+1}`); bipolar quantization only needs its
//! *sign*, i.e. a majority vote. The exact circuit is a full adder tree
//! (`≈ 4/3·d_iv` LUT-6). The approximate circuit replaces the first stage
//! with LUT-6 *partial majorities* — every six bits become one majority
//! bit — and feeds the survivors to an exact adder tree plus threshold,
//! for `≈ 7/18·d_iv` LUT-6 (Eq. 15). Cascading more majority stages
//! saves more LUTs but degrades accuracy, which is why the paper stops
//! after one stage; [`MajorityCircuit::with_stages`] exposes the depth
//! for the ablation bench.

use serde::{Deserialize, Serialize};

use crate::lut::Lut6;

/// Exact sign of a `{−1,+1}` bit sum: `true` (+1) when the number of set
/// bits is at least half — matching the software convention
/// `sign(0) = +1` of `QuantScheme::Bipolar`.
pub fn exact_sign(bits: &[bool]) -> bool {
    let ones = bits.iter().filter(|&&b| b).count();
    2 * ones >= bits.len()
}

/// One-stage approximate sign (the paper's configuration): partial
/// majorities of six, then an exact threshold over the majority bits.
pub fn approx_sign(bits: &[bool]) -> bool {
    MajorityCircuit::new().sign(bits)
}

/// The configurable majority circuit.
///
/// # Examples
///
/// ```
/// use privehd_hw::MajorityCircuit;
///
/// let circuit = MajorityCircuit::new();
/// let bits = vec![true; 36]; // unanimous +1
/// assert!(circuit.sign(&bits));
/// assert!(!circuit.sign(&vec![false; 36]));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MajorityCircuit {
    /// Number of LUT-majority stages before the exact adder tree.
    /// 0 = fully exact; 1 = the paper's design; more = the degraded
    /// cascade the paper warns about.
    stages: usize,
}

impl Default for MajorityCircuit {
    fn default() -> Self {
        Self::new()
    }
}

impl MajorityCircuit {
    /// The paper's design: one majority stage.
    pub fn new() -> Self {
        Self { stages: 1 }
    }

    /// The exact reference circuit (adder tree only).
    pub fn exact() -> Self {
        Self { stages: 0 }
    }

    /// A cascade of `stages` majority stages (ablation; the paper notes
    /// repeating "till log d_iv stages ... would degrade accuracy").
    pub fn with_stages(stages: usize) -> Self {
        Self { stages }
    }

    /// Number of majority stages.
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Computes the (approximate) sign of the `{−1,+1}` sum of `bits`.
    ///
    /// Ties inside a LUT group break alternately (+, −, +, …) by group
    /// index — a predetermined pattern, per the paper — so tie errors do
    /// not bias the result systematically. Groups shorter than six (the
    /// tail when `d_iv % 6 != 0`) use a majority over the actual length.
    pub fn sign(&self, bits: &[bool]) -> bool {
        if bits.is_empty() {
            return true;
        }
        let mut current: Vec<bool> = bits.to_vec();
        for _stage in 0..self.stages {
            if current.len() < 6 {
                break;
            }
            current = Self::majority_stage(&current);
        }
        exact_sign(&current)
    }

    /// One LUT-6 majority stage: every group of six bits collapses to its
    /// majority bit.
    fn majority_stage(bits: &[bool]) -> Vec<bool> {
        let maj_pos = Lut6::majority(true);
        let maj_neg = Lut6::majority(false);
        bits.chunks(6)
            .enumerate()
            .map(|(g, chunk)| {
                let tie_break = g % 2 == 0;
                if chunk.len() == 6 {
                    let lut = if tie_break { maj_pos } else { maj_neg };
                    let mut arr = [false; 6];
                    arr.copy_from_slice(chunk);
                    lut.eval(arr)
                } else {
                    // Tail group: majority over the actual length.
                    let ones = chunk.iter().filter(|&&b| b).count();
                    match (2 * ones).cmp(&chunk.len()) {
                        std::cmp::Ordering::Greater => true,
                        std::cmp::Ordering::Less => false,
                        std::cmp::Ordering::Equal => tie_break,
                    }
                }
            })
            .collect()
    }

    /// Fraction of random inputs on which this circuit agrees with the
    /// exact sign, over `trials` vectors of `d_iv` i.i.d. fair bits.
    /// The paper reports <1% loss for one stage.
    pub fn agreement_rate(&self, d_iv: usize, trials: usize, seed: u64) -> f64 {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let mut agree = 0usize;
        for _ in 0..trials {
            let bits: Vec<bool> = (0..d_iv).map(|_| rng.gen()).collect();
            if self.sign(&bits) == exact_sign(&bits) {
                agree += 1;
            }
        }
        agree as f64 / trials.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_sign_ties_are_positive() {
        assert!(exact_sign(&[true, false]));
        assert!(exact_sign(&[]));
        assert!(exact_sign(&[true, true, false]));
        assert!(!exact_sign(&[true, false, false]));
    }

    #[test]
    fn zero_stage_circuit_is_exact() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let circuit = MajorityCircuit::exact();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let bits: Vec<bool> = (0..37).map(|_| rng.gen()).collect();
            assert_eq!(circuit.sign(&bits), exact_sign(&bits));
        }
    }

    #[test]
    fn unanimous_inputs_are_always_correct() {
        for stages in 0..4 {
            let c = MajorityCircuit::with_stages(stages);
            assert!(c.sign(&[true; 100]));
            assert!(!c.sign(&[false; 100]));
        }
    }

    #[test]
    fn strong_majorities_survive_approximation() {
        // 70/30 splits: the approximate circuit must get these right.
        let mut bits = vec![true; 70];
        bits.extend(vec![false; 30]);
        assert!(approx_sign(&bits));
        let mut bits = vec![false; 70];
        bits.extend(vec![true; 30]);
        assert!(!approx_sign(&bits));
    }

    #[test]
    fn one_stage_agreement_is_high() {
        // Fair-coin inputs are the worst case: the sum hovers near zero,
        // where the approximation flips most easily. One stage measures
        // ≈0.79 there; end-to-end HD accuracy loss is still <1% (paper,
        // and the integration tests) because the flipped dimensions are
        // precisely the near-tie ones that contribute least to the
        // dot-product.
        let rate = MajorityCircuit::new().agreement_rate(617, 2_000, 42);
        assert!(rate > 0.75, "agreement = {rate}");
    }

    #[test]
    fn agreement_is_near_perfect_on_biased_inputs() {
        // Dimensions with a clear majority — the ones that matter for the
        // similarity — are almost never flipped.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let circuit = MajorityCircuit::new();
        let mut rng = StdRng::seed_from_u64(4);
        let mut agree = 0usize;
        let trials = 1_000;
        for _ in 0..trials {
            // 60/40 bias, alternating direction.
            let p = if rng.gen::<bool>() { 0.6 } else { 0.4 };
            let bits: Vec<bool> = (0..617).map(|_| rng.gen::<f64>() < p).collect();
            if circuit.sign(&bits) == exact_sign(&bits) {
                agree += 1;
            }
        }
        let rate = agree as f64 / trials as f64;
        assert!(rate > 0.97, "biased agreement = {rate}");
    }

    #[test]
    fn cascading_degrades_agreement() {
        let one = MajorityCircuit::with_stages(1).agreement_rate(612, 2_000, 7);
        let four = MajorityCircuit::with_stages(4).agreement_rate(612, 2_000, 7);
        assert!(
            four < one,
            "deeper cascade should be worse: 1-stage {one}, 4-stage {four}"
        );
    }

    #[test]
    fn short_inputs_skip_majority_stage() {
        let c = MajorityCircuit::new();
        assert!(c.sign(&[true, true, false]));
        assert!(!c.sign(&[false, false, true]));
    }

    #[test]
    fn tail_groups_are_handled() {
        // 8 bits: one full group + a 2-bit tail.
        let c = MajorityCircuit::new();
        let mut bits = vec![true; 6];
        bits.extend([false, false]);
        // Majority bit of group 0 = true; tail group majority of [F,F] = F;
        // final threshold over [T, F] is a tie → exact_sign tie = true.
        assert!(c.sign(&bits));
    }
}
