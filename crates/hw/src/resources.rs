//! LUT-6 resource counts (Eq. 15 and §III-D).
//!
//! Per output dimension, for `d_iv` input bits:
//!
//! * exact bipolar (adder tree): `≈ 4/3·d_iv` LUT-6,
//! * approximate bipolar (majority first stage, Eq. 15):
//!   `d_iv/6 + (1/6)·Σ_{i=1}^{log d_iv} (d_iv/3)·(i/2^{i−1}) ≈ 7/18·d_iv`
//!   — a 70.8% saving,
//! * exact ternary: `≈ 3·d_iv` LUT-6,
//! * saturated ternary (Fig. 7b): `≈ 2·d_iv` LUT-6 — a 33.3% saving.

use serde::{Deserialize, Serialize};

/// Resource model for one output dimension of the encoder.
///
/// # Examples
///
/// ```
/// use privehd_hw::ResourceModel;
///
/// let m = ResourceModel::new(617);
/// let saving = 1.0 - m.bipolar_approx() / m.bipolar_exact();
/// assert!((saving - 0.708).abs() < 0.02);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ResourceModel {
    d_iv: usize,
}

impl ResourceModel {
    /// Model for `d_iv` input bits per dimension.
    pub fn new(d_iv: usize) -> Self {
        Self { d_iv }
    }

    /// The input bit count `d_iv`.
    pub fn d_iv(&self) -> usize {
        self.d_iv
    }

    /// LUT-6 for the exact bipolar adder tree: `4/3·d_iv`.
    pub fn bipolar_exact(&self) -> f64 {
        4.0 / 3.0 * self.d_iv as f64
    }

    /// LUT-6 for the approximate bipolar circuit, closed form of Eq. 15:
    /// `7/18·d_iv`.
    pub fn bipolar_approx(&self) -> f64 {
        7.0 / 18.0 * self.d_iv as f64
    }

    /// LUT-6 for the approximate bipolar circuit via the explicit series
    /// of Eq. 15 (converges to [`ResourceModel::bipolar_approx`] for large
    /// `d_iv`):
    /// `d_iv/6 + (1/6)·Σ_{i=1}^{⌈log₂ d_iv⌉} (d_iv/3)·(i/2^{i−1})`.
    pub fn bipolar_approx_series(&self) -> f64 {
        let d = self.d_iv as f64;
        let log_d = (d.log2().ceil() as usize).max(1);
        let series: f64 = (1..=log_d)
            .map(|i| (d / 3.0) * (i as f64) / 2f64.powi(i as i32 - 1))
            .sum();
        d / 6.0 + series / 6.0
    }

    /// LUT-6 for the exact ternary adder tree: `3·d_iv`.
    pub fn ternary_exact(&self) -> f64 {
        3.0 * self.d_iv as f64
    }

    /// LUT-6 for the saturated ternary tree: `2·d_iv`.
    pub fn ternary_saturated(&self) -> f64 {
        2.0 * self.d_iv as f64
    }

    /// Fractional saving of the approximate bipolar circuit (paper:
    /// 70.8%).
    pub fn bipolar_saving(&self) -> f64 {
        1.0 - self.bipolar_approx() / self.bipolar_exact()
    }

    /// Fractional saving of the saturated ternary circuit (paper: 33.3%).
    pub fn ternary_saving(&self) -> f64 {
        1.0 - self.ternary_saturated() / self.ternary_exact()
    }

    /// Total LUT-6 to instantiate `parallel_dims` dimension pipelines.
    pub fn total_luts(&self, parallel_dims: usize, approximate: bool) -> f64 {
        let per_dim = if approximate {
            self.bipolar_approx()
        } else {
            self.bipolar_exact()
        };
        per_dim * parallel_dims as f64
    }

    /// How many dimension pipelines fit a device with `device_luts`
    /// LUT-6 (e.g. ≈203,800 for the paper's Kintex-7 XC7K325T).
    pub fn parallel_dims_on(&self, device_luts: usize, approximate: bool) -> usize {
        let per_dim = if approximate {
            self.bipolar_approx()
        } else {
            self.bipolar_exact()
        };
        (device_luts as f64 / per_dim).floor() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_savings() {
        let m = ResourceModel::new(617);
        assert!(
            (m.bipolar_saving() - 0.708).abs() < 0.005,
            "{}",
            m.bipolar_saving()
        );
        assert!((m.ternary_saving() - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn series_approaches_closed_form() {
        // 7/18 = 1/6 + (1/6)·(1/3)·Σ i/2^{i−1} with Σ→4: 1/6+4/18−… the
        // paper's own approximation; tolerate a few percent at finite d.
        for d in [512usize, 1024, 4096, 16384] {
            let m = ResourceModel::new(d);
            let ratio = m.bipolar_approx_series() / m.bipolar_approx();
            assert!(
                (0.9..1.2).contains(&ratio),
                "d={d}: series {} vs closed {}",
                m.bipolar_approx_series(),
                m.bipolar_approx()
            );
        }
    }

    #[test]
    fn approx_always_cheaper() {
        for d in [6usize, 60, 617, 784, 10_000] {
            let m = ResourceModel::new(d);
            assert!(m.bipolar_approx() < m.bipolar_exact());
            assert!(m.ternary_saturated() < m.ternary_exact());
        }
    }

    #[test]
    fn device_capacity_scales_with_approximation() {
        let m = ResourceModel::new(617);
        let device = 203_800; // Kintex-7 XC7K325T LUT count
        let exact = m.parallel_dims_on(device, false);
        let approx = m.parallel_dims_on(device, true);
        assert!(approx > 3 * exact, "approx {approx} vs exact {exact}");
        assert_eq!(m.total_luts(1, true), m.bipolar_approx());
    }
}
