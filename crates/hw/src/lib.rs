//! # privehd-hw
//!
//! Bit-exact functional simulation of the Prive-HD FPGA encoder (§III-D
//! of the paper) plus analytic resource and performance models.
//!
//! The paper accelerates the record encoding of Eq. (2b) — whose every
//! dimension is a sum of `d_iv` values in `{−1,+1}` — with two
//! approximate-arithmetic tricks:
//!
//! * **Bipolar quantization** (Fig. 7a): the sign of the sum is a
//!   majority vote. The first stage replaces groups of six bits with a
//!   single LUT-6 *majority* bit (ties broken by a predetermined choice);
//!   the surviving bits feed an exact adder tree plus threshold. Cost
//!   drops from `4/3·d_iv` to `≈ 7/18·d_iv` LUT-6 (Eq. 15, −70.8%) at
//!   <1% accuracy loss.
//! * **Ternary quantization** (Fig. 7b): three 2-bit dimensions are summed
//!   by three LUT-6 into one 3-bit value; the 3-bit values then enter a
//!   *saturated* adder tree that truncates the LSB at every level, keeping
//!   a 3-bit datapath. Cost drops from `≈ 3·d_iv` to `≈ 2·d_iv` LUT-6
//!   (−33.3%).
//!
//! [`design`] sizes the pipelined architecture on a concrete device,
//! and [`verilog`] emits the synthesizable RTL the paper hand-crafted.
//! [`plan_target`] plugs both into the plan compiler of
//! `privehd_core::plan`: [`HwPlanTarget`] renders a compiled
//! `ModelPlan` as an encoder array sized for the plan, making the
//! hardware pipeline a second backend of the same compiler.
//! Since no FPGA is attached to this environment, [`pipeline`] validates
//! the circuits *functionally* (bit-exact against the software encoder)
//! and [`perf`] models throughput/energy of the paper's three platforms
//! (Kintex-7 FPGA, Raspberry Pi 3, GTX 1080 Ti) to regenerate Table I's
//! shape. See DESIGN.md §4 for the substitution rationale.

// No unsafe: every unsafe site in the workspace lives in privehd-core
// under the analyze unsafe-audit ledger (see docs/ANALYSIS.md).
#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod design;
pub mod lut;
pub mod majority;
pub mod perf;
pub mod pipeline;
pub mod plan_target;
pub mod resources;
pub mod ternary;
pub mod verilog;

pub use design::FpgaDesign;
pub use lut::Lut6;
pub use majority::{approx_sign, exact_sign, MajorityCircuit};
pub use perf::{Platform, PlatformKind, Workload};
pub use pipeline::HardwareEncoder;
pub use plan_target::HwPlanTarget;
pub use resources::ResourceModel;
pub use ternary::SaturatedAdderTree;
