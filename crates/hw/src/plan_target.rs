//! The FPGA backend of the plan compiler: renders a compiled
//! [`ModelPlan`] as synthesizable encoder RTL plus an analytic
//! resource/throughput summary.
//!
//! `privehd_core::plan` abstracts the compiled pipeline behind
//! [`PlanTarget`]; the in-core `SoftwareTarget` renders the kernel
//! tables the serving engine executes, and this module turns the
//! crate's LUT/majority/verilog pipeline into the *second* backend of
//! the same compiler: [`HwPlanTarget::render`] emits the Eq. (15)
//! bipolar (or saturated ternary) encoder array sized for the plan's
//! dimensionality on a concrete device, instead of a free-floating
//! artifact disconnected from what actually serves.

use privehd_core::plan::{ModelPlan, PlanArtifact, PlanTarget};
use privehd_core::QuantScheme;

use crate::design::FpgaDesign;
use crate::perf::Workload;
use crate::verilog;

/// Renders compiled plans for an FPGA device.
///
/// The plan itself carries what publish time knows — dimensionality,
/// class count, the selected scoring kernel. The hardware target adds
/// the physical workload shape the RTL needs: how many item-memory
/// bits (`d_iv ≈` feature count) feed each output dimension, which
/// quantization the datapath carries, and whether the approximate
/// (LUT-majority / saturated-tree) arithmetic of §III-D is used.
///
/// # Examples
///
/// ```
/// use privehd_core::plan::{ModelPlan, PlanTarget};
/// use privehd_core::{HdModel, Hypervector, QuantScheme};
/// use privehd_hw::HwPlanTarget;
///
/// let mut model = HdModel::new(2, 128).unwrap();
/// model.bundle(0, &Hypervector::from_vec(vec![1.0; 128])).unwrap();
/// model.bundle(1, &Hypervector::from_vec(vec![-1.0; 128])).unwrap();
/// let plan = ModelPlan::compile(&model);
///
/// let target = HwPlanTarget::new(64, QuantScheme::Bipolar, true);
/// let artifact = target.render(&plan);
/// assert_eq!(artifact.target, "fpga");
/// assert!(artifact.payload.contains("module privehd_encoder"));
/// ```
#[derive(Debug, Clone)]
pub struct HwPlanTarget {
    design: FpgaDesign,
    d_iv: usize,
    scheme: QuantScheme,
    approximate: bool,
}

impl HwPlanTarget {
    /// A target on the paper's Kintex-7 325T device. `d_iv` is the
    /// number of item-memory bits summed per output dimension (the
    /// feature count for the record encoding); `scheme` selects the
    /// datapath (bipolar majority vs ternary saturated tree);
    /// `approximate` picks the §III-D approximate arithmetic over the
    /// exact adder trees. A zero `d_iv` is clamped to one.
    pub fn new(d_iv: usize, scheme: QuantScheme, approximate: bool) -> Self {
        Self::on_design(FpgaDesign::kintex7_325t(), d_iv, scheme, approximate)
    }

    /// Same, on an explicit device model.
    pub fn on_design(
        design: FpgaDesign,
        d_iv: usize,
        scheme: QuantScheme,
        approximate: bool,
    ) -> Self {
        Self {
            design,
            d_iv: d_iv.max(1),
            scheme,
            approximate,
        }
    }

    /// The device model this target sizes against.
    pub fn design(&self) -> &FpgaDesign {
        &self.design
    }
}

impl PlanTarget for HwPlanTarget {
    fn name(&self) -> &'static str {
        "fpga"
    }

    fn render(&self, plan: &ModelPlan) -> PlanArtifact {
        let workload = Workload::new("compiled-plan", self.d_iv, plan.dim());
        let per_dim = self
            .design
            .luts_per_dim(self.d_iv, self.scheme, self.approximate);
        let parallel = self
            .design
            .parallel_dims(self.d_iv, self.scheme, self.approximate)
            .max(1)
            .min(plan.dim().max(1));
        let cycles = self
            .design
            .cycles_per_input(&workload, self.scheme, self.approximate);
        let throughput = self
            .design
            .throughput(&workload, self.scheme, self.approximate);
        let summary = format!(
            "fpga encoder array for {} ({}): {} dims, {} classes; {per_dim:.2} LUT-6/dim, \
             {parallel} parallel pipelines, {cycles} cycles/input, {throughput:.0} inputs/s",
            self.scheme,
            if self.approximate {
                "approximate"
            } else {
                "exact"
            },
            plan.dim(),
            plan.num_classes(),
        );
        let payload =
            verilog::encoder_top("privehd_encoder", self.d_iv, parallel, self.approximate);
        PlanArtifact {
            target: self.name(),
            summary,
            payload,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use privehd_core::plan::SoftwareTarget;
    use privehd_core::{HdModel, Hypervector};

    fn plan(dim: usize) -> ModelPlan {
        let mut model = HdModel::new(2, dim).unwrap();
        model
            .bundle(0, &Hypervector::from_vec(vec![1.0; dim]))
            .unwrap();
        model
            .bundle(1, &Hypervector::from_vec(vec![-1.0; dim]))
            .unwrap();
        ModelPlan::compile(&model)
    }

    #[test]
    fn renders_rtl_sized_to_the_plan() {
        let p = plan(256);
        let artifact = HwPlanTarget::new(617, QuantScheme::Bipolar, true).render(&p);
        assert_eq!(artifact.target, "fpga");
        assert!(artifact.summary.contains("256 dims"));
        assert!(artifact.summary.contains("2 classes"));
        assert!(artifact.payload.contains("module privehd_encoder ("));
        assert!(artifact.payload.contains("module privehd_encoder_dim"));
    }

    #[test]
    fn parallelism_never_exceeds_the_plan_dimensionality() {
        // A tiny plan on a huge device must not instantiate more
        // pipelines than there are output dimensions.
        let p = plan(8);
        let artifact = HwPlanTarget::new(6, QuantScheme::Bipolar, true).render(&p);
        assert!(artifact.payload.contains("output wire [7:0] signs"));
    }

    #[test]
    fn exact_and_approximate_datapaths_both_render() {
        let p = plan(64);
        for approximate in [false, true] {
            for scheme in [QuantScheme::Bipolar, QuantScheme::Ternary] {
                let a = HwPlanTarget::new(36, scheme, approximate).render(&p);
                assert!(!a.payload.is_empty());
                assert!(a.summary.contains("64 dims"));
            }
        }
    }

    #[test]
    fn zero_d_iv_is_clamped_not_panicking() {
        let p = plan(16);
        let a = HwPlanTarget::new(0, QuantScheme::Bipolar, false).render(&p);
        assert!(a.payload.contains("module"));
    }

    #[test]
    fn both_targets_render_the_same_plan() {
        // The point of PlanTarget: one compiled plan, two substrates.
        let p = plan(128);
        let sw = SoftwareTarget.render(&p);
        let hw = HwPlanTarget::new(64, QuantScheme::Bipolar, true).render(&p);
        assert_eq!(sw.target, "software");
        assert_eq!(hw.target, "fpga");
        assert!(sw.payload.contains("kernel ="));
        assert!(hw.payload.contains("module"));
    }
}
